//! Environment configuration: component knobs and named presets.
//!
//! [`EnvConfig`] is a plain `Copy` value embedded in the simulator's
//! `SimConfig`, so scheduled disturbances are `'static` slices (presets
//! are consts; tests build ad-hoc scripts with `Box::leak`). Times of
//! recurring scenario elements are *fractions of the simulated horizon*
//! so one preset scales from smoke tests to paper-scale runs; scripted
//! [`DeviceFault`]s use absolute milliseconds because scripts target
//! concrete moments of one concrete run.

use venn_core::SimTime;

/// A surge of extra device availability: `frac` of the population comes
/// online together shortly after `at_frac × horizon`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlashCrowd {
    /// When the crowd arrives, as a fraction of the horizon in `[0, 1]`.
    pub at_frac: f64,
    /// Fraction of the population that surges online.
    pub frac: f64,
    /// Mean duration of the surge sessions in milliseconds.
    pub mean_dur_ms: f64,
}

/// A correlated mass-offline disturbance: at `at_frac × horizon`, each
/// online device independently goes offline with probability `frac`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MassOffline {
    /// When the disturbance fires, as a fraction of the horizon.
    pub at_frac: f64,
    /// Per-device probability of being forced offline.
    pub frac: f64,
}

/// One network/straggler class. Devices are assigned a tier once per run
/// (weighted by `weight`) from the environment's network RNG stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetTier {
    /// Relative share of the population in this tier.
    pub weight: f64,
    /// Multiplier applied to every response time of the tier's devices.
    pub response_mult: f64,
    /// Probability that an assigned participant of this tier drops
    /// mid-round (an `AssignFailure` before its response would land).
    pub drop_prob: f64,
}

/// Identity tier used when a config enables the environment without
/// declaring tiers: one class, no stretch, no drops.
pub const DEFAULT_TIERS: &[NetTier] = &[NetTier {
    weight: 1.0,
    response_mult: 1.0,
    drop_prob: 0.0,
}];

/// A scripted single-device failure at an absolute simulated time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeviceFault {
    /// When the device fails (absolute milliseconds).
    pub at_ms: SimTime,
    /// Population index of the failing device.
    pub device: usize,
}

/// A job abort/retry storm: at `at_frac × horizon`, each round currently
/// computing aborts with probability `prob` (and retries after the
/// kernel's usual abort backoff).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AbortStorm {
    /// When the storm fires, as a fraction of the horizon.
    pub at_frac: f64,
    /// Per-round abort probability.
    pub prob: f64,
}

/// All environment-dynamics knobs of one run.
///
/// The default ([`EnvConfig::off`]) disables everything: the kernel
/// makes no environment draws and injects no events, keeping the
/// env-off arm bit-identical to the pre-environment kernel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnvConfig {
    /// Master switch. When `false` every other field is ignored.
    pub enabled: bool,
    /// Fraction of devices that join the population late (their sessions
    /// before a uniformly drawn join time are dropped) — population
    /// drift inward.
    pub join_frac: f64,
    /// Fraction of devices that permanently leave (their sessions after
    /// a uniformly drawn leave time are dropped) — population drift
    /// outward.
    pub leave_frac: f64,
    /// Flash-crowd surges.
    pub flash_crowds: &'static [FlashCrowd],
    /// Correlated mass-offline disturbances.
    pub mass_offline: &'static [MassOffline],
    /// Network/straggler tiers (empty ⇒ [`DEFAULT_TIERS`]).
    pub tiers: &'static [NetTier],
    /// Scripted device failures.
    pub faults: &'static [DeviceFault],
    /// Job abort/retry storms.
    pub abort_storms: &'static [AbortStorm],
}

impl Default for EnvConfig {
    fn default() -> Self {
        EnvConfig::off()
    }
}

impl EnvConfig {
    /// The disabled environment (the default arm; parity-pinned against
    /// the benchmark baseline).
    pub const fn off() -> Self {
        EnvConfig {
            enabled: false,
            join_frac: 0.0,
            leave_frac: 0.0,
            flash_crowds: &[],
            mass_offline: &[],
            tiers: &[],
            faults: &[],
            abort_storms: &[],
        }
    }

    /// An enabled environment with no dynamics — the identity arm used
    /// by tests that script their own faults.
    pub const fn neutral() -> Self {
        EnvConfig {
            enabled: true,
            ..EnvConfig::off()
        }
    }

    /// Validates invariants.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range probabilities/fractions or non-positive
    /// tier parameters.
    pub fn validate(&self) {
        if !self.enabled {
            return;
        }
        let frac01 = |v: f64, what: &str| {
            assert!(
                (0.0..=1.0).contains(&v),
                "{what} must be in [0, 1], got {v}"
            );
        };
        frac01(self.join_frac, "join_frac");
        frac01(self.leave_frac, "leave_frac");
        assert!(
            self.join_frac + self.leave_frac <= 1.0,
            "join_frac + leave_frac must not exceed 1"
        );
        for c in self.flash_crowds {
            frac01(c.at_frac, "flash crowd at_frac");
            frac01(c.frac, "flash crowd frac");
            assert!(c.mean_dur_ms > 0.0, "flash crowd duration must be positive");
        }
        for m in self.mass_offline {
            frac01(m.at_frac, "mass offline at_frac");
            frac01(m.frac, "mass offline frac");
        }
        for t in self.tiers {
            assert!(t.weight >= 0.0, "tier weight must be non-negative");
            assert!(t.response_mult > 0.0, "tier response_mult must be positive");
            frac01(t.drop_prob, "tier drop_prob");
        }
        if !self.tiers.is_empty() {
            assert!(
                self.tiers.iter().map(|t| t.weight).sum::<f64>() > 0.0,
                "tier weights must not all be zero"
            );
        }
        for s in self.abort_storms {
            frac01(s.at_frac, "abort storm at_frac");
            frac01(s.prob, "abort storm prob");
        }
    }
}

/// Named environment scenarios for the CLIs (`--env <preset>`) and the
/// sweep harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum EnvPreset {
    /// No environment dynamics (the default, parity-pinned arm).
    #[default]
    Off,
    /// Population drift plus two flash-crowd surges.
    FlashCrowd,
    /// Four network tiers with heavy tails and mid-round drops.
    StragglerHeavy,
    /// Correlated mass-offline waves, churn, and an abort storm.
    MassDropout,
    /// Everything at once — the kitchen-sink stress scenario.
    Chaos,
}

/// Three-tier flash-crowd scenario: a quarter of the population surges
/// online mid-morning of the run, a third again late.
const FLASH_CROWD: EnvConfig = EnvConfig {
    enabled: true,
    join_frac: 0.15,
    leave_frac: 0.05,
    // Early fractions of the horizon: the evaluation workloads are
    // front-loaded (Poisson arrivals over the first day or two), so
    // surges land while rounds are actually in flight at every scale.
    flash_crowds: &[
        FlashCrowd {
            at_frac: 0.1,
            frac: 0.25,
            mean_dur_ms: 2.0 * 3_600_000.0,
        },
        FlashCrowd {
            at_frac: 0.25,
            frac: 0.35,
            mean_dur_ms: 1.5 * 3_600_000.0,
        },
    ],
    mass_offline: &[],
    tiers: &[],
    faults: &[],
    abort_storms: &[],
};

const STRAGGLER_HEAVY: EnvConfig = EnvConfig {
    enabled: true,
    join_frac: 0.0,
    leave_frac: 0.0,
    flash_crowds: &[],
    mass_offline: &[],
    tiers: &[
        NetTier {
            weight: 0.20,
            response_mult: 1.0,
            drop_prob: 0.0,
        },
        NetTier {
            weight: 0.45,
            response_mult: 1.8,
            drop_prob: 0.01,
        },
        NetTier {
            weight: 0.25,
            response_mult: 3.5,
            drop_prob: 0.04,
        },
        NetTier {
            weight: 0.10,
            response_mult: 6.0,
            drop_prob: 0.12,
        },
    ],
    faults: &[],
    abort_storms: &[],
};

const MASS_DROPOUT: EnvConfig = EnvConfig {
    enabled: true,
    join_frac: 0.0,
    leave_frac: 0.15,
    flash_crowds: &[],
    // Two offline waves and one storm inside the workload's active
    // window (see the FLASH_CROWD timing note).
    mass_offline: &[
        MassOffline {
            at_frac: 0.08,
            frac: 0.5,
        },
        MassOffline {
            at_frac: 0.25,
            frac: 0.6,
        },
    ],
    tiers: &[],
    faults: &[],
    abort_storms: &[AbortStorm {
        at_frac: 0.12,
        prob: 0.5,
    }],
};

const CHAOS: EnvConfig = EnvConfig {
    enabled: true,
    join_frac: 0.1,
    leave_frac: 0.1,
    flash_crowds: FLASH_CROWD.flash_crowds,
    mass_offline: MASS_DROPOUT.mass_offline,
    tiers: STRAGGLER_HEAVY.tiers,
    faults: &[],
    abort_storms: MASS_DROPOUT.abort_storms,
};

impl EnvPreset {
    /// Every preset, `Off` first, in CLI/doc order.
    pub const ALL: [EnvPreset; 5] = [
        EnvPreset::Off,
        EnvPreset::FlashCrowd,
        EnvPreset::StragglerHeavy,
        EnvPreset::MassDropout,
        EnvPreset::Chaos,
    ];

    /// The CLI/JSON name of the preset.
    pub fn label(&self) -> &'static str {
        match self {
            EnvPreset::Off => "off",
            EnvPreset::FlashCrowd => "flash-crowd",
            EnvPreset::StragglerHeavy => "straggler-heavy",
            EnvPreset::MassDropout => "mass-dropout",
            EnvPreset::Chaos => "chaos",
        }
    }

    /// Parses a CLI/JSON name back into the preset.
    pub fn parse(name: &str) -> Option<EnvPreset> {
        EnvPreset::ALL.into_iter().find(|p| p.label() == name)
    }

    /// The preset's environment configuration.
    pub fn config(&self) -> EnvConfig {
        match self {
            EnvPreset::Off => EnvConfig::off(),
            EnvPreset::FlashCrowd => FLASH_CROWD,
            EnvPreset::StragglerHeavy => STRAGGLER_HEAVY,
            EnvPreset::MassDropout => MASS_DROPOUT,
            EnvPreset::Chaos => CHAOS,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate_and_round_trip_labels() {
        for p in EnvPreset::ALL {
            p.config().validate();
            assert_eq!(EnvPreset::parse(p.label()), Some(p), "{p:?}");
        }
        assert_eq!(EnvPreset::parse("nope"), None);
    }

    #[test]
    fn off_is_the_default_and_disabled() {
        assert_eq!(EnvConfig::default(), EnvConfig::off());
        assert!(!EnvConfig::off().enabled);
        assert_eq!(EnvPreset::default(), EnvPreset::Off);
    }

    #[test]
    #[should_panic(expected = "drop_prob")]
    fn bad_drop_prob_panics() {
        EnvConfig {
            enabled: true,
            tiers: Box::leak(Box::new([NetTier {
                weight: 1.0,
                response_mult: 1.0,
                drop_prob: 1.5,
            }])),
            ..EnvConfig::off()
        }
        .validate();
    }

    #[test]
    fn disabled_configs_skip_validation() {
        // A nonsense config with the master switch off must not panic.
        EnvConfig {
            enabled: false,
            join_frac: 7.0,
            ..EnvConfig::off()
        }
        .validate();
    }
}
