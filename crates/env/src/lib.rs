//! Deterministic environment dynamics for the simulation kernel.
//!
//! The paper's setting — heterogeneous edge devices shared across CL
//! jobs — is defined by *dynamics*: devices join and leave the
//! population, flash crowds surge online, whole cohorts drop off WiFi at
//! once, slow network tiers stretch response times, and participants
//! fail mid-round. This crate models those dynamics as data, compiled
//! once per run into an [`EnvRuntime`] the kernel consults; the kernel
//! (`venn-sim`) owns all state mutation, so the crate stays a leaf
//! dependency (only `venn-core` and the RNG shim).
//!
//! ## Determinism and RNG stream splitting
//!
//! Every environment component draws from its **own** RNG stream,
//! split off the simulation seed with a fixed salt
//! ([`EnvStream`]): churn, network-tier assignment, fault plans, and
//! mid-round drop decisions never share a generator with each other or
//! with the kernel's response-noise RNG. Two consequences, both load-
//! bearing:
//!
//! * **Per-seed reproducibility** — a scenario replays bit-for-bit for
//!   a given `(config, seed)`, however its components are combined.
//! * **Env-off parity** — with [`EnvConfig::off`] (the default) the
//!   environment makes *zero* draws and injects *zero* events, so the
//!   env-off arm is byte-identical to the kernel without this crate
//!   compiled in. `tests/env_parity.rs` pins that against the committed
//!   benchmark baseline.
//!
//! ## Components
//!
//! * **Churn** ([`EnvConfig::join_frac`], [`EnvConfig::leave_frac`],
//!   [`FlashCrowd`], [`MassOffline`]) — population drift via per-device
//!   active windows, surges of extra availability sessions, and
//!   correlated mass-offline disturbances.
//! * **Network tiers** ([`NetTier`]) — per-device classes that stretch
//!   response times and can drop a participant mid-round, feeding the
//!   kernel's existing quorum/abort machinery.
//! * **Fault plans** ([`DeviceFault`], [`AbortStorm`]) — scripted
//!   single-device failures and stochastic job abort/retry storms.
//!
//! [`EnvPreset`] names ready-made scenario mixes (`flash-crowd`,
//! `straggler-heavy`, `mass-dropout`, `chaos`) for the CLIs and sweep
//! harness.

pub mod config;
pub mod runtime;

pub use config::{AbortStorm, DeviceFault, EnvConfig, EnvPreset, FlashCrowd, MassOffline, NetTier};
pub use runtime::{Disturbance, EnvRuntime, EnvSession, EnvStream};
