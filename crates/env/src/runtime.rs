//! The compiled per-run environment: per-device tiers and active
//! windows, flash-crowd sessions, a time-ordered disturbance schedule,
//! and the split RNG streams for runtime draws.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use venn_core::{SimTime, MINUTE_MS};

use crate::config::{EnvConfig, NetTier, DEFAULT_TIERS};

/// The environment's independent RNG streams. Each is seeded from the
/// simulation seed and the stream's fixed salt, so components never
/// share a generator — adding draws to one component cannot shift
/// another's stream (or the kernel's response-noise stream).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EnvStream {
    /// Population drift windows, flash-crowd membership, mass-offline
    /// victim draws.
    Churn,
    /// Network-tier assignment.
    Net,
    /// Scripted/stochastic fault plans and abort-storm draws.
    Fault,
    /// Mid-round participant-drop decisions.
    Drop,
}

impl EnvStream {
    fn salt(self) -> u64 {
        match self {
            EnvStream::Churn => 0x43_48_55_52_4E, // "CHURN"
            EnvStream::Net => 0x4E_45_54,         // "NET"
            EnvStream::Fault => 0x46_41_55_4C_54, // "FAULT"
            EnvStream::Drop => 0x44_52_4F_50,     // "DROP"
        }
    }

    /// The stream's generator for a simulation seed.
    pub fn rng(self, seed: u64) -> StdRng {
        // SplitMix-style mix keeps nearby seeds from producing nearby
        // stream seeds; the salt separates the streams of one seed.
        StdRng::seed_from_u64(
            (seed ^ self.salt().wrapping_mul(0x9E37_79B9_7F4A_7C15))
                .wrapping_mul(0xFF51_AFD7_ED55_8CCD),
        )
    }
}

/// One extra availability session injected by a flash crowd.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EnvSession {
    /// Population index of the surging device.
    pub device: usize,
    /// Session start.
    pub start: SimTime,
    /// Session end.
    pub end: SimTime,
}

/// One scheduled environment disturbance, dispatched by the kernel as an
/// `EnvDisturbance` event at its compiled time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Disturbance {
    /// Each online device goes offline with probability `frac`.
    MassOffline {
        /// Per-device offline probability.
        frac: f64,
    },
    /// A scripted single-device failure.
    DeviceFail {
        /// Population index of the failing device.
        device: usize,
    },
    /// Each computing round aborts with probability `prob`.
    AbortStorm {
        /// Per-round abort probability.
        prob: f64,
    },
}

/// The environment of one run, compiled from an [`EnvConfig`] by
/// [`EnvConfig::compile`]. The kernel queries it (and lets it draw from
/// its own streams); it never mutates kernel state itself.
#[derive(Debug, Clone)]
pub struct EnvRuntime {
    /// Per-device tier index into `specs`.
    tiers: Vec<u8>,
    /// The tier table ([`DEFAULT_TIERS`] when the config declared none).
    specs: Vec<NetTier>,
    /// Per-device active windows `[join, leave)`; `None` when the config
    /// has no population drift.
    windows: Option<Vec<(SimTime, SimTime)>>,
    /// Flash-crowd sessions, in compile order.
    extra_sessions: Vec<EnvSession>,
    /// Time-ordered disturbance schedule.
    disturbances: Vec<(SimTime, Disturbance)>,
    /// Runtime stream for mass-offline victim draws.
    churn_rng: StdRng,
    /// Runtime stream for abort-storm draws.
    fault_rng: StdRng,
    /// Runtime stream for mid-round drop decisions.
    drop_rng: StdRng,
}

impl EnvConfig {
    /// Compiles the static per-run environment state: tier assignment,
    /// drift windows, flash-crowd sessions, and the disturbance
    /// schedule. Returns `None` when the environment is disabled — the
    /// kernel then takes its pre-environment path with zero overhead
    /// and zero extra draws.
    ///
    /// # Panics
    ///
    /// Panics if the config is invalid (see [`EnvConfig::validate`]).
    pub fn compile(&self, population: usize, horizon: SimTime, seed: u64) -> Option<EnvRuntime> {
        if !self.enabled {
            return None;
        }
        self.validate();

        let mut churn_rng = EnvStream::Churn.rng(seed);
        // Population drift: one class draw per device, then a uniform
        // join/leave instant for drifting devices.
        let windows = if self.join_frac + self.leave_frac > 0.0 {
            let mut w = vec![(0, SimTime::MAX); population];
            for win in w.iter_mut() {
                let u: f64 = churn_rng.gen();
                if u < self.join_frac {
                    win.0 = churn_rng.gen_range(0..horizon.max(1));
                } else if u < self.join_frac + self.leave_frac {
                    win.1 = churn_rng.gen_range(0..horizon.max(1)).max(1);
                }
            }
            Some(w)
        } else {
            None
        };
        // Flash crowds: membership, start jitter, and duration per
        // member, in (crowd, device) order.
        let mut extra_sessions = Vec::new();
        for crowd in self.flash_crowds {
            let at = (crowd.at_frac * horizon as f64) as SimTime;
            for device in 0..population {
                if churn_rng.gen::<f64>() >= crowd.frac {
                    continue;
                }
                let start = at + churn_rng.gen_range(0..10 * MINUTE_MS);
                let dur = (crowd.mean_dur_ms * (0.5 + churn_rng.gen::<f64>()))
                    .max(5.0 * MINUTE_MS as f64) as SimTime;
                extra_sessions.push(EnvSession {
                    device,
                    start,
                    end: start + dur,
                });
            }
        }

        // Tier assignment from the network stream (skipped entirely for
        // a single-tier table — no draws to make).
        let specs: Vec<NetTier> = if self.tiers.is_empty() {
            DEFAULT_TIERS.to_vec()
        } else {
            self.tiers.to_vec()
        };
        assert!(specs.len() <= u8::MAX as usize + 1, "too many tiers");
        let tiers = if specs.len() == 1 {
            vec![0u8; population]
        } else {
            let mut net_rng = EnvStream::Net.rng(seed);
            let total: f64 = specs.iter().map(|t| t.weight).sum();
            (0..population)
                .map(|_| {
                    let mut u = net_rng.gen::<f64>() * total;
                    let mut pick = specs.len() - 1;
                    for (i, t) in specs.iter().enumerate() {
                        if u < t.weight {
                            pick = i;
                            break;
                        }
                        u -= t.weight;
                    }
                    pick as u8
                })
                .collect()
        };

        // Disturbance schedule: mass-offline waves, scripted faults,
        // then storms; stable-sorted by time so same-time disturbances
        // keep this declaration order.
        let mut disturbances: Vec<(SimTime, Disturbance)> = Vec::new();
        for m in self.mass_offline {
            disturbances.push((
                (m.at_frac * horizon as f64) as SimTime,
                Disturbance::MassOffline { frac: m.frac },
            ));
        }
        for f in self.faults {
            disturbances.push((f.at_ms, Disturbance::DeviceFail { device: f.device }));
        }
        for s in self.abort_storms {
            disturbances.push((
                (s.at_frac * horizon as f64) as SimTime,
                Disturbance::AbortStorm { prob: s.prob },
            ));
        }
        disturbances.sort_by_key(|(t, _)| *t);

        Some(EnvRuntime {
            tiers,
            specs,
            windows,
            extra_sessions,
            disturbances,
            churn_rng,
            fault_rng: EnvStream::Fault.rng(seed),
            drop_rng: EnvStream::Drop.rng(seed),
        })
    }
}

impl EnvRuntime {
    /// Clips one availability session to the device's active window.
    /// `None` means the session falls entirely outside the window (the
    /// device had not joined yet, or has permanently left).
    pub fn clip_session(
        &self,
        device: usize,
        start: SimTime,
        end: SimTime,
    ) -> Option<(SimTime, SimTime)> {
        let Some(w) = &self.windows else {
            return Some((start, end));
        };
        let (lo, hi) = w[device];
        let s = start.max(lo);
        let e = end.min(hi);
        (s < e).then_some((s, e))
    }

    /// Flash-crowd sessions to inject at world construction.
    pub fn extra_sessions(&self) -> &[EnvSession] {
        &self.extra_sessions
    }

    /// The time-ordered disturbance schedule.
    pub fn disturbances(&self) -> &[(SimTime, Disturbance)] {
        &self.disturbances
    }

    /// The disturbance at schedule index `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of schedule bounds.
    pub fn disturbance(&self, idx: usize) -> Disturbance {
        self.disturbances[idx].1
    }

    /// Number of network tiers.
    pub fn tier_count(&self) -> usize {
        self.specs.len()
    }

    /// The tier index of a device.
    pub fn tier_of(&self, device: usize) -> usize {
        self.tiers[device] as usize
    }

    /// Stretches a response time by the device's tier multiplier.
    pub fn stretch(&self, device: usize, response_ms: u64) -> u64 {
        let mult = self.specs[self.tiers[device] as usize].response_mult;
        if mult == 1.0 {
            return response_ms;
        }
        ((response_ms as f64 * mult) as u64).max(1)
    }

    /// Decides whether an assigned participant drops mid-round, drawing
    /// from the drop stream. `Some(frac)` means it drops after `frac` of
    /// its would-be response time.
    pub fn sample_drop(&mut self, device: usize) -> Option<f64> {
        let p = self.specs[self.tiers[device] as usize].drop_prob;
        if p <= 0.0 {
            return None;
        }
        if self.drop_rng.gen::<f64>() < p {
            Some(self.drop_rng.gen::<f64>())
        } else {
            None
        }
    }

    /// Draws whether one online device is a victim of a mass-offline
    /// disturbance with per-device probability `frac` (churn stream).
    pub fn mass_offline_hits(&mut self, frac: f64) -> bool {
        self.churn_rng.gen::<f64>() < frac
    }

    /// Draws whether one computing round aborts in a storm with
    /// probability `prob` (fault stream).
    pub fn storm_hits(&mut self, prob: f64) -> bool {
        self.fault_rng.gen::<f64>() < prob
    }

    /// The raw states of the three runtime streams `(churn, fault,
    /// drop)` — the only parts of a compiled environment that advance
    /// during a run. Snapshots store these and re-derive everything else
    /// by recompiling the config.
    pub fn rng_states(&self) -> ([u64; 4], [u64; 4], [u64; 4]) {
        (
            self.churn_rng.state(),
            self.fault_rng.state(),
            self.drop_rng.state(),
        )
    }

    /// Overwrites the three runtime stream states (snapshot restore into
    /// a freshly recompiled environment).
    pub fn restore_rng_states(&mut self, churn: [u64; 4], fault: [u64; 4], drop: [u64; 4]) {
        self.churn_rng = StdRng::from_state(churn);
        self.fault_rng = StdRng::from_state(fault);
        self.drop_rng = StdRng::from_state(drop);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EnvPreset;
    use venn_core::DAY_MS;

    const HORIZON: SimTime = 5 * DAY_MS;

    #[test]
    fn off_compiles_to_none() {
        assert!(EnvConfig::off().compile(100, HORIZON, 1).is_none());
        assert!(EnvPreset::Off.config().compile(100, HORIZON, 1).is_none());
    }

    #[test]
    fn compilation_is_deterministic_per_seed() {
        let cfg = EnvPreset::Chaos.config();
        let a = cfg.compile(300, HORIZON, 7).unwrap();
        let b = cfg.compile(300, HORIZON, 7).unwrap();
        assert_eq!(a.tiers, b.tiers);
        assert_eq!(a.extra_sessions, b.extra_sessions);
        assert_eq!(a.disturbances.len(), b.disturbances.len());
        let c = cfg.compile(300, HORIZON, 8).unwrap();
        assert_ne!(
            a.extra_sessions, c.extra_sessions,
            "different seeds must produce different crowds"
        );
    }

    #[test]
    fn streams_are_independent() {
        // The four streams of one seed start from distinct states.
        let mut seen = Vec::new();
        for s in [
            EnvStream::Churn,
            EnvStream::Net,
            EnvStream::Fault,
            EnvStream::Drop,
        ] {
            let mut rng = s.rng(42);
            seen.push(rng.gen::<u64>());
        }
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), 4, "streams must not collide");
    }

    #[test]
    fn tier_assignment_tracks_weights() {
        let env = EnvPreset::StragglerHeavy
            .config()
            .compile(20_000, HORIZON, 3)
            .unwrap();
        assert_eq!(env.tier_count(), 4);
        let mut counts = [0usize; 4];
        for d in 0..20_000 {
            counts[env.tier_of(d)] += 1;
        }
        // Weights 0.20/0.45/0.25/0.10 within loose tolerance.
        for (count, expect) in counts.iter().zip([0.20, 0.45, 0.25, 0.10]) {
            let frac = *count as f64 / 20_000.0;
            assert!(
                (frac - expect).abs() < 0.03,
                "tier share {frac} vs expected {expect}"
            );
        }
    }

    #[test]
    fn stretch_and_drop_follow_tier_specs() {
        let mut env = EnvPreset::StragglerHeavy
            .config()
            .compile(5_000, HORIZON, 3)
            .unwrap();
        let slowest = (0..5_000).find(|&d| env.tier_of(d) == 3).unwrap();
        let fastest = (0..5_000).find(|&d| env.tier_of(d) == 0).unwrap();
        assert_eq!(env.stretch(fastest, 10_000), 10_000);
        assert_eq!(env.stretch(slowest, 10_000), 60_000);
        // Tier 0 never drops (no draw); tier 3 drops 12 % of the time.
        for _ in 0..100 {
            assert!(env.sample_drop(fastest).is_none());
        }
        let drops = (0..2_000)
            .filter(|_| env.sample_drop(slowest).is_some())
            .count();
        assert!((140..=340).contains(&drops), "tier-3 drops {drops}/2000");
    }

    #[test]
    fn drift_windows_clip_sessions() {
        let cfg = EnvConfig {
            enabled: true,
            join_frac: 0.5,
            leave_frac: 0.5,
            ..EnvConfig::off()
        };
        let env = cfg.compile(2_000, HORIZON, 9).unwrap();
        let mut clipped = 0;
        let mut dropped = 0;
        for d in 0..2_000 {
            match env.clip_session(d, 0, HORIZON) {
                Some((s, e)) => {
                    assert!(s < e);
                    if (s, e) != (0, HORIZON) {
                        clipped += 1;
                    }
                }
                None => dropped += 1,
            }
        }
        assert!(clipped > 0, "drift must clip some sessions");
        // Leave time 0 can drop a device outright; joiners/leavers
        // otherwise clip. Either way most devices drift here.
        assert!(clipped + dropped > 1_500);
    }

    #[test]
    fn disturbances_are_time_ordered_and_within_horizon() {
        let env = EnvPreset::MassDropout
            .config()
            .compile(100, HORIZON, 11)
            .unwrap();
        let times: Vec<SimTime> = env.disturbances().iter().map(|(t, _)| *t).collect();
        assert!(!times.is_empty());
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
        assert!(times.iter().all(|t| *t <= HORIZON));
    }

    #[test]
    fn flash_crowds_inject_sessions_after_their_time() {
        let env = EnvPreset::FlashCrowd
            .config()
            .compile(1_000, HORIZON, 13)
            .unwrap();
        let first_at = (0.1 * HORIZON as f64) as SimTime;
        assert!(
            env.extra_sessions().len() > 300,
            "two crowds over 1000 devices must surge hundreds of sessions: {}",
            env.extra_sessions().len()
        );
        for s in env.extra_sessions() {
            assert!(s.start >= first_at);
            assert!(s.end > s.start);
            assert!(s.device < 1_000);
        }
    }
}
