//! Baseline CL resource managers the paper compares Venn against (§5.1):
//!
//! * **Random matching** — what Apple/Meta/Google-style infrastructures
//!   effectively do. The paper strengthens it: instead of re-rolling per
//!   device, jobs are scheduled in a *randomized order*, which reduces
//!   round abortions under contention. Both flavours are available.
//! * **FIFO** — first-submitted job first.
//! * **SRSF** — shortest remaining service first, the strongest classical
//!   baseline (total remaining device-rounds, smallest first).
//!
//! All baselines share one engine, [`BaselineScheduler`], which implements
//! the same [`Scheduler`] trait as [`venn_core::VennScheduler`], so the
//! simulator can swap them freely.
//!
//! # Examples
//!
//! ```
//! use venn_baselines::BaselineScheduler;
//! use venn_core::{Capacity, DeviceId, DeviceInfo, JobId, Request, ResourceSpec, Scheduler};
//!
//! let mut srsf = BaselineScheduler::srsf();
//! srsf.submit(Request::new(JobId::new(1), ResourceSpec::any(), 4, 400), 0);
//! srsf.submit(Request::new(JobId::new(2), ResourceSpec::any(), 4, 8), 0);
//! let d = DeviceInfo::new(DeviceId::new(1), Capacity::new(0.5, 0.5));
//! // Job 2 has far less remaining service, so it is served first.
//! assert_eq!(srsf.assign(&d, 1), Some(JobId::new(2)));
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use venn_core::{
    DeviceInfo, JobId, JobIdIndex, JobSlot, Request, Scheduler, SimTime, SlotMap, SnapError,
    SnapReader, SnapWriter, Snapshot,
};

/// Scheduling policy of a [`BaselineScheduler`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Policy {
    /// Serve jobs in a per-job random order fixed at submission (the
    /// paper's optimized random baseline).
    RandomOrder,
    /// Pick uniformly among eligible jobs per device (naive random).
    RandomPerDevice,
    /// First submitted, first served.
    Fifo,
    /// Smallest total remaining service first.
    Srsf,
}

#[derive(Debug, Clone)]
struct Entry {
    request: Request,
    pending: u32,
    submit_time: SimTime,
    /// Random priority drawn at submission (RandomOrder policy).
    lottery: u64,
}

impl Snapshot for Entry {
    fn encode(&self, w: &mut SnapWriter) {
        self.request.encode(w);
        w.u32(self.pending);
        w.u64(self.submit_time);
        w.u64(self.lottery);
    }

    fn decode(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(Entry {
            request: Request::decode(r)?,
            pending: r.u32()?,
            submit_time: r.u64()?,
            lottery: r.u64()?,
        })
    }
}

/// One engine implementing all three baseline policies.
///
/// Like the Venn scheduler, the request table is part of the dense data
/// plane: entries live in a generation-checked [`SlotMap`] (freed slots are
/// reused across withdraw/resubmit churn), the external [`JobId`] space
/// crosses in through a direct-indexed [`JobIdIndex`], and the per-device
/// candidate walk works over a persistent active-slot list plus a reusable
/// sort buffer — no hashing and no allocation per `assign`.
///
/// Construct via [`BaselineScheduler::random_order`],
/// [`BaselineScheduler::random_per_device`], [`BaselineScheduler::fifo`], or
/// [`BaselineScheduler::srsf`].
#[derive(Debug)]
pub struct BaselineScheduler {
    policy: Policy,
    entries: SlotMap<Entry>,
    job_slots: JobIdIndex,
    /// Slots with an active request, in no particular order (the candidate
    /// sort's keys are total, so iteration order never shows).
    active: Vec<JobSlot>,
    /// Reused buffer for the per-device eligible-candidate sort.
    candidates: Vec<JobSlot>,
    rng: StdRng,
    name: &'static str,
}

impl BaselineScheduler {
    fn with_policy(policy: Policy, seed: u64, name: &'static str) -> Self {
        BaselineScheduler {
            policy,
            entries: SlotMap::new(),
            job_slots: JobIdIndex::new(),
            active: Vec::new(),
            candidates: Vec::new(),
            rng: StdRng::seed_from_u64(seed),
            name,
        }
    }

    /// The paper's optimized random baseline: jobs are served in a random
    /// but *fixed* order, re-drawn per request.
    pub fn random_order(seed: u64) -> Self {
        Self::with_policy(Policy::RandomOrder, seed, "random")
    }

    /// Naive random matching: each device picks uniformly among eligible
    /// jobs.
    pub fn random_per_device(seed: u64) -> Self {
        Self::with_policy(Policy::RandomPerDevice, seed, "random-per-device")
    }

    /// First-in-first-out job order.
    pub fn fifo() -> Self {
        Self::with_policy(Policy::Fifo, 0, "fifo")
    }

    /// Shortest remaining service first.
    pub fn srsf() -> Self {
        Self::with_policy(Policy::Srsf, 0, "srsf")
    }

    /// Number of jobs with an active request.
    pub fn active_jobs(&self) -> usize {
        self.active.len()
    }

    /// The policy's winning candidate for `device`, if any.
    ///
    /// Fills the persistent candidate buffer with the eligible active
    /// slots and orders it by the policy's key. Every key ends in the job
    /// id, so the order is total and independent of the active list's
    /// iteration order (exactly as the old hash-map walk, whose arbitrary
    /// order the same sort keys normalized).
    fn best_candidate(&mut self, device: &DeviceInfo) -> Option<JobSlot> {
        let entries = &self.entries;
        self.candidates.clear();
        self.candidates
            .extend(self.active.iter().copied().filter(|&slot| {
                let e = entries.get(slot).expect("active slot is live");
                e.pending > 0 && e.request.spec.is_eligible(device.capacity())
            }));
        if self.candidates.is_empty() {
            return None;
        }
        let key_of = |slot: JobSlot| {
            let e = entries.get(slot).expect("active slot is live");
            match self.policy {
                // Determinism before sampling.
                Policy::RandomPerDevice => (0, 0, e.request.job),
                Policy::RandomOrder => (e.lottery, 0, e.request.job),
                Policy::Fifo => (e.submit_time, 0, e.request.job),
                Policy::Srsf => (e.request.total_remaining, e.submit_time, e.request.job),
            }
        };
        match self.policy {
            Policy::RandomPerDevice => {
                self.candidates.sort_unstable_by_key(|&slot| key_of(slot));
                let pick = self.rng.gen_range(0..self.candidates.len());
                Some(self.candidates[pick])
            }
            // The winner is the key minimum — no need to order the rest.
            _ => self.candidates.iter().copied().min_by_key(|&s| key_of(s)),
        }
    }
}

impl Scheduler for BaselineScheduler {
    fn name(&self) -> &str {
        self.name
    }

    fn submit(&mut self, request: Request, now: SimTime) {
        let lottery = self.rng.gen();
        let entry = Entry {
            pending: request.demand,
            request,
            submit_time: now,
            lottery,
        };
        match self
            .job_slots
            .get(request.job)
            .filter(|&s| self.entries.contains(s))
        {
            // Resubmission before withdrawal replaces the request in place.
            Some(slot) => *self.entries.get_mut(slot).expect("slot is live") = entry,
            None => {
                let slot = self.entries.insert(entry);
                self.job_slots.set(request.job, slot);
                self.active.push(slot);
            }
        }
    }

    fn withdraw(&mut self, job: JobId, _now: SimTime) {
        let Some(slot) = self.job_slots.get(job) else {
            return;
        };
        if self.entries.remove(slot).is_some() {
            self.job_slots.clear(job);
            let pos = self
                .active
                .iter()
                .position(|&s| s == slot)
                .expect("live entry was active");
            self.active.swap_remove(pos);
        }
    }

    fn add_demand(&mut self, job: JobId, count: u32, _now: SimTime) {
        let Some(slot) = self.job_slots.get(job) else {
            return;
        };
        if let Some(e) = self.entries.get_mut(slot) {
            e.pending = e.pending.saturating_add(count);
        }
    }

    fn assign(&mut self, device: &DeviceInfo, _now: SimTime) -> Option<JobId> {
        let slot = self.best_candidate(device)?;
        let e = self.entries.get_mut(slot).expect("candidate exists");
        e.pending -= 1;
        Some(e.request.job)
    }

    fn pending_demand(&self, job: JobId) -> Option<u32> {
        self.entries
            .get(self.job_slots.get(job)?)
            .map(|e| e.pending)
    }

    fn has_open_demand(&self) -> bool {
        !self.active.is_empty()
    }

    fn observes_check_ins(&self) -> bool {
        // Baselines ignore check-in observations (`on_check_in` keeps its
        // default no-op body), so gated check-ins need no replay.
        false
    }

    fn save_state(&self, w: &mut SnapWriter) -> Result<(), SnapError> {
        // Name validates the policy arm on restore.
        w.str(self.name);
        self.entries.encode(w);
        self.job_slots.encode(w);
        w.seq(&self.active, |w, s| s.encode(w));
        self.rng.encode(w);
        Ok(())
    }

    fn load_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        let name = r.str()?;
        if name != self.name {
            return Err(SnapError::Corrupt(format!(
                "scheduler mismatch: snapshot is {name:?}, this scheduler is {:?}",
                self.name
            )));
        }
        self.entries = SlotMap::decode(r)?;
        self.job_slots = JobIdIndex::decode(r)?;
        self.active = r.seq(JobSlot::decode)?;
        self.rng = StdRng::decode(r)?;
        self.candidates.clear();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use venn_core::{Capacity, DeviceId, ResourceSpec};

    fn dev(id: u64) -> DeviceInfo {
        DeviceInfo::new(DeviceId::new(id), Capacity::new(0.5, 0.5))
    }

    fn req(job: u64, demand: u32, total: u64) -> Request {
        Request::new(JobId::new(job), ResourceSpec::any(), demand, total)
    }

    #[test]
    fn fifo_serves_in_submission_order() {
        let mut s = BaselineScheduler::fifo();
        s.submit(req(1, 1, 100), 0);
        s.submit(req(2, 1, 1), 5);
        assert_eq!(s.assign(&dev(1), 6), Some(JobId::new(1)));
        assert_eq!(s.assign(&dev(2), 6), Some(JobId::new(2)));
    }

    #[test]
    fn srsf_serves_smallest_remaining_service() {
        let mut s = BaselineScheduler::srsf();
        s.submit(req(1, 1, 100), 0);
        s.submit(req(2, 1, 1), 5);
        assert_eq!(s.assign(&dev(1), 6), Some(JobId::new(2)));
    }

    #[test]
    fn random_order_is_fixed_within_request() {
        let mut s = BaselineScheduler::random_order(42);
        s.submit(req(1, 5, 5), 0);
        s.submit(req(2, 5, 5), 0);
        let first = s.assign(&dev(1), 1).unwrap();
        // The same job keeps winning until its demand is exhausted.
        for i in 2..=5 {
            assert_eq!(s.assign(&dev(i), 1), Some(first));
        }
        let other = s.assign(&dev(6), 1).unwrap();
        assert_ne!(other, first);
    }

    #[test]
    fn random_per_device_spreads_assignments() {
        let mut s = BaselineScheduler::random_per_device(7);
        s.submit(req(1, 100, 100), 0);
        s.submit(req(2, 100, 100), 0);
        let mut seen = std::collections::HashSet::new();
        for i in 0..50 {
            seen.insert(s.assign(&dev(i), 1).unwrap());
        }
        assert_eq!(seen.len(), 2, "both jobs should receive devices");
    }

    #[test]
    fn ineligible_devices_are_rejected() {
        let mut s = BaselineScheduler::fifo();
        s.submit(
            Request::new(JobId::new(1), ResourceSpec::new(0.9, 0.9), 1, 1),
            0,
        );
        assert_eq!(s.assign(&dev(1), 1), None);
    }

    #[test]
    fn demand_is_decremented_and_restored() {
        let mut s = BaselineScheduler::fifo();
        s.submit(req(1, 1, 1), 0);
        assert_eq!(s.assign(&dev(1), 1), Some(JobId::new(1)));
        assert_eq!(s.assign(&dev(2), 1), None);
        s.add_demand(JobId::new(1), 1, 2);
        assert_eq!(s.pending_demand(JobId::new(1)), Some(1));
        assert_eq!(s.assign(&dev(3), 2), Some(JobId::new(1)));
    }

    #[test]
    fn withdraw_removes_request() {
        let mut s = BaselineScheduler::srsf();
        s.submit(req(1, 5, 5), 0);
        assert_eq!(s.active_jobs(), 1);
        s.withdraw(JobId::new(1), 1);
        assert_eq!(s.active_jobs(), 0);
        assert_eq!(s.assign(&dev(1), 2), None);
        assert_eq!(s.pending_demand(JobId::new(1)), None);
    }

    #[test]
    fn unknown_job_operations_are_harmless() {
        let mut s = BaselineScheduler::fifo();
        s.withdraw(JobId::new(9), 0);
        s.add_demand(JobId::new(9), 2, 0);
        assert_eq!(s.pending_demand(JobId::new(9)), None);
    }

    #[test]
    fn resubmission_redraws_lottery_deterministically() {
        let mut a = BaselineScheduler::random_order(1);
        let mut b = BaselineScheduler::random_order(1);
        for s in [&mut a, &mut b] {
            s.submit(req(1, 1, 1), 0);
            s.submit(req(2, 1, 1), 0);
        }
        assert_eq!(a.assign(&dev(1), 1), b.assign(&dev(1), 1));
    }

    #[test]
    fn snapshot_round_trip_continues_bit_identically() {
        let builders: [fn() -> BaselineScheduler; 4] = [
            || BaselineScheduler::random_order(11),
            || BaselineScheduler::random_per_device(11),
            BaselineScheduler::fifo,
            BaselineScheduler::srsf,
        ];
        for build in builders {
            let mut s = build();
            for j in 0..5u64 {
                s.submit(req(j, 3, 6 + j), j * 10);
            }
            for i in 0..7u64 {
                s.assign(&dev(i), 100 + i);
            }
            s.withdraw(JobId::new(2), 200);

            let mut w = SnapWriter::new();
            s.save_state(&mut w).unwrap();
            let bytes = w.into_bytes();
            let mut restored = build();
            let mut r = SnapReader::new(&bytes);
            restored.load_state(&mut r).unwrap();
            r.finish().unwrap();

            for i in 0..30u64 {
                let t = 300 + i * 5;
                assert_eq!(s.assign(&dev(50 + i), t), restored.assign(&dev(50 + i), t));
                if i % 7 == 0 {
                    let j = JobId::new(i % 5);
                    s.withdraw(j, t);
                    restored.withdraw(j, t);
                    s.submit(req(j.as_u64(), 2, 4), t);
                    restored.submit(req(j.as_u64(), 2, 4), t);
                }
            }
        }
    }

    #[test]
    fn snapshot_rejects_wrong_policy() {
        let s = BaselineScheduler::fifo();
        let mut w = SnapWriter::new();
        s.save_state(&mut w).unwrap();
        let bytes = w.into_bytes();
        let mut other = BaselineScheduler::srsf();
        let mut r = SnapReader::new(&bytes);
        assert!(matches!(
            other.load_state(&mut r),
            Err(SnapError::Corrupt(_))
        ));
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(BaselineScheduler::fifo().name(), "fifo");
        assert_eq!(BaselineScheduler::srsf().name(), "srsf");
        assert_eq!(BaselineScheduler::random_order(0).name(), "random");
        assert_eq!(
            BaselineScheduler::random_per_device(0).name(),
            "random-per-device"
        );
    }
}
