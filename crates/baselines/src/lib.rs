//! Baseline CL resource managers the paper compares Venn against (§5.1):
//!
//! * **Random matching** — what Apple/Meta/Google-style infrastructures
//!   effectively do. The paper strengthens it: instead of re-rolling per
//!   device, jobs are scheduled in a *randomized order*, which reduces
//!   round abortions under contention. Both flavours are available.
//! * **FIFO** — first-submitted job first.
//! * **SRSF** — shortest remaining service first, the strongest classical
//!   baseline (total remaining device-rounds, smallest first).
//!
//! All baselines share one engine, [`BaselineScheduler`], which implements
//! the same [`Scheduler`] trait as [`venn_core::VennScheduler`], so the
//! simulator can swap them freely.
//!
//! # Examples
//!
//! ```
//! use venn_baselines::BaselineScheduler;
//! use venn_core::{Capacity, DeviceId, DeviceInfo, JobId, Request, ResourceSpec, Scheduler};
//!
//! let mut srsf = BaselineScheduler::srsf();
//! srsf.submit(Request::new(JobId::new(1), ResourceSpec::any(), 4, 400), 0);
//! srsf.submit(Request::new(JobId::new(2), ResourceSpec::any(), 4, 8), 0);
//! let d = DeviceInfo::new(DeviceId::new(1), Capacity::new(0.5, 0.5));
//! // Job 2 has far less remaining service, so it is served first.
//! assert_eq!(srsf.assign(&d, 1), Some(JobId::new(2)));
//! ```

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use venn_core::{DeviceInfo, JobId, Request, Scheduler, SimTime};

/// Scheduling policy of a [`BaselineScheduler`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Policy {
    /// Serve jobs in a per-job random order fixed at submission (the
    /// paper's optimized random baseline).
    RandomOrder,
    /// Pick uniformly among eligible jobs per device (naive random).
    RandomPerDevice,
    /// First submitted, first served.
    Fifo,
    /// Smallest total remaining service first.
    Srsf,
}

#[derive(Debug, Clone)]
struct Entry {
    request: Request,
    pending: u32,
    submit_time: SimTime,
    /// Random priority drawn at submission (RandomOrder policy).
    lottery: u64,
}

/// One engine implementing all three baseline policies.
///
/// Construct via [`BaselineScheduler::random_order`],
/// [`BaselineScheduler::random_per_device`], [`BaselineScheduler::fifo`], or
/// [`BaselineScheduler::srsf`].
#[derive(Debug)]
pub struct BaselineScheduler {
    policy: Policy,
    entries: HashMap<JobId, Entry>,
    rng: StdRng,
    name: &'static str,
}

impl BaselineScheduler {
    fn with_policy(policy: Policy, seed: u64, name: &'static str) -> Self {
        BaselineScheduler {
            policy,
            entries: HashMap::new(),
            rng: StdRng::seed_from_u64(seed),
            name,
        }
    }

    /// The paper's optimized random baseline: jobs are served in a random
    /// but *fixed* order, re-drawn per request.
    pub fn random_order(seed: u64) -> Self {
        Self::with_policy(Policy::RandomOrder, seed, "random")
    }

    /// Naive random matching: each device picks uniformly among eligible
    /// jobs.
    pub fn random_per_device(seed: u64) -> Self {
        Self::with_policy(Policy::RandomPerDevice, seed, "random-per-device")
    }

    /// First-in-first-out job order.
    pub fn fifo() -> Self {
        Self::with_policy(Policy::Fifo, 0, "fifo")
    }

    /// Shortest remaining service first.
    pub fn srsf() -> Self {
        Self::with_policy(Policy::Srsf, 0, "srsf")
    }

    /// Number of jobs with an active request.
    pub fn active_jobs(&self) -> usize {
        self.entries.len()
    }

    /// Candidate jobs for `device` ordered by the policy.
    fn ordered_candidates(&mut self, device: &DeviceInfo) -> Vec<JobId> {
        let mut eligible: Vec<(&JobId, &Entry)> = self
            .entries
            .iter()
            .filter(|(_, e)| e.pending > 0 && e.request.spec.is_eligible(device.capacity()))
            .collect();
        match self.policy {
            Policy::RandomPerDevice => {
                if eligible.is_empty() {
                    return Vec::new();
                }
                eligible.sort_by_key(|(id, _)| **id); // determinism before sampling
                let pick = self.rng.gen_range(0..eligible.len());
                return vec![*eligible[pick].0];
            }
            Policy::RandomOrder => {
                eligible.sort_by_key(|(id, e)| (e.lottery, **id));
            }
            Policy::Fifo => {
                eligible.sort_by_key(|(id, e)| (e.submit_time, **id));
            }
            Policy::Srsf => {
                eligible.sort_by_key(|(id, e)| (e.request.total_remaining, e.submit_time, **id));
            }
        }
        eligible.into_iter().map(|(id, _)| *id).collect()
    }
}

impl Scheduler for BaselineScheduler {
    fn name(&self) -> &str {
        self.name
    }

    fn submit(&mut self, request: Request, now: SimTime) {
        let lottery = self.rng.gen();
        self.entries.insert(
            request.job,
            Entry {
                pending: request.demand,
                request,
                submit_time: now,
                lottery,
            },
        );
    }

    fn withdraw(&mut self, job: JobId, _now: SimTime) {
        self.entries.remove(&job);
    }

    fn add_demand(&mut self, job: JobId, count: u32, _now: SimTime) {
        if let Some(e) = self.entries.get_mut(&job) {
            e.pending = e.pending.saturating_add(count);
        }
    }

    fn assign(&mut self, device: &DeviceInfo, _now: SimTime) -> Option<JobId> {
        let id = self.ordered_candidates(device).into_iter().next()?;
        let e = self.entries.get_mut(&id).expect("candidate exists");
        e.pending -= 1;
        Some(id)
    }

    fn pending_demand(&self, job: JobId) -> Option<u32> {
        self.entries.get(&job).map(|e| e.pending)
    }

    fn has_open_demand(&self) -> bool {
        !self.entries.is_empty()
    }

    fn observes_check_ins(&self) -> bool {
        // Baselines ignore check-in observations (`on_check_in` keeps its
        // default no-op body), so gated check-ins need no replay.
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use venn_core::{Capacity, DeviceId, ResourceSpec};

    fn dev(id: u64) -> DeviceInfo {
        DeviceInfo::new(DeviceId::new(id), Capacity::new(0.5, 0.5))
    }

    fn req(job: u64, demand: u32, total: u64) -> Request {
        Request::new(JobId::new(job), ResourceSpec::any(), demand, total)
    }

    #[test]
    fn fifo_serves_in_submission_order() {
        let mut s = BaselineScheduler::fifo();
        s.submit(req(1, 1, 100), 0);
        s.submit(req(2, 1, 1), 5);
        assert_eq!(s.assign(&dev(1), 6), Some(JobId::new(1)));
        assert_eq!(s.assign(&dev(2), 6), Some(JobId::new(2)));
    }

    #[test]
    fn srsf_serves_smallest_remaining_service() {
        let mut s = BaselineScheduler::srsf();
        s.submit(req(1, 1, 100), 0);
        s.submit(req(2, 1, 1), 5);
        assert_eq!(s.assign(&dev(1), 6), Some(JobId::new(2)));
    }

    #[test]
    fn random_order_is_fixed_within_request() {
        let mut s = BaselineScheduler::random_order(42);
        s.submit(req(1, 5, 5), 0);
        s.submit(req(2, 5, 5), 0);
        let first = s.assign(&dev(1), 1).unwrap();
        // The same job keeps winning until its demand is exhausted.
        for i in 2..=5 {
            assert_eq!(s.assign(&dev(i), 1), Some(first));
        }
        let other = s.assign(&dev(6), 1).unwrap();
        assert_ne!(other, first);
    }

    #[test]
    fn random_per_device_spreads_assignments() {
        let mut s = BaselineScheduler::random_per_device(7);
        s.submit(req(1, 100, 100), 0);
        s.submit(req(2, 100, 100), 0);
        let mut seen = std::collections::HashSet::new();
        for i in 0..50 {
            seen.insert(s.assign(&dev(i), 1).unwrap());
        }
        assert_eq!(seen.len(), 2, "both jobs should receive devices");
    }

    #[test]
    fn ineligible_devices_are_rejected() {
        let mut s = BaselineScheduler::fifo();
        s.submit(
            Request::new(JobId::new(1), ResourceSpec::new(0.9, 0.9), 1, 1),
            0,
        );
        assert_eq!(s.assign(&dev(1), 1), None);
    }

    #[test]
    fn demand_is_decremented_and_restored() {
        let mut s = BaselineScheduler::fifo();
        s.submit(req(1, 1, 1), 0);
        assert_eq!(s.assign(&dev(1), 1), Some(JobId::new(1)));
        assert_eq!(s.assign(&dev(2), 1), None);
        s.add_demand(JobId::new(1), 1, 2);
        assert_eq!(s.pending_demand(JobId::new(1)), Some(1));
        assert_eq!(s.assign(&dev(3), 2), Some(JobId::new(1)));
    }

    #[test]
    fn withdraw_removes_request() {
        let mut s = BaselineScheduler::srsf();
        s.submit(req(1, 5, 5), 0);
        assert_eq!(s.active_jobs(), 1);
        s.withdraw(JobId::new(1), 1);
        assert_eq!(s.active_jobs(), 0);
        assert_eq!(s.assign(&dev(1), 2), None);
        assert_eq!(s.pending_demand(JobId::new(1)), None);
    }

    #[test]
    fn unknown_job_operations_are_harmless() {
        let mut s = BaselineScheduler::fifo();
        s.withdraw(JobId::new(9), 0);
        s.add_demand(JobId::new(9), 2, 0);
        assert_eq!(s.pending_demand(JobId::new(9)), None);
    }

    #[test]
    fn resubmission_redraws_lottery_deterministically() {
        let mut a = BaselineScheduler::random_order(1);
        let mut b = BaselineScheduler::random_order(1);
        for s in [&mut a, &mut b] {
            s.submit(req(1, 1, 1), 0);
            s.submit(req(2, 1, 1), 0);
        }
        assert_eq!(a.assign(&dev(1), 1), b.assign(&dev(1), 1));
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(BaselineScheduler::fifo().name(), "fifo");
        assert_eq!(BaselineScheduler::srsf().name(), "srsf");
        assert_eq!(BaselineScheduler::random_order(0).name(), "random");
        assert_eq!(
            BaselineScheduler::random_per_device(0).name(),
            "random-per-device"
        );
    }
}
