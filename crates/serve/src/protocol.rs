//! The serve command protocol: typed commands, typed errors, and the
//! canonical journal form.
//!
//! # Grammar
//!
//! One JSON object per line, dispatched on its `"cmd"` field:
//!
//! ```text
//! {"cmd":"submit","category":"general|compute|memory|resource",
//!  "rounds":N,"demand":N,"task_ms":N[,"arrival_ms":VT]}
//! {"cmd":"withdraw","job":N}
//! {"cmd":"query-job","job":N}
//! {"cmd":"stats"}
//! {"cmd":"advance","ms":N}
//! {"cmd":"subscribe","every_ms":N}
//! {"cmd":"unsubscribe"}
//! {"cmd":"checkpoint","path":"FILE.vsnp"}
//! {"cmd":"save-workload","path":"FILE.tsv"}
//! {"cmd":"fork","scheduler":"venn|random|random-per-device|fifo|srsf"
//!  [,"epsilon":F][,"tiers":N][,"csv":"FILE.csv"]}
//! {"cmd":"quit"}
//! ```
//!
//! A command may carry a `"vt"` field (ignored on parse): journal lines
//! are commands re-serialized in **canonical form** — `vt` first, then
//! `cmd`, then arguments in the fixed order above, compact, no
//! whitespace — so a journal replayed through the same session code
//! regenerates itself byte for byte.

use venn_core::SpecCategory;

use crate::json::{obj, parse, Value};

/// Why a command line was rejected. The code string is part of the wire
/// protocol (`error.code`); the message is free-form diagnostics.
#[derive(Debug, Clone, PartialEq)]
pub struct CmdError {
    /// Stable machine-readable code.
    pub code: &'static str,
    /// Human-readable detail.
    pub msg: String,
}

impl CmdError {
    /// Unparseable JSON.
    pub fn bad_json(msg: impl Into<String>) -> Self {
        CmdError {
            code: "bad-json",
            msg: msg.into(),
        }
    }

    /// Well-formed JSON, unknown `cmd`.
    pub fn unknown_cmd(msg: impl Into<String>) -> Self {
        CmdError {
            code: "unknown-cmd",
            msg: msg.into(),
        }
    }

    /// Well-formed command, malformed argument (missing, wrong type,
    /// negative where a count is needed, unknown enum value).
    pub fn bad_arg(msg: impl Into<String>) -> Self {
        CmdError {
            code: "bad-arg",
            msg: msg.into(),
        }
    }

    /// The referenced job does not exist or is already terminal.
    pub fn unknown_job(msg: impl Into<String>) -> Self {
        CmdError {
            code: "unknown-job",
            msg: msg.into(),
        }
    }

    /// A time argument lands before the current virtual time.
    pub fn past_time(msg: impl Into<String>) -> Self {
        CmdError {
            code: "past-time",
            msg: msg.into(),
        }
    }

    /// A command arrived after `quit`.
    pub fn after_quit() -> Self {
        CmdError {
            code: "after-quit",
            msg: "session already quit".into(),
        }
    }

    /// A filesystem side effect failed.
    pub fn io(msg: impl Into<String>) -> Self {
        CmdError {
            code: "io",
            msg: msg.into(),
        }
    }

    /// Snapshot capture or restore failed.
    pub fn snapshot(msg: impl Into<String>) -> Self {
        CmdError {
            code: "snapshot",
            msg: msg.into(),
        }
    }

    /// A client's outbound frame queue overflowed; the connection is
    /// about to be closed. This error is the *last* line the client sees.
    pub fn backpressure(msg: impl Into<String>) -> Self {
        CmdError {
            code: "backpressure",
            msg: msg.into(),
        }
    }

    /// A client sent a line longer than the protocol bound; the
    /// oversized line is discarded without being parsed.
    pub fn line_too_long(msg: impl Into<String>) -> Self {
        CmdError {
            code: "line-too-long",
            msg: msg.into(),
        }
    }

    /// The error as a one-line JSON response.
    pub fn to_response(&self, vt: u64) -> String {
        obj(vec![
            ("vt", Value::Int(vt as i64)),
            ("ok", Value::Bool(false)),
            (
                "error",
                obj(vec![
                    ("code", Value::Str(self.code.into())),
                    ("msg", Value::Str(self.msg.clone())),
                ]),
            ),
        ])
        .to_json()
    }
}

/// A parsed, validated protocol command.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Submit a job mid-run. `arrival_ms` is absolute virtual time;
    /// `None` means "now".
    Submit {
        category: SpecCategory,
        rounds: u32,
        demand: u32,
        task_ms: u64,
        arrival_ms: Option<u64>,
    },
    /// Withdraw a live job.
    Withdraw { job: usize },
    /// Query one job's runtime state.
    QueryJob { job: usize },
    /// Capture a metrics frame.
    Stats,
    /// Advance virtual time by `ms`, dispatching due events.
    Advance { ms: u64 },
    /// Stream a metrics frame every `every_ms` of virtual time.
    Subscribe { every_ms: u64 },
    /// Stop streaming frames.
    Unsubscribe,
    /// Write a sealed checkpoint of the live world.
    Checkpoint { path: String },
    /// Write the session's current workload (including live submissions)
    /// as TSV — what an offline run needs to resume or fork this session.
    SaveWorkload { path: String },
    /// What-if fork: snapshot the live world, run it to completion under
    /// this scheduler arm AND under the current one, report the diff.
    Fork {
        scheduler: String,
        epsilon: f64,
        tiers: usize,
        csv: Option<String>,
    },
    /// End the session.
    Quit,
}

fn category_of(name: &str) -> Option<SpecCategory> {
    Some(match name {
        "general" => SpecCategory::General,
        "compute" => SpecCategory::ComputeRich,
        "memory" => SpecCategory::MemoryRich,
        "resource" => SpecCategory::HighPerf,
        _ => return None,
    })
}

fn category_name(c: SpecCategory) -> &'static str {
    match c {
        SpecCategory::General => "general",
        SpecCategory::ComputeRich => "compute",
        SpecCategory::MemoryRich => "memory",
        SpecCategory::HighPerf => "resource",
    }
}

/// Extracts a required non-negative integer field, with `past-time` for
/// negative time-like fields and `bad-arg` for everything else wrong.
fn req_u64(v: &Value, key: &str, time_like: bool) -> Result<u64, CmdError> {
    match v.get(key) {
        None => Err(CmdError::bad_arg(format!("missing {key:?}"))),
        Some(f) => match f.as_u64() {
            Some(n) => Ok(n),
            None => match (time_like, f.as_i64()) {
                (true, Some(n)) if n < 0 => {
                    Err(CmdError::past_time(format!("{key} {n} is negative")))
                }
                _ => Err(CmdError::bad_arg(format!(
                    "{key} must be a non-negative integer, got {}",
                    f.to_json()
                ))),
            },
        },
    }
}

fn req_str<'v>(v: &'v Value, key: &str) -> Result<&'v str, CmdError> {
    v.get(key)
        .ok_or_else(|| CmdError::bad_arg(format!("missing {key:?}")))?
        .as_str()
        .ok_or_else(|| CmdError::bad_arg(format!("{key} must be a string")))
}

impl Command {
    /// Parses one protocol line. A `"vt"` field is tolerated (journals
    /// carry it) but not interpreted here — the session checks it.
    pub fn parse_line(line: &str) -> Result<Command, CmdError> {
        let v = parse(line).map_err(CmdError::bad_json)?;
        if !matches!(v, Value::Object(_)) {
            return Err(CmdError::bad_json("command must be a JSON object"));
        }
        let cmd = req_str(&v, "cmd")
            .map_err(|_| CmdError::unknown_cmd("missing \"cmd\" field"))?
            .to_string();
        match cmd.as_str() {
            "submit" => {
                let category = req_str(&v, "category").and_then(|name| {
                    category_of(name).ok_or_else(|| {
                        CmdError::bad_arg(format!(
                            "unknown category {name:?} (expected general|compute|memory|resource)"
                        ))
                    })
                })?;
                let rounds = req_u64(&v, "rounds", false)?;
                let demand = req_u64(&v, "demand", false)?;
                let task_ms = req_u64(&v, "task_ms", false)?;
                if rounds == 0 || rounds > u32::MAX as u64 {
                    return Err(CmdError::bad_arg(format!("rounds {rounds} out of range")));
                }
                if demand == 0 || demand > u32::MAX as u64 {
                    return Err(CmdError::bad_arg(format!("demand {demand} out of range")));
                }
                if task_ms == 0 {
                    return Err(CmdError::bad_arg("task_ms must be positive"));
                }
                let arrival_ms = match v.get("arrival_ms") {
                    None => None,
                    Some(_) => Some(req_u64(&v, "arrival_ms", true)?),
                };
                Ok(Command::Submit {
                    category,
                    rounds: rounds as u32,
                    demand: demand as u32,
                    task_ms,
                    arrival_ms,
                })
            }
            "withdraw" => Ok(Command::Withdraw {
                job: req_u64(&v, "job", false)? as usize,
            }),
            "query-job" => Ok(Command::QueryJob {
                job: req_u64(&v, "job", false)? as usize,
            }),
            "stats" => Ok(Command::Stats),
            "advance" => {
                let ms = req_u64(&v, "ms", true)?;
                Ok(Command::Advance { ms })
            }
            "subscribe" => {
                let every_ms = req_u64(&v, "every_ms", false)?;
                if every_ms == 0 {
                    return Err(CmdError::bad_arg("every_ms must be positive"));
                }
                Ok(Command::Subscribe { every_ms })
            }
            "unsubscribe" => Ok(Command::Unsubscribe),
            "checkpoint" => Ok(Command::Checkpoint {
                path: req_str(&v, "path")?.to_string(),
            }),
            "save-workload" => Ok(Command::SaveWorkload {
                path: req_str(&v, "path")?.to_string(),
            }),
            "fork" => {
                let scheduler = req_str(&v, "scheduler")?.to_string();
                let epsilon = match v.get("epsilon") {
                    None => 0.0,
                    Some(f) => f
                        .as_f64()
                        .ok_or_else(|| CmdError::bad_arg("epsilon must be a number"))?,
                };
                let tiers = match v.get("tiers") {
                    None => 3,
                    Some(_) => req_u64(&v, "tiers", false)? as usize,
                };
                let csv = match v.get("csv") {
                    None => None,
                    Some(_) => Some(req_str(&v, "csv")?.to_string()),
                };
                Ok(Command::Fork {
                    scheduler,
                    epsilon,
                    tiers,
                    csv,
                })
            }
            "quit" => Ok(Command::Quit),
            other => Err(CmdError::unknown_cmd(format!("unknown cmd {other:?}"))),
        }
    }

    /// The journal vt-check: the `"vt"` stamp a journal line carries, if
    /// any. Live input has none; replayed journals always do.
    pub fn stamped_vt(line: &str) -> Option<u64> {
        parse(line).ok()?.get("vt")?.as_u64()
    }

    /// Canonical journal form: `vt` first, then `cmd`, then arguments in
    /// the grammar's order, compact. Re-serializing a parsed journal line
    /// reproduces it exactly.
    pub fn canonical(&self, vt: u64) -> String {
        let mut fields: Vec<(&str, Value)> = vec![("vt", Value::Int(vt as i64))];
        match self {
            Command::Submit {
                category,
                rounds,
                demand,
                task_ms,
                arrival_ms,
            } => {
                fields.push(("cmd", Value::Str("submit".into())));
                fields.push(("category", Value::Str(category_name(*category).into())));
                fields.push(("rounds", Value::Int(*rounds as i64)));
                fields.push(("demand", Value::Int(*demand as i64)));
                fields.push(("task_ms", Value::Int(*task_ms as i64)));
                if let Some(at) = arrival_ms {
                    fields.push(("arrival_ms", Value::Int(*at as i64)));
                }
            }
            Command::Withdraw { job } => {
                fields.push(("cmd", Value::Str("withdraw".into())));
                fields.push(("job", Value::Int(*job as i64)));
            }
            Command::QueryJob { job } => {
                fields.push(("cmd", Value::Str("query-job".into())));
                fields.push(("job", Value::Int(*job as i64)));
            }
            Command::Stats => fields.push(("cmd", Value::Str("stats".into()))),
            Command::Advance { ms } => {
                fields.push(("cmd", Value::Str("advance".into())));
                fields.push(("ms", Value::Int(*ms as i64)));
            }
            Command::Subscribe { every_ms } => {
                fields.push(("cmd", Value::Str("subscribe".into())));
                fields.push(("every_ms", Value::Int(*every_ms as i64)));
            }
            Command::Unsubscribe => fields.push(("cmd", Value::Str("unsubscribe".into()))),
            Command::Checkpoint { path } => {
                fields.push(("cmd", Value::Str("checkpoint".into())));
                fields.push(("path", Value::Str(path.clone())));
            }
            Command::SaveWorkload { path } => {
                fields.push(("cmd", Value::Str("save-workload".into())));
                fields.push(("path", Value::Str(path.clone())));
            }
            Command::Fork {
                scheduler,
                epsilon,
                tiers,
                csv,
            } => {
                fields.push(("cmd", Value::Str("fork".into())));
                fields.push(("scheduler", Value::Str(scheduler.clone())));
                fields.push(("epsilon", Value::Float(*epsilon)));
                fields.push(("tiers", Value::Int(*tiers as i64)));
                if let Some(path) = csv {
                    fields.push(("csv", Value::Str(path.clone())));
                }
            }
            Command::Quit => fields.push(("cmd", Value::Str("quit".into()))),
        }
        obj(fields).to_json()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_each_command() {
        let cases = [
            (
                r#"{"cmd":"submit","category":"compute","rounds":3,"demand":5,"task_ms":1000}"#,
                Command::Submit {
                    category: SpecCategory::ComputeRich,
                    rounds: 3,
                    demand: 5,
                    task_ms: 1000,
                    arrival_ms: None,
                },
            ),
            (
                r#"{"cmd":"withdraw","job":2}"#,
                Command::Withdraw { job: 2 },
            ),
            (r#"{"cmd":"stats"}"#, Command::Stats),
            (
                r#"{"cmd":"advance","ms":60000}"#,
                Command::Advance { ms: 60_000 },
            ),
            (r#"{"cmd":"quit"}"#, Command::Quit),
        ];
        for (line, want) in cases {
            assert_eq!(Command::parse_line(line).unwrap(), want, "{line}");
        }
    }

    #[test]
    fn canonical_form_is_a_fixed_point() {
        // A journal line re-parsed and re-serialized at the same vt must
        // reproduce itself — the property byte-identical replay rests on.
        let lines = [
            r#"{"vt":0,"cmd":"submit","category":"general","rounds":2,"demand":3,"task_ms":500,"arrival_ms":7}"#,
            r#"{"vt":9,"cmd":"advance","ms":100}"#,
            r#"{"vt":9,"cmd":"fork","scheduler":"fifo","epsilon":0.25,"tiers":3}"#,
            r#"{"vt":3,"cmd":"save-workload","path":"w.tsv"}"#,
        ];
        for line in lines {
            let vt = Command::stamped_vt(line).unwrap();
            let cmd = Command::parse_line(line).unwrap();
            assert_eq!(cmd.canonical(vt), line);
        }
    }

    #[test]
    fn typed_errors_for_malformed_lines() {
        let cases = [
            ("{not json", "bad-json"),
            ("[1,2]", "bad-json"),
            (r#"{"cmd":"warp"}"#, "unknown-cmd"),
            (r#"{"nocmd":1}"#, "unknown-cmd"),
            (r#"{"cmd":"advance"}"#, "bad-arg"),
            (r#"{"cmd":"advance","ms":-5}"#, "past-time"),
            (r#"{"cmd":"advance","ms":1.5}"#, "bad-arg"),
            (
                r#"{"cmd":"submit","category":"quantum","rounds":1,"demand":1,"task_ms":1}"#,
                "bad-arg",
            ),
            (
                r#"{"cmd":"submit","category":"general","rounds":0,"demand":1,"task_ms":1}"#,
                "bad-arg",
            ),
            (r#"{"cmd":"subscribe","every_ms":0}"#, "bad-arg"),
            (r#"{"cmd":"withdraw"}"#, "bad-arg"),
            (r#"{"cmd":"checkpoint"}"#, "bad-arg"),
        ];
        for (line, code) in cases {
            let err = Command::parse_line(line).unwrap_err();
            assert_eq!(err.code, code, "{line} -> {err:?}");
        }
    }
}
