//! Online control plane for the Venn simulator: `vennsim serve`.
//!
//! A batch run answers one question per process; this crate turns the
//! same deterministic kernel into a long-lived **session** that accepts
//! line-delimited JSON commands while the world runs:
//!
//! ```text
//! {"cmd":"submit","category":"general","rounds":4,"demand":50,"task_ms":60000}
//! {"cmd":"advance","ms":3600000}
//! {"cmd":"stats"}
//! {"cmd":"fork","scheduler":"srsf"}
//! {"cmd":"quit"}
//! ```
//!
//! The pieces:
//!
//! * [`json`] — a dependency-free JSON value model with a canonical
//!   compact writer (the protocol's wire format);
//! * [`protocol`] — the command grammar, typed error codes, and the
//!   canonical journal form (a serialization fixed point, which is what
//!   makes journal replay byte-identical);
//! * [`session`] — [`ServeSession`]: one world plus its scheduler,
//!   mutated mid-run by submit/withdraw, streaming [`venn_metrics::MetricsFrame`]
//!   telemetry, checkpointing via the snapshot layer, and answering
//!   what-if questions by forking the live state under a different
//!   scheduler arm;
//! * [`driver`] — the scripted / wall-clock-paced / TCP input loops.
//!
//! Virtual time is decoupled from real time throughout: scripted
//! sessions advance only on explicit `advance` commands and are fully
//! deterministic; paced sessions journal their synthesized advances so
//! the recording replays deterministically anyway.

pub mod driver;
pub mod json;
pub mod protocol;
pub mod session;
pub mod wal;

pub use driver::{run_lines, serve, OutQueue, ServeOpts};
pub use protocol::{CmdError, Command};
pub use session::{result_csv, LineOutcome, SchedSpec, ServeSession};
pub use wal::{
    real_fs, recover_journal, shared_fs, JournalError, Recovered, SharedFs, SyncPolicy, TornTail,
    WalWriter,
};
