//! The live session: one [`World`] driven by protocol commands, with a
//! replayable journal.
//!
//! # Virtual time and the journal
//!
//! The session's clock is the world's virtual time; it advances only
//! through `advance` commands (the interactive driver materializes
//! wall-clock pacing as synthetic `advance`s — see [`crate::driver`]).
//! Every **accepted** command — including pure queries, whose responses
//! are part of the session's observable output — is appended to the
//! journal in canonical form, stamped with the virtual time at which it
//! applied. Rejected commands are not journaled: they had no effect and
//! their diagnostics are not part of the replay surface.
//!
//! Replaying a journal through [`ServeSession::apply_line`] therefore
//! reproduces the live session exactly: same state transitions, same
//! responses byte for byte, and a regenerated journal identical to the
//! input (canonical form is a fixed point). Journal lines carry their
//! `vt` stamp so a replay detects divergence immediately instead of
//! drifting.

use std::time::Duration;

use venn_baselines::BaselineScheduler;
use venn_core::faultio::retry_transient;
use venn_core::{JobId, Scheduler, VennConfig, VennScheduler};
use venn_metrics::csv::Csv;
use venn_metrics::MetricsFrame;
use venn_sim::{
    fork_world, resume_world, snapshot_world, CheckpointStore, JobPhase, SimConfig, SimResult,
    World,
};
use venn_traces::{io as wio, JobPlan, Workload};

use crate::json::{obj, Value};
use crate::protocol::{CmdError, Command};
use crate::wal::{real_fs, SharedFs};

/// Write attempts for a `checkpoint` command before the typed `io`
/// error surfaces (transient ENOSPC/EIO only — hard faults surface
/// immediately).
const CKPT_ATTEMPTS: u32 = 4;

/// Initial backoff between checkpoint attempts (doubles each try;
/// wall-clock only, virtual time is untouched).
const CKPT_BACKOFF: Duration = Duration::from_millis(5);

/// How to build a scheduler arm — enough to construct fresh instances
/// for the live session and for fork children.
#[derive(Debug, Clone)]
pub struct SchedSpec {
    /// Arm name: `venn|random|random-per-device|fifo|srsf`.
    pub name: String,
    /// Venn fairness knob (ignored by baselines).
    pub epsilon: f64,
    /// Venn tier count (ignored by baselines).
    pub tiers: usize,
    /// Seed for the randomized arms.
    pub seed: u64,
}

impl SchedSpec {
    /// Constructs a fresh scheduler instance of this spec.
    pub fn build(&self) -> Result<Box<dyn Scheduler>, String> {
        Ok(match self.name.as_str() {
            "venn" => Box::new(VennScheduler::new(VennConfig {
                epsilon: self.epsilon,
                tiers: self.tiers,
                seed: self.seed,
                ..VennConfig::default()
            })),
            "random" => Box::new(BaselineScheduler::random_order(self.seed)),
            "random-per-device" => Box::new(BaselineScheduler::random_per_device(self.seed)),
            "fifo" => Box::new(BaselineScheduler::fifo()),
            "srsf" => Box::new(BaselineScheduler::srsf()),
            other => {
                return Err(format!(
                    "unknown scheduler {other:?} (expected venn|random|random-per-device|fifo|srsf)"
                ))
            }
        })
    }
}

/// What applying one input line produced.
#[derive(Debug, Default)]
pub struct LineOutcome {
    /// Response lines, in emission order (streamed frames first, then
    /// the command's own acknowledgment), each one JSON document.
    pub responses: Vec<String>,
    /// The canonical journal line, for accepted commands only.
    pub journal: Option<String>,
    /// Whether this line ended the session.
    pub quit: bool,
}

/// One live serving session: a world, its scheduler, and the protocol
/// state machine over them.
pub struct ServeSession {
    config: SimConfig,
    spec: SchedSpec,
    world: World,
    scheduler: Box<dyn Scheduler>,
    subscribe_every: Option<u64>,
    next_frame_at: u64,
    /// `(vt, events)` at the previous frame — the denominator of the
    /// events-per-virtual-second rate.
    last_frame: (u64, u64),
    done: bool,
    fs: SharedFs,
}

impl ServeSession {
    /// Builds a session over a fresh world. The config's horizon bounds
    /// how far virtual time can ever advance.
    pub fn new(config: SimConfig, spec: SchedSpec, workload: &Workload) -> Result<Self, String> {
        Self::with_fs(config, spec, workload, real_fs())
    }

    /// Like [`ServeSession::new`], but every durable write the session
    /// performs (checkpoints, workload exports, fork CSVs) goes through
    /// `fs` — the injection point for deterministic fault testing.
    pub fn with_fs(
        config: SimConfig,
        spec: SchedSpec,
        workload: &Workload,
        fs: SharedFs,
    ) -> Result<Self, String> {
        let scheduler = spec.build()?;
        let world = World::new(config, workload, scheduler.name());
        Ok(ServeSession {
            config,
            spec,
            world,
            scheduler,
            subscribe_every: None,
            next_frame_at: 0,
            last_frame: (0, 0),
            done: false,
            fs,
        })
    }

    /// The session's filesystem handle (shared with the journal/driver).
    pub fn fs(&self) -> SharedFs {
        self.fs.clone()
    }

    /// Current virtual time, ms.
    pub fn vt(&self) -> u64 {
        self.world.now()
    }

    /// Read access to the live world (telemetry, tests).
    pub fn world(&self) -> &World {
        &self.world
    }

    /// Whether `quit` has been processed.
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// Finishes the session's world and returns the run result — the
    /// same accounting a batch run would report at this point.
    pub fn into_result(self) -> SimResult {
        self.world.finish(&mut [])
    }

    /// Applies one input line. Never panics: every failure mode is a
    /// typed error response.
    pub fn apply_line(&mut self, line: &str) -> LineOutcome {
        let trimmed = line.trim();
        if trimmed.is_empty() {
            return LineOutcome::default();
        }
        if self.done {
            return self.reject(CmdError::after_quit());
        }
        let cmd = match Command::parse_line(trimmed) {
            Ok(cmd) => cmd,
            Err(e) => return self.reject(e),
        };
        // Journal replay self-check: a stamped line must apply at the
        // same virtual time it was recorded at.
        if let Some(stamp) = Command::stamped_vt(trimmed) {
            if stamp != self.vt() {
                return self.reject(CmdError {
                    code: "vt-mismatch",
                    msg: format!(
                        "journal line stamped vt {stamp} but session is at vt {}",
                        self.vt()
                    ),
                });
            }
        }
        let vt_applied = self.vt();
        let mut out = LineOutcome::default();
        let ack = match self.execute(&cmd, &mut out) {
            Ok(ack) => ack,
            Err(e) => return self.reject(e),
        };
        out.responses.push(ack);
        out.journal = Some(cmd.canonical(vt_applied));
        out
    }

    fn reject(&self, e: CmdError) -> LineOutcome {
        LineOutcome {
            responses: vec![e.to_response(self.vt())],
            journal: None,
            quit: false,
        }
    }

    /// Executes an accepted command, appending streamed frames to `out`
    /// and returning the acknowledgment line.
    fn execute(&mut self, cmd: &Command, out: &mut LineOutcome) -> Result<String, CmdError> {
        match cmd {
            Command::Submit {
                category,
                rounds,
                demand,
                task_ms,
                arrival_ms,
            } => {
                let plan = JobPlan {
                    id: JobId::new(0), // reassigned by the kernel
                    arrival_ms: arrival_ms.unwrap_or(self.vt()),
                    category: *category,
                    rounds: *rounds,
                    demand: *demand,
                    task_ms: *task_ms,
                };
                let arrival = plan.arrival_ms;
                match self.world.submit_job(plan) {
                    Ok(job) => Ok(self.ok(vec![
                        ("job", Value::Int(job as i64)),
                        ("arrival_ms", Value::Int(arrival as i64)),
                    ])),
                    Err(msg) if msg.contains("in the past") => Err(CmdError::past_time(msg)),
                    Err(msg) => Err(CmdError::bad_arg(msg)),
                }
            }
            Command::Withdraw { job } => {
                if self.world.withdraw_job(*job, &mut *self.scheduler) {
                    Ok(self.ok(vec![("job", Value::Int(*job as i64))]))
                } else {
                    Err(CmdError::unknown_job(format!(
                        "job {job} does not exist or is already terminal"
                    )))
                }
            }
            Command::QueryJob { job } => self.query_job(*job),
            Command::Stats => {
                let frame = self.frame_json();
                Ok(self.ok(vec![("frame", frame)]))
            }
            Command::Advance { ms } => {
                let events = self.advance(*ms, out);
                Ok(self.ok(vec![("events", Value::Int(events as i64))]))
            }
            Command::Subscribe { every_ms } => {
                self.subscribe_every = Some(*every_ms);
                self.next_frame_at = self.vt() + *every_ms;
                Ok(self.ok(vec![("every_ms", Value::Int(*every_ms as i64))]))
            }
            Command::Unsubscribe => {
                self.subscribe_every = None;
                Ok(self.ok(vec![]))
            }
            Command::Checkpoint { path } => {
                let bytes = snapshot_world(&self.world, &*self.scheduler)
                    .map_err(|e| CmdError::snapshot(e.to_string()))?;
                let len = bytes.len();
                // Atomic publish with bounded retry: transient ENOSPC/EIO
                // on the tmp write are retried with backoff; the rename
                // only ever exposes a complete file.
                let fs = self.fs.clone();
                retry_transient(CKPT_ATTEMPTS, CKPT_BACKOFF, || {
                    fs.borrow_mut().write_atomic(path, &bytes)
                })
                .map_err(|e| CmdError::io(format!("{path}: {e}")))?;
                Ok(self.ok(vec![
                    ("path", Value::Str(path.clone())),
                    ("bytes", Value::Int(len as i64)),
                ]))
            }
            Command::SaveWorkload { path } => {
                let tsv = wio::to_tsv(self.world.workload());
                self.fs
                    .borrow_mut()
                    .write(path, tsv.as_bytes())
                    .map_err(|e| CmdError::io(format!("{path}: {e}")))?;
                Ok(self.ok(vec![
                    ("path", Value::Str(path.clone())),
                    ("jobs", Value::Int(self.world.workload().jobs.len() as i64)),
                ]))
            }
            Command::Fork {
                scheduler,
                epsilon,
                tiers,
                csv,
            } => self.fork(scheduler, *epsilon, *tiers, csv.as_deref()),
            Command::Quit => {
                self.done = true;
                out.quit = true;
                Ok(self.ok(vec![]))
            }
        }
    }

    /// `{"vt":...,"ok":true,<extra fields>}` — every acknowledgment's
    /// shape, vt always first.
    fn ok(&self, extra: Vec<(&str, Value)>) -> String {
        let mut fields = vec![
            ("vt", Value::Int(self.vt() as i64)),
            ("ok", Value::Bool(true)),
        ];
        fields.extend(extra);
        obj(fields).to_json()
    }

    fn query_job(&self, job: usize) -> Result<String, CmdError> {
        if job >= self.world.jobs.len() {
            return Err(CmdError::unknown_job(format!("job {job} does not exist")));
        }
        let j = self.world.jobs.get(job);
        let plan = &self.world.workload().jobs[job];
        let phase = match j.phase {
            JobPhase::Idle => "idle",
            JobPhase::Allocating => "allocating",
            JobPhase::Running => "running",
            JobPhase::Finished => "finished",
        };
        let jct = match j.record.jct_ms() {
            Some(ms) => Value::Int(ms as i64),
            None => Value::Null,
        };
        Ok(self.ok(vec![
            ("job", Value::Int(job as i64)),
            ("phase", Value::Str(phase.into())),
            ("rounds_done", Value::Int(j.rounds_done as i64)),
            ("rounds", Value::Int(plan.rounds as i64)),
            ("demand", Value::Int(plan.demand as i64)),
            ("arrival_ms", Value::Int(plan.arrival_ms as i64)),
            ("assigned", Value::Int(j.assigned as i64)),
            ("responses", Value::Int(j.responses as i64)),
            ("rounds_aborted", Value::Int(j.record.rounds_aborted as i64)),
            ("jct_ms", jct),
        ]))
    }

    /// Advances virtual time by `ms`, emitting subscription frames at
    /// their exact due instants. Returns events dispatched.
    fn advance(&mut self, ms: u64, out: &mut LineOutcome) -> u64 {
        let target = self.vt().saturating_add(ms);
        let mut events = 0;
        while let Some(every) = self.subscribe_every {
            if self.next_frame_at > target || self.next_frame_at > self.config.horizon_ms() {
                break;
            }
            let at = self.next_frame_at;
            events += self.world.run_until(at, &mut *self.scheduler, &mut []);
            let frame = self.frame_json();
            out.responses.push(obj(vec![("frame", frame)]).to_json());
            self.next_frame_at = at + every;
        }
        events += self.world.run_until(target, &mut *self.scheduler, &mut []);
        events
    }

    /// The current metrics frame as a JSON object, fields in fixed
    /// order, with the events-per-virtual-second rate over the window
    /// since the previous frame.
    fn frame_json(&mut self) -> Value {
        let f: MetricsFrame = self.world.metrics_frame();
        let (prev_vt, prev_events) = self.last_frame;
        let rate = if f.vt_ms > prev_vt {
            (f.events - prev_events) as f64 / ((f.vt_ms - prev_vt) as f64 / 1_000.0)
        } else {
            0.0
        };
        self.last_frame = (f.vt_ms, f.events);
        let opt = |v: Option<u64>| match v {
            Some(ms) => Value::Int(ms as i64),
            None => Value::Null,
        };
        obj(vec![
            ("vt_ms", Value::Int(f.vt_ms as i64)),
            ("events", Value::Int(f.events as i64)),
            ("events_per_vs", Value::Float(rate)),
            ("assignments", Value::Int(f.assignments as i64)),
            ("failures", Value::Int(f.failures as i64)),
            ("aborted_rounds", Value::Int(f.aborted_rounds as i64)),
            ("jobs", Value::Int(f.jobs as i64)),
            ("jobs_finished", Value::Int(f.jobs_finished as i64)),
            ("jobs_running", Value::Int(f.jobs_running as i64)),
            ("jobs_allocating", Value::Int(f.jobs_allocating as i64)),
            ("live_devices", Value::Int(f.live_devices as i64)),
            ("held_devices", Value::Int(f.held_devices as i64)),
            ("parked_polls", Value::Int(f.parked_polls as i64)),
            ("queue_len", Value::Int(f.queue_len as i64)),
            ("jct_p50_ms", opt(f.jct_p50_ms)),
            ("jct_p90_ms", opt(f.jct_p90_ms)),
            ("jct_p99_ms", opt(f.jct_p99_ms)),
            ("env_dropouts", Value::Int(f.env_dropouts as i64)),
            (
                "env_forced_offline",
                Value::Int(f.env_forced_offline as i64),
            ),
            ("env_storm_aborts", Value::Int(f.env_storm_aborts as i64)),
            ("env_retries", Value::Int(f.env_retries as i64)),
        ])
    }

    /// Writes a final checkpoint of the live world into `dir` through
    /// the session's [`CheckpointStore`] — the graceful-shutdown path.
    /// Returns the published checkpoint path.
    pub fn final_checkpoint(&mut self, dir: &str) -> Result<String, CmdError> {
        let fs = self.fs.clone();
        let mut guard = fs.borrow_mut();
        let mut store =
            CheckpointStore::open(&mut **guard, dir, 2).map_err(|e| CmdError::io(e.to_string()))?;
        store
            .write(&self.world, &*self.scheduler)
            .map_err(|e| CmdError::io(e.to_string()))
    }

    /// The what-if fork: snapshot the live world, run the remainder to
    /// completion under BOTH the session's scheduler arm (the control)
    /// and the requested alternative, and report the JCT/assignment
    /// diff. The live session is untouched — both children start from
    /// the same snapshot bytes a `checkpoint` at this instant would
    /// write, so an offline `vennsim --fork-from` of that checkpoint
    /// reproduces the alternative child exactly.
    fn fork(
        &mut self,
        scheduler: &str,
        epsilon: f64,
        tiers: usize,
        csv: Option<&str>,
    ) -> Result<String, CmdError> {
        let bytes = snapshot_world(&self.world, &*self.scheduler)
            .map_err(|e| CmdError::snapshot(e.to_string()))?;
        let workload = self.world.workload().clone();

        let mut base_sched = self.spec.build().map_err(CmdError::bad_arg)?;
        let base_world = resume_world(&bytes, self.config, &workload, &mut *base_sched)
            .map_err(|e| CmdError::snapshot(e.to_string()))?;
        let base = run_to_end(base_world, &mut *base_sched);

        let alt_spec = SchedSpec {
            name: scheduler.to_string(),
            epsilon,
            tiers,
            seed: self.config.seed,
        };
        let mut alt_sched = alt_spec.build().map_err(CmdError::bad_arg)?;
        let alt_world = fork_world(&bytes, self.config, &workload, &mut *alt_sched)
            .map_err(|e| CmdError::snapshot(e.to_string()))?;
        let alt = run_to_end(alt_world, &mut *alt_sched);

        if let Some(path) = csv {
            self.fs
                .borrow_mut()
                .write(path, result_csv(&alt).as_bytes())
                .map_err(|e| CmdError::io(format!("{path}: {e}")))?;
        }

        let base_avg = base.breakdown().avg_jct_ms();
        let alt_avg = alt.breakdown().avg_jct_ms();
        let speedup = if alt_avg > 0.0 {
            base_avg / alt_avg
        } else {
            0.0
        };
        Ok(self.ok(vec![
            ("base", arm_summary(&base)),
            ("alt", arm_summary(&alt)),
            (
                "diff",
                obj(vec![
                    ("avg_jct_delta_ms", Value::Float(alt_avg - base_avg)),
                    ("speedup", Value::Float(speedup)),
                    (
                        "finished_delta",
                        Value::Int(
                            alt.breakdown().finished() as i64 - base.breakdown().finished() as i64,
                        ),
                    ),
                    (
                        "assignments_delta",
                        Value::Int(alt.assignments as i64 - base.assignments as i64),
                    ),
                ]),
            ),
        ]))
    }
}

/// Runs a restored world to completion with no observers.
fn run_to_end(mut world: World, scheduler: &mut dyn Scheduler) -> SimResult {
    while world.step(scheduler, &mut []) {}
    world.finish(&mut [])
}

/// One fork child's summary object.
fn arm_summary(r: &SimResult) -> Value {
    let b = r.breakdown();
    obj(vec![
        ("scheduler", Value::Str(r.scheduler_name.clone())),
        ("finished", Value::Int(b.finished() as i64)),
        ("unfinished", Value::Int(b.unfinished() as i64)),
        ("avg_jct_ms", Value::Float(b.avg_jct_ms())),
        ("assignments", Value::Int(r.assignments as i64)),
        ("aborted_rounds", Value::Int(r.aborted_rounds as i64)),
    ])
}

/// The per-job CSV in exactly `vennsim --csv`'s shape, so a forked
/// child's output byte-matches an offline run of the same snapshot.
pub fn result_csv(result: &SimResult) -> String {
    let mut csv = Csv::new(&["job", "jct_ms", "sched_delay_ms", "response_ms", "aborted"]);
    for (i, rec) in result.records.iter().enumerate() {
        csv.row(&[
            i.to_string(),
            rec.jct_ms().map(|v| v.to_string()).unwrap_or_default(),
            rec.sched_delay_ms.to_string(),
            rec.response_ms.to_string(),
            rec.rounds_aborted.to_string(),
        ]);
    }
    csv.to_string()
}
