//! Drivers that feed a [`ServeSession`] from the outside world.
//!
//! Three input modes, one code path:
//!
//! * **scripted** — lines arrive from stdin (or a replay file) and
//!   virtual time moves only on explicit `advance` commands. Fully
//!   deterministic; this is the mode CI exercises.
//! * **paced** (`--rate R`) — a reader thread feeds stdin lines through
//!   a channel; whenever the channel is quiet the driver materializes
//!   the elapsed wall-clock time as a synthetic `advance` command at
//!   `R` virtual ms per wall ms. Because the synthetic advances go
//!   through [`ServeSession::apply_line`] like any typed command, they
//!   are journaled, and the journal replays deterministically even
//!   though the live session was wall-clock paced.
//! * **TCP** (`--listen ADDR`) — same scripted loop over a single
//!   accepted connection instead of stdio.
//!
//! All modes append accepted commands to the session journal (when one
//! is configured) and stream responses line-by-line.

use std::io::{self, BufRead, BufReader, Write};
use std::net::TcpListener;
use std::sync::mpsc;
use std::time::{Duration, Instant};

use crate::session::ServeSession;

/// Driver configuration, independent of where the world came from.
#[derive(Debug, Default)]
pub struct ServeOpts {
    /// Append accepted commands (canonical form) to this file.
    pub journal: Option<String>,
    /// Virtual ms per wall-clock ms; `None` = scripted (explicit
    /// `advance` only).
    pub rate: Option<f64>,
    /// Bind address for a single-connection TCP session instead of
    /// stdio.
    pub listen: Option<String>,
}

/// How often the paced driver wakes up to convert wall time into
/// virtual time when no commands are arriving.
const PACE_TICK: Duration = Duration::from_millis(100);

/// Feeds `lines` through the session, writing every response line to
/// `out` and every accepted command's canonical form to `journal`.
/// Returns when the input ends or the session quits. This is the whole
/// protocol loop — the scripted, paced, and TCP drivers all bottom out
/// here or in [`apply_and_emit`].
pub fn run_lines<I>(
    session: &mut ServeSession,
    lines: I,
    out: &mut dyn Write,
    journal: &mut Option<Box<dyn Write>>,
) -> io::Result<()>
where
    I: IntoIterator<Item = io::Result<String>>,
{
    for line in lines {
        if apply_and_emit(session, &line?, out, journal)? {
            break;
        }
    }
    out.flush()
}

/// Applies one line and emits its responses/journal entry. Returns
/// `true` when the session quit.
fn apply_and_emit(
    session: &mut ServeSession,
    line: &str,
    out: &mut dyn Write,
    journal: &mut Option<Box<dyn Write>>,
) -> io::Result<bool> {
    let outcome = session.apply_line(line);
    for resp in &outcome.responses {
        writeln!(out, "{resp}")?;
    }
    out.flush()?;
    if let (Some(j), Some(entry)) = (journal.as_mut(), &outcome.journal) {
        writeln!(j, "{entry}")?;
    }
    Ok(outcome.quit)
}

/// Runs the session against stdin/stdout (or TCP when configured),
/// scripted or wall-clock paced per `opts`.
pub fn serve(session: &mut ServeSession, opts: &ServeOpts) -> io::Result<()> {
    let mut journal: Option<Box<dyn Write>> = match &opts.journal {
        Some(path) => Some(Box::new(std::fs::File::create(path)?)),
        None => None,
    };
    if let Some(addr) = &opts.listen {
        let listener = TcpListener::bind(addr)?;
        eprintln!("vennsim serve: listening on {}", listener.local_addr()?);
        let (stream, peer) = listener.accept()?;
        eprintln!("vennsim serve: session from {peer}");
        let reader = BufReader::new(stream.try_clone()?);
        let mut out: Box<dyn Write> = Box::new(stream);
        return run_lines(session, reader.lines(), &mut out, &mut journal);
    }
    let stdout = io::stdout();
    let mut out: Box<dyn Write> = Box::new(stdout.lock());
    match opts.rate {
        None => {
            let stdin = io::stdin();
            run_lines(session, stdin.lock().lines(), &mut out, &mut journal)
        }
        Some(rate) => serve_paced(session, rate, &mut out, &mut journal),
    }
}

/// The wall-clock paced loop: stdin lines interleave with synthetic
/// `advance` commands derived from elapsed wall time.
fn serve_paced(
    session: &mut ServeSession,
    rate: f64,
    out: &mut dyn Write,
    journal: &mut Option<Box<dyn Write>>,
) -> io::Result<()> {
    let (tx, rx) = mpsc::channel::<io::Result<String>>();
    std::thread::spawn(move || {
        let stdin = io::stdin();
        for line in stdin.lock().lines() {
            if tx.send(line).is_err() {
                break;
            }
        }
    });
    // Wall time owed but not yet converted to virtual time; advances
    // are whole virtual milliseconds, the remainder carries over.
    let mut last_tick = Instant::now();
    let mut carry_ms = 0.0_f64;
    loop {
        match rx.recv_timeout(PACE_TICK) {
            Ok(line) => {
                if apply_and_emit(session, &line?, out, journal)? {
                    return out.flush();
                }
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {
                let now = Instant::now();
                carry_ms += now.duration_since(last_tick).as_secs_f64() * 1_000.0 * rate;
                last_tick = now;
                let whole = carry_ms.floor();
                if whole >= 1.0 {
                    carry_ms -= whole;
                    let cmd = format!("{{\"cmd\":\"advance\",\"ms\":{}}}", whole as u64);
                    if apply_and_emit(session, &cmd, out, journal)? {
                        return out.flush();
                    }
                }
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => return out.flush(),
        }
    }
}
