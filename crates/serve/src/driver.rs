//! Drivers that feed a [`ServeSession`] from the outside world.
//!
//! Three input modes, one command path:
//!
//! * **scripted** — lines arrive from stdin (or a replay file) and
//!   virtual time moves only on explicit `advance` commands. Fully
//!   deterministic; this is the mode CI exercises.
//! * **paced** (`--rate R`) — a reader thread feeds stdin lines through
//!   a channel; whenever the channel is quiet the driver materializes
//!   the elapsed wall-clock time as a synthetic `advance` command at
//!   `R` virtual ms per wall ms. Because the synthetic advances go
//!   through [`ServeSession::apply_line`] like any typed command, they
//!   are journaled, and the journal replays deterministically even
//!   though the live session was wall-clock paced.
//! * **TCP** (`--listen ADDR`) — a **multi-client** accept loop. Every
//!   connection gets its own reader thread (bounded line scanner,
//!   per-read timeout, idle disconnect) and its own writer thread
//!   draining a bounded [`OutQueue`]. Commands from all clients
//!   serialize through the single session; acks and errors return to
//!   the issuing connection, streamed metrics frames broadcast to every
//!   connection. A consumer that cannot keep up has its queue replaced
//!   by one final typed `backpressure` error and is disconnected — a
//!   slow subscriber can never stall the session or balloon memory.
//!
//! All modes append accepted commands to the WAL journal (when one is
//! configured; see [`crate::wal`]) and shut down gracefully — on
//! `quit`, end of input, or (paced/TCP modes) SIGTERM: the journal is
//! sealed, a final checkpoint is written when `--checkpoint-dir` is
//! set, and per-client queues drain before the process exits.

use std::collections::BTreeMap;
use std::io::{self, BufRead, Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use crate::protocol::CmdError;
use crate::session::ServeSession;
use crate::wal::{SyncPolicy, WalWriter};

/// Driver configuration, independent of where the world came from.
#[derive(Debug)]
pub struct ServeOpts {
    /// Append accepted commands (canonical form) to this WAL journal.
    pub journal: Option<String>,
    /// When journal appends reach the platter (`--journal-sync`).
    pub journal_sync: SyncPolicy,
    /// Virtual ms per wall-clock ms; `None` = scripted (explicit
    /// `advance` only).
    pub rate: Option<f64>,
    /// Bind address for the multi-client TCP accept loop instead of
    /// stdio.
    pub listen: Option<String>,
    /// Disconnect a TCP client after this long without a byte from it.
    pub idle_timeout: Duration,
    /// Protocol bound on one input line; longer lines are discarded
    /// with a typed `line-too-long` error.
    pub max_line_bytes: usize,
    /// Outbound lines buffered per client before the connection is
    /// dropped with a typed `backpressure` error.
    pub frame_queue_cap: usize,
    /// Write a final checkpoint into this directory on shutdown.
    pub shutdown_checkpoint_dir: Option<String>,
}

impl Default for ServeOpts {
    fn default() -> Self {
        ServeOpts {
            journal: None,
            journal_sync: SyncPolicy::default(),
            rate: None,
            listen: None,
            idle_timeout: Duration::from_secs(300),
            max_line_bytes: 64 * 1024,
            frame_queue_cap: 1024,
            shutdown_checkpoint_dir: None,
        }
    }
}

/// How often the paced/TCP drivers wake up to convert wall time into
/// virtual time and poll for shutdown when no commands are arriving.
const PACE_TICK: Duration = Duration::from_millis(100);

/// Per-read timeout on TCP client sockets; idle time accumulates in
/// these increments toward [`ServeOpts::idle_timeout`].
const READ_TICK: Duration = Duration::from_millis(200);

/// SIGTERM/SIGINT handling for the paced and TCP loops, without a libc
/// dependency: a raw `signal(2)` binding flips an atomic the driver
/// loops poll every tick. The scripted stdin loop blocks in `read` and
/// cannot poll, so it keeps default signal behavior.
#[cfg(unix)]
mod shutdown_signal {
    use super::{AtomicBool, Ordering};

    static REQUESTED: AtomicBool = AtomicBool::new(false);
    const SIGTERM: i32 = 15;

    extern "C" fn on_signal(_sig: i32) {
        REQUESTED.store(true, Ordering::SeqCst);
    }

    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    pub fn install() {
        unsafe {
            signal(SIGTERM, on_signal);
        }
    }

    pub fn requested() -> bool {
        REQUESTED.load(Ordering::SeqCst)
    }
}

#[cfg(not(unix))]
mod shutdown_signal {
    pub fn install() {}

    pub fn requested() -> bool {
        false
    }
}

/// A bounded outbound line queue between the session loop and one
/// client's writer thread.
///
/// The session loop never blocks on a slow socket: [`OutQueue::push`]
/// either enqueues or — at capacity — **replaces** the backlog with one
/// final overflow line (a typed `backpressure` error), closes the
/// queue, and reports the client dead. The writer thread drains until
/// the queue closes, then shuts the socket down.
pub struct OutQueue {
    state: Mutex<QueueState>,
    ready: Condvar,
}

struct QueueState {
    lines: std::collections::VecDeque<String>,
    closing: bool,
    tripped: bool,
}

impl OutQueue {
    /// A fresh open queue.
    pub fn new() -> Arc<Self> {
        Arc::new(OutQueue {
            state: Mutex::new(QueueState {
                lines: std::collections::VecDeque::new(),
                closing: false,
                tripped: false,
            }),
            ready: Condvar::new(),
        })
    }

    /// Enqueues `line`, bounded by `cap`. At capacity the whole backlog
    /// is replaced by `overflow_line()` and the queue closes. Returns
    /// `false` when the client should be considered gone (queue closed,
    /// now or previously).
    pub fn push(&self, cap: usize, line: &str, overflow_line: impl FnOnce() -> String) -> bool {
        let mut s = self.state.lock().unwrap();
        if s.closing {
            return false;
        }
        if s.lines.len() >= cap.max(1) {
            s.lines.clear();
            s.lines.push_back(overflow_line());
            s.closing = true;
            s.tripped = true;
            self.ready.notify_all();
            return false;
        }
        s.lines.push_back(line.to_string());
        self.ready.notify_all();
        true
    }

    /// Closes the queue; the writer drains what remains, then exits.
    pub fn finish(&self) {
        let mut s = self.state.lock().unwrap();
        s.closing = true;
        self.ready.notify_all();
    }

    /// Whether the queue was closed by overflow (vs a normal finish).
    pub fn tripped(&self) -> bool {
        self.state.lock().unwrap().tripped
    }

    /// Blocks for the next line; `None` once closed and drained.
    pub fn pop(&self) -> Option<String> {
        let mut s = self.state.lock().unwrap();
        loop {
            if let Some(line) = s.lines.pop_front() {
                return Some(line);
            }
            if s.closing {
                return None;
            }
            s = self.ready.wait(s).unwrap();
        }
    }
}

/// Feeds `lines` through the session, writing every response line to
/// `out` and every accepted command's canonical form to `journal`.
/// Returns when the input ends or the session quits. The scripted and
/// paced drivers bottom out here or in `apply_and_emit`; the TCP
/// driver runs its own multi-client loop over the same session calls.
pub fn run_lines<I>(
    session: &mut ServeSession,
    lines: I,
    out: &mut dyn Write,
    journal: &mut Option<WalWriter>,
) -> io::Result<()>
where
    I: IntoIterator<Item = io::Result<String>>,
{
    for line in lines {
        if apply_and_emit(session, &line?, out, journal)? {
            break;
        }
    }
    out.flush()
}

/// Applies one line and emits its responses/journal entry. Returns
/// `true` when the session quit. A journal append failure is fatal to
/// the loop (the WAL is the authority for replay; continuing past a
/// hole would record a lie) and surfaces as a typed I/O error.
fn apply_and_emit(
    session: &mut ServeSession,
    line: &str,
    out: &mut dyn Write,
    journal: &mut Option<WalWriter>,
) -> io::Result<bool> {
    let outcome = session.apply_line(line);
    for resp in &outcome.responses {
        writeln!(out, "{resp}")?;
    }
    out.flush()?;
    if let (Some(j), Some(entry)) = (journal.as_mut(), &outcome.journal) {
        j.append(entry)
            .map_err(|e| io::Error::other(format!("journal append: {e}")))?;
    }
    Ok(outcome.quit)
}

/// Runs the session against stdin/stdout (or the multi-client TCP loop
/// when configured), scripted or wall-clock paced per `opts`. On any
/// exit path — quit, end of input, SIGTERM — the journal is sealed and,
/// when configured, a final checkpoint is written.
pub fn serve(session: &mut ServeSession, opts: &ServeOpts) -> io::Result<()> {
    let mut journal = match &opts.journal {
        Some(path) => Some(
            WalWriter::create(session.fs(), path, opts.journal_sync)
                .map_err(|e| io::Error::other(format!("journal create: {e}")))?,
        ),
        None => None,
    };
    let result = if let Some(addr) = &opts.listen {
        serve_multi(session, addr, opts, &mut journal)
    } else {
        let stdout = io::stdout();
        let mut out: Box<dyn Write> = Box::new(stdout.lock());
        match opts.rate {
            None => {
                let stdin = io::stdin();
                run_lines(session, stdin.lock().lines(), &mut out, &mut journal)
            }
            Some(rate) => serve_paced(session, rate, &mut out, &mut journal),
        }
    };
    // Graceful epilogue, even when the loop above returned an error:
    // seal what we have and keep the final checkpoint if possible.
    if let Some(j) = journal.as_mut() {
        if let Err(e) = j.seal() {
            eprintln!("vennsim serve: journal seal failed: {e}");
        }
    }
    if let Some(dir) = &opts.shutdown_checkpoint_dir {
        match session.final_checkpoint(dir) {
            Ok(path) => eprintln!("vennsim serve: final checkpoint {path}"),
            Err(e) => eprintln!("vennsim serve: final checkpoint failed: {}", e.msg),
        }
    }
    result
}

/// The wall-clock paced loop: stdin lines interleave with synthetic
/// `advance` commands derived from elapsed wall time. SIGTERM ends the
/// loop at the next tick.
fn serve_paced(
    session: &mut ServeSession,
    rate: f64,
    out: &mut dyn Write,
    journal: &mut Option<WalWriter>,
) -> io::Result<()> {
    shutdown_signal::install();
    let (tx, rx) = mpsc::channel::<io::Result<String>>();
    std::thread::spawn(move || {
        let stdin = io::stdin();
        for line in stdin.lock().lines() {
            if tx.send(line).is_err() {
                break;
            }
        }
    });
    // Wall time owed but not yet converted to virtual time; advances
    // are whole virtual milliseconds, the remainder carries over.
    let mut last_tick = Instant::now();
    let mut carry_ms = 0.0_f64;
    loop {
        if shutdown_signal::requested() {
            eprintln!("vennsim serve: SIGTERM, shutting down");
            return out.flush();
        }
        match rx.recv_timeout(PACE_TICK) {
            Ok(line) => {
                if apply_and_emit(session, &line?, out, journal)? {
                    return out.flush();
                }
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {
                let now = Instant::now();
                carry_ms += now.duration_since(last_tick).as_secs_f64() * 1_000.0 * rate;
                last_tick = now;
                let whole = carry_ms.floor();
                if whole >= 1.0 {
                    carry_ms -= whole;
                    let cmd = format!("{{\"cmd\":\"advance\",\"ms\":{}}}", whole as u64);
                    if apply_and_emit(session, &cmd, out, journal)? {
                        return out.flush();
                    }
                }
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => return out.flush(),
        }
    }
}

/// What the per-connection threads report into the session loop.
enum DriverMsg {
    /// A new accepted connection.
    Conn(u64, TcpStream),
    /// One complete input line from a client.
    Line(u64, String),
    /// A client line exceeded the protocol bound and was discarded.
    TooLong(u64, usize),
    /// A client is gone (EOF, idle timeout, read error).
    Gone(u64, &'static str),
}

/// One connected client as the session loop sees it.
struct Client {
    queue: Arc<OutQueue>,
    writer: std::thread::JoinHandle<()>,
}

/// Pushes one line to a client; on queue overflow the client is
/// disconnected with a typed `backpressure` error. Returns `false`
/// (and removes the client) when it is gone.
fn push_to(clients: &mut BTreeMap<u64, Client>, id: u64, line: &str, cap: usize, vt: u64) -> bool {
    let Some(client) = clients.get(&id) else {
        return false;
    };
    let ok = client.queue.push(cap, line, || {
        CmdError::backpressure(format!(
            "outbound queue exceeded {cap} lines; disconnecting slow consumer"
        ))
        .to_response(vt)
    });
    if !ok {
        let client = clients.remove(&id).expect("client present above");
        let tripped = client.queue.tripped();
        let _ = client.writer.join();
        if tripped {
            eprintln!("vennsim serve: client {id} disconnected (backpressure)");
        }
    }
    ok
}

/// Routes one command's responses: streamed metrics frames broadcast to
/// every client, everything else goes to the issuer (`Some(id)`);
/// synthetic commands have no issuer and drop their acks.
fn route(
    clients: &mut BTreeMap<u64, Client>,
    issuer: Option<u64>,
    responses: &[String],
    cap: usize,
    vt: u64,
) {
    for resp in responses {
        if resp.starts_with("{\"frame\":") {
            for id in clients.keys().copied().collect::<Vec<_>>() {
                push_to(clients, id, resp, cap, vt);
            }
        } else if let Some(id) = issuer {
            push_to(clients, id, resp, cap, vt);
        }
    }
}

/// The multi-client TCP loop. All client commands serialize through the
/// one session; `quit` from any client, SIGTERM, or a journal append
/// failure ends the session for everyone (queues drain first).
fn serve_multi(
    session: &mut ServeSession,
    addr: &str,
    opts: &ServeOpts,
    journal: &mut Option<WalWriter>,
) -> io::Result<()> {
    let listener = TcpListener::bind(addr)?;
    eprintln!("vennsim serve: listening on {}", listener.local_addr()?);
    shutdown_signal::install();

    let (tx, rx) = mpsc::channel::<DriverMsg>();
    {
        let tx = tx.clone();
        std::thread::spawn(move || {
            let mut next_id = 1u64;
            while let Ok((stream, _)) = listener.accept() {
                if tx.send(DriverMsg::Conn(next_id, stream)).is_err() {
                    return;
                }
                next_id += 1;
            }
        });
    }

    let cap = opts.frame_queue_cap;
    let mut clients: BTreeMap<u64, Client> = BTreeMap::new();
    let mut last_tick = Instant::now();
    let mut carry_ms = 0.0_f64;
    let mut result = Ok(());
    loop {
        if shutdown_signal::requested() {
            eprintln!("vennsim serve: SIGTERM, shutting down");
            break;
        }
        match rx.recv_timeout(PACE_TICK) {
            Ok(DriverMsg::Conn(id, stream)) => {
                match spawn_client(id, stream, tx.clone(), opts) {
                    Ok(client) => {
                        eprintln!("vennsim serve: client {id} connected");
                        clients.insert(id, client);
                    }
                    Err(e) => eprintln!("vennsim serve: client {id} setup failed: {e}"),
                };
            }
            Ok(DriverMsg::Line(id, line)) => {
                let outcome = session.apply_line(&line);
                if let (Some(j), Some(entry)) = (journal.as_mut(), &outcome.journal) {
                    if let Err(e) = j.append(entry) {
                        // The WAL is the replay authority; a hole in it
                        // would make every later record a lie. Tell the
                        // issuer, then shut the session down.
                        let err =
                            CmdError::io(format!("journal append: {e}")).to_response(session.vt());
                        push_to(&mut clients, id, &err, cap, session.vt());
                        eprintln!("vennsim serve: journal append failed ({e}), shutting down");
                        result = Err(io::Error::other(format!("journal append: {e}")));
                        break;
                    }
                }
                route(
                    &mut clients,
                    Some(id),
                    &outcome.responses,
                    cap,
                    session.vt(),
                );
                if outcome.quit {
                    eprintln!("vennsim serve: quit from client {id}, shutting down");
                    break;
                }
            }
            Ok(DriverMsg::TooLong(id, len)) => {
                let err = CmdError::line_too_long(format!(
                    "input line of {len}+ bytes exceeds the {}-byte bound; discarded",
                    opts.max_line_bytes
                ))
                .to_response(session.vt());
                push_to(&mut clients, id, &err, cap, session.vt());
            }
            Ok(DriverMsg::Gone(id, reason)) => {
                if let Some(client) = clients.remove(&id) {
                    client.queue.finish();
                    let _ = client.writer.join();
                    eprintln!("vennsim serve: client {id} disconnected ({reason})");
                }
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {
                let Some(rate) = opts.rate else { continue };
                let now = Instant::now();
                carry_ms += now.duration_since(last_tick).as_secs_f64() * 1_000.0 * rate;
                last_tick = now;
                let whole = carry_ms.floor();
                if whole >= 1.0 {
                    carry_ms -= whole;
                    let cmd = format!("{{\"cmd\":\"advance\",\"ms\":{}}}", whole as u64);
                    let outcome = session.apply_line(&cmd);
                    if let (Some(j), Some(entry)) = (journal.as_mut(), &outcome.journal) {
                        if let Err(e) = j.append(entry) {
                            eprintln!("vennsim serve: journal append failed ({e}), shutting down");
                            result = Err(io::Error::other(format!("journal append: {e}")));
                            break;
                        }
                    }
                    route(&mut clients, None, &outcome.responses, cap, session.vt());
                }
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => break,
        }
    }
    // Drain: every surviving client gets its buffered lines, then the
    // sockets close.
    for (_, client) in clients {
        client.queue.finish();
        let _ = client.writer.join();
    }
    result
}

/// Wires up one accepted connection: a reader thread (bounded lines,
/// read timeout, idle disconnect) and a writer thread draining the
/// client's [`OutQueue`].
fn spawn_client(
    id: u64,
    stream: TcpStream,
    tx: mpsc::Sender<DriverMsg>,
    opts: &ServeOpts,
) -> io::Result<Client> {
    let reader_stream = stream.try_clone()?;
    reader_stream.set_read_timeout(Some(READ_TICK))?;
    let max_line = opts.max_line_bytes;
    let idle_timeout = opts.idle_timeout;
    std::thread::spawn(move || reader_loop(id, reader_stream, tx, max_line, idle_timeout));

    let queue = OutQueue::new();
    let writer_queue = queue.clone();
    let writer = std::thread::spawn(move || writer_loop(writer_queue, stream));
    Ok(Client { queue, writer })
}

/// Scans raw socket bytes into bounded lines. An over-long line turns
/// into one `TooLong` report and is discarded up to its newline; a
/// quiet socket accumulates idle time and eventually disconnects.
fn reader_loop(
    id: u64,
    mut stream: TcpStream,
    tx: mpsc::Sender<DriverMsg>,
    max_line: usize,
    idle_timeout: Duration,
) {
    let mut acc: Vec<u8> = Vec::new();
    let mut buf = [0u8; 4096];
    let mut idle = Duration::ZERO;
    let mut overlong = false;
    loop {
        match stream.read(&mut buf) {
            Ok(0) => {
                let _ = tx.send(DriverMsg::Gone(id, "eof"));
                return;
            }
            Ok(n) => {
                idle = Duration::ZERO;
                for &b in &buf[..n] {
                    if b == b'\n' {
                        if overlong {
                            overlong = false;
                        } else {
                            let line = String::from_utf8_lossy(&acc).into_owned();
                            if tx.send(DriverMsg::Line(id, line)).is_err() {
                                return;
                            }
                        }
                        acc.clear();
                    } else if overlong {
                        // Discarding the rest of an over-long line.
                    } else if acc.len() >= max_line {
                        overlong = true;
                        let _ = tx.send(DriverMsg::TooLong(id, acc.len() + 1));
                        acc.clear();
                    } else {
                        acc.push(b);
                    }
                }
            }
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                idle += READ_TICK;
                if idle >= idle_timeout {
                    let _ = tx.send(DriverMsg::Gone(id, "idle-timeout"));
                    return;
                }
            }
            Err(_) => {
                let _ = tx.send(DriverMsg::Gone(id, "read-error"));
                return;
            }
        }
    }
}

/// Drains one client's queue onto its socket, then shuts the socket
/// down. Socket errors just end the drain — the reader side reports the
/// disconnect.
fn writer_loop(queue: Arc<OutQueue>, mut stream: TcpStream) {
    while let Some(line) = queue.pop() {
        if stream
            .write_all(line.as_bytes())
            .and_then(|()| stream.write_all(b"\n"))
            .and_then(|()| stream.flush())
            .is_err()
        {
            break;
        }
    }
    let _ = stream.shutdown(Shutdown::Both);
}
