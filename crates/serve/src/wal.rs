//! The write-ahead journal: length-prefixed, checksummed records with
//! torn-tail recovery.
//!
//! PR 9's journal was unsynced buffered text lines — fine for replaying
//! a session that ended cleanly, useless after a crash: a torn final
//! line failed replay with a parse or `vt-mismatch` error. This module
//! promotes the journal to a real WAL, reusing the `VSNP` codec idioms
//! from [`venn_core::snapshot`]:
//!
//! ```text
//! header : "VWAL" magic | u32 version (LE)
//! record : u32 len (LE) | u64 FNV-1a(payload) | payload (UTF-8 line)
//! seal   : a len-0 record — written on graceful shutdown
//! ```
//!
//! Recovery walks records from the front and **stops at the first
//! damaged one** — short header, impossible length, checksum mismatch,
//! non-UTF-8 payload — returning the intact prefix plus a typed
//! [`TornTail`] describing where and why it stopped. A journal torn at
//! *any* byte therefore replays its prefix byte-identically instead of
//! failing; the damage is a warning, not an error.
//!
//! Durability is a policy knob ([`SyncPolicy`], `--journal-sync`):
//! `always` fsyncs after every record (maximum durability, one fsync per
//! command), `batch` fsyncs every [`BATCH_RECORDS`] records and on seal
//! (the default), `off` never fsyncs (the OS page cache decides — the
//! pre-WAL behavior, now opt-in).
//!
//! Legacy plain-text journals (PR 9 format) remain readable through
//! [`recover_journal`], including the torn-tail fix: a trailing partial
//! line (no final newline) is dropped with a warning instead of
//! poisoning replay.

use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

use venn_core::faultio::{FioError, RealFs, SimFs};
use venn_core::snapshot::checksum;

/// Leading magic of a WAL journal (`b"VWAL"`).
pub const WAL_MAGIC: [u8; 4] = *b"VWAL";

/// Current WAL format version; other versions are rejected.
pub const WAL_VERSION: u32 = 1;

/// Records between fsyncs under [`SyncPolicy::Batch`].
pub const BATCH_RECORDS: u32 = 64;

/// Upper bound on one record's payload — a corrupt length prefix can
/// never drive a huge allocation or a bogus multi-gigabyte "record".
pub const MAX_RECORD: usize = 1 << 24;

/// Per-record header bytes: u32 length + u64 checksum.
const RECORD_HEADER: usize = 12;

/// A filesystem handle shareable between the session, the journal, and
/// the driver — single-threaded interior mutability over the [`SimFs`]
/// boundary so one fault-injection plan governs every durable write a
/// serve process performs.
pub type SharedFs = Rc<RefCell<Box<dyn SimFs>>>;

/// The default backend: the real filesystem.
pub fn real_fs() -> SharedFs {
    shared_fs(RealFs)
}

/// Wraps any [`SimFs`] backend (e.g. a scripted `FaultFs<MemFs>`) as a
/// [`SharedFs`].
pub fn shared_fs(fs: impl SimFs + 'static) -> SharedFs {
    Rc::new(RefCell::new(Box::new(fs)))
}

/// When journal appends reach the platter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SyncPolicy {
    /// fsync after every record.
    Always,
    /// fsync every [`BATCH_RECORDS`] records and on seal (default).
    #[default]
    Batch,
    /// Never fsync; the OS page cache decides.
    Off,
}

impl SyncPolicy {
    /// Parses `always|batch|off`.
    pub fn parse(name: &str) -> Option<Self> {
        Some(match name {
            "always" => SyncPolicy::Always,
            "batch" => SyncPolicy::Batch,
            "off" => SyncPolicy::Off,
            _ => return None,
        })
    }

    /// The flag spelling of this policy.
    pub fn label(&self) -> &'static str {
        match self {
            SyncPolicy::Always => "always",
            SyncPolicy::Batch => "batch",
            SyncPolicy::Off => "off",
        }
    }
}

/// Where and why journal recovery stopped before the end of the file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TornTail {
    /// Byte offset of the first damaged record (or partial line).
    pub offset: usize,
    /// Human-readable reason (short header, checksum mismatch...).
    pub reason: String,
}

/// Why a journal could not be recognized at all (damage *inside* a
/// recognized journal is a [`TornTail`], not an error).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JournalError {
    /// The bytes are neither a WAL (`VWAL` magic) nor legacy JSON lines.
    Unrecognized,
    /// A WAL header with an unsupported version.
    BadVersion(u32),
    /// The journal file could not be read at all.
    Io(FioError),
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalError::Unrecognized => {
                write!(
                    f,
                    "unrecognized journal format (neither VWAL nor JSON lines)"
                )
            }
            JournalError::BadVersion(v) => write!(
                f,
                "unsupported WAL journal version {v} (this build reads {WAL_VERSION})"
            ),
            JournalError::Io(e) => write!(f, "journal: {e}"),
        }
    }
}

impl std::error::Error for JournalError {}

/// A recovered journal: the intact prefix plus damage/seal telemetry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Recovered {
    /// The journal lines, in order, up to the first damage.
    pub lines: Vec<String>,
    /// Whether the journal carried a graceful-shutdown seal record.
    pub sealed: bool,
    /// The torn tail, if recovery stopped before the end of the file.
    pub torn: Option<TornTail>,
    /// Whether the journal was the WAL format (vs legacy text lines).
    pub wal: bool,
}

/// The append side: a WAL journal bound to a [`SharedFs`] path.
pub struct WalWriter {
    fs: SharedFs,
    path: String,
    policy: SyncPolicy,
    since_sync: u32,
    sealed: bool,
}

impl WalWriter {
    /// Creates (truncating) the journal at `path` and writes the header.
    pub fn create(fs: SharedFs, path: &str, policy: SyncPolicy) -> Result<Self, FioError> {
        let mut header = Vec::with_capacity(8);
        header.extend_from_slice(&WAL_MAGIC);
        header.extend_from_slice(&WAL_VERSION.to_le_bytes());
        {
            let mut f = fs.borrow_mut();
            f.write(path, &header)?;
            if policy == SyncPolicy::Always {
                f.sync(path)?;
            }
        }
        Ok(WalWriter {
            fs,
            path: path.to_string(),
            policy,
            since_sync: 0,
            sealed: false,
        })
    }

    /// Appends one journal line as a checksummed record, fsyncing per
    /// the policy. The line must not be empty (an empty record is the
    /// seal marker).
    pub fn append(&mut self, line: &str) -> Result<(), FioError> {
        debug_assert!(!line.is_empty(), "empty journal lines are seal markers");
        let payload = line.as_bytes();
        let mut rec = Vec::with_capacity(RECORD_HEADER + payload.len());
        rec.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        rec.extend_from_slice(&checksum(payload).to_le_bytes());
        rec.extend_from_slice(payload);
        let mut f = self.fs.borrow_mut();
        f.append(&self.path, &rec)?;
        match self.policy {
            SyncPolicy::Always => f.sync(&self.path)?,
            SyncPolicy::Batch => {
                self.since_sync += 1;
                if self.since_sync >= BATCH_RECORDS {
                    f.sync(&self.path)?;
                    self.since_sync = 0;
                }
            }
            SyncPolicy::Off => {}
        }
        Ok(())
    }

    /// Seals the journal: appends the graceful-shutdown marker record
    /// and fsyncs (unless the policy is `off`). Idempotent.
    pub fn seal(&mut self) -> Result<(), FioError> {
        if self.sealed {
            return Ok(());
        }
        let mut rec = Vec::with_capacity(RECORD_HEADER);
        rec.extend_from_slice(&0u32.to_le_bytes());
        rec.extend_from_slice(&checksum(b"").to_le_bytes());
        let mut f = self.fs.borrow_mut();
        f.append(&self.path, &rec)?;
        if self.policy != SyncPolicy::Off {
            f.sync(&self.path)?;
        }
        self.sealed = true;
        Ok(())
    }
}

/// Decodes a WAL journal body (bytes *after* the 8-byte header),
/// returning the intact record prefix and torn-tail telemetry.
fn decode_wal_body(body: &[u8], base_offset: usize) -> Recovered {
    let mut lines = Vec::new();
    let mut pos = 0usize;
    let torn = loop {
        if pos == body.len() {
            break None; // clean unsealed end (e.g. crash between records)
        }
        let off = base_offset + pos;
        if body.len() - pos < RECORD_HEADER {
            break Some(TornTail {
                offset: off,
                reason: format!(
                    "{} trailing bytes, record header needs 12",
                    body.len() - pos
                ),
            });
        }
        let len = u32::from_le_bytes(body[pos..pos + 4].try_into().unwrap()) as usize;
        let stored = u64::from_le_bytes(body[pos + 4..pos + 12].try_into().unwrap());
        if len == 0 {
            // Seal marker: verify its checksum-of-empty, stop cleanly.
            if stored == checksum(b"") {
                return Recovered {
                    lines,
                    sealed: true,
                    torn: None,
                    wal: true,
                };
            }
            break Some(TornTail {
                offset: off,
                reason: "seal record with damaged checksum".into(),
            });
        }
        if len > MAX_RECORD {
            break Some(TornTail {
                offset: off,
                reason: format!("record length {len} exceeds the {MAX_RECORD}-byte bound"),
            });
        }
        if body.len() - pos - RECORD_HEADER < len {
            break Some(TornTail {
                offset: off,
                reason: format!(
                    "record claims {len} payload bytes, {} remain",
                    body.len() - pos - RECORD_HEADER
                ),
            });
        }
        let payload = &body[pos + RECORD_HEADER..pos + RECORD_HEADER + len];
        if checksum(payload) != stored {
            break Some(TornTail {
                offset: off,
                reason: "record checksum mismatch".into(),
            });
        }
        let Ok(line) = std::str::from_utf8(payload) else {
            break Some(TornTail {
                offset: off,
                reason: "record payload is not UTF-8".into(),
            });
        };
        lines.push(line.to_string());
        pos += RECORD_HEADER + len;
    };
    Recovered {
        lines,
        sealed: false,
        torn,
        wal: true,
    }
}

/// Recovers a legacy plain-text journal: complete lines up to the first
/// damage; a trailing partial line (torn tail — no final newline, or
/// invalid UTF-8) is dropped with telemetry instead of failing replay.
fn decode_legacy(bytes: &[u8]) -> Recovered {
    let mut lines = Vec::new();
    let mut pos = 0usize;
    let mut torn = None;
    while pos < bytes.len() {
        match bytes[pos..].iter().position(|&b| b == b'\n') {
            Some(nl) => {
                let raw = &bytes[pos..pos + nl];
                match std::str::from_utf8(raw) {
                    Ok(line) => lines.push(line.to_string()),
                    Err(_) => {
                        torn = Some(TornTail {
                            offset: pos,
                            reason: "line is not UTF-8".into(),
                        });
                        break;
                    }
                }
                pos += nl + 1;
            }
            None => {
                torn = Some(TornTail {
                    offset: pos,
                    reason: format!(
                        "partial final line ({} bytes, no terminating newline)",
                        bytes.len() - pos
                    ),
                });
                break;
            }
        }
    }
    Recovered {
        lines,
        sealed: false,
        torn,
        wal: false,
    }
}

/// Recovers a journal of either format from its raw bytes:
///
/// * `VWAL` magic → WAL decode (bad version is a typed error);
/// * leading `{` (or an empty file) → legacy JSON text lines;
/// * anything else → [`JournalError::Unrecognized`] — damage to the
///   8-byte WAL header cannot silently demote a WAL to "text".
pub fn recover_journal(bytes: &[u8]) -> Result<Recovered, JournalError> {
    if bytes.is_empty() {
        return Ok(Recovered {
            lines: Vec::new(),
            sealed: false,
            torn: None,
            wal: false,
        });
    }
    if bytes.len() >= 4 && bytes[..4] == WAL_MAGIC {
        if bytes.len() < 8 {
            return Ok(Recovered {
                lines: Vec::new(),
                sealed: false,
                torn: Some(TornTail {
                    offset: 4,
                    reason: "WAL header torn before the version word".into(),
                }),
                wal: true,
            });
        }
        let version = u32::from_le_bytes(bytes[4..8].try_into().unwrap());
        if version != WAL_VERSION {
            return Err(JournalError::BadVersion(version));
        }
        return Ok(decode_wal_body(&bytes[8..], 8));
    }
    if bytes[0] == b'{' {
        return Ok(decode_legacy(bytes));
    }
    Err(JournalError::Unrecognized)
}

#[cfg(test)]
mod tests {
    use super::*;
    use venn_core::faultio::MemFs;

    fn write_journal(lines: &[&str], sealed: bool, policy: SyncPolicy) -> Vec<u8> {
        let fs = shared_fs(MemFs::new());
        let mut w = WalWriter::create(fs.clone(), "j.wal", policy).unwrap();
        for line in lines {
            w.append(line).unwrap();
        }
        if sealed {
            w.seal().unwrap();
        }
        let bytes = fs.borrow_mut().read("j.wal").unwrap();
        bytes
    }

    #[test]
    fn wal_round_trips_and_seals() {
        let lines = [r#"{"vt":0,"cmd":"stats"}"#, r#"{"vt":9,"cmd":"quit"}"#];
        let bytes = write_journal(&lines, true, SyncPolicy::Always);
        let r = recover_journal(&bytes).unwrap();
        assert_eq!(r.lines, lines);
        assert!(r.sealed);
        assert!(r.torn.is_none());
        assert!(r.wal);

        // Unsealed (e.g. crash between records): clean prefix, no tear.
        let bytes = write_journal(&lines, false, SyncPolicy::Off);
        let r = recover_journal(&bytes).unwrap();
        assert_eq!(r.lines, lines);
        assert!(!r.sealed);
        assert!(r.torn.is_none());
    }

    #[test]
    fn every_truncation_point_recovers_a_prefix() {
        let lines = [
            r#"{"vt":0,"cmd":"subscribe","every_ms":100}"#,
            r#"{"vt":0,"cmd":"advance","ms":500}"#,
            r#"{"vt":500,"cmd":"stats"}"#,
        ];
        let bytes = write_journal(&lines, true, SyncPolicy::Batch);
        for cut in 8..bytes.len() {
            let r = recover_journal(&bytes[..cut]).unwrap();
            assert!(r.lines.len() <= lines.len(), "cut {cut}");
            assert_eq!(
                r.lines[..],
                lines[..r.lines.len()],
                "cut {cut}: recovered lines must be the intact prefix"
            );
            if !r.sealed && r.torn.is_none() {
                // A cut exactly on a record boundary: fine, prefix only.
                continue;
            }
        }
        // Cutting into the header itself is torn-header telemetry.
        let r = recover_journal(&bytes[..6]).unwrap();
        assert!(r.lines.is_empty());
        assert!(r.torn.is_some());
    }

    #[test]
    fn a_flipped_bit_stops_at_the_damaged_record() {
        let lines = [
            r#"{"vt":0,"cmd":"advance","ms":1}"#,
            r#"{"vt":1,"cmd":"advance","ms":2}"#,
            r#"{"vt":3,"cmd":"stats"}"#,
        ];
        let bytes = write_journal(&lines, true, SyncPolicy::Batch);
        // Flip a bit in every byte position past the header; recovery
        // must always return an intact prefix (never garbage, never a
        // panic).
        for pos in 8..bytes.len() {
            let mut bad = bytes.clone();
            bad[pos] ^= 0x10;
            let r = recover_journal(&bad).unwrap();
            for (i, line) in r.lines.iter().enumerate() {
                assert_eq!(line, lines[i], "flip at {pos}: line {i} not intact");
            }
        }
    }

    #[test]
    fn header_damage_is_a_typed_error_not_text_fallback() {
        let bytes = write_journal(&[r#"{"vt":0,"cmd":"stats"}"#], true, SyncPolicy::Batch);
        let mut bad = bytes.clone();
        bad[0] ^= 0xFF; // magic damaged, first byte no longer '{' or 'V'
        assert_eq!(recover_journal(&bad), Err(JournalError::Unrecognized));
        let mut bad = bytes;
        bad[4] = 0x7F; // version damaged
        assert!(matches!(
            recover_journal(&bad),
            Err(JournalError::BadVersion(_))
        ));
    }

    #[test]
    fn legacy_journal_with_torn_tail_truncates_with_warning() {
        let text = "{\"vt\":0,\"cmd\":\"advance\",\"ms\":5}\n{\"vt\":5,\"cmd\":\"sta";
        let r = recover_journal(text.as_bytes()).unwrap();
        assert_eq!(r.lines, vec![r#"{"vt":0,"cmd":"advance","ms":5}"#]);
        assert!(!r.wal);
        let torn = r.torn.expect("partial line must be reported");
        assert_eq!(torn.offset, 32);

        // A clean legacy journal has no tear.
        let text = "{\"vt\":0,\"cmd\":\"quit\"}\n";
        let r = recover_journal(text.as_bytes()).unwrap();
        assert_eq!(r.lines.len(), 1);
        assert!(r.torn.is_none());

        // Empty file: empty journal, no tear.
        let r = recover_journal(b"").unwrap();
        assert!(r.lines.is_empty() && r.torn.is_none());
    }

    #[test]
    fn batch_policy_syncs_on_the_batch_boundary() {
        // MemFs sync is a no-op, so drive the policy through a FaultFs
        // that faults the first sync: `always` hits it on record 1,
        // `batch` only at the boundary.
        use venn_core::faultio::{Fault, FaultFs, FaultRule, FioOp, MemFs};
        let fs = shared_fs(FaultFs::scripted(
            MemFs::new(),
            vec![FaultRule::on(FioOp::Sync, "", Fault::Io)],
        ));
        let mut w = WalWriter::create(fs, "j.wal", SyncPolicy::Batch).unwrap();
        for i in 0..BATCH_RECORDS - 1 {
            w.append(&format!("{{\"n\":{i}}}")).unwrap();
        }
        // The BATCH_RECORDS-th append crosses the boundary and syncs.
        assert!(w.append("{\"n\":63}").is_err());
    }
}
