//! A minimal JSON value model, parser, and writer.
//!
//! The serving protocol is line-delimited JSON, and the workspace builds
//! offline with no serialization dependency — so this module hand-rolls
//! the ~200 lines of JSON the protocol actually needs. Two properties
//! matter more here than generality:
//!
//! * **Integer fidelity.** Virtual times, job indices, and event counts
//!   are `u64`/`i64` quantities; a float round-trip could corrupt them.
//!   Numbers without a fraction or exponent parse as [`Value::Int`] and
//!   print digit-for-digit.
//! * **Deterministic output.** [`Value::to_json`] writes objects in
//!   insertion order with no whitespace, and every protocol message is
//!   *constructed* field by field in a fixed order — so a replayed
//!   session serializes byte-identical journal lines and responses.
//!   Parsing is lenient about whitespace and key order; writing is not.

use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number with no fraction or exponent, within `i64` range.
    Int(i64),
    /// Any other number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, in insertion (for parses: source) order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in an object (first match; `None` on non-objects).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::Int(i) if i >= 0 => Some(i as u64),
            _ => None,
        }
    }

    /// The value as a signed integer, if it is one.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::Int(i) => Some(i),
            _ => None,
        }
    }

    /// The value as a float (integers widen), if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::Int(i) => Some(i as f64),
            Value::Float(f) => Some(f),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Serializes compactly (no whitespace), object fields in insertion
    /// order — the canonical form journal lines and responses use.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Value::Float(f) => {
                if f.is_finite() {
                    // `{:?}` prints the shortest representation that
                    // round-trips, and always marks the value as a float
                    // ("1.0", not "1") — deterministic and loss-free.
                    let _ = write!(out, "{f:?}");
                } else {
                    // JSON has no Inf/NaN; the protocol never produces
                    // them, but a total writer must pick something.
                    out.push_str("null");
                }
            }
            Value::Str(s) => write_str(s, out),
            Value::Array(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Value::Object(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_str(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Builds an object from `(key, value)` pairs in the given order — the
/// construction helper behind every protocol message.
pub fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

/// Parses one JSON document, rejecting trailing garbage. Errors are
/// human-readable one-liners with a byte offset.
pub fn parse(input: &str) -> Result<Value, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing characters at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", b as char, self.pos))
        }
    }

    fn eat_literal(&mut self, lit: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            None => Err("unexpected end of input".into()),
            Some(b'n') => self.eat_literal("null", Value::Null),
            Some(b't') => self.eat_literal("true", Value::Bool(true)),
            Some(b'f') => self.eat_literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(format!(
                "unexpected character {:?} at byte {}",
                other as char, self.pos
            )),
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape {hex:?}"))?;
                            // Surrogates are rejected rather than paired:
                            // the protocol is ASCII in practice.
                            let c = char::from_u32(code)
                                .ok_or(format!("\\u{hex} is not a scalar value"))?;
                            out.push(c);
                            self.pos += 4;
                        }
                        other => {
                            return Err(format!("bad escape {other:?} at byte {}", self.pos));
                        }
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => {
                    return Err(format!("raw control byte in string at {}", self.pos));
                }
                Some(_) => {
                    // Multi-byte UTF-8 sequences pass through unchanged;
                    // the input is a &str so they are already valid.
                    let start = self.pos;
                    self.pos += 1;
                    while self
                        .bytes
                        .get(self.pos)
                        .is_some_and(|&b| b & 0b1100_0000 == 0b1000_0000)
                    {
                        self.pos += 1;
                    }
                    out.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).unwrap());
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut saw_digit = false;
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => {
                    saw_digit = true;
                    self.pos += 1;
                }
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        if !saw_digit {
            return Err(format!("malformed number at byte {start}"));
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| format!("malformed number {text:?}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse(" true ").unwrap(), Value::Bool(true));
        assert_eq!(parse("42").unwrap(), Value::Int(42));
        assert_eq!(parse("-7").unwrap(), Value::Int(-7));
        assert_eq!(parse("2.5").unwrap(), Value::Float(2.5));
        assert_eq!(parse("1e3").unwrap(), Value::Float(1000.0));
        assert_eq!(parse("\"hi\\n\"").unwrap(), Value::Str("hi\n".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a": [1, {"b": "c"}], "d": null}"#).unwrap();
        assert_eq!(
            v.get("a").unwrap(),
            &Value::Array(vec![
                Value::Int(1),
                obj(vec![("b", Value::Str("c".into()))]),
            ])
        );
        assert_eq!(v.get("d"), Some(&Value::Null));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "{\"a\":}",
            "tru",
            "1 2",
            "\"\\q\"",
            "nul",
            "{\"a\":1,}",
            "[,]",
            "--1",
            "\"unterminated",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn writes_canonical_compact_form() {
        let v = obj(vec![
            ("vt", Value::Int(12)),
            ("cmd", Value::Str("advance".into())),
            ("quote", Value::Str("a\"b".into())),
        ]);
        assert_eq!(v.to_json(), r#"{"vt":12,"cmd":"advance","quote":"a\"b"}"#);
    }

    #[test]
    fn roundtrips_through_parse() {
        let v = obj(vec![
            ("i", Value::Int(-3)),
            ("f", Value::Float(0.125)),
            ("s", Value::Str("x\ty".into())),
            ("a", Value::Array(vec![Value::Bool(false), Value::Null])),
        ]);
        assert_eq!(parse(&v.to_json()).unwrap(), v);
    }

    #[test]
    fn large_integers_keep_exact_digits() {
        let big = (1i64 << 53) + 1; // not representable in f64
        let v = Value::Int(big);
        assert_eq!(parse(&v.to_json()).unwrap(), v);
    }
}
