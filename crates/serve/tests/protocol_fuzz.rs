//! Malformed, hostile, and out-of-order input never panics the session:
//! every failure mode is a typed error response with a stable code.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use venn_serve::{SchedSpec, ServeSession};
use venn_sim::SimConfig;
use venn_traces::Workload;

fn session() -> ServeSession {
    let config = SimConfig {
        population: 200,
        days: 1,
        seed: 3,
        ..SimConfig::default()
    };
    let mut rng = StdRng::seed_from_u64(3);
    let workload = Workload::default_scenario(4, &mut rng);
    let spec = SchedSpec {
        name: "venn".into(),
        epsilon: 0.0,
        tiers: 3,
        seed: 3,
    };
    ServeSession::new(config, spec, &workload).unwrap()
}

/// Extracts `"code":"..."` from an error response line.
fn error_code(resp: &str) -> Option<&str> {
    let at = resp.find("\"code\":\"")? + 8;
    resp[at..].split('"').next()
}

#[test]
fn typed_errors_for_out_of_order_commands() {
    let mut s = session();
    let cases: &[(&str, &str)] = &[
        ("not json at all", "bad-json"),
        ("{\"cmd\":\"advance\"}", "bad-arg"),
        ("{\"cmd\":\"advance\",\"ms\":-5}", "past-time"),
        ("{\"cmd\":\"frobnicate\"}", "unknown-cmd"),
        ("{\"cmd\":\"withdraw\",\"job\":999999}", "unknown-job"),
        ("{\"cmd\":\"query-job\",\"job\":999999}", "unknown-job"),
        ("{\"cmd\":\"submit\",\"category\":\"general\"}", "bad-arg"),
        (
            "{\"cmd\":\"submit\",\"category\":\"quantum\",\"rounds\":1,\"demand\":1,\"task_ms\":1}",
            "bad-arg",
        ),
        (
            "{\"cmd\":\"submit\",\"category\":\"general\",\"rounds\":0,\"demand\":1,\"task_ms\":1}",
            "bad-arg",
        ),
        ("{\"cmd\":\"fork\",\"scheduler\":\"nope\"}", "bad-arg"),
        ("{\"cmd\":\"subscribe\",\"every_ms\":0}", "bad-arg"),
        ("[1,2,3]", "bad-json"),
        ("{\"no_cmd\":true}", "unknown-cmd"),
    ];
    for (line, want) in cases {
        let out = s.apply_line(line);
        assert_eq!(out.responses.len(), 1, "one response for {line:?}");
        let resp = &out.responses[0];
        assert!(resp.contains("\"ok\":false"), "{line:?} -> {resp}");
        assert_eq!(error_code(resp), Some(*want), "{line:?} -> {resp}");
        assert!(
            out.journal.is_none(),
            "rejected command journaled: {line:?}"
        );
        assert!(!out.quit);
    }
    // Submitting a job whose arrival predates the current virtual time
    // is a past-time error once the clock has moved.
    assert!(s
        .apply_line("{\"cmd\":\"advance\",\"ms\":1000}")
        .journal
        .is_some());
    let out = s.apply_line(
        "{\"cmd\":\"submit\",\"category\":\"general\",\"rounds\":1,\"demand\":1,\"task_ms\":1,\"arrival_ms\":10}",
    );
    assert_eq!(error_code(&out.responses[0]), Some("past-time"));
}

#[test]
fn commands_after_quit_are_rejected() {
    let mut s = session();
    let out = s.apply_line("{\"cmd\":\"quit\"}");
    assert!(out.quit);
    assert!(out.journal.is_some());
    for line in [
        "{\"cmd\":\"stats\"}",
        "{\"cmd\":\"advance\",\"ms\":1}",
        "junk",
    ] {
        let out = s.apply_line(line);
        assert_eq!(error_code(&out.responses[0]), Some("after-quit"));
        assert!(out.journal.is_none());
    }
}

#[test]
fn vt_stamp_mismatch_is_detected() {
    let mut s = session();
    // A journal line stamped at a vt the session is not at.
    let out = s.apply_line("{\"vt\":123,\"cmd\":\"stats\"}");
    assert_eq!(error_code(&out.responses[0]), Some("vt-mismatch"));
    // The right stamp applies cleanly.
    let out = s.apply_line("{\"vt\":0,\"cmd\":\"stats\"}");
    assert!(out.responses[0].contains("\"ok\":true"));
}

proptest! {
    /// Arbitrary byte soup: no panic, at most one response (blank lines
    /// get none), and every response is a JSON line carrying `vt`.
    #[test]
    fn arbitrary_lines_never_panic(bytes in proptest::collection::vec(0u8..255, 0..200)) {
        let line = String::from_utf8_lossy(&bytes).into_owned();
        let mut s = session();
        let out = s.apply_line(&line);
        prop_assert!(out.responses.len() <= 1);
        for resp in &out.responses {
            prop_assert!(resp.starts_with('{'), "response is JSON: {}", resp);
            prop_assert!(resp.contains("\"vt\":"));
        }
    }

    /// Structured garbage aimed at the command grammar: real command
    /// names paired with wrong/missing arguments and extreme numbers.
    /// Still no panics, and every response is a single JSON line.
    #[test]
    fn grammar_shaped_garbage_never_panics(
        cmd_sel in 0usize..12,
        key_sel in 0usize..6,
        num in -(1i64 << 61)..(1i64 << 61),
    ) {
        let cmds = [
            "submit", "withdraw", "advance", "stats", "fork", "quit", "subscribe",
            "query-job", "checkpoint", "save-workload", "unsubscribe", "zzz",
        ];
        let keys = ["ms", "job", "rounds", "every_ms", "vt", "x"];
        let mut s = session();
        let line = format!("{{\"cmd\":\"{}\",\"{}\":{}}}", cmds[cmd_sel], keys[key_sel], num);
        let out = s.apply_line(&line);
        prop_assert_eq!(out.responses.len(), 1);
        let resp = &out.responses[0];
        prop_assert!(resp.contains("\"ok\":"), "{}", resp);
    }

    /// Valid commands with randomized numeric arguments: either accepted
    /// (and journaled) or rejected with a typed code — never a panic,
    /// never an untyped failure.
    #[test]
    fn randomized_valid_commands(
        ms in -(1i64 << 61)..(1i64 << 61),
        job in 0usize..16,
        rounds in 0u32..1_000,
    ) {
        let mut s = session();
        for line in [
            format!("{{\"cmd\":\"advance\",\"ms\":{ms}}}"),
            format!("{{\"cmd\":\"withdraw\",\"job\":{job}}}"),
            format!(
                "{{\"cmd\":\"submit\",\"category\":\"memory\",\"rounds\":{rounds},\"demand\":1,\"task_ms\":1000}}"
            ),
        ] {
            let out = s.apply_line(&line);
            prop_assert_eq!(out.responses.len(), 1);
            let resp = &out.responses[0];
            if resp.contains("\"ok\":true") {
                prop_assert!(out.journal.is_some(), "accepted but not journaled: {}", line);
            } else {
                prop_assert!(error_code(resp).is_some(), "untyped error: {}", resp);
                prop_assert!(out.journal.is_none());
            }
        }
    }
}
