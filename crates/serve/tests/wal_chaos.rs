//! Chaos sweeps over the WAL journal: a journal torn at **any** byte, or
//! damaged by **any** single-bit flip, must recover to an intact record
//! prefix (byte-identical on re-replay) or a typed error — never a
//! panic, never a forged record.
//!
//! The journal here is a real one: a serve session drives the full
//! command surface through [`run_lines`] with a [`WalWriter`] over an
//! in-memory [`SimFs`], and the sweeps mutate those literal bytes.

use rand::rngs::StdRng;
use rand::SeedableRng;

use venn_core::faultio::MemFs;
use venn_serve::{
    recover_journal, run_lines, shared_fs, JournalError, SchedSpec, ServeSession, SyncPolicy,
    WalWriter,
};
use venn_sim::SimConfig;
use venn_traces::Workload;

const SEED: u64 = 29;

/// Bytes of the seal record: u32 len (0) + u64 checksum of `b""`.
const SEAL_BYTES: usize = 12;

/// WAL file header: magic + version.
const HEADER_BYTES: usize = 8;

fn session() -> ServeSession {
    let config = SimConfig {
        population: 600,
        days: 2,
        seed: SEED,
        ..SimConfig::default()
    };
    let mut rng = StdRng::seed_from_u64(SEED);
    let workload = Workload::default_scenario(5, &mut rng);
    let spec = SchedSpec {
        name: "venn".into(),
        epsilon: 0.0,
        tiers: 3,
        seed: SEED,
    };
    ServeSession::new(config, spec, &workload).unwrap()
}

/// A script exercising frames, errors, and multi-byte payload lengths.
fn script() -> Vec<String> {
    [
        r#"{"cmd":"subscribe","every_ms":21600000}"#,
        r#"{"cmd":"advance","ms":3600000}"#,
        r#"{"cmd":"submit","category":"compute","rounds":3,"demand":40,"task_ms":90000}"#,
        r#"{"cmd":"advance","ms":21600000}"#,
        r#"{"cmd":"withdraw","job":3}"#,
        r#"{"cmd":"stats"}"#,
        r#"{"cmd":"advance","ms":43200000}"#,
        r#"{"cmd":"quit"}"#,
    ]
    .map(String::from)
    .to_vec()
}

/// Runs `lines` through a fresh session writing a sealed WAL journal,
/// returning the journal's raw bytes.
fn record_journal(lines: &[String]) -> Vec<u8> {
    let fs = shared_fs(MemFs::new());
    let mut s = session();
    let mut journal =
        Some(WalWriter::create(fs.clone(), "journal.wal", SyncPolicy::Batch).unwrap());
    let mut sink = Vec::new();
    run_lines(
        &mut s,
        lines.iter().map(|l| Ok(l.clone())),
        &mut sink,
        &mut journal,
    )
    .unwrap();
    journal.as_mut().unwrap().seal().unwrap();
    let bytes = fs.borrow_mut().read("journal.wal").unwrap();
    assert!(!bytes.is_empty());
    bytes
}

/// Byte offset where record `i` (0-based) starts, given the decoded
/// payloads. Record `lines.len()` is the seal.
fn record_offsets(lines: &[String]) -> Vec<usize> {
    let mut offsets = Vec::with_capacity(lines.len() + 2);
    let mut at = HEADER_BYTES;
    for line in lines {
        offsets.push(at);
        at += SEAL_BYTES + line.len();
    }
    offsets.push(at); // the seal record
    offsets.push(at + SEAL_BYTES); // end of file
    offsets
}

#[test]
fn truncation_at_every_byte_recovers_an_exact_prefix() {
    let bytes = record_journal(&script());
    let whole = recover_journal(&bytes).expect("intact journal");
    assert!(whole.sealed && whole.torn.is_none() && whole.wal);
    let lines = whole.lines;
    assert!(
        lines.len() >= script().len() - 1,
        "journal too small to sweep"
    );
    let offsets = record_offsets(&lines);
    assert_eq!(
        *offsets.last().unwrap(),
        bytes.len(),
        "offset model drifted"
    );

    for cut in 0..=bytes.len() {
        let got = recover_journal(&bytes[..cut]);
        if cut == 0 {
            assert!(matches!(got, Ok(ref r) if r.lines.is_empty() && !r.wal));
            continue;
        }
        if cut < 4 {
            // A partial magic is not a recognizable journal.
            assert!(
                matches!(got, Err(JournalError::Unrecognized)),
                "cut@{cut}: {got:?}"
            );
            continue;
        }
        if cut < HEADER_BYTES {
            // Full magic, torn version word: recognized WAL, zero lines.
            let r = got.unwrap_or_else(|e| panic!("cut@{cut}: {e}"));
            assert!(r.wal && r.lines.is_empty() && r.torn.is_some(), "cut@{cut}");
            continue;
        }
        let r = got.unwrap_or_else(|e| panic!("cut@{cut}: typed error {e} on valid prefix"));
        // The number of records lying wholly in front of the cut.
        let intact = lines
            .iter()
            .enumerate()
            .take_while(|(i, l)| offsets[*i] + SEAL_BYTES + l.len() <= cut)
            .count();
        assert_eq!(
            r.lines,
            &lines[..intact],
            "cut@{cut}: recovered lines are not the intact prefix"
        );
        assert_eq!(r.sealed, cut == bytes.len(), "cut@{cut}: seal state");
        assert_eq!(
            r.torn.is_some(),
            cut != bytes.len() && cut != offsets[intact],
            "cut@{cut}: a cut inside a record must be reported as torn"
        );
    }
}

#[test]
fn truncated_journals_replay_byte_identically_up_to_the_tear() {
    let bytes = record_journal(&script());
    let whole = recover_journal(&bytes).expect("intact journal").lines;

    // Every record boundary plus a byte *inside* each record.
    let offsets = record_offsets(&whole);
    let mut cuts: Vec<usize> = offsets.clone();
    cuts.extend(offsets.iter().skip(1).map(|o| o - 3));
    cuts.retain(|&c| c <= bytes.len());

    for cut in cuts {
        let Ok(r) = recover_journal(&bytes[..cut]) else {
            continue; // header cuts: typed error, nothing to replay
        };
        // Replay the recovered prefix through an identical fresh session
        // into a fresh WAL: the regenerated journal, minus its seal, must
        // be byte-identical to the original's intact prefix.
        let fs = shared_fs(MemFs::new());
        let mut s = session();
        let mut journal =
            Some(WalWriter::create(fs.clone(), "replay.wal", SyncPolicy::Off).unwrap());
        let mut sink = Vec::new();
        run_lines(
            &mut s,
            r.lines.iter().map(|l| Ok(l.clone())),
            &mut sink,
            &mut journal,
        )
        .unwrap();
        journal.as_mut().unwrap().seal().unwrap();
        let regen = fs.borrow_mut().read("replay.wal").unwrap();
        let body = &regen[..regen.len() - SEAL_BYTES];
        assert_eq!(
            body,
            &bytes[..body.len()],
            "cut@{cut}: replayed journal diverges from the surviving prefix"
        );
    }
}

#[test]
fn single_bit_flips_never_panic_and_never_forge_records() {
    let bytes = record_journal(&script());
    let whole = recover_journal(&bytes).expect("intact journal").lines;
    let offsets = record_offsets(&whole);

    for pos in 0..bytes.len() {
        let mut mutated = bytes.clone();
        mutated[pos] ^= 1 << (pos % 8);
        let got = recover_journal(&mutated);
        if pos < HEADER_BYTES {
            // Magic or version damage: a typed error, never a guess.
            assert!(
                matches!(
                    got,
                    Err(JournalError::Unrecognized) | Err(JournalError::BadVersion(_))
                ),
                "flip@{pos}: {got:?}"
            );
            continue;
        }
        let r = got.unwrap_or_else(|e| panic!("flip@{pos}: typed error {e} on a WAL body flip"));
        // The record the flipped byte lives in is the first damage the
        // decoder may see; everything before it must survive verbatim.
        let rec = (offsets.iter().take_while(|&&o| o <= pos).count() - 1).min(whole.len());
        assert_eq!(
            r.lines,
            &whole[..rec],
            "flip@{pos}: checksum failed to confine damage to record {rec}"
        );
        assert!(
            r.torn.is_some() && !r.sealed,
            "flip@{pos}: damage must be reported as a torn tail"
        );
    }
}
