//! Fork semantics: the what-if child a live session produces is exactly
//! the run an offline `--fork-from` of the same checkpoint would
//! produce — same snapshot bytes, same `fork_world` path, same CSV.

use rand::rngs::StdRng;
use rand::SeedableRng;

use venn_serve::{result_csv, SchedSpec, ServeSession};
use venn_sim::{fork_world, SimConfig};
use venn_traces::Workload;

const SEED: u64 = 23;

fn tmp(name: &str) -> String {
    let dir = std::env::temp_dir().join(format!("venn-fork-eq-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name).to_str().unwrap().to_string()
}

#[test]
fn session_fork_matches_offline_fork_of_same_checkpoint() {
    let config = SimConfig {
        population: 900,
        days: 2,
        seed: SEED,
        ..SimConfig::default()
    };
    let mut rng = StdRng::seed_from_u64(SEED);
    let workload = Workload::default_scenario(6, &mut rng);
    let spec = SchedSpec {
        name: "venn".into(),
        epsilon: 0.0,
        tiers: 3,
        seed: SEED,
    };
    let mut session = ServeSession::new(config, spec, &workload).unwrap();

    // Mutate the run first so the fork starts from state no fresh run
    // ever visits: a mid-run submission, then six simulated hours.
    for line in [
        r#"{"cmd":"submit","category":"memory","rounds":3,"demand":25,"task_ms":60000}"#
            .to_string(),
        r#"{"cmd":"advance","ms":21600000}"#.to_string(),
    ] {
        let out = session.apply_line(&line);
        assert!(
            out.responses[0].contains("\"ok\":true"),
            "{:?}",
            out.responses
        );
    }

    // Checkpoint and fork at the same instant, with no mutation between.
    let ckpt = tmp("mid.vsnp");
    let csv = tmp("fork-alt.csv");
    let out = session.apply_line(&format!("{{\"cmd\":\"checkpoint\",\"path\":{ckpt:?}}}"));
    assert!(
        out.responses[0].contains("\"ok\":true"),
        "{:?}",
        out.responses
    );
    let out = session.apply_line(&format!(
        "{{\"cmd\":\"fork\",\"scheduler\":\"srsf\",\"csv\":{csv:?}}}"
    ));
    assert!(
        out.responses[0].contains("\"ok\":true"),
        "{:?}",
        out.responses
    );
    let session_csv = std::fs::read_to_string(&csv).unwrap();

    // Offline: restore the checkpoint under a fresh srsf arm — exactly
    // what `vennsim --fork-from ckpt --scheduler srsf --csv` does — using
    // the workload as the session knows it (including the submission).
    let bytes = std::fs::read(&ckpt).unwrap();
    let alt = SchedSpec {
        name: "srsf".into(),
        epsilon: 0.0,
        tiers: 3,
        seed: SEED,
    };
    let mut sched = alt.build().unwrap();
    let mut world = fork_world(&bytes, config, session.world().workload(), &mut *sched).unwrap();
    while world.step(&mut *sched, &mut []) {}
    let offline_csv = result_csv(&world.finish(&mut []));

    assert_eq!(
        session_csv, offline_csv,
        "fork CSV diverges from offline fork"
    );

    // The fork must not have perturbed the live session: its world still
    // replays deterministically afterwards.
    let out = session.apply_line(r#"{"cmd":"stats"}"#);
    assert!(out.responses[0].contains("\"ok\":true"));
}

#[test]
fn fork_refuses_mismatched_workload() {
    // A snapshot is pinned to its (config, workload) pair; forking it
    // against a different workload must fail loudly, not drift.
    let config = SimConfig {
        population: 300,
        days: 1,
        seed: SEED,
        ..SimConfig::default()
    };
    let mut rng = StdRng::seed_from_u64(SEED);
    let workload = Workload::default_scenario(4, &mut rng);
    let spec = SchedSpec {
        name: "venn".into(),
        epsilon: 0.0,
        tiers: 3,
        seed: SEED,
    };
    let mut session = ServeSession::new(config, spec.clone(), &workload).unwrap();
    session.apply_line(r#"{"cmd":"advance","ms":3600000}"#);
    let ckpt = tmp("pinned.vsnp");
    let out = session.apply_line(&format!("{{\"cmd\":\"checkpoint\",\"path\":{ckpt:?}}}"));
    assert!(out.responses[0].contains("\"ok\":true"));

    let bytes = std::fs::read(&ckpt).unwrap();
    let mut rng = StdRng::seed_from_u64(SEED + 1);
    let other = Workload::default_scenario(4, &mut rng);
    let mut sched = spec.build().unwrap();
    let err = fork_world(&bytes, config, &other, &mut *sched).unwrap_err();
    assert!(
        err.to_string().contains("fingerprint"),
        "expected fingerprint mismatch, got: {err}"
    );
}
