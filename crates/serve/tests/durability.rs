//! Serve-plane durability: scripted I/O faults routed through a
//! session's [`SharedFs`] must surface as **typed** protocol errors (or
//! a typed fatal for the journal itself), and the bounded outbound
//! queue must convert overflow into a single backpressure error —
//! never a panic, never silent loss.

use rand::rngs::StdRng;
use rand::SeedableRng;

use venn_core::faultio::{Fault, FaultFs, FaultRule, FioOp, MemFs};
use venn_serve::{
    run_lines, shared_fs, OutQueue, SchedSpec, ServeSession, SharedFs, SyncPolicy, WalWriter,
};
use venn_sim::SimConfig;
use venn_traces::Workload;

const SEED: u64 = 31;

fn session_with(fs: SharedFs) -> ServeSession {
    let config = SimConfig {
        population: 500,
        days: 1,
        seed: SEED,
        ..SimConfig::default()
    };
    let mut rng = StdRng::seed_from_u64(SEED);
    let workload = Workload::default_scenario(4, &mut rng);
    let spec = SchedSpec {
        name: "venn".into(),
        epsilon: 0.0,
        tiers: 3,
        seed: SEED,
    };
    ServeSession::with_fs(config, spec, &workload, fs).unwrap()
}

/// The session's checkpoint command retries transient faults; when the
/// fault persists past the retry budget it surfaces as a typed `io`
/// error response — the session stays alive and the next command works.
#[test]
fn persistent_checkpoint_fault_is_a_typed_io_error() {
    let fs = shared_fs(FaultFs::scripted(
        MemFs::new(),
        vec![
            FaultRule::on(FioOp::Write, "ckpt.vsnp", Fault::NoSpace),
            FaultRule::on(FioOp::Write, "ckpt.vsnp", Fault::NoSpace),
            FaultRule::on(FioOp::Write, "ckpt.vsnp", Fault::NoSpace),
            FaultRule::on(FioOp::Write, "ckpt.vsnp", Fault::NoSpace),
        ],
    ));
    let mut s = session_with(fs);
    let out = s.apply_line(r#"{"cmd":"advance","ms":3600000}"#);
    assert!(
        out.responses[0].contains("\"ok\":true"),
        "{:?}",
        out.responses
    );

    let out = s.apply_line(r#"{"cmd":"checkpoint","path":"ckpt.vsnp"}"#);
    assert_eq!(out.responses.len(), 1);
    assert!(
        out.responses[0].contains("\"ok\":false") && out.responses[0].contains("\"code\":\"io\""),
        "persistent ENOSPC must surface as a typed io error: {:?}",
        out.responses
    );
    assert!(
        out.journal.is_none(),
        "a failed checkpoint must not journal"
    );

    // The session survives: the same command now succeeds (faults spent).
    let out = s.apply_line(r#"{"cmd":"checkpoint","path":"ckpt.vsnp"}"#);
    assert!(
        out.responses[0].contains("\"ok\":true"),
        "{:?}",
        out.responses
    );
}

/// A *transient* fault under the retry budget is absorbed: the client
/// sees plain success.
#[test]
fn transient_checkpoint_fault_is_absorbed_by_retry() {
    let fs = shared_fs(FaultFs::scripted(
        MemFs::new(),
        vec![FaultRule::on(FioOp::Write, "ckpt.vsnp", Fault::Io)],
    ));
    let mut s = session_with(fs);
    s.apply_line(r#"{"cmd":"advance","ms":3600000}"#);
    let out = s.apply_line(r#"{"cmd":"checkpoint","path":"ckpt.vsnp"}"#);
    assert!(
        out.responses[0].contains("\"ok\":true"),
        "one transient EIO must be invisible to the client: {:?}",
        out.responses
    );
}

/// Save-workload faults surface the same way — typed, non-fatal.
#[test]
fn save_workload_fault_is_a_typed_io_error() {
    let fs = shared_fs(FaultFs::scripted(
        MemFs::new(),
        vec![FaultRule::on(FioOp::Write, "wl.json", Fault::NoSpace)],
    ));
    let mut s = session_with(fs);
    let out = s.apply_line(r#"{"cmd":"save-workload","path":"wl.json"}"#);
    assert!(
        out.responses[0].contains("\"ok\":false") && out.responses[0].contains("\"code\":\"io\""),
        "{:?}",
        out.responses
    );
}

/// An EIO on journal append is fatal to the drive loop — the WAL is the
/// replay authority; running past a hole would record a lie. The error
/// is a typed `io::Error`, not a panic, and everything already written
/// still recovers.
#[test]
fn journal_append_fault_is_fatal_and_typed() {
    let fs = shared_fs(FaultFs::scripted(
        MemFs::new(),
        vec![FaultRule::after(FioOp::Append, "journal.wal", 1, Fault::Io)],
    ));
    let mut s = session_with(fs.clone());
    let mut journal =
        Some(WalWriter::create(fs.clone(), "journal.wal", SyncPolicy::Always).unwrap());
    let script = [
        r#"{"cmd":"advance","ms":3600000}"#,
        r#"{"cmd":"advance","ms":3600000}"#, // append #2: EIO
        r#"{"cmd":"advance","ms":3600000}"#, // never reached
    ];
    let mut sink = Vec::new();
    let err = run_lines(
        &mut s,
        script.iter().map(|l| Ok(l.to_string())),
        &mut sink,
        &mut journal,
    )
    .expect_err("journal EIO must abort the drive loop");
    assert!(err.to_string().contains("journal append"), "{err}");

    // The first record survived and recovers cleanly.
    let bytes = fs.borrow_mut().read("journal.wal").unwrap();
    let recovered = venn_serve::recover_journal(&bytes).unwrap();
    assert_eq!(recovered.lines.len(), 1, "{:?}", recovered.lines);
    assert!(recovered.lines[0].contains("\"cmd\":\"advance\""));
}

/// The bounded outbound queue: under cap it FIFOs; at cap it replaces
/// the whole backlog with one overflow line, trips, closes, and reports
/// the client gone — exactly the slow-subscriber disconnect contract.
#[test]
fn out_queue_overflow_replaces_backlog_and_closes() {
    let q = OutQueue::new();
    assert!(q.push(3, "a", || unreachable!("no overflow yet")));
    assert!(q.push(3, "b", || unreachable!("no overflow yet")));
    assert!(q.push(3, "c", || unreachable!("no overflow yet")));
    assert!(!q.tripped());

    // Fourth push overflows: backlog replaced, queue closed, caller told
    // the client is gone.
    assert!(!q.push(3, "d", || "backpressure!".to_string()));
    assert!(q.tripped());

    // Further pushes are rejected without invoking the overflow line.
    assert!(!q.push(3, "e", || unreachable!("queue already closed")));

    // The writer drains exactly the overflow notice, then sees EOF.
    assert_eq!(q.pop().as_deref(), Some("backpressure!"));
    assert_eq!(q.pop(), None);
}

/// A normally-finished queue drains its backlog in order before EOF.
#[test]
fn out_queue_finish_drains_in_order() {
    let q = OutQueue::new();
    assert!(q.push(8, "one", || unreachable!()));
    assert!(q.push(8, "two", || unreachable!()));
    q.finish();
    assert!(
        !q.push(8, "three", || unreachable!()),
        "closed to new lines"
    );
    assert_eq!(q.pop().as_deref(), Some("one"));
    assert_eq!(q.pop().as_deref(), Some("two"));
    assert_eq!(q.pop(), None);
    assert!(!q.tripped(), "a normal finish is not an overflow trip");
}
