//! The tentpole guarantee: a recorded live session, replayed from its
//! journal through the same code path, is byte-identical — responses
//! and regenerated journal both — across every execution arm.

use rand::rngs::StdRng;
use rand::SeedableRng;

use venn_serve::{SchedSpec, ServeSession};
use venn_sim::{ExecMode, PopMode, SimConfig};
use venn_traces::Workload;

const SEED: u64 = 17;

fn config(exec: ExecMode, pop_mode: PopMode) -> SimConfig {
    SimConfig {
        population: 800,
        days: 2,
        seed: SEED,
        exec,
        pop_mode,
        ..SimConfig::default()
    }
}

fn session(config: SimConfig) -> ServeSession {
    let mut rng = StdRng::seed_from_u64(SEED);
    let workload = Workload::default_scenario(5, &mut rng);
    let spec = SchedSpec {
        name: "venn".into(),
        epsilon: 0.0,
        tiers: 3,
        seed: SEED,
    };
    ServeSession::new(config, spec, &workload).unwrap()
}

/// Runs a script through a fresh session, returning (responses, journal).
fn run_script(config: SimConfig, script: &[String]) -> (Vec<String>, Vec<String>) {
    let mut s = session(config);
    let mut responses = Vec::new();
    let mut journal = Vec::new();
    for line in script {
        let out = s.apply_line(line);
        responses.extend(out.responses);
        journal.extend(out.journal);
        if out.quit {
            break;
        }
    }
    (responses, journal)
}

/// A session exercising the full mutation surface: mid-run submission,
/// withdrawal, telemetry subscription, and explicit time control.
fn script() -> Vec<String> {
    [
        r#"{"cmd":"subscribe","every_ms":21600000}"#,
        r#"{"cmd":"advance","ms":3600000}"#,
        r#"{"cmd":"submit","category":"compute","rounds":3,"demand":40,"task_ms":90000}"#,
        r#"{"cmd":"submit","category":"general","rounds":2,"demand":10,"task_ms":30000,"arrival_ms":7200000}"#,
        r#"{"cmd":"advance","ms":21600000}"#,
        r#"{"cmd":"withdraw","job":5}"#,
        r#"{"cmd":"query-job","job":0}"#,
        r#"{"cmd":"unsubscribe"}"#,
        r#"{"cmd":"advance","ms":43200000}"#,
        r#"{"cmd":"stats"}"#,
        r#"{"cmd":"quit"}"#,
    ]
    .map(String::from)
    .to_vec()
}

#[test]
fn replay_is_byte_identical_across_exec_and_pop_arms() {
    let arms = [
        (ExecMode::Sequential, PopMode::Eager),
        (ExecMode::Sequential, PopMode::Lazy),
        (ExecMode::Sharded { shards: 4 }, PopMode::Eager),
        (ExecMode::Sharded { shards: 4 }, PopMode::Lazy),
    ];
    let mut by_pop: std::collections::HashMap<&str, Vec<String>> = Default::default();
    for (exec, pop) in arms {
        let cfg = config(exec, pop);
        let (live_resp, live_journal) = run_script(cfg, &script());
        assert!(
            !live_journal.is_empty(),
            "{exec:?}/{pop:?}: nothing journaled"
        );

        // Replay the journal through an identical fresh session.
        let (replay_resp, replay_journal) = run_script(cfg, &live_journal);
        assert_eq!(
            live_resp, replay_resp,
            "{exec:?}/{pop:?}: replay responses diverge from live"
        );
        assert_eq!(
            live_journal, replay_journal,
            "{exec:?}/{pop:?}: journal is not a serialization fixed point"
        );
        // Sharded execution is bit-identical to sequential by
        // construction; the serve layer must preserve that. (Pop modes
        // are distinct dynamics arms — only exec is compared.)
        let key = match pop {
            PopMode::Eager => "eager",
            PopMode::SplitEager => "split-eager",
            PopMode::Lazy => "lazy",
        };
        match by_pop.entry(key) {
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(live_resp);
            }
            std::collections::hash_map::Entry::Occupied(e) => {
                assert_eq!(e.get(), &live_resp, "{pop:?}: exec arms diverge");
            }
        }
    }
}

#[test]
fn withdraw_then_replay_keeps_accounting_consistent() {
    // Withdrawing an Allocating job releases its held devices; the
    // session after replay must agree exactly with the live one.
    let cfg = config(ExecMode::Sequential, PopMode::Eager);
    let script: Vec<String> = [
        r#"{"cmd":"advance","ms":600000}"#,
        r#"{"cmd":"withdraw","job":0}"#,
        r#"{"cmd":"withdraw","job":1}"#,
        r#"{"cmd":"advance","ms":86400000}"#,
        r#"{"cmd":"query-job","job":0}"#,
        r#"{"cmd":"query-job","job":2}"#,
        r#"{"cmd":"stats"}"#,
        r#"{"cmd":"quit"}"#,
    ]
    .map(String::from)
    .to_vec();
    let (live_resp, live_journal) = run_script(cfg, &script);
    let (replay_resp, _) = run_script(cfg, &live_journal);
    assert_eq!(live_resp, replay_resp);
    // The withdrawn jobs must report finished with no JCT.
    let q0 = live_resp
        .iter()
        .find(|r| r.contains("\"job\":0,\"phase\":"))
        .expect("query-job 0 response");
    assert!(q0.contains("\"phase\":\"finished\""), "{q0}");
    assert!(
        q0.contains("\"jct_ms\":null"),
        "withdrawn job has no JCT: {q0}"
    );
}
