//! Shared experiment harness for the paper's tables and figures.
//!
//! Every bench binary (`fig*`/`table*`) builds on the same three pieces:
//!
//! * [`SchedKind`] — enumerates every scheduler the paper evaluates and
//!   constructs a fresh instance per run;
//! * [`Experiment`] — a (simulation config, workload) pair with
//!   constructors matching §5.1's scenarios;
//! * [`run`] / [`speedup_table`] — execute runs and normalize average JCT
//!   against the Random baseline, the paper's headline metric;
//! * [`Matrix`] / [`run_matrix`] — the shared sweep executor: declare a
//!   (scenario × seed × scheduler) grid once and fan the independent
//!   deterministic runs out across cores.

pub mod baseline;
pub mod matrix;
pub mod scale;

pub use baseline::{
    baseline_json, baseline_kinds, baseline_rows, diff_rows, parse_arm_header, parse_baseline,
    run_baseline, run_baseline_crashed, run_baseline_exec, BaselineRow,
};
pub use matrix::{
    run_matrix, run_matrix_sequential, speedup_summary, with_baseline, Matrix, MatrixCell,
    MatrixRun, ScenarioSpeedups,
};
pub use scale::{
    check_scale, parse_scale, run_scale_row, scale_experiment, scale_json, ScaleRow, SCALE_KINDS,
    SCALE_POPULATIONS, SCALE_SHARD_COUNTS,
};

use rand::rngs::StdRng;
use rand::SeedableRng;

use venn_baselines::BaselineScheduler;
use venn_core::{Scheduler, VennConfig, VennScheduler, DAY_MS, MINUTE_MS};
use venn_sim::{SimConfig, SimResult, Simulation, World};
use venn_traces::{BiasKind, JobDemandModel, ScenarioPreset, Workload, WorkloadKind};

/// Every scheduler the evaluation compares.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SchedKind {
    /// Optimized random matching (the normalization baseline).
    Random,
    /// First-in-first-out.
    Fifo,
    /// Shortest remaining service first.
    Srsf,
    /// Full Venn (IRS + tier matching).
    Venn,
    /// Venn without the IRS scheduling algorithm (Fig. 11 arm).
    VennWoSched,
    /// Venn without tier matching (Fig. 11 arm).
    VennWoMatch,
    /// Venn with an explicit configuration (tier sweeps, fairness knob...).
    VennWith(VennConfig),
}

impl SchedKind {
    /// The four headline columns of Table 1, in order.
    pub const TABLE1: [SchedKind; 4] = [
        SchedKind::Random,
        SchedKind::Fifo,
        SchedKind::Srsf,
        SchedKind::Venn,
    ];

    /// Builds a fresh scheduler. `seed` only affects randomized schedulers.
    pub fn build(&self, seed: u64) -> Box<dyn Scheduler> {
        match self {
            SchedKind::Random => Box::new(BaselineScheduler::random_order(seed)),
            SchedKind::Fifo => Box::new(BaselineScheduler::fifo()),
            SchedKind::Srsf => Box::new(BaselineScheduler::srsf()),
            SchedKind::Venn => Box::new(VennScheduler::new(VennConfig {
                seed,
                ..VennConfig::default()
            })),
            SchedKind::VennWoSched => Box::new(VennScheduler::new(VennConfig {
                seed,
                ..VennConfig::matching_only()
            })),
            SchedKind::VennWoMatch => Box::new(VennScheduler::new(VennConfig {
                seed,
                ..VennConfig::scheduling_only()
            })),
            SchedKind::VennWith(cfg) => Box::new(VennScheduler::new(VennConfig { seed, ..*cfg })),
        }
    }

    /// Column label.
    pub fn label(&self) -> &'static str {
        match self {
            SchedKind::Random => "Random",
            SchedKind::Fifo => "FIFO",
            SchedKind::Srsf => "SRSF",
            SchedKind::Venn => "Venn",
            SchedKind::VennWoSched => "Venn w/o sched",
            SchedKind::VennWoMatch => "Venn w/o match",
            SchedKind::VennWith(_) => "Venn (custom)",
        }
    }
}

/// One experiment: an environment plus a workload all schedulers share.
#[derive(Debug, Clone)]
pub struct Experiment {
    /// Simulation environment.
    pub sim: SimConfig,
    /// Job workload.
    pub workload: Workload,
}

impl Experiment {
    /// The paper's default evaluation scale: 50 jobs, Poisson 30-min
    /// arrivals, four eligibility categories, 10 simulated days.
    pub fn paper_default(kind: WorkloadKind, bias: Option<BiasKind>, seed: u64) -> Experiment {
        Experiment::with_jobs(kind, bias, 50, seed)
    }

    /// Same setup with an explicit job count (Fig. 12 sweeps it).
    pub fn with_jobs(
        kind: WorkloadKind,
        bias: Option<BiasKind>,
        num_jobs: usize,
        seed: u64,
    ) -> Experiment {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x9E3779B97F4A7C15);
        let workload = Workload::generate(
            kind,
            bias,
            num_jobs,
            &JobDemandModel::default(),
            30.0 * MINUTE_MS as f64,
            &mut rng,
        );
        Experiment {
            sim: SimConfig {
                seed,
                ..SimConfig::default()
            },
            workload,
        }
    }

    /// A (workload × environment) scenario preset at the paper's default
    /// evaluation scale — the sweep harness's entry point for the
    /// `venn-env` scenario axis.
    pub fn scenario(preset: &ScenarioPreset, seed: u64) -> Experiment {
        let mut exp = Experiment::paper_default(preset.workload, preset.bias, seed);
        exp.sim.env = preset.env.config();
        exp
    }

    /// [`Experiment::scenario`] at smoke scale, for tests and CI jobs.
    pub fn scenario_smoke(preset: &ScenarioPreset, seed: u64) -> Experiment {
        let mut exp = Experiment::smoke(preset.workload, seed);
        exp.sim.env = preset.env.config();
        exp
    }

    /// A smaller, faster variant used by tests and smoke runs.
    pub fn smoke(kind: WorkloadKind, seed: u64) -> Experiment {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x517CC1B727220A95);
        let workload = Workload::generate(
            kind,
            None,
            16,
            &JobDemandModel {
                rounds_mean: 4.0,
                rounds_max: 12,
                demand_mean: 20.0,
                demand_max: 40,
                ..JobDemandModel::default()
            },
            10.0 * MINUTE_MS as f64,
            &mut rng,
        );
        Experiment {
            sim: SimConfig {
                population: 1_500,
                days: 5,
                seed,
                ..SimConfig::default()
            },
            workload,
        }
    }
}

/// Runs one scheduler over an experiment.
pub fn run(experiment: &Experiment, kind: SchedKind) -> SimResult {
    let mut scheduler = kind.build(experiment.sim.seed ^ 0xA5A5);
    Simulation::new(experiment.sim).run(&experiment.workload, &mut *scheduler)
}

/// [`run`] with a crash injected at the experiment's halfway point
/// (simulated time): the live world and scheduler are snapshotted, torn
/// down, and rebuilt from the snapshot bytes before the run finishes.
/// Checkpoint recovery is bit-invisible, so the result must equal
/// [`run`]'s byte for byte — `check_regression --crashed` replays the
/// committed baseline through this path and demands zero drift.
///
/// # Panics
///
/// Panics if the snapshot cannot be taken or restored — in a
/// deterministic in-process round trip either is a bug, not an I/O
/// hazard.
pub fn run_crashed(experiment: &Experiment, kind: SchedKind) -> SimResult {
    let halfway = u64::from(experiment.sim.days) * DAY_MS / 2;
    let mut scheduler = kind.build(experiment.sim.seed ^ 0xA5A5);
    let mut world = World::new(experiment.sim, &experiment.workload, scheduler.name());
    let mut crashed = false;
    while world.step(&mut *scheduler, &mut []) {
        if world.now() >= halfway {
            crashed = true;
            break;
        }
    }
    if !crashed {
        // The run dried up before its halfway point: nothing to crash.
        return world.finish(&mut []);
    }
    let bytes = venn_sim::snapshot_world(&world, &*scheduler).expect("snapshot at crash point");
    drop(world);
    drop(scheduler);
    let mut scheduler = kind.build(experiment.sim.seed ^ 0xA5A5);
    let mut world = venn_sim::resume_world(
        &bytes,
        experiment.sim,
        &experiment.workload,
        &mut *scheduler,
    )
    .expect("resume from snapshot");
    while world.step(&mut *scheduler, &mut []) {}
    world.finish(&mut [])
}

/// Average-JCT speed-up of each scheduler over [`SchedKind::Random`] on the
/// same experiment (the paper's headline normalization). Returns
/// `(labels, speedups, results)` in the order of `kinds`. The schedulers
/// run in parallel through [`run_matrix`].
pub fn speedup_table(
    experiment: &Experiment,
    kinds: &[SchedKind],
) -> (Vec<&'static str>, Vec<f64>, Vec<SimResult>) {
    let matrix = Matrix::new()
        .fixed("experiment", experiment.clone())
        .kinds(&with_baseline(kinds))
        .seeds(&[experiment.sim.seed]);
    let runs = run_matrix(&matrix);
    let base_jct = runs
        .iter()
        .find(|r| r.cell.kind == SchedKind::Random)
        .expect("with_baseline guarantees a Random run")
        .result
        .avg_jct_ms();
    let mut labels = Vec::new();
    let mut speedups = Vec::new();
    let mut results = Vec::new();
    for kind in kinds {
        let r = runs
            .iter()
            .find(|r| r.cell.kind == *kind)
            .expect("every requested kind was in the matrix")
            .result
            .clone();
        labels.push(kind.label());
        speedups.push(if r.avg_jct_ms() > 0.0 {
            base_jct / r.avg_jct_ms()
        } else {
            f64::NAN
        });
        results.push(r);
    }
    (labels, speedups, results)
}

/// Average of per-seed speed-ups over `seeds` repetitions of an experiment
/// builder — smooths single-run noise in the headline tables.
pub fn mean_speedups(
    make: impl Fn(u64) -> Experiment + Sync,
    kinds: &[SchedKind],
    seeds: &[u64],
) -> Vec<f64> {
    mean_speedups_detailed(make, kinds, seeds).0
}

/// Like [`mean_speedups`] but also returns the mean job completion rate per
/// scheduler — a sanity channel: speed-ups are only comparable when all
/// schedulers finish (nearly) all jobs.
///
/// All `seeds × kinds` runs (plus the Random baselines) execute in
/// parallel through [`run_matrix`]; per-run results are identical to the
/// old sequential loop.
pub fn mean_speedups_detailed(
    make: impl Fn(u64) -> Experiment + Sync,
    kinds: &[SchedKind],
    seeds: &[u64],
) -> (Vec<f64>, Vec<f64>) {
    let matrix = Matrix::new()
        .scenario("sweep", make)
        .kinds(&with_baseline(kinds))
        .seeds(seeds);
    let runs = run_matrix(&matrix);
    let row = speedup_summary(&runs, kinds)
        .pop()
        .expect("single-scenario matrix yields one row");
    (row.speedups, row.completion)
}

/// Speed-up of `other` over `baseline` restricted to the jobs in `subset`
/// (workload indices) — used for the Table 2/3 per-slice breakdowns.
/// Returns `None` if either side finished no job in the subset.
pub fn subset_speedup(baseline: &SimResult, other: &SimResult, subset: &[usize]) -> Option<f64> {
    let avg = |r: &SimResult| -> Option<f64> {
        let jcts: Vec<f64> = subset
            .iter()
            .filter_map(|&i| r.records.get(i).and_then(|rec| rec.jct_ms()))
            .map(|v| v as f64)
            .collect();
        if jcts.is_empty() {
            None
        } else {
            Some(jcts.iter().sum::<f64>() / jcts.len() as f64)
        }
    };
    Some(avg(baseline)? / avg(other)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_schedulers_run_on_smoke_experiment() {
        let exp = Experiment::smoke(WorkloadKind::Even, 3);
        for kind in [
            SchedKind::Random,
            SchedKind::Fifo,
            SchedKind::Srsf,
            SchedKind::Venn,
            SchedKind::VennWoSched,
            SchedKind::VennWoMatch,
        ] {
            let r = run(&exp, kind);
            assert_eq!(r.records.len(), exp.workload.jobs.len(), "{kind:?}");
            assert!(r.completion_rate() > 0.5, "{kind:?}: {r:?}");
        }
    }

    #[test]
    fn speedup_table_normalizes_to_random() {
        let exp = Experiment::smoke(WorkloadKind::Even, 4);
        let (labels, speedups, results) =
            speedup_table(&exp, &[SchedKind::Random, SchedKind::Venn]);
        assert_eq!(labels, vec!["Random", "Venn"]);
        assert!((speedups[0] - 1.0).abs() < 1e-9);
        assert_eq!(results.len(), 2);
    }

    #[test]
    fn experiments_are_deterministic() {
        let a = Experiment::smoke(WorkloadKind::Even, 5);
        let b = Experiment::smoke(WorkloadKind::Even, 5);
        assert_eq!(a.workload, b.workload);
        let ra = run(&a, SchedKind::Srsf);
        let rb = run(&b, SchedKind::Srsf);
        assert_eq!(ra.records, rb.records);
    }
}
