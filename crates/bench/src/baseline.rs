//! The machine-readable benchmark baseline (`BENCH_BASELINE.json`):
//! one shared definition of its scheduler rows, JSON shape, and parser.
//!
//! `export_results --json` *writes* the file through [`baseline_json`];
//! the `check_regression` CI gate *re-runs* the same matrix through
//! [`baseline_rows`] and diffs against [`parse_baseline`]'s view of the
//! committed file. Keeping generator and checker on one code path means
//! a format change can never silently disarm the regression gate.
//!
//! Comparisons use the *formatted* field strings (the exact bytes the
//! JSON carries), so float-printing precision is part of the contract:
//! any drift in `avg_jct_ms`, `speedup_vs_random`, or the deterministic
//! counters is a hard failure, while `wall_ms` / `events_per_sec` are
//! timing telemetry and exempt.

use venn_core::VennConfig;
use venn_env::EnvPreset;
use venn_sim::{ExecMode, QueueKind};
use venn_traces::WorkloadKind;

use crate::{run_matrix_sequential, Experiment, Matrix, MatrixCell, MatrixRun, SchedKind};

/// The scheduler columns of the baseline, in file order: Table 1 plus the
/// full-rebuild Venn reference arm.
pub fn baseline_kinds() -> Vec<SchedKind> {
    let mut kinds = SchedKind::TABLE1.to_vec();
    kinds.push(SchedKind::VennWith(VennConfig::full_rebuild()));
    kinds
}

/// Executes the baseline matrix (sequentially — wall times feed the
/// events/sec telemetry and must not contend for cores) on the chosen
/// kernel and environment arms.
pub fn run_baseline(
    seed: u64,
    queue: QueueKind,
    demand_gating: bool,
    env: EnvPreset,
) -> (Experiment, Vec<MatrixRun>) {
    run_baseline_exec(seed, queue, demand_gating, env, ExecMode::Sequential)
}

/// [`run_baseline`] on an explicit execution mode. Sharded execution is
/// pinned bit-identical to sequential, so `check_regression --shards N`
/// replays the *committed* sequential baseline through this entry point
/// and demands zero drift — no separate sharded baseline file exists.
pub fn run_baseline_exec(
    seed: u64,
    queue: QueueKind,
    demand_gating: bool,
    env: EnvPreset,
    exec: ExecMode,
) -> (Experiment, Vec<MatrixRun>) {
    let mut exp = Experiment::paper_default(WorkloadKind::Even, None, seed);
    exp.sim.queue = queue;
    exp.sim.demand_gating = demand_gating;
    exp.sim.env = env.config();
    exp.sim.exec = exec;
    let matrix = Matrix::new()
        .fixed("paper_default/even", exp.clone())
        .kinds(&baseline_kinds())
        .seeds(&[seed]);
    (exp, run_matrix_sequential(&matrix))
}

/// [`run_baseline_exec`] with a crash injected into every cell: each run
/// is snapshotted at its halfway point, the live world and scheduler are
/// torn down, and the run finishes from the snapshot bytes in fresh
/// state (see [`crate::run_crashed`]). `check_regression --crashed`
/// replays the *committed* baseline through this path and still demands
/// zero drift — recovery from a checkpoint is behaviorally invisible, so
/// no field may move.
pub fn run_baseline_crashed(
    seed: u64,
    queue: QueueKind,
    demand_gating: bool,
    env: EnvPreset,
    exec: ExecMode,
) -> (Experiment, Vec<MatrixRun>) {
    let mut exp = Experiment::paper_default(WorkloadKind::Even, None, seed);
    exp.sim.queue = queue;
    exp.sim.demand_gating = demand_gating;
    exp.sim.env = env.config();
    exp.sim.exec = exec;
    let runs = baseline_kinds()
        .into_iter()
        .map(|kind| {
            let start = std::time::Instant::now();
            let result = crate::run_crashed(&exp, kind);
            MatrixRun {
                cell: MatrixCell {
                    scenario: "paper_default/even".into(),
                    kind,
                    seed,
                },
                result,
                wall_ms: start.elapsed().as_millis() as u64,
            }
        })
        .collect();
    (exp, runs)
}

/// One scheduler row of the baseline, holding the deterministic fields in
/// their exact serialized form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BaselineRow {
    /// Scheduler name.
    pub name: String,
    /// Average JCT, formatted to 0.1 ms (`"null"` when no job finished).
    pub avg_jct_ms: String,
    /// Completion rate, formatted to 4 decimals.
    pub completion_rate: String,
    /// Speed-up vs Random, formatted to 4 decimals (`"null"` if undefined).
    pub speedup_vs_random: String,
    /// Rounds that missed their deadline.
    pub aborted_rounds: u64,
    /// Devices assigned.
    pub assignments: u64,
    /// Events dispatched.
    pub events: u64,
    /// Event-queue high-water mark.
    pub peak_queue_len: u64,
}

/// Serializes a finite float with fixed decimals, or JSON `null`.
pub(crate) fn json_num(v: f64, decimals: usize) -> String {
    if v.is_finite() {
        format!("{v:.decimals$}")
    } else {
        "null".to_string()
    }
}

/// Folds executed runs into their deterministic baseline rows.
pub fn baseline_rows(runs: &[MatrixRun]) -> Vec<BaselineRow> {
    let base_jct = runs
        .iter()
        .find(|r| r.cell.kind == SchedKind::Random)
        .expect("baseline matrix includes Random")
        .result
        .avg_jct_ms();
    runs.iter()
        .map(|r| {
            let jct = r.result.avg_jct_ms();
            let speedup = if jct > 0.0 { base_jct / jct } else { f64::NAN };
            BaselineRow {
                name: r.result.scheduler_name.clone(),
                avg_jct_ms: json_num(jct, 1),
                completion_rate: json_num(r.result.completion_rate(), 4),
                speedup_vs_random: json_num(speedup, 4),
                aborted_rounds: r.result.aborted_rounds,
                assignments: r.result.assignments,
                events: r.result.events,
                peak_queue_len: r.result.peak_queue_len,
            }
        })
        .collect()
}

/// Renders the full baseline JSON document: the arm configuration header
/// (queue, gating, environment — so baseline files are self-describing),
/// the deterministic rows, and — unless `timing` is off — the per-run
/// wall-clock telemetry. Environment arms additionally carry their
/// deterministic `venn-env` counters per scheduler.
pub fn baseline_json(
    experiment: &Experiment,
    runs: &[MatrixRun],
    seed: u64,
    env: EnvPreset,
    timing: bool,
) -> String {
    let rows = baseline_rows(runs);
    let mut out = String::from("{\n");
    out.push_str("  \"experiment\": \"paper_default/even\",\n");
    out.push_str(&format!("  \"seed\": {seed},\n"));
    out.push_str(&format!(
        "  \"jobs\": {},\n",
        experiment.workload.jobs.len()
    ));
    out.push_str(&format!(
        "  \"population\": {},\n",
        experiment.sim.population
    ));
    out.push_str(&format!("  \"days\": {},\n", experiment.sim.days));
    out.push_str(&format!(
        "  \"queue\": \"{}\",\n",
        match experiment.sim.queue {
            QueueKind::Wheel => "wheel",
            QueueKind::Heap => "heap",
        }
    ));
    out.push_str(&format!(
        "  \"demand_gating\": {},\n",
        experiment.sim.demand_gating
    ));
    out.push_str(&format!("  \"env\": \"{}\",\n", env.label()));
    out.push_str("  \"schedulers\": [\n");
    for (i, (row, r)) in rows.iter().zip(runs).enumerate() {
        // Clamp to >= 1 ms so the rate stays finite.
        let events_per_sec = r.result.events as f64 * 1_000.0 / r.wall_ms.max(1) as f64;
        out.push_str("    {\n");
        out.push_str(&format!("      \"name\": \"{}\",\n", row.name));
        out.push_str(&format!("      \"avg_jct_ms\": {},\n", row.avg_jct_ms));
        out.push_str(&format!(
            "      \"completion_rate\": {},\n",
            row.completion_rate
        ));
        out.push_str(&format!(
            "      \"speedup_vs_random\": {},\n",
            row.speedup_vs_random
        ));
        out.push_str(&format!(
            "      \"aborted_rounds\": {},\n",
            row.aborted_rounds
        ));
        out.push_str(&format!("      \"assignments\": {},\n", row.assignments));
        out.push_str(&format!("      \"events\": {},\n", row.events));
        out.push_str(&format!("      \"peak_queue_len\": {}", row.peak_queue_len));
        if env != EnvPreset::Off {
            let e = &r.result.env;
            out.push_str(&format!(",\n      \"dropouts\": {}", e.dropouts));
            out.push_str(&format!(
                ",\n      \"forced_offline\": {}",
                e.forced_offline
            ));
            out.push_str(&format!(",\n      \"storm_aborts\": {}", e.storm_aborts));
            out.push_str(&format!(",\n      \"retries\": {}", e.retries));
        }
        if timing {
            out.push_str(&format!(",\n      \"wall_ms\": {}", r.wall_ms));
            out.push_str(&format!(
                ",\n      \"events_per_sec\": {}",
                json_num(events_per_sec, 0)
            ));
            // Machine-dependent like wall time (and 0 unless the driving
            // binary installs the tracking allocator), so it rides the
            // same telemetry gate and deterministic documents omit it.
            out.push_str(&format!(",\n      \"peak_bytes\": {}", r.result.peak_bytes));
        }
        out.push('\n');
        out.push_str(if i + 1 < rows.len() {
            "    },\n"
        } else {
            "    }\n"
        });
    }
    out.push_str("  ]\n}\n");
    out
}

/// Parses the arm-configuration header of a baseline document — which
/// queue/gating/environment arms the recording ran on — so a replay can
/// reproduce the recorded arms instead of assuming the defaults. Files
/// from before the header existed (or with unknown values) fall back to
/// the default arm (wheel, gating on, env off).
pub fn parse_arm_header(json: &str) -> (QueueKind, bool, EnvPreset) {
    let mut queue = QueueKind::Wheel;
    let mut demand_gating = true;
    let mut env = EnvPreset::Off;
    for line in json.lines() {
        let line = line.trim().trim_end_matches(',');
        if line == "\"schedulers\": [" {
            break; // header ends where the rows begin
        }
        let Some((key, value)) = line.split_once(':') else {
            continue;
        };
        let value = value.trim().trim_matches('"');
        match key.trim().trim_matches('"') {
            "queue" if value == "heap" => queue = QueueKind::Heap,
            "demand_gating" if value == "false" => demand_gating = false,
            "env" => env = EnvPreset::parse(value).unwrap_or(EnvPreset::Off),
            _ => {}
        }
    }
    (queue, demand_gating, env)
}

/// Parses a committed baseline file back into `(seed, rows)`.
///
/// This is a shape-specific reader for the document [`baseline_json`]
/// emits (one `"key": value` pair per line), not a general JSON parser —
/// the build environment is dependency-free by design. Unknown metadata
/// keys — the arm header (`queue`/`demand_gating`/`env`), per-row
/// `venn-env` counters, timing telemetry, anything added later — are
/// ignored rather than rejected, so baselines stay forward-readable.
pub fn parse_baseline(json: &str) -> Result<(u64, Vec<BaselineRow>), String> {
    let mut seed: Option<u64> = None;
    let mut rows = Vec::new();
    let mut cur: Option<BaselineRow> = None;
    for line in json.lines() {
        let line = line.trim().trim_end_matches(',');
        if line == "{" {
            if seed.is_some() {
                cur = Some(BaselineRow {
                    name: String::new(),
                    avg_jct_ms: String::new(),
                    completion_rate: String::new(),
                    speedup_vs_random: String::new(),
                    aborted_rounds: 0,
                    assignments: 0,
                    events: 0,
                    peak_queue_len: 0,
                });
            }
            continue;
        }
        if line == "}" {
            if let Some(row) = cur.take() {
                if row.name.is_empty() {
                    return Err("scheduler row without a name".into());
                }
                rows.push(row);
            }
            continue;
        }
        let Some((key, value)) = line.split_once(':') else {
            continue;
        };
        let key = key.trim().trim_matches('"');
        let value = value.trim();
        let int = |v: &str, key: &str| -> Result<u64, String> {
            v.parse().map_err(|e| format!("{key}: {e}"))
        };
        match (&mut cur, key) {
            (None, "seed") => seed = Some(int(value, key)?),
            (Some(row), "name") => row.name = value.trim_matches('"').to_string(),
            (Some(row), "avg_jct_ms") => row.avg_jct_ms = value.to_string(),
            (Some(row), "completion_rate") => row.completion_rate = value.to_string(),
            (Some(row), "speedup_vs_random") => row.speedup_vs_random = value.to_string(),
            (Some(row), "aborted_rounds") => row.aborted_rounds = int(value, key)?,
            (Some(row), "assignments") => row.assignments = int(value, key)?,
            (Some(row), "events") => row.events = int(value, key)?,
            (Some(row), "peak_queue_len") => row.peak_queue_len = int(value, key)?,
            _ => {}
        }
    }
    match seed {
        Some(seed) if !rows.is_empty() => Ok((seed, rows)),
        Some(_) => Err("baseline has no scheduler rows".into()),
        None => Err("baseline has no seed".into()),
    }
}

/// Field-by-field drift report between a committed row and a fresh run.
/// Empty means identical.
pub fn diff_rows(committed: &BaselineRow, fresh: &BaselineRow) -> Vec<String> {
    let mut drift = Vec::new();
    let mut check = |field: &str, a: &str, b: &str| {
        if a != b {
            drift.push(format!("{field}: committed {a} vs fresh {b}"));
        }
    };
    check("name", &committed.name, &fresh.name);
    check("avg_jct_ms", &committed.avg_jct_ms, &fresh.avg_jct_ms);
    check(
        "completion_rate",
        &committed.completion_rate,
        &fresh.completion_rate,
    );
    check(
        "speedup_vs_random",
        &committed.speedup_vs_random,
        &fresh.speedup_vs_random,
    );
    check(
        "aborted_rounds",
        &committed.aborted_rounds.to_string(),
        &fresh.aborted_rounds.to_string(),
    );
    check(
        "assignments",
        &committed.assignments.to_string(),
        &fresh.assignments.to_string(),
    );
    check(
        "events",
        &committed.events.to_string(),
        &fresh.events.to_string(),
    );
    check(
        "peak_queue_len",
        &committed.peak_queue_len.to_string(),
        &fresh.peak_queue_len.to_string(),
    );
    drift
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_baseline_doc() -> String {
        r#"{
  "experiment": "paper_default/even",
  "seed": 7,
  "jobs": 50,
  "queue": "wheel",
  "demand_gating": true,
  "env": "off",
  "schedulers": [
    {
      "name": "random",
      "avg_jct_ms": 123.4,
      "completion_rate": 1.0000,
      "speedup_vs_random": 1.0000,
      "aborted_rounds": 5,
      "assignments": 10,
      "events": 1000,
      "peak_queue_len": 42,
      "wall_ms": 3,
      "events_per_sec": 333333
    }
  ]
}
"#
        .to_string()
    }

    #[test]
    fn parse_round_trips_the_emitted_shape() {
        let (seed, rows) = parse_baseline(&tiny_baseline_doc()).unwrap();
        assert_eq!(seed, 7);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].name, "random");
        assert_eq!(rows[0].avg_jct_ms, "123.4");
        assert_eq!(rows[0].speedup_vs_random, "1.0000");
        assert_eq!(rows[0].events, 1000);
        assert_eq!(rows[0].peak_queue_len, 42);
    }

    #[test]
    fn diff_reports_each_drifted_field() {
        let (_, rows) = parse_baseline(&tiny_baseline_doc()).unwrap();
        let mut fresh = rows[0].clone();
        assert!(diff_rows(&rows[0], &fresh).is_empty());
        fresh.avg_jct_ms = "123.5".into();
        fresh.events = 999;
        let drift = diff_rows(&rows[0], &fresh);
        assert_eq!(drift.len(), 2);
        assert!(drift[0].contains("avg_jct_ms"));
        assert!(drift[1].contains("events"));
    }

    #[test]
    fn malformed_baselines_are_rejected() {
        assert!(parse_baseline("").is_err());
        assert!(parse_baseline("{\n  \"seed\": 3\n}\n").is_err());
    }

    #[test]
    fn arm_header_round_trips_and_defaults() {
        // The emitted header parses back to the arms it recorded…
        let doc = tiny_baseline_doc()
            .replace("\"queue\": \"wheel\"", "\"queue\": \"heap\"")
            .replace("\"demand_gating\": true", "\"demand_gating\": false")
            .replace("\"env\": \"off\"", "\"env\": \"straggler-heavy\"");
        assert_eq!(
            parse_arm_header(&doc),
            (QueueKind::Heap, false, EnvPreset::StragglerHeavy)
        );
        // …a row field named like a header key is not mistaken for one…
        assert_eq!(
            parse_arm_header(&tiny_baseline_doc()),
            (QueueKind::Wheel, true, EnvPreset::Off)
        );
        // …and headerless (pre-metadata) files fall back to the default
        // arm.
        let old = "{\n  \"seed\": 7\n}\n";
        assert_eq!(
            parse_arm_header(old),
            (QueueKind::Wheel, true, EnvPreset::Off)
        );
    }

    #[test]
    fn parse_ignores_unknown_metadata_keys() {
        // Arm headers, env counters, and future keys must be skipped —
        // never choked on — at both the document and the row level.
        let doc = tiny_baseline_doc()
            .replace(
                "  \"env\": \"off\",\n",
                "  \"env\": \"flash-crowd\",\n  \"some_future_header\": [1, 2],\n",
            )
            .replace(
                "      \"peak_queue_len\": 42,\n",
                "      \"peak_queue_len\": 42,\n      \"dropouts\": 17,\n      \
                 \"forced_offline\": 3,\n      \"storm_aborts\": 1,\n      \
                 \"retries\": 9,\n      \"some_future_field\": \"x\",\n",
            );
        let (seed, rows) = parse_baseline(&doc).expect("unknown keys must not break parsing");
        assert_eq!(seed, 7);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].events, 1000);
        assert_eq!(rows[0].peak_queue_len, 42);
    }

    #[test]
    fn generator_and_parser_agree_on_a_real_matrix() {
        use venn_traces::WorkloadKind;
        let exp = Experiment::smoke(WorkloadKind::Even, 3);
        let matrix = Matrix::new()
            .fixed("paper_default/even", exp.clone())
            .kinds(&baseline_kinds())
            .seeds(&[3]);
        let runs = run_matrix_sequential(&matrix);
        let json = baseline_json(&exp, &runs, 3, EnvPreset::Off, true);
        assert!(json.contains("\"queue\": \"wheel\""));
        assert!(json.contains("\"demand_gating\": true"));
        assert!(json.contains("\"env\": \"off\""));
        let (seed, rows) = parse_baseline(&json).unwrap();
        assert_eq!(seed, 3);
        assert_eq!(rows, baseline_rows(&runs));
    }

    #[test]
    fn crashed_replay_matches_uninterrupted() {
        use venn_traces::WorkloadKind;
        let exp = Experiment::smoke(WorkloadKind::Even, 5);
        for kind in [SchedKind::Venn, SchedKind::Srsf] {
            let whole = crate::run(&exp, kind);
            let crashed = crate::run_crashed(&exp, kind);
            assert_eq!(whole.records, crashed.records, "{kind:?}");
            assert_eq!(whole.events, crashed.events, "{kind:?}");
            assert_eq!(whole.assignments, crashed.assignments, "{kind:?}");
            assert_eq!(whole.aborted_rounds, crashed.aborted_rounds, "{kind:?}");
            assert_eq!(whole.peak_queue_len, crashed.peak_queue_len, "{kind:?}");
        }
    }

    #[test]
    fn env_arms_emit_their_counters_and_timing_can_be_omitted() {
        let preset = EnvPreset::MassDropout;
        let mut exp = Experiment::smoke(WorkloadKind::Even, 3);
        exp.sim.env = preset.config();
        let matrix = Matrix::new()
            .fixed("paper_default/even", exp.clone())
            .kinds(&[SchedKind::Random])
            .seeds(&[3]);
        let runs = run_matrix_sequential(&matrix);
        let json = baseline_json(&exp, &runs, 3, preset, false);
        assert!(json.contains("\"env\": \"mass-dropout\""));
        assert!(json.contains("\"forced_offline\":"));
        assert!(json.contains("\"retries\":"));
        assert!(
            !json.contains("wall_ms")
                && !json.contains("events_per_sec")
                && !json.contains("peak_bytes"),
            "deterministic documents must omit timing/memory telemetry"
        );
        let (_, rows) = parse_baseline(&json).unwrap();
        assert_eq!(rows.len(), 1, "env counters must not derail row parsing");
    }
}
