//! The million-device scale sweep behind `bench_scale`.
//!
//! Runs the lazy-storage arm ([`venn_sim::PopMode::Lazy`]) at
//! 10k / 100k / 1M devices on a fixed modest workload, recording per run:
//!
//! * the deterministic simulation outputs (events, assignments, aborts,
//!   average JCT, `peak_queue_len`, and the materialized-device high-water
//!   mark `peak_live_devices` — the "O(active)" headline), and
//! * machine-dependent telemetry (wall time, events/sec, and the
//!   allocator high-water mark `peak_bytes` when the driving binary
//!   installs [`venn_metrics::alloc::TrackingAlloc`]).
//!
//! The same code path renders and re-checks the committed
//! `BENCH_SCALE.json`: [`check_scale`] re-runs every row within a
//! population cap and diffs the *formatted* deterministic fields, so CI
//! can gate drift at the 100k tier without paying for the 1M row.

use std::collections::BTreeMap;
use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;

use venn_core::MINUTE_MS;
use venn_sim::{ExecMode, PopMode, SimConfig, Simulation};
use venn_traces::{JobDemandModel, Workload, WorkloadKind};

use crate::baseline::json_num;
use crate::{Experiment, SchedKind};

/// Population tiers of the sweep.
pub const SCALE_POPULATIONS: [usize; 3] = [10_000, 100_000, 1_000_000];

/// Scheduler arms of the sweep (Random first: it is the JCT baseline).
pub const SCALE_KINDS: [SchedKind; 2] = [SchedKind::Random, SchedKind::Venn];

/// Simulated horizon — two days keeps the 1M tier laptop-tractable while
/// still exercising the day-boundary session regeneration.
pub const SCALE_DAYS: u32 = 2;

/// Jobs in the shared workload. Deliberately modest: the sweep measures
/// how the *world* scales with population, so demand stays fixed and
/// population-independent across tiers.
pub const SCALE_JOBS: usize = 15;

/// Shard counts of the sweep's execution arms: `0` is the sequential
/// engine, `N >= 1` the sharded engine with `N` shards. Sharded rows
/// must reproduce the sequential rows' deterministic fields exactly —
/// only the wall-clock telemetry may differ.
pub const SCALE_SHARD_COUNTS: [u32; 3] = [0, 2, 4];

/// One (population, scheduler, execution arm) cell of the sweep.
#[derive(Debug, Clone)]
pub struct ScaleRow {
    /// Device population of the run.
    pub population: usize,
    /// Scheduler name (`SimResult::scheduler_name`).
    pub scheduler: String,
    /// Execution arm: `0` = sequential engine, `N >= 1` = sharded engine
    /// with `N` shards.
    pub shards: u32,
    /// Events dispatched.
    pub events: u64,
    /// Device assignments handed out.
    pub assignments: u64,
    /// Rounds that missed their deadline.
    pub aborted_rounds: u64,
    /// Average JCT, formatted to 0.1 ms (`"null"` when no job finished).
    pub avg_jct_ms: String,
    /// Pending-event-queue high-water mark.
    pub peak_queue_len: u64,
    /// Materialized-device high-water mark — the memory-law headline.
    pub peak_live_devices: usize,
    /// Wall-clock milliseconds (telemetry).
    pub wall_ms: u64,
    /// Events per second of wall time (telemetry).
    pub events_per_sec: u64,
    /// Allocator high-water mark in bytes; 0 when the driving binary
    /// installs no tracking allocator (telemetry).
    pub peak_bytes: u64,
}

impl ScaleRow {
    /// The fields that must be byte-stable across machines and runs, as
    /// `(key, formatted value)` in emission order.
    pub fn deterministic_fields(&self) -> Vec<(&'static str, String)> {
        vec![
            ("population", self.population.to_string()),
            ("scheduler", format!("\"{}\"", self.scheduler)),
            ("shards", self.shards.to_string()),
            ("events", self.events.to_string()),
            ("assignments", self.assignments.to_string()),
            ("aborted_rounds", self.aborted_rounds.to_string()),
            ("avg_jct_ms", self.avg_jct_ms.clone()),
            ("peak_queue_len", self.peak_queue_len.to_string()),
            ("peak_live_devices", self.peak_live_devices.to_string()),
        ]
    }

    /// Machine-dependent telemetry fields, exempt from the drift check.
    pub fn telemetry_fields(&self) -> Vec<(&'static str, String)> {
        vec![
            ("wall_ms", self.wall_ms.to_string()),
            ("events_per_sec", self.events_per_sec.to_string()),
            ("peak_bytes", self.peak_bytes.to_string()),
        ]
    }
}

/// The sweep experiment at one population tier. The workload draws from
/// its own seed stream, independent of `population`, so every tier
/// schedules the identical job set.
pub fn scale_experiment(population: usize, seed: u64) -> Experiment {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5CA1_AB1E_0DD5_EED5);
    let workload = Workload::generate(
        WorkloadKind::Even,
        None,
        SCALE_JOBS,
        &JobDemandModel::default(),
        30.0 * MINUTE_MS as f64,
        &mut rng,
    );
    Experiment {
        sim: SimConfig {
            population,
            days: SCALE_DAYS,
            seed,
            pop_mode: PopMode::Lazy,
            ..SimConfig::default()
        },
        workload,
    }
}

/// Runs one sweep cell. Drives the world step by step (instead of
/// [`crate::run`]) so the lazy pool's materialized high-water mark can be
/// read before the world is consumed. `shards` picks the execution arm
/// (`0` = sequential, `N >= 1` = sharded with `N` shards); every arm
/// must produce identical deterministic fields.
pub fn run_scale_row(population: usize, seed: u64, kind: SchedKind, shards: u32) -> ScaleRow {
    let mut exp = scale_experiment(population, seed);
    exp.sim.exec = if shards == 0 {
        ExecMode::Sequential
    } else {
        ExecMode::Sharded { shards }
    };
    let mut scheduler = kind.build(seed ^ 0xA5A5);
    let name = scheduler.name().to_string();
    venn_metrics::alloc::reset_peak();
    let start = Instant::now();
    let sim = Simulation::new(exp.sim);
    let mut world = sim.world(&exp.workload, &name);
    while world.step(&mut *scheduler, &mut []) {}
    let peak_live_devices = world.devices().peak_live_devices();
    let result = world.finish(&mut []);
    let wall_ms = start.elapsed().as_millis() as u64;
    let peak_bytes = venn_metrics::alloc::peak_bytes();
    ScaleRow {
        population,
        scheduler: name,
        shards,
        events: result.events,
        assignments: result.assignments,
        aborted_rounds: result.aborted_rounds,
        avg_jct_ms: if result.records.iter().any(|r| r.is_finished()) {
            json_num(result.avg_jct_ms(), 1)
        } else {
            "null".to_string()
        },
        peak_queue_len: result.peak_queue_len,
        peak_live_devices,
        wall_ms,
        events_per_sec: (result.events as f64 * 1_000.0 / wall_ms.max(1) as f64) as u64,
        peak_bytes,
    }
}

/// Renders the `BENCH_SCALE.json` document.
pub fn scale_json(seed: u64, rows: &[ScaleRow]) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"scale\",\n");
    out.push_str(&format!("  \"seed\": {seed},\n"));
    out.push_str(&format!("  \"days\": {SCALE_DAYS},\n"));
    out.push_str(&format!("  \"jobs\": {SCALE_JOBS},\n"));
    out.push_str("  \"pop_mode\": \"lazy\",\n");
    out.push_str("  \"rows\": [\n");
    for (i, row) in rows.iter().enumerate() {
        out.push_str("    {\n");
        let fields: Vec<String> = row
            .deterministic_fields()
            .into_iter()
            .chain(row.telemetry_fields())
            .map(|(k, v)| format!("      \"{k}\": {v}"))
            .collect();
        out.push_str(&fields.join(",\n"));
        out.push('\n');
        out.push_str(if i + 1 < rows.len() {
            "    },\n"
        } else {
            "    }\n"
        });
    }
    out.push_str("  ]\n}\n");
    out
}

/// Parses a committed scale document back into `(seed, rows)`, each row a
/// raw `key -> formatted value` map. Same shape-specific line reader
/// philosophy as [`crate::parse_baseline`]: unknown keys pass through, so
/// the checker stays forward-readable.
pub fn parse_scale(json: &str) -> Result<(u64, Vec<BTreeMap<String, String>>), String> {
    let mut seed: Option<u64> = None;
    let mut rows = Vec::new();
    let mut in_rows = false;
    let mut cur: Option<BTreeMap<String, String>> = None;
    for line in json.lines() {
        let t = line.trim();
        if !in_rows {
            if let Some(rest) = t.strip_prefix("\"seed\":") {
                let v = rest.trim().trim_end_matches(',');
                seed = Some(v.parse().map_err(|e| format!("bad seed {v:?}: {e}"))?);
            }
            if t.starts_with("\"rows\"") {
                in_rows = true;
            }
            continue;
        }
        match t {
            "{" => cur = Some(BTreeMap::new()),
            "}" | "}," => {
                if let Some(m) = cur.take() {
                    rows.push(m);
                }
            }
            _ => {
                if let (Some(m), Some((k, v))) = (cur.as_mut(), t.split_once(':')) {
                    m.insert(
                        k.trim().trim_matches('"').to_string(),
                        v.trim().trim_end_matches(',').to_string(),
                    );
                }
            }
        }
    }
    let seed = seed.ok_or("scale document has no seed")?;
    if rows.is_empty() {
        return Err("scale document has no rows".to_string());
    }
    Ok((seed, rows))
}

/// Re-runs every committed row with `population <= max_pop` and returns
/// the drift messages (empty = green). Telemetry fields are exempt;
/// deterministic fields compare as formatted strings — the exact bytes
/// the JSON carries.
pub fn check_scale(json: &str, max_pop: usize) -> Result<Vec<String>, String> {
    let (seed, rows) = parse_scale(json)?;
    let mut drifts = Vec::new();
    let mut checked = 0_usize;
    for row in &rows {
        let pop_str = row.get("population").ok_or("row missing population")?;
        let population: usize = pop_str
            .parse()
            .map_err(|e| format!("bad population {pop_str:?}: {e}"))?;
        if population > max_pop {
            continue;
        }
        let sched = row
            .get("scheduler")
            .ok_or("row missing scheduler")?
            .trim_matches('"');
        let kind = match sched {
            "random" => SchedKind::Random,
            "venn" => SchedKind::Venn,
            other => return Err(format!("unknown scheduler arm {other:?} in baseline")),
        };
        // Rows from before the execution-arm axis carry no `shards` key
        // and replay on the sequential engine.
        let shards: u32 = match row.get("shards") {
            Some(s) => s.parse().map_err(|e| format!("bad shards {s:?}: {e}"))?,
            None => 0,
        };
        let fresh = run_scale_row(population, seed, kind, shards);
        for (key, value) in fresh.deterministic_fields() {
            if key == "shards" && !row.contains_key("shards") {
                continue; // pre-axis row: nothing to diff against
            }
            match row.get(key) {
                Some(old) if *old == value => {}
                Some(old) => drifts.push(format!(
                    "{population}/{sched}: {key} drifted: baseline {old} vs current {value}"
                )),
                None => drifts.push(format!("{population}/{sched}: baseline missing {key}")),
            }
        }
        checked += 1;
    }
    if checked == 0 {
        return Err(format!("no rows with population <= {max_pop} to check"));
    }
    Ok(drifts)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_row() -> ScaleRow {
        // A sub-tier population keeps the round-trip test fast; the row
        // machinery is population-agnostic.
        run_scale_row(2_000, 7, SchedKind::Random, 0)
    }

    #[test]
    fn rows_round_trip_through_json_and_pass_their_own_check() {
        let row = tiny_row();
        assert_eq!(row.scheduler, "random");
        assert!(row.events > 0);
        assert!(row.peak_live_devices > 0);
        let json = scale_json(7, std::slice::from_ref(&row));
        let (seed, parsed) = parse_scale(&json).unwrap();
        assert_eq!(seed, 7);
        assert_eq!(parsed.len(), 1);
        for (k, v) in row.deterministic_fields() {
            assert_eq!(parsed[0].get(k), Some(&v), "{k}");
        }
        let drifts = check_scale(&json, usize::MAX).unwrap();
        assert!(drifts.is_empty(), "self-check must be green: {drifts:?}");
    }

    #[test]
    fn check_reports_drift_and_respects_the_population_cap() {
        let row = tiny_row();
        let mut doctored = row.clone();
        doctored.events += 1;
        let json = scale_json(7, &[doctored]);
        let drifts = check_scale(&json, usize::MAX).unwrap();
        assert_eq!(drifts.len(), 1, "{drifts:?}");
        assert!(drifts[0].contains("events drifted"), "{drifts:?}");
        // Every row above the cap: the checker refuses to vacuously pass.
        assert!(check_scale(&json, 100).is_err());
    }

    #[test]
    fn lazy_scale_runs_materialize_a_fraction_of_the_population() {
        let row = tiny_row();
        assert!(
            row.peak_live_devices < row.population / 2,
            "peak live {} vs population {}",
            row.peak_live_devices,
            row.population
        );
    }

    #[test]
    fn workload_is_population_independent() {
        let a = scale_experiment(1_000, 42);
        let b = scale_experiment(100_000, 42);
        assert_eq!(a.workload, b.workload);
    }

    #[test]
    fn sharded_rows_reproduce_the_sequential_deterministic_fields() {
        let sequential = run_scale_row(2_000, 7, SchedKind::Venn, 0);
        for shards in [1_u32, 4] {
            let sharded = run_scale_row(2_000, 7, SchedKind::Venn, shards);
            for ((key, a), (_, b)) in sequential
                .deterministic_fields()
                .iter()
                .zip(&sharded.deterministic_fields())
            {
                if *key == "shards" {
                    continue; // the arm label itself
                }
                assert_eq!(a, b, "shards={shards}: {key} must not drift");
            }
        }
    }

    #[test]
    fn checker_tolerates_rows_without_the_shards_key() {
        // A pre-axis document: strip the shards field entirely.
        let row = tiny_row();
        let json = scale_json(7, std::slice::from_ref(&row));
        let stripped: String = json
            .lines()
            .filter(|l| !l.trim_start().starts_with("\"shards\""))
            .map(|l| format!("{l}\n"))
            .collect();
        let drifts = check_scale(&stripped, usize::MAX).unwrap();
        assert!(drifts.is_empty(), "{drifts:?}");
    }
}
