//! Million-device scale sweep: runs the lazy-storage arm at
//! 10k / 100k / 1M devices (Random and Venn), on every execution arm
//! (sequential plus each shard count), and writes the results to
//! `BENCH_SCALE.json` — wall time, events/sec, queue pressure, the
//! materialized-device high-water mark, and the allocator high-water mark
//! (this binary installs the tracking allocator). Sharded rows must
//! carry identical deterministic fields to the sequential rows — only
//! the wall-clock telemetry may differ, which is exactly the speed-up
//! the sweep records.
//!
//! `--check` re-runs the committed file's rows and diffs the
//! deterministic fields (everything except `wall_ms` / `events_per_sec` /
//! `peak_bytes`); `--max-pop N` caps which rows re-run, so CI gates drift
//! at the 100k tier without paying for the 1M rows.
//!
//! Run: `cargo run --release -p venn-bench --bin bench_scale [seed]
//!       [--json PATH] [--check] [--max-pop N]`

use venn_bench::{
    check_scale, run_scale_row, scale_json, SCALE_KINDS, SCALE_POPULATIONS, SCALE_SHARD_COUNTS,
};
use venn_metrics::Table;

// The sweep's memory axis: without this opt-in every `peak_bytes` would
// read 0 ("not measured").
#[global_allocator]
static ALLOC: venn_metrics::alloc::TrackingAlloc = venn_metrics::alloc::TrackingAlloc;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut seed: u64 = 42;
    let mut path = "BENCH_SCALE.json".to_string();
    let mut check = false;
    let mut max_pop = usize::MAX;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if arg == "--json" {
            match it.next() {
                Some(p) => path = p.clone(),
                None => {
                    eprintln!("error: --json needs a path");
                    std::process::exit(1);
                }
            }
        } else if arg == "--check" {
            check = true;
        } else if arg == "--max-pop" {
            max_pop = match it.next().map(|s| s.parse()) {
                Some(Ok(n)) => n,
                other => {
                    eprintln!("error: --max-pop needs a number, got {other:?}");
                    std::process::exit(1);
                }
            };
        } else {
            match arg.parse() {
                Ok(s) => seed = s,
                Err(e) => {
                    eprintln!("error: bad seed {arg:?}: {e}");
                    std::process::exit(1);
                }
            }
        }
    }

    if check {
        let json = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            eprintln!("error: read scale baseline {path}: {e}");
            std::process::exit(1);
        });
        match check_scale(&json, max_pop) {
            Ok(drifts) if drifts.is_empty() => {
                println!("scale baseline OK ({path}, max-pop {max_pop})");
            }
            Ok(drifts) => {
                for d in &drifts {
                    eprintln!("DRIFT: {d}");
                }
                std::process::exit(1);
            }
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        }
        return;
    }

    // Sequential on purpose: per-run wall time and the process-global
    // allocator peak must not blend across concurrent cells.
    let mut rows = Vec::new();
    for population in SCALE_POPULATIONS {
        for kind in SCALE_KINDS {
            for shards in SCALE_SHARD_COUNTS {
                let row = run_scale_row(population, seed, kind, shards);
                eprintln!(
                    "{:>9} devices  {:<8} x{:<2} {:>7} ms  {:>9} ev/s  peak live {:>7}  \
                     peak {:>5} MiB",
                    row.population,
                    row.scheduler,
                    row.shards,
                    row.wall_ms,
                    row.events_per_sec,
                    row.peak_live_devices,
                    row.peak_bytes >> 20,
                );
                rows.push(row);
            }
        }
    }

    let mut table = Table::new(
        "Scale sweep (lazy arm)",
        &[
            "scheduler",
            "shards",
            "wall_ms",
            "events/s",
            "peak_queue",
            "peak_live",
            "peak_MiB",
        ],
    );
    for r in &rows {
        table.row_str(
            &r.population.to_string(),
            &[
                r.scheduler.clone(),
                if r.shards == 0 {
                    "seq".to_string()
                } else {
                    r.shards.to_string()
                },
                r.wall_ms.to_string(),
                r.events_per_sec.to_string(),
                r.peak_queue_len.to_string(),
                r.peak_live_devices.to_string(),
                (r.peak_bytes >> 20).to_string(),
            ],
        );
    }
    println!("{table}");

    std::fs::write(&path, scale_json(seed, &rows)).unwrap_or_else(|e| {
        eprintln!("error: write scale baseline {path}: {e}");
        std::process::exit(1);
    });
    eprintln!("wrote scale baseline to {path}");
}
