//! Dumps per-job completion records of one experiment as CSV for external
//! plotting — every scheduler on the same workload, one file per scheduler
//! on stdout separated by headers. With `--json PATH`, also writes the
//! machine-readable benchmark baseline (avg JCT, speed-ups, events/sec,
//! queue pressure) that `check_regression` gates CI against.
//!
//! Alongside the Table 1 schedulers, a `venn-full` row runs the
//! full-rebuild reference arm (`VennConfig::full_rebuild`): identical JCT
//! results to `venn` by construction (the incremental parity harness),
//! differing only in `wall_ms`/`events_per_sec`.
//!
//! The kernel's perf and environment arms are selectable for A/B
//! verification: `--queue heap` runs the binary-heap reference queue
//! instead of the timing wheel, `--no-gating` disables demand-gated
//! check-ins, and `--env <preset>` turns on a `venn-env` scenario
//! (`off|flash-crowd|straggler-heavy|mass-dropout|chaos`). The queue and
//! gating reference arms must reproduce the default arm's JCT stats bit
//! for bit; only `events` may differ, and only via gating. The chosen
//! arms are recorded in the JSON header so baseline files are
//! self-describing.
//!
//! `--deterministic` omits the timing telemetry (`wall_ms`,
//! `events_per_sec`) from the JSON so two runs of the same arm produce
//! byte-identical documents — the CI env-preset determinism gate diffs
//! exactly that.
//!
//! `--shards N` runs the matrix on the sharded execution engine. Sharded
//! execution is bit-identical to sequential, so the emitted documents
//! carry no execution-arm marker: a `--deterministic` export at any
//! shard count must byte-match the sequential export (the CI shard
//! smoke diffs exactly that).
//!
//! Run: `cargo run --release -p venn-bench --bin export_results [seed]
//!       [--json PATH] [--queue wheel|heap] [--no-gating] [--shards N]
//!       [--env PRESET] [--deterministic]`

use venn_bench::{baseline_json, run_baseline_exec};
use venn_env::EnvPreset;
use venn_metrics::csv::Csv;
use venn_sim::{ExecMode, QueueKind};

// Opt into allocation tracking so the emitted `peak_bytes` telemetry is a
// real per-run high-water mark (the runs are sequential, see below).
#[global_allocator]
static ALLOC: venn_metrics::alloc::TrackingAlloc = venn_metrics::alloc::TrackingAlloc;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut seed: u64 = 42;
    let mut json_path: Option<String> = None;
    let mut queue = QueueKind::Wheel;
    let mut demand_gating = true;
    let mut env = EnvPreset::Off;
    let mut timing = true;
    let mut exec = ExecMode::Sequential;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if arg == "--json" {
            match it.next() {
                Some(path) => json_path = Some(path.clone()),
                None => {
                    eprintln!("error: --json needs a path");
                    std::process::exit(1);
                }
            }
        } else if arg == "--queue" {
            queue = match it.next().map(String::as_str) {
                Some("wheel") => QueueKind::Wheel,
                Some("heap") => QueueKind::Heap,
                other => {
                    eprintln!("error: --queue needs wheel|heap, got {other:?}");
                    std::process::exit(1);
                }
            };
        } else if arg == "--no-gating" {
            demand_gating = false;
        } else if arg == "--env" {
            env = match it.next().map(String::as_str).and_then(EnvPreset::parse) {
                Some(p) => p,
                None => {
                    eprintln!(
                        "error: --env needs one of {}",
                        EnvPreset::ALL.map(|p| p.label()).join("|")
                    );
                    std::process::exit(1);
                }
            };
        } else if arg == "--deterministic" {
            timing = false;
        } else if arg == "--shards" {
            exec = match it.next().map(|s| s.parse::<u32>()) {
                Some(Ok(n)) if n >= 1 => ExecMode::Sharded { shards: n },
                other => {
                    eprintln!("error: --shards needs a count >= 1, got {other:?}");
                    std::process::exit(1);
                }
            };
        } else {
            match arg.parse() {
                Ok(s) => seed = s,
                Err(e) => {
                    eprintln!("error: bad seed {arg:?}: {e}");
                    std::process::exit(1);
                }
            }
        }
    }

    // Sequential on purpose: wall_ms feeds the events/sec baseline, and
    // timing runs while sibling simulations contend for cores would make
    // the recorded numbers machine-load-dependent.
    let (exp, runs) = run_baseline_exec(seed, queue, demand_gating, env, exec);

    for r in &runs {
        let mut csv = Csv::new(&[
            "job",
            "category",
            "rounds",
            "demand",
            "arrival_ms",
            "finish_ms",
            "jct_ms",
            "sched_delay_ms",
            "response_ms",
            "rounds_aborted",
        ]);
        for (i, (rec, plan)) in r.result.records.iter().zip(&exp.workload.jobs).enumerate() {
            csv.row(&[
                i.to_string(),
                plan.category.label().to_string(),
                plan.rounds.to_string(),
                plan.demand.to_string(),
                rec.arrival_ms.to_string(),
                rec.finish_ms.map(|v| v.to_string()).unwrap_or_default(),
                rec.jct_ms().map(|v| v.to_string()).unwrap_or_default(),
                rec.sched_delay_ms.to_string(),
                rec.response_ms.to_string(),
                rec.rounds_aborted.to_string(),
            ]);
        }
        println!("# scheduler: {}", r.result.scheduler_name);
        print!("{csv}");
        println!();
    }

    if let Some(path) = json_path {
        let json = baseline_json(&exp, &runs, seed, env, timing);
        if let Err(e) = std::fs::write(&path, json) {
            eprintln!("error: {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("wrote baseline to {path}");
    }
}
