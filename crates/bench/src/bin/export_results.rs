//! Dumps per-job completion records of one experiment as CSV for external
//! plotting — every scheduler on the same workload, one file per scheduler
//! on stdout separated by headers.
//!
//! Run: `cargo run --release -p venn-bench --bin export_results [seed]`

use venn_bench::{run, Experiment, SchedKind};
use venn_metrics::csv::Csv;
use venn_traces::WorkloadKind;

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("seed"))
        .unwrap_or(42);
    let exp = Experiment::paper_default(WorkloadKind::Even, None, seed);
    for kind in SchedKind::TABLE1 {
        let result = run(&exp, kind);
        let mut csv = Csv::new(&[
            "job",
            "category",
            "rounds",
            "demand",
            "arrival_ms",
            "finish_ms",
            "jct_ms",
            "sched_delay_ms",
            "response_ms",
            "rounds_aborted",
        ]);
        for (i, (rec, plan)) in result.records.iter().zip(&exp.workload.jobs).enumerate() {
            csv.row(&[
                i.to_string(),
                plan.category.label().to_string(),
                plan.rounds.to_string(),
                plan.demand.to_string(),
                rec.arrival_ms.to_string(),
                rec.finish_ms.map(|v| v.to_string()).unwrap_or_default(),
                rec.jct_ms().map(|v| v.to_string()).unwrap_or_default(),
                rec.sched_delay_ms.to_string(),
                rec.response_ms.to_string(),
                rec.rounds_aborted.to_string(),
            ]);
        }
        println!("# scheduler: {}", result.scheduler_name);
        print!("{csv}");
        println!();
    }
}
