//! Dumps per-job completion records of one experiment as CSV for external
//! plotting — every scheduler on the same workload, one file per scheduler
//! on stdout separated by headers. With `--json PATH`, also writes a
//! machine-readable benchmark baseline (avg JCT, speed-ups, events/sec)
//! for tracking performance across PRs.
//!
//! Alongside the Table 1 schedulers, a `venn-full` row runs the
//! full-rebuild reference arm (`VennConfig::full_rebuild`): identical JCT
//! results to `venn` by construction (the incremental parity harness),
//! differing only in `wall_ms`/`events_per_sec`. At paper scale (few
//! groups, ~50 jobs) the two arms time nearly the same — the whole-sim
//! throughput win over PR 1 comes from the hot-path work both arms share
//! (allocation-free `assign`, O(regions) supply snapshots); the
//! dirty-flag gap itself shows on loaded schedulers in the
//! `bench_incremental` trigger-latency bench.
//!
//! Run: `cargo run --release -p venn-bench --bin export_results [seed] [--json PATH]`

use venn_bench::{run_matrix_sequential, Experiment, Matrix, MatrixRun, SchedKind};
use venn_core::VennConfig;
use venn_metrics::csv::Csv;
use venn_traces::WorkloadKind;

fn json_baseline(experiment: &Experiment, runs: &[MatrixRun], seed: u64) -> String {
    let base_jct = runs
        .iter()
        .find(|r| r.cell.kind == SchedKind::Random)
        .expect("TABLE1 includes Random")
        .result
        .avg_jct_ms();
    let mut out = String::from("{\n");
    out.push_str("  \"experiment\": \"paper_default/even\",\n");
    out.push_str(&format!("  \"seed\": {seed},\n"));
    out.push_str(&format!(
        "  \"jobs\": {},\n",
        experiment.workload.jobs.len()
    ));
    out.push_str(&format!(
        "  \"population\": {},\n",
        experiment.sim.population
    ));
    out.push_str(&format!("  \"days\": {},\n", experiment.sim.days));
    out.push_str("  \"schedulers\": [\n");
    // Non-finite values (no finished jobs, sub-ms runs) must serialize as
    // JSON `null`, never `NaN`/`inf`.
    let json_num = |v: f64, decimals: usize| -> String {
        if v.is_finite() {
            format!("{v:.decimals$}")
        } else {
            "null".to_string()
        }
    };
    for (i, r) in runs.iter().enumerate() {
        let jct = r.result.avg_jct_ms();
        let speedup = if jct > 0.0 { base_jct / jct } else { f64::NAN };
        // Clamp to >= 1 ms so the rate stays finite.
        let events_per_sec = r.result.events as f64 * 1_000.0 / r.wall_ms.max(1) as f64;
        out.push_str("    {\n");
        out.push_str(&format!(
            "      \"name\": \"{}\",\n",
            r.result.scheduler_name
        ));
        out.push_str(&format!("      \"avg_jct_ms\": {},\n", json_num(jct, 1)));
        out.push_str(&format!(
            "      \"completion_rate\": {:.4},\n",
            r.result.completion_rate()
        ));
        out.push_str(&format!(
            "      \"speedup_vs_random\": {},\n",
            json_num(speedup, 4)
        ));
        out.push_str(&format!(
            "      \"aborted_rounds\": {},\n",
            r.result.aborted_rounds
        ));
        out.push_str(&format!(
            "      \"assignments\": {},\n",
            r.result.assignments
        ));
        out.push_str(&format!("      \"events\": {},\n", r.result.events));
        out.push_str(&format!("      \"wall_ms\": {},\n", r.wall_ms));
        out.push_str(&format!(
            "      \"events_per_sec\": {}\n",
            json_num(events_per_sec, 0)
        ));
        out.push_str(if i + 1 < runs.len() {
            "    },\n"
        } else {
            "    }\n"
        });
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut seed: u64 = 42;
    let mut json_path: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if arg == "--json" {
            match it.next() {
                Some(path) => json_path = Some(path.clone()),
                None => {
                    eprintln!("error: --json needs a path");
                    std::process::exit(1);
                }
            }
        } else {
            match arg.parse() {
                Ok(s) => seed = s,
                Err(e) => {
                    eprintln!("error: bad seed {arg:?}: {e}");
                    std::process::exit(1);
                }
            }
        }
    }

    let exp = Experiment::paper_default(WorkloadKind::Even, None, seed);
    let mut kinds = SchedKind::TABLE1.to_vec();
    kinds.push(SchedKind::VennWith(VennConfig::full_rebuild()));
    let matrix = Matrix::new()
        .fixed("paper_default/even", exp.clone())
        .kinds(&kinds)
        .seeds(&[seed]);
    // Sequential on purpose: wall_ms feeds the events/sec baseline, and
    // timing runs while sibling simulations contend for cores would make
    // the recorded numbers machine-load-dependent.
    let runs = run_matrix_sequential(&matrix);

    for r in &runs {
        let mut csv = Csv::new(&[
            "job",
            "category",
            "rounds",
            "demand",
            "arrival_ms",
            "finish_ms",
            "jct_ms",
            "sched_delay_ms",
            "response_ms",
            "rounds_aborted",
        ]);
        for (i, (rec, plan)) in r.result.records.iter().zip(&exp.workload.jobs).enumerate() {
            csv.row(&[
                i.to_string(),
                plan.category.label().to_string(),
                plan.rounds.to_string(),
                plan.demand.to_string(),
                rec.arrival_ms.to_string(),
                rec.finish_ms.map(|v| v.to_string()).unwrap_or_default(),
                rec.jct_ms().map(|v| v.to_string()).unwrap_or_default(),
                rec.sched_delay_ms.to_string(),
                rec.response_ms.to_string(),
                rec.rounds_aborted.to_string(),
            ]);
        }
        println!("# scheduler: {}", r.result.scheduler_name);
        print!("{csv}");
        println!();
    }

    if let Some(path) = json_path {
        let json = json_baseline(&exp, &runs, seed);
        std::fs::write(&path, json).expect("write json baseline");
        eprintln!("wrote baseline to {path}");
    }
}
