//! Table 4 — biased workloads case study: half of each workload's jobs ask
//! for one favored category (General / Compute / Memory / High-Perf), the
//! rest spread evenly, creating uneven queue lengths across job groups.
//!
//! Paper values: FIFO 1.46-1.73×, SRSF 1.78-2.08×, Venn 1.94-2.27×.
//!
//! Run: `cargo run --release -p venn-bench --bin table4_biased [seeds]`

use venn_bench::{mean_speedups_detailed, Experiment, SchedKind};
use venn_metrics::Table;
use venn_traces::{BiasKind, WorkloadKind};

fn main() {
    let seeds: Vec<u64> = match std::env::args().nth(1) {
        Some(n) => match n.parse::<u64>() {
            Ok(count) => (0..count).map(|i| 800 + i).collect(),
            Err(e) => {
                eprintln!("error: seed count {n:?}: {e}");
                std::process::exit(2);
            }
        },
        None => vec![800, 801],
    };
    let kinds = [SchedKind::Fifo, SchedKind::Srsf, SchedKind::Venn];
    let mut table = Table::new(
        "Table 4: avg JCT speed-up over Random on biased workloads",
        &["FIFO", "SRSF", "Venn"],
    );
    for bias in BiasKind::ALL {
        let (speedups, completion) = mean_speedups_detailed(
            |seed| Experiment::paper_default(WorkloadKind::Even, Some(bias), seed),
            &kinds,
            &seeds,
        );
        table.row(bias.label(), &speedups);
        eprintln!("{}: completion {:?}", bias.label(), completion);
    }
    println!("{table}");
    println!("(paper: FIFO 1.46-1.73, SRSF 1.78-2.08, Venn 1.94-2.27)");
}
