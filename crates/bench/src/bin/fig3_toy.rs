//! Figure 3 — the motivating toy example: one Keyboard job (3 devices, any
//! device eligible) and two Emoji jobs (4 devices each, only half the
//! devices eligible); one device checks in per time unit.
//!
//! Paper values: Random ≈ 12, SRSF = 11, optimal = 9.3 average JCT.
//!
//! Run: `cargo run --release -p venn-bench --bin fig3_toy`

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use venn_metrics::Table;
use venn_opt::{solve, Arrival, Instance};

/// Keyboard = job 0 (eligible: all); Emoji = jobs 1, 2 (odd arrivals only).
fn toy_instance(horizon: u64) -> Instance {
    let arrivals: Vec<Arrival> = (1..=horizon)
        .map(|t| Arrival {
            time: t,
            eligible: if t % 2 == 1 { 0b111 } else { 0b001 },
        })
        .collect();
    Instance::new(vec![3, 4, 4], arrivals)
}

/// Average completion of a fixed job priority order (first eligible job in
/// the order takes each device) — the schedule shape Random/SRSF produce.
fn avg_of_order(inst: &Instance, order: &[usize]) -> Option<f64> {
    venn_opt::fixed_order_cost(inst, order).map(|c| c as f64 / 3.0)
}

/// Monte-Carlo per-device random matching (the paper's Fig. 3b baseline):
/// every arrival picks uniformly among eligible jobs with unmet demand.
fn random_matching_avg(inst: &Instance, trials: u32, seed: u64) -> f64 {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut total = 0.0;
    for _ in 0..trials {
        let mut remaining = inst.demands().to_vec();
        let mut sum = 0u64;
        for arrival in inst.arrivals() {
            let candidates: Vec<usize> = (0..remaining.len())
                .filter(|&j| remaining[j] > 0 && arrival.eligible & (1 << j) != 0)
                .collect();
            if candidates.is_empty() {
                continue;
            }
            let j = candidates[rng.gen_range(0..candidates.len())];
            remaining[j] -= 1;
            if remaining[j] == 0 {
                sum += arrival.time;
            }
        }
        total += sum as f64 / inst.demands().len() as f64;
    }
    total / trials as f64
}

fn main() {
    let inst = toy_instance(20);
    let random = random_matching_avg(&inst, 20_000, 3);

    // SRSF: smallest demand first = keyboard (3) then the emoji jobs.
    let srsf = avg_of_order(&inst, &[0, 1, 2]).expect("feasible");

    // Venn's IRS insight: scarce (emoji-eligible) devices are reserved for
    // the emoji group, served one job at a time; keyboard eats the rest.
    // This is exactly the optimal schedule here.
    let optimal = solve(&inst).expect("feasible").avg_completion();

    let mut table = Table::new("Figure 3: toy example average JCT", &["avg JCT"]);
    table.row("Random matching", &[random]);
    table.row("SRSF", &[srsf]);
    table.row("Optimal (= Venn's order)", &[optimal]);
    println!("{table}");
    println!("(paper: Random 12, SRSF 11, optimal 9.3)");

    assert_eq!(srsf, 11.0, "SRSF trace must match the paper");
    assert!((optimal - 28.0 / 3.0).abs() < 1e-9, "optimal must be 9.33");
    assert!(random > srsf, "random must be worst");
}
