//! Table 3 — Venn's average-JCT improvement over Random broken down by the
//! jobs' device-requirement category, per workload.
//!
//! Paper shape: jobs asking for scarcer resources (Compute-/Memory-rich,
//! High-Perf) benefit more than General jobs.
//!
//! Run: `cargo run --release -p venn-bench --bin table3_spec_breakdown`

use venn_bench::{run, subset_speedup, Experiment, SchedKind};
use venn_core::SpecCategory;
use venn_metrics::Table;
use venn_traces::WorkloadKind;

fn main() {
    let mut table = Table::new(
        "Table 3: Venn speed-up over Random by requirement category",
        &["General", "Compute", "Memory", "High-perf"],
    );
    for wk in WorkloadKind::ALL {
        let exp = Experiment::paper_default(wk, None, 700);
        let random = run(&exp, SchedKind::Random);
        let venn = run(&exp, SchedKind::Venn);

        let mut row = Vec::new();
        for cat in SpecCategory::ALL {
            let subset: Vec<usize> = exp
                .workload
                .jobs
                .iter()
                .enumerate()
                .filter(|(_, j)| j.category == cat)
                .map(|(i, _)| i)
                .collect();
            row.push(subset_speedup(&random, &venn, &subset).unwrap_or(f64::NAN));
        }
        table.row(wk.label(), &row);
    }
    println!("{table}");
    println!("(paper shape: scarcer-requirement jobs gain the most)");
}
