//! Calibration probe: how often does tier-based matching engage, and what
//! cost ratios does it see? Not a paper figure — a diagnostic for the
//! matching trigger (Algorithm 2).
//!
//! Run: `cargo run --release -p venn-bench --bin probe_matching`

use venn_bench::Experiment;
use venn_core::{VennConfig, VennScheduler};
use venn_sim::Simulation;
use venn_traces::WorkloadKind;

fn main() {
    for wk in [WorkloadKind::Low, WorkloadKind::High, WorkloadKind::Even] {
        let exp = Experiment::paper_default(wk, None, 100);
        let mut venn = VennScheduler::new(VennConfig {
            seed: 1,
            ..VennConfig::default()
        });
        let result = Simulation::new(exp.sim).run(&exp.workload, &mut venn);
        let stats = venn.matching_stats();
        let b = result.breakdown();
        println!(
            "{:>5}: considered={} fired={} not_ready={} mean_c={:.2} | \
             avg_sched={:.0}s avg_resp={:.0}s completion={:.2}",
            wk.label(),
            stats.considered,
            stats.fired,
            stats.not_ready,
            stats.mean_cost_ratio(),
            b.avg_sched_delay_ms() / 1000.0,
            b.avg_response_ms() / 1000.0,
            result.completion_rate(),
        );
    }
}
