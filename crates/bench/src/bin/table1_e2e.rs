//! Table 1 — average-JCT improvement over Random matching for FIFO, SRSF,
//! and Venn across the five workload scenarios (Even/Small/Large/Low/High).
//!
//! Paper reference values: Venn 1.63×–1.88×, always ahead of FIFO and SRSF.
//!
//! Run: `cargo run --release -p venn-bench --bin table1_e2e [seeds]`

use venn_bench::{mean_speedups_detailed, Experiment, SchedKind};
use venn_metrics::Table;
use venn_traces::WorkloadKind;

fn main() {
    let seeds: Vec<u64> = match std::env::args().nth(1) {
        Some(n) => (0..n.parse::<u64>().expect("seed count")).map(|i| 100 + i).collect(),
        None => vec![100, 101, 102],
    };
    let kinds = [SchedKind::Fifo, SchedKind::Srsf, SchedKind::Venn];
    let mut table = Table::new(
        "Table 1: avg JCT speed-up over Random matching",
        &["FIFO", "SRSF", "Venn"],
    );
    for wk in WorkloadKind::ALL {
        let (speedups, completion) = mean_speedups_detailed(
            |seed| Experiment::paper_default(wk, None, seed),
            &kinds,
            &seeds,
        );
        table.row(wk.label(), &speedups);
        eprintln!(
            "{} done: speedups {:?} completion {:?}",
            wk.label(),
            speedups,
            completion
        );
    }
    println!("{table}");
    println!("(averaged over {} seeds; paper: Venn 1.63x-1.88x)", seeds.len());
}
