//! Table 1 — average-JCT improvement over Random matching for FIFO, SRSF,
//! and Venn across the five workload scenarios (Even/Small/Large/Low/High).
//!
//! Paper reference values: Venn 1.63×–1.88×, always ahead of FIFO and SRSF.
//!
//! The whole (scenario × seed × scheduler) grid runs in parallel through
//! [`run_matrix`].
//!
//! Run: `cargo run --release -p venn-bench --bin table1_e2e [seeds]`

use venn_bench::{run_matrix, speedup_summary, with_baseline, Experiment, Matrix, SchedKind};
use venn_metrics::Table;
use venn_traces::WorkloadKind;

fn main() {
    let seeds: Vec<u64> = match std::env::args().nth(1) {
        Some(n) => match n.parse::<u64>() {
            Ok(count) => (0..count).map(|i| 100 + i).collect(),
            Err(e) => {
                eprintln!("error: seed count {n:?}: {e}");
                std::process::exit(2);
            }
        },
        None => vec![100, 101, 102],
    };
    let kinds = [SchedKind::Fifo, SchedKind::Srsf, SchedKind::Venn];
    let mut matrix = Matrix::new().kinds(&with_baseline(&kinds)).seeds(&seeds);
    for wk in WorkloadKind::ALL {
        matrix = matrix.scenario(wk.label(), move |seed| {
            Experiment::paper_default(wk, None, seed)
        });
    }
    let runs = run_matrix(&matrix);

    let mut table = Table::new(
        "Table 1: avg JCT speed-up over Random matching",
        &["FIFO", "SRSF", "Venn"],
    );
    for row in speedup_summary(&runs, &kinds) {
        table.row(&row.scenario, &row.speedups);
        eprintln!(
            "{} done: speedups {:?} completion {:?}",
            row.scenario, row.speedups, row.completion
        );
    }
    println!("{table}");
    println!(
        "(averaged over {} seeds; paper: Venn 1.63x-1.88x)",
        seeds.len()
    );
}
