//! Figures 2a, 2b/8a, and 8b — the trace statistics the evaluation rests
//! on: diurnal device availability, the capacity distribution with its
//! four eligibility regions, and the job demand marginals.
//!
//! Run: `cargo run --release -p venn-bench --bin fig2_traces`

use rand::rngs::StdRng;
use rand::SeedableRng;
use venn_core::{CategoryThresholds, SpecCategory, DAY_MS, HOUR_MS};
use venn_metrics::{Histogram, Series, Table};
use venn_traces::{AvailabilityModel, CapacityModel, JobDemandModel};

fn main() {
    let mut rng = StdRng::seed_from_u64(20);

    // --- Fig. 2a: % of clients online over 96 h.
    let avail = AvailabilityModel::default();
    let population = 4_000;
    let sessions = avail.generate(population, 4, &mut rng);
    let curve =
        AvailabilityModel::online_fraction_curve(&sessions, population, 4 * DAY_MS, HOUR_MS);
    let mut series = Series::new("Fig 2a: % of clients online (x = hours)");
    for (t, f) in &curve {
        series.point(*t as f64 / HOUR_MS as f64, f * 100.0);
    }
    println!("{series}");
    let steady: Vec<f64> = curve
        .iter()
        .filter(|(t, _)| *t >= DAY_MS)
        .map(|(_, f)| f * 100.0)
        .collect();
    let peak = steady.iter().cloned().fold(0.0, f64::max);
    let trough = steady.iter().cloned().fold(100.0, f64::min);
    println!(
        "diurnal swing after warm-up: {trough:.1}% - {peak:.1}% \
         (paper Fig 2a: ~15-30%)\n"
    );

    // --- Fig. 2b / 8a: capacity distribution and region populations.
    let thresholds = CategoryThresholds {
        cpu: 0.55,
        mem: 0.55,
    };
    let pop = CapacityModel::default().sample_population(20_000, &mut rng);
    let fractions = CapacityModel::region_fractions(&pop, thresholds);
    let mut table = Table::new(
        "Fig 2b/8a: device eligibility regions (finest region per device)",
        &["fraction"],
    );
    for (cat, frac) in SpecCategory::ALL.iter().zip(fractions) {
        table.row(cat.label(), &[frac]);
    }
    println!("{table}");
    let mut cpu_hist = Histogram::new(0.0, 1.0, 20);
    let mut mem_hist = Histogram::new(0.0, 1.0, 20);
    for d in &pop {
        cpu_hist.record(d.capacity.cpu());
        mem_hist.record(d.capacity.mem());
    }
    println!("normalized CPU score distribution:\n{}", cpu_hist.render());
    println!(
        "normalized memory score distribution:\n{}",
        mem_hist.render()
    );

    // --- Fig. 8b: job demand trace marginals.
    let model = JobDemandModel::default();
    let mut rounds_hist = Histogram::new(0.0, model.rounds_max as f64, 15);
    let mut demand_hist = Histogram::new(0.0, model.demand_max as f64, 15);
    for _ in 0..5_000 {
        let (r, d, _) = model.sample(&mut rng);
        rounds_hist.record(r as f64);
        demand_hist.record(d as f64);
    }
    println!(
        "Fig 8b: # rounds per job (scaled-down marginal):\n{}",
        rounds_hist.render()
    );
    println!(
        "Fig 8b: # participants per round (scaled-down marginal):\n{}",
        demand_hist.render()
    );
}
