//! Figure 5 — breakdown of one round's completion time under random
//! device-to-job matching: average scheduling delay vs response collection
//! time as the number of concurrent jobs grows.
//!
//! Paper shape: scheduling delay grows sharply with contention and
//! dominates response time once demand outstrips supply.
//!
//! Run: `cargo run --release -p venn-bench --bin fig5_breakdown`

use venn_bench::{run, Experiment, SchedKind};
use venn_metrics::Table;
use venn_traces::WorkloadKind;

fn main() {
    let mut table = Table::new(
        "Figure 5: per-round JCT breakdown under random matching (seconds)",
        &["sched delay", "resp. time"],
    );
    for jobs in [5usize, 10, 20, 40] {
        let exp = Experiment::with_jobs(WorkloadKind::Even, None, jobs, 500);
        let r = run(&exp, SchedKind::Random);
        // Per completed round averages across jobs.
        let mut sched = 0.0;
        let mut resp = 0.0;
        let mut rounds = 0u64;
        for rec in &r.records {
            sched += rec.sched_delay_ms as f64;
            resp += rec.response_ms as f64;
            rounds += rec.rounds_completed as u64;
        }
        let rounds = rounds.max(1) as f64;
        table.row(
            &format!("{jobs} jobs"),
            &[sched / rounds / 1000.0, resp / rounds / 1000.0],
        );
    }
    println!("{table}");
    println!("(paper Fig 5: scheduling delay grows with contention and dominates)");
}
