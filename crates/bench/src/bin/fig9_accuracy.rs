//! Figure 9 — end-to-end CL experiment: average test accuracy over
//! wall-clock time under FIFO, SRSF, and Venn. The scheduler decides *when*
//! each job's rounds run and *which* devices participate; FedAvg turns the
//! resulting participant sets into accuracy curves.
//!
//! Paper shape: Venn converges fastest in wall-clock time; the final
//! accuracy is the same for all schedulers.
//!
//! Run: `cargo run --release -p venn-bench --bin fig9_accuracy`

use rand::rngs::StdRng;
use rand::SeedableRng;
use venn_bench::{Experiment, SchedKind};
use venn_core::MINUTE_MS;
use venn_fl::{FedAvg, FedAvgConfig, FederatedDataset, FlDataConfig};
use venn_metrics::Series;
use venn_sim::Simulation;
use venn_traces::{JobDemandModel, Workload, WorkloadKind};

const CLIENTS: usize = 200;

fn experiment(seed: u64) -> Experiment {
    let mut rng = StdRng::seed_from_u64(seed);
    let workload = Workload::generate(
        WorkloadKind::Even,
        None,
        16,
        &JobDemandModel {
            rounds_mean: 8.0,
            rounds_max: 15,
            demand_mean: 15.0,
            demand_max: 30,
            ..JobDemandModel::default()
        },
        10.0 * MINUTE_MS as f64,
        &mut rng,
    );
    let mut exp = Experiment::paper_default(WorkloadKind::Even, None, seed);
    exp.workload = workload;
    exp.sim.record_rounds = true;
    exp
}

fn main() {
    let seed = 77;
    let exp = experiment(seed);
    let mut data_rng = StdRng::seed_from_u64(seed ^ 0xF00D);
    let data = FederatedDataset::generate(
        FlDataConfig {
            clients: CLIENTS,
            ..FlDataConfig::default()
        },
        &mut data_rng,
    );

    for kind in [SchedKind::Fifo, SchedKind::Srsf, SchedKind::Venn] {
        let mut scheduler = kind.build(seed);
        let result = Simulation::new(exp.sim).run(&exp.workload, &mut *scheduler);

        // Replay each job's rounds through FedAvg at their completion times.
        let n_jobs = exp.workload.jobs.len();
        let mut runs: Vec<FedAvg> = (0..n_jobs)
            .map(|_| FedAvg::new(data.clone(), FedAvgConfig::default()))
            .collect();
        // (time, job, accuracy-after-round) breakpoints.
        let mut breakpoints: Vec<(u64, usize, f64)> = Vec::new();
        let mut rounds = result.rounds.clone();
        rounds.sort_by_key(|r| r.end_ms);
        for log in &rounds {
            let participants: Vec<usize> = log.participants.iter().map(|d| d % CLIENTS).collect();
            runs[log.job_idx].run_round(&participants);
            breakpoints.push((log.end_ms, log.job_idx, runs[log.job_idx].test_accuracy()));
        }

        // Average accuracy across jobs on a 30-minute grid.
        let horizon = rounds.last().map(|r| r.end_ms).unwrap_or(0);
        let mut series = Series::new(&format!("{} (x = hours)", kind.label()));
        let mut acc = vec![runs[0].test_accuracy().min(0.1); n_jobs];
        // Start all curves from the untrained model's accuracy.
        for a in &mut acc {
            *a = 1.0 / 10.0;
        }
        let mut bp = breakpoints.iter().peekable();
        let mut t = 0u64;
        while t <= horizon {
            while let Some(&&(bt, job, a)) = bp.peek() {
                if bt <= t {
                    acc[job] = a;
                    bp.next();
                } else {
                    break;
                }
            }
            let mean = acc.iter().sum::<f64>() / n_jobs as f64;
            series.point(t as f64 / 3_600_000.0, mean);
            t += 30 * MINUTE_MS;
        }
        println!("{series}");
        println!(
            "{}: final avg accuracy {:.3}, avg JCT {:.0}s, completion {:.2}\n",
            kind.label(),
            series.last_y().unwrap_or(0.0),
            result.avg_jct_ms() / 1000.0,
            result.completion_rate()
        );
    }
    println!("(paper Fig 9: Venn converges fastest; final accuracy unaffected)");
}
