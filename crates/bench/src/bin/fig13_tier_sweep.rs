//! Figure 13 — Venn's improvement across the number of device tiers V used
//! by the matching algorithm (1 = no tiering).
//!
//! Paper shape: improvement rises with tier granularity, then plateaus —
//! finer tiers add scheduling delay without further response-time gains.
//!
//! Run: `cargo run --release -p venn-bench --bin fig13_tier_sweep [seeds]`

use venn_bench::{mean_speedups_detailed, Experiment, SchedKind};
use venn_core::VennConfig;
use venn_metrics::Table;
use venn_traces::WorkloadKind;

fn main() {
    let seeds: Vec<u64> = match std::env::args().nth(1) {
        Some(n) => match n.parse::<u64>() {
            Ok(count) => (0..count).map(|i| 950 + i).collect(),
            Err(e) => {
                eprintln!("error: seed count {n:?}: {e}");
                std::process::exit(2);
            }
        },
        None => vec![950, 951],
    };
    let mut table = Table::new(
        "Figure 13: Venn speed-up over Random vs number of tiers (Low workload)",
        &["speed-up"],
    );
    for tiers in 1usize..=4 {
        let kind = SchedKind::VennWith(VennConfig {
            tiers,
            ..VennConfig::default()
        });
        let (speedups, _) = mean_speedups_detailed(
            |seed| Experiment::paper_default(WorkloadKind::Low, None, seed),
            &[kind],
            &seeds,
        );
        table.row(&format!("V = {tiers}"), &speedups);
        eprintln!("V={tiers}: {:.3}", speedups[0]);
    }
    println!("{table}");
    println!("(paper: gains rise with V then plateau)");
}
