//! Figure 10 — scheduler overhead: latency of one scheduling trigger
//! (Algorithm 1 rebuild + matching decision) as the number of jobs and job
//! groups grows.
//!
//! Paper values: sub-millisecond per trigger up to 1 000 jobs / 100 groups
//! thanks to the `max(O(m log m), O(n²))` complexity. The criterion bench
//! `sched_overhead` measures the same quantity with statistical rigor.
//!
//! Run: `cargo run --release -p venn-bench --bin fig10_overhead`

use std::time::Instant;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use venn_core::{
    Capacity, DeviceId, DeviceInfo, JobId, Request, ResourceSpec, Scheduler, VennConfig,
    VennScheduler,
};
use venn_metrics::Table;

/// Builds a Venn scheduler preloaded with `jobs` jobs over `groups`
/// distinct specs and a populated supply window.
fn loaded_scheduler(jobs: usize, groups: usize, seed: u64) -> VennScheduler {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut venn = VennScheduler::new(VennConfig::default());
    // Supply: 4 000 recorded check-ins across the capacity square.
    for i in 0..4_000u64 {
        let cap = Capacity::new(rng.gen(), rng.gen());
        venn.on_check_in(&DeviceInfo::new(DeviceId::new(i), cap), i);
    }
    // Distinct quadrant specs, then jobs round-robin over them.
    let specs: Vec<ResourceSpec> = (0..groups)
        .map(|g| {
            let t = g as f64 / groups as f64 * 0.9;
            ResourceSpec::new(t, t * 0.8)
        })
        .collect();
    for j in 0..jobs {
        venn.submit(
            Request::new(
                JobId::new(j as u64),
                specs[j % groups],
                1 + (j % 50) as u32,
                100 + j as u64,
            ),
            5_000,
        );
    }
    venn
}

fn measure_trigger_us(venn: &mut VennScheduler, iters: u32) -> f64 {
    let start = Instant::now();
    for i in 0..iters {
        venn.rebuild_now(10_000 + i as u64);
    }
    start.elapsed().as_secs_f64() * 1e6 / iters as f64
}

fn main() {
    let mut jobs_table = Table::new(
        "Figure 10 (left): trigger latency vs number of jobs (20 groups)",
        &["latency (us)"],
    );
    for jobs in [100usize, 250, 500, 750, 1_000] {
        let mut venn = loaded_scheduler(jobs, 20, 1);
        jobs_table.row(
            &format!("{jobs} jobs"),
            &[measure_trigger_us(&mut venn, 50)],
        );
    }
    println!("{jobs_table}");

    let mut groups_table = Table::new(
        "Figure 10 (right): trigger latency vs number of job groups (500 jobs)",
        &["latency (us)"],
    );
    for groups in [20usize, 40, 60, 80, 100] {
        let mut venn = loaded_scheduler(500, groups, 2);
        groups_table.row(
            &format!("{groups} groups"),
            &[measure_trigger_us(&mut venn, 50)],
        );
    }
    println!("{groups_table}");
    println!("(paper Fig 10: 0.2-1 ms per trigger at this scale)");
}
