//! Design-choice ablation (beyond the paper's figures): how much of IRS's
//! benefit comes from the greedy cross-group reallocation (Algorithm 1
//! lines 10–23) versus the scarcest-first seeding alone?
//!
//! Run: `cargo run --release -p venn-bench --bin ablation_steal [seeds]`

use venn_bench::{mean_speedups_detailed, Experiment, SchedKind};
use venn_core::VennConfig;
use venn_metrics::Table;
use venn_traces::{BiasKind, WorkloadKind};

fn main() {
    let seeds: Vec<u64> = match std::env::args().nth(1) {
        Some(n) => match n.parse::<u64>() {
            Ok(count) => (0..count).map(|i| 640 + i).collect(),
            Err(e) => {
                eprintln!("error: seed count {n:?}: {e}");
                std::process::exit(2);
            }
        },
        None => vec![640, 641],
    };
    let kinds = [
        SchedKind::VennWith(VennConfig {
            use_steal: false,
            ..VennConfig::default()
        }),
        SchedKind::Venn,
    ];
    let mut table = Table::new(
        "Ablation: IRS without vs with cross-group reallocation",
        &["scarcity-only", "full IRS"],
    );
    // The steal step matters most when queue lengths are uneven across
    // groups — exactly the biased workloads of Table 4.
    for bias in [None, Some(BiasKind::General), Some(BiasKind::ComputeHeavy)] {
        let label = bias.map(|b| b.label()).unwrap_or("Even (unbiased)");
        let (speedups, completion) = mean_speedups_detailed(
            |seed| Experiment::paper_default(WorkloadKind::Even, bias, seed),
            &kinds,
            &seeds,
        );
        table.row(label, &speedups);
        eprintln!("{label}: completion {completion:?}");
    }
    println!("{table}");
    println!("(speed-ups over Random; the gap isolates Algorithm 1's steal step)");
}
