//! Figure 14 — the fairness knob ε: (a) average-JCT speed-up over Random
//! decreases as ε grows; (b) the fraction of jobs that meet their
//! fair-share JCT (`T_i = M · sd_i`) increases with ε.
//!
//! `sd_i` (the job's JCT without contention) is estimated analytically from
//! the trace models: rounds × (allocation time at the uncontended eligible
//! arrival rate + straggler-weighted response time). The paper reports
//! ε = 2 putting ~69 % of jobs within their fair share.
//!
//! Run: `cargo run --release -p venn-bench --bin fig14_fairness [seeds]`

use rand::rngs::StdRng;
use rand::SeedableRng;
use venn_bench::{run, Experiment, SchedKind};
use venn_core::VennConfig;
use venn_metrics::Table;
use venn_traces::{CapacityModel, WorkloadKind};

/// Analytic uncontended-JCT estimate per job, in milliseconds.
fn uncontended_jct(exp: &Experiment) -> Vec<f64> {
    // Reconstruct the device population the sim will draw (same seed and
    // sampling order as the engine) to measure eligible fractions.
    let mut rng = StdRng::seed_from_u64(exp.sim.seed);
    let pop = CapacityModel::default().sample_population(exp.sim.population, &mut rng);
    let daily_unique = (1.0 - (-1.5f64).exp()) * exp.sim.population as f64;
    exp.workload
        .jobs
        .iter()
        .map(|j| {
            let spec = j.spec(exp.sim.thresholds);
            let frac = pop.iter().filter(|d| spec.is_eligible(&d.capacity)).count() as f64
                / pop.len() as f64;
            // Uncontended, a fresh request captures the idle eligible
            // online pool within one poll interval; only demand beyond
            // that waits for the daily trickle.
            let online_eligible = 0.19 * exp.sim.population as f64 * frac.max(1e-6);
            let trickle_per_ms = (daily_unique * frac.max(1e-6)) / venn_core::DAY_MS as f64;
            let excess = (j.demand as f64 - online_eligible).max(0.0);
            let alloc_ms = exp.sim.repoll_ms as f64 * (1.0 + j.demand as f64 / online_eligible)
                + excess / trickle_per_ms;
            let resp_ms = 1.5 * j.task_ms as f64;
            j.rounds as f64 * (alloc_ms + resp_ms)
        })
        .collect()
}

fn main() {
    let seeds: Vec<u64> = match std::env::args().nth(1) {
        Some(n) => match n.parse::<u64>() {
            Ok(count) => (0..count).map(|i| 980 + i).collect(),
            Err(e) => {
                eprintln!("error: seed count {n:?}: {e}");
                std::process::exit(2);
            }
        },
        None => vec![980],
    };
    let mut table = Table::new(
        "Figure 14: fairness knob epsilon",
        &["speed-up over Random", "% jobs <= fair JCT"],
    );
    for epsilon in [0.0, 1.0, 2.0, 4.0, 6.0] {
        let mut speedup_sum = 0.0;
        let mut fair_sum = 0.0;
        for &seed in &seeds {
            let exp = Experiment::paper_default(WorkloadKind::Even, None, seed);
            let random = run(&exp, SchedKind::Random);
            let venn = run(
                &exp,
                SchedKind::VennWith(VennConfig {
                    epsilon,
                    ..VennConfig::default()
                }),
            );
            speedup_sum += random.avg_jct_ms() / venn.avg_jct_ms();
            let sd = uncontended_jct(&exp);
            // M_i = number of jobs whose lifetime overlaps job i's — the
            // "simultaneous jobs" in the paper's fair-share definition.
            let horizon = exp.sim.horizon_ms();
            let windows: Vec<(u64, u64)> = venn
                .records
                .iter()
                .map(|r| (r.arrival_ms, r.finish_ms.unwrap_or(horizon)))
                .collect();
            let fair_met = venn
                .records
                .iter()
                .enumerate()
                .filter(|(i, rec)| {
                    let (a, f) = windows[*i];
                    let m = windows
                        .iter()
                        .filter(|(a2, f2)| *a2 < f && *f2 > a)
                        .count()
                        .max(1) as f64;
                    rec.jct_ms()
                        .map(|jct| (jct as f64) <= m * sd[*i])
                        .unwrap_or(false)
                })
                .count() as f64
                / venn.records.len() as f64;
            fair_sum += fair_met * 100.0;
        }
        let n = seeds.len() as f64;
        table.row(
            &format!("eps = {epsilon}"),
            &[speedup_sum / n, fair_sum / n],
        );
        eprintln!("eps {epsilon} done");
    }
    println!("{table}");
    println!("(paper: speed-up decreases with eps; eps=2 -> ~69% meet fair JCT)");
}
