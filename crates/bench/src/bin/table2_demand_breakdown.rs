//! Table 2 — Venn's average-JCT improvement over Random for the jobs with
//! the lowest 25 % / 50 % / 75 % of total demand, per workload.
//!
//! Paper shape: smaller jobs benefit the most (e.g. Even: 11.5× / 7.2× /
//! 5.6× on the smallest quartile → 75 %).
//!
//! Run: `cargo run --release -p venn-bench --bin table2_demand_breakdown`

use venn_bench::{run, subset_speedup, Experiment, SchedKind};
use venn_metrics::Table;
use venn_traces::WorkloadKind;

fn main() {
    let mut table = Table::new(
        "Table 2: Venn speed-up over Random by total-demand percentile",
        &["25th", "50th", "75th"],
    );
    for wk in WorkloadKind::ALL {
        let exp = Experiment::paper_default(wk, None, 600);
        let random = run(&exp, SchedKind::Random);
        let venn = run(&exp, SchedKind::Venn);

        // Rank jobs by total demand, ascending.
        let mut order: Vec<usize> = (0..exp.workload.jobs.len()).collect();
        order.sort_by_key(|&i| exp.workload.jobs[i].total_demand());

        let mut row = Vec::new();
        for pct in [0.25, 0.50, 0.75] {
            let k = ((order.len() as f64 * pct).ceil() as usize).max(1);
            let subset: Vec<usize> = order[..k].to_vec();
            row.push(subset_speedup(&random, &venn, &subset).unwrap_or(f64::NAN));
        }
        table.row(wk.label(), &row);
    }
    println!("{table}");
    println!("(paper shape: the smaller the jobs, the larger the improvement)");
}
