//! Figure 4 — impact of resource contention on model quality: the client
//! pool is evenly partitioned among 1/5/10/20 concurrent jobs; each job
//! wants 20 participants per round but can only draw from its partition.
//! More jobs → smaller partitions → less participant diversity → worse
//! round-to-accuracy.
//!
//! Run: `cargo run --release -p venn-bench --bin fig4_contention`

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use venn_fl::{FedAvg, FedAvgConfig, FederatedDataset, FlDataConfig};
use venn_metrics::Series;

const ROUNDS: usize = 40;
const TARGET_PER_ROUND: usize = 20;
const CLIENTS: usize = 200;

fn main() {
    let mut rng = StdRng::seed_from_u64(44);
    let data = FederatedDataset::generate(
        FlDataConfig {
            clients: CLIENTS,
            ..FlDataConfig::default()
        },
        &mut rng,
    );

    for jobs in [1usize, 5, 10, 20] {
        let partition = CLIENTS / jobs;
        // Train every job on its own partition; report the average curve.
        let mut runs: Vec<FedAvg> = (0..jobs)
            .map(|_| FedAvg::new(data.clone(), FedAvgConfig::default()))
            .collect();
        let mut series = Series::new(&format!("{jobs} job(s) (x = round)"));
        for round in 0..ROUNDS {
            let mut acc_sum = 0.0;
            for (j, fed) in runs.iter_mut().enumerate() {
                let base = j * partition;
                let k = TARGET_PER_ROUND.min(partition);
                let participants: Vec<usize> =
                    (0..k).map(|_| base + rng.gen_range(0..partition)).collect();
                fed.run_round(&participants);
                acc_sum += fed.test_accuracy();
            }
            series.point(round as f64, acc_sum / jobs as f64);
        }
        println!("{series}");
        println!(
            "final avg accuracy with {jobs:>2} job(s): {:.3}\n",
            series.last_y().unwrap()
        );
    }
    println!("(paper Fig 4: more concurrent jobs -> slower round-to-accuracy)");
}
