//! `vennsim` — command-line driver for one-off simulations.
//!
//! A downstream-user front end over the library: generate or load a
//! workload, pick a scheduler and environment, run, and print the JCT
//! report (optionally per-job CSV).
//!
//! ```text
//! USAGE:
//!   vennsim [serve] [--scheduler venn|random|random-per-device|fifo|srsf]
//!           [--jobs N] [--population N] [--days N] [--seed N]
//!           [--workload {even|small|large|low|high}]
//!           [--bias {general|compute|memory|resource}]
//!           [--epsilon F] [--tiers N] [--async] [--overcommit F]
//!           [--queue wheel|heap] [--no-gating] [--shards N]
//!           [--pop eager|split-eager|lazy]
//!           [--env off|flash-crowd|straggler-heavy|mass-dropout|chaos]
//!           [--load FILE.tsv] [--save FILE.tsv] [--csv]
//!           [--checkpoint-every SIM_MS] [--checkpoint-dir DIR]
//!           [--checkpoint-keep N] [--resume] [--fork-from FILE.vsnp]
//!           [--journal FILE] [--journal-sync always|batch|off]
//!           [--replay FILE] [--listen ADDR] [--rate F]
//!           [--idle-timeout SECS] [--frame-queue N]
//!           [--fault-inject SEED[:PROB]]
//! ```
//!
//! `--shards N` runs the sharded execution engine with `N` lock-step
//! shards; results are bit-identical to the default sequential engine.
//!
//! `--checkpoint-every SIM_MS` writes a durable snapshot of the full run
//! state to `--checkpoint-dir` every `SIM_MS` of simulated time (the
//! `--checkpoint-keep` newest are retained, default 2). `--resume` picks
//! up from the newest usable checkpoint in the directory — a corrupt or
//! truncated file is skipped with a warning and the previous one is
//! tried — and the resumed run's output is byte-identical to an
//! uninterrupted run with the same parameters. Checkpoints only restore
//! under the same `(seed, population, days, workload, scheduler, env,
//! pop)` run identity; `--queue`, `--shards`, and the exec mode may
//! differ.
//!
//! `--fork-from FILE.vsnp` is the what-if entry point: restore the
//! world from a snapshot but hand it to a **fresh** `--scheduler` arm
//! (open requests are resubmitted so the new arm builds its own book),
//! then run to completion. Unlike `--resume`, the scheduler may differ
//! from the one that wrote the snapshot. An offline `--fork-from` run
//! is byte-identical to the same fork executed inside a live `serve`
//! session at the same instant.
//!
//! `vennsim serve` (first positional argument) starts an online session
//! instead of a batch run: line-delimited JSON commands on stdin (or a
//! multi-client `--listen` TCP socket), responses on stdout. Virtual
//! time advances only on `advance` commands, or continuously at
//! `--rate` virtual ms per wall ms. `--journal FILE` records every
//! accepted command in a checksummed WAL (`--journal-sync` picks the
//! fsync policy); `--replay FILE` feeds a journal — WAL or legacy, even
//! one with a torn tail — back through the same code path and
//! reproduces the live session's output byte for byte. With `serve`,
//! `--checkpoint-dir DIR` writes a final checkpoint there on shutdown
//! (quit or SIGTERM). `--fault-inject SEED[:PROB]` wraps every durable
//! write in the deterministic fault injector for chaos testing. See the
//! "Online serving" and "Fault injection & durability" sections of
//! `ARCHITECTURE.md` for the protocol.
//!
//! Run: `cargo run --release -p venn-bench --bin vennsim -- --jobs 12 --days 5`

use std::process::ExitCode;
use std::time::Duration;

use rand::rngs::StdRng;
use rand::SeedableRng;

use venn_baselines::BaselineScheduler;
use venn_core::{FaultFs, RealFs, Scheduler, SimFs, VennConfig, VennScheduler, MINUTE_MS};
use venn_env::EnvPreset;
use venn_metrics::csv::Csv;
use venn_serve::{SyncPolicy, WalWriter};
use venn_sim::{
    CheckpointStore, ExecMode, PopMode, QueueKind, SimConfig, SimResult, Simulation, World,
};
use venn_traces::{io as wio, BiasKind, JobDemandModel, Workload, WorkloadKind};

#[derive(Debug)]
struct Args {
    scheduler: String,
    jobs: usize,
    population: usize,
    days: u32,
    seed: u64,
    workload: WorkloadKind,
    bias: Option<BiasKind>,
    epsilon: f64,
    tiers: usize,
    async_mode: bool,
    overcommit: f64,
    queue: QueueKind,
    demand_gating: bool,
    pop_mode: PopMode,
    exec: ExecMode,
    env: EnvPreset,
    load: Option<String>,
    save: Option<String>,
    csv: bool,
    checkpoint_every: Option<u64>,
    checkpoint_dir: Option<String>,
    checkpoint_keep: usize,
    resume: bool,
    fork_from: Option<String>,
    serve: bool,
    journal: Option<String>,
    journal_sync: SyncPolicy,
    replay: Option<String>,
    listen: Option<String>,
    rate: Option<f64>,
    idle_timeout_secs: u64,
    frame_queue: usize,
    fault_inject: Option<(u64, f64)>,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            scheduler: "venn".into(),
            jobs: 20,
            population: 3_000,
            days: 7,
            seed: 42,
            workload: WorkloadKind::Even,
            bias: None,
            epsilon: 0.0,
            tiers: 3,
            async_mode: false,
            overcommit: 0.0,
            queue: QueueKind::Wheel,
            demand_gating: true,
            pop_mode: PopMode::Eager,
            exec: ExecMode::Sequential,
            env: EnvPreset::Off,
            load: None,
            save: None,
            csv: false,
            checkpoint_every: None,
            checkpoint_dir: None,
            checkpoint_keep: 2,
            resume: false,
            fork_from: None,
            serve: false,
            journal: None,
            journal_sync: SyncPolicy::default(),
            replay: None,
            listen: None,
            rate: None,
            idle_timeout_secs: 300,
            frame_queue: 1024,
            fault_inject: None,
        }
    }
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args::default();
    let mut it = std::env::args().skip(1).peekable();
    if it.peek().map(String::as_str) == Some("serve") {
        args.serve = true;
        it.next();
    }
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("missing value for {name}"));
        match flag.as_str() {
            "--scheduler" => args.scheduler = value("--scheduler")?,
            "--jobs" => {
                args.jobs = value("--jobs")?
                    .parse()
                    .map_err(|e| format!("--jobs: {e}"))?
            }
            "--population" => {
                args.population = value("--population")?
                    .parse()
                    .map_err(|e| format!("--population: {e}"))?
            }
            "--days" => {
                args.days = value("--days")?
                    .parse()
                    .map_err(|e| format!("--days: {e}"))?
            }
            "--seed" => {
                args.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            "--workload" => {
                args.workload = match value("--workload")?.as_str() {
                    "even" => WorkloadKind::Even,
                    "small" => WorkloadKind::Small,
                    "large" => WorkloadKind::Large,
                    "low" => WorkloadKind::Low,
                    "high" => WorkloadKind::High,
                    other => {
                        return Err(format!(
                            "--workload: unknown value {other:?} (valid: even|small|large|low|high)"
                        ))
                    }
                }
            }
            "--bias" => {
                args.bias = Some(match value("--bias")?.as_str() {
                    "general" => BiasKind::General,
                    "compute" => BiasKind::ComputeHeavy,
                    "memory" => BiasKind::MemoryHeavy,
                    "resource" => BiasKind::ResourceHeavy,
                    other => {
                        return Err(format!(
                        "--bias: unknown value {other:?} (valid: general|compute|memory|resource)"
                    ))
                    }
                })
            }
            "--epsilon" => {
                args.epsilon = value("--epsilon")?
                    .parse()
                    .map_err(|e| format!("--epsilon: {e}"))?
            }
            "--tiers" => {
                args.tiers = value("--tiers")?
                    .parse()
                    .map_err(|e| format!("--tiers: {e}"))?
            }
            "--async" => args.async_mode = true,
            "--queue" => {
                args.queue = match value("--queue")?.as_str() {
                    "wheel" => QueueKind::Wheel,
                    "heap" => QueueKind::Heap,
                    other => {
                        return Err(format!(
                            "--queue: unknown value {other:?} (valid: wheel|heap)"
                        ))
                    }
                }
            }
            "--no-gating" => args.demand_gating = false,
            "--shards" => {
                let shards: u32 = value("--shards")?
                    .parse()
                    .map_err(|e| format!("--shards: {e}"))?;
                if shards == 0 {
                    return Err("--shards must be at least 1".into());
                }
                args.exec = ExecMode::Sharded { shards };
            }
            "--pop" => {
                args.pop_mode = match value("--pop")?.as_str() {
                    "eager" => PopMode::Eager,
                    "split-eager" => PopMode::SplitEager,
                    "lazy" => PopMode::Lazy,
                    other => {
                        return Err(format!(
                            "--pop: unknown value {other:?} (valid: eager|split-eager|lazy)"
                        ))
                    }
                }
            }
            "--env" => {
                let name = value("--env")?;
                args.env = EnvPreset::parse(&name).ok_or_else(|| {
                    format!(
                        "--env: unknown value {name:?} (valid: {})",
                        EnvPreset::ALL.map(|p| p.label()).join("|")
                    )
                })?;
            }
            "--overcommit" => {
                args.overcommit = value("--overcommit")?
                    .parse()
                    .map_err(|e| format!("--overcommit: {e}"))?
            }
            "--load" => args.load = Some(value("--load")?),
            "--save" => args.save = Some(value("--save")?),
            "--csv" => args.csv = true,
            "--checkpoint-every" => {
                let every: u64 = value("--checkpoint-every")?
                    .parse()
                    .map_err(|e| format!("--checkpoint-every: {e}"))?;
                if every == 0 {
                    return Err("--checkpoint-every must be at least 1 ms".into());
                }
                args.checkpoint_every = Some(every);
            }
            "--checkpoint-dir" => args.checkpoint_dir = Some(value("--checkpoint-dir")?),
            "--checkpoint-keep" => {
                let keep: usize = value("--checkpoint-keep")?
                    .parse()
                    .map_err(|e| format!("--checkpoint-keep: {e}"))?;
                if keep == 0 {
                    return Err("--checkpoint-keep must be at least 1".into());
                }
                args.checkpoint_keep = keep;
            }
            "--resume" => args.resume = true,
            "--fork-from" => args.fork_from = Some(value("--fork-from")?),
            "--journal" => args.journal = Some(value("--journal")?),
            "--journal-sync" => {
                let name = value("--journal-sync")?;
                args.journal_sync = SyncPolicy::parse(&name).ok_or_else(|| {
                    format!("--journal-sync: unknown value {name:?} (valid: always|batch|off)")
                })?;
            }
            "--replay" => args.replay = Some(value("--replay")?),
            "--listen" => args.listen = Some(value("--listen")?),
            "--idle-timeout" => {
                args.idle_timeout_secs = value("--idle-timeout")?
                    .parse()
                    .map_err(|e| format!("--idle-timeout: {e}"))?;
                if args.idle_timeout_secs == 0 {
                    return Err("--idle-timeout must be at least 1 second".into());
                }
            }
            "--frame-queue" => {
                args.frame_queue = value("--frame-queue")?
                    .parse()
                    .map_err(|e| format!("--frame-queue: {e}"))?;
                if args.frame_queue == 0 {
                    return Err("--frame-queue must be at least 1".into());
                }
            }
            "--fault-inject" => {
                let spec = value("--fault-inject")?;
                let (seed, prob) = match spec.split_once(':') {
                    Some((s, p)) => (
                        s.parse().map_err(|e| format!("--fault-inject seed: {e}"))?,
                        p.parse()
                            .map_err(|e| format!("--fault-inject probability: {e}"))?,
                    ),
                    None => (
                        spec.parse()
                            .map_err(|e| format!("--fault-inject seed: {e}"))?,
                        0.02,
                    ),
                };
                if !(0.0..=1.0).contains(&prob) {
                    return Err("--fault-inject probability must be in [0,1]".into());
                }
                args.fault_inject = Some((seed, prob));
            }
            "--rate" => {
                let rate: f64 = value("--rate")?
                    .parse()
                    .map_err(|e| format!("--rate: {e}"))?;
                if !(rate > 0.0 && rate.is_finite()) {
                    return Err("--rate must be a positive number".into());
                }
                args.rate = Some(rate);
            }
            "--help" | "-h" => {
                return Err("help".into());
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    if (args.checkpoint_every.is_some() || args.resume) && args.checkpoint_dir.is_none() {
        return Err("--checkpoint-every/--resume require --checkpoint-dir".into());
    }
    if !args.serve
        && (args.journal.is_some()
            || args.replay.is_some()
            || args.listen.is_some()
            || args.rate.is_some())
    {
        return Err("--journal/--replay/--listen/--rate only apply to `vennsim serve`".into());
    }
    if args.fault_inject.is_some() && !args.serve && args.checkpoint_dir.is_none() {
        return Err("--fault-inject applies to serve sessions or checkpointed runs".into());
    }
    if args.fork_from.is_some() && (args.serve || args.resume || args.checkpoint_every.is_some()) {
        return Err(
            "--fork-from is a batch mode; it excludes serve/--resume/--checkpoint-every".into(),
        );
    }
    if args.replay.is_some() && (args.listen.is_some() || args.rate.is_some()) {
        return Err("--replay is scripted; it excludes --listen/--rate".into());
    }
    Ok(args)
}

fn build_scheduler(args: &Args) -> Result<Box<dyn Scheduler>, String> {
    Ok(match args.scheduler.as_str() {
        "venn" => Box::new(VennScheduler::new(VennConfig {
            epsilon: args.epsilon,
            tiers: args.tiers,
            seed: args.seed,
            ..VennConfig::default()
        })),
        "random" => Box::new(BaselineScheduler::random_order(args.seed)),
        "random-per-device" => Box::new(BaselineScheduler::random_per_device(args.seed)),
        "fifo" => Box::new(BaselineScheduler::fifo()),
        "srsf" => Box::new(BaselineScheduler::srsf()),
        other => {
            return Err(format!(
            "--scheduler: unknown value {other:?} (valid: venn|random|random-per-device|fifo|srsf)"
        ))
        }
    })
}

/// The durable-write backend: the real filesystem, optionally wrapped
/// in the deterministic fault injector (`--fault-inject SEED[:PROB]`).
/// Random injection only throws survivable faults (ENOSPC, EIO, torn
/// writes — never crash-freezes, never read faults), so a run under it
/// must still complete correctly through retries and fallbacks.
fn make_fs(args: &Args) -> Box<dyn SimFs> {
    match args.fault_inject {
        Some((seed, prob)) => Box::new(FaultFs::random(RealFs, seed, prob)),
        None => Box::new(RealFs),
    }
}

/// The checkpoint-aware run loop: identical results to
/// [`Simulation::run`] (snapshots are pure reads of the world between
/// event dispatches), plus periodic durable snapshots and/or resume
/// through [`CheckpointStore`] — atomic publish, retry with backoff on
/// transient faults, stale-tmp hygiene, and triaged resume.
fn run_checkpointed(
    args: &Args,
    dir: &str,
    config: SimConfig,
    workload: &Workload,
) -> Result<SimResult, String> {
    let mut fs = make_fs(args);
    let mut store =
        CheckpointStore::open(&mut *fs, dir, args.checkpoint_keep).map_err(|e| e.to_string())?;
    for name in store.clean_stale_tmp().map_err(|e| e.to_string())? {
        eprintln!("removed stale checkpoint tmp {dir}/{name}");
    }
    build_scheduler(args)?; // surface a bad --scheduler before resuming
    let (mut world, mut scheduler) = match args.resume {
        true => {
            let mut build = || build_scheduler(args).expect("scheduler arm validated above");
            let outcome = store
                .resume(config, workload, &mut build)
                .map_err(|e| e.to_string())?;
            for warning in &outcome.warnings {
                eprintln!("warning: {warning}");
            }
            match outcome.run {
                Some((world, scheduler)) => {
                    eprintln!(
                        "resumed from {dir} (sim time {:.1} h, {} events in)",
                        world.now() as f64 / 3_600_000.0,
                        world.events_processed()
                    );
                    (world, scheduler)
                }
                None => {
                    eprintln!("no usable checkpoint in {dir}; starting fresh");
                    let scheduler = build_scheduler(args)?;
                    (World::new(config, workload, scheduler.name()), scheduler)
                }
            }
        }
        false => {
            let scheduler = build_scheduler(args)?;
            (World::new(config, workload, scheduler.name()), scheduler)
        }
    };
    let mut next_checkpoint = args
        .checkpoint_every
        .map(|every| world.now().saturating_add(every));
    while world.step(&mut *scheduler, &mut []) {
        if let (Some(every), Some(at)) = (args.checkpoint_every, next_checkpoint) {
            if world.now() >= at {
                store
                    .write(&world, &*scheduler)
                    .map_err(|e| e.to_string())?;
                next_checkpoint = Some(world.now().saturating_add(every));
            }
        }
    }
    Ok(world.finish(&mut []))
}

/// The what-if batch mode: restore a snapshot under a fresh
/// `--scheduler` arm (which may differ from the arm that wrote it) and
/// run the remainder of the simulation to completion. Byte-identical to
/// the same fork executed inside a live `serve` session, because both go
/// through [`venn_sim::fork_world`].
fn run_forked(
    args: &Args,
    path: &str,
    config: SimConfig,
    workload: &Workload,
) -> Result<SimResult, String> {
    let bytes = std::fs::read(path).map_err(|e| format!("{path}: {e}"))?;
    let mut scheduler = build_scheduler(args)?;
    let mut world = venn_sim::fork_world(&bytes, config, workload, &mut *scheduler)
        .map_err(|e| format!("{path}: {e}"))?;
    eprintln!(
        "forked from {path} at sim time {:.1} h under scheduler {}",
        world.now() as f64 / 3_600_000.0,
        scheduler.name()
    );
    while world.step(&mut *scheduler, &mut []) {}
    Ok(world.finish(&mut []))
}

/// `vennsim serve`: the online session. Commands in (stdin, a replay
/// file, or multi-client TCP), responses out, optional WAL journal.
fn run_serve(args: &Args, config: SimConfig, workload: &Workload) -> Result<(), String> {
    let spec = venn_serve::SchedSpec {
        name: args.scheduler.clone(),
        epsilon: args.epsilon,
        tiers: args.tiers,
        seed: args.seed,
    };
    let fs: venn_serve::SharedFs = match args.fault_inject {
        Some((seed, prob)) => venn_serve::shared_fs(FaultFs::random(RealFs, seed, prob)),
        None => venn_serve::real_fs(),
    };
    let mut session = venn_serve::ServeSession::with_fs(config, spec, workload, fs.clone())?;
    if let Some(path) = &args.replay {
        // WAL or legacy journal; damage is a warning and the intact
        // prefix replays, never a parse or vt-mismatch failure.
        let bytes = std::fs::read(path).map_err(|e| format!("{path}: {e}"))?;
        let recovered = venn_serve::recover_journal(&bytes).map_err(|e| format!("{path}: {e}"))?;
        if let Some(torn) = &recovered.torn {
            eprintln!(
                "warning: {path}: torn journal tail at byte {} ({}); replaying the {} intact line(s) before it",
                torn.offset,
                torn.reason,
                recovered.lines.len()
            );
        }
        let stdout = std::io::stdout();
        let mut out: Box<dyn std::io::Write> = Box::new(stdout.lock());
        let mut journal = match &args.journal {
            Some(p) => Some(
                WalWriter::create(fs.clone(), p, args.journal_sync)
                    .map_err(|e| format!("{p}: {e}"))?,
            ),
            None => None,
        };
        venn_serve::run_lines(
            &mut session,
            recovered.lines.into_iter().map(Ok),
            &mut out,
            &mut journal,
        )
        .map_err(|e| e.to_string())?;
        if let Some(j) = journal.as_mut() {
            j.seal().map_err(|e| e.to_string())?;
        }
        return Ok(());
    }
    let opts = venn_serve::ServeOpts {
        journal: args.journal.clone(),
        journal_sync: args.journal_sync,
        rate: args.rate,
        listen: args.listen.clone(),
        idle_timeout: Duration::from_secs(args.idle_timeout_secs),
        frame_queue_cap: args.frame_queue,
        shutdown_checkpoint_dir: args.checkpoint_dir.clone(),
        ..venn_serve::ServeOpts::default()
    };
    venn_serve::serve(&mut session, &opts).map_err(|e| e.to_string())
}

fn run(args: &Args) -> Result<(), String> {
    let workload = match &args.load {
        Some(path) => {
            let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
            wio::from_tsv(&text).map_err(|e| e.to_string())?
        }
        None => {
            let mut rng = StdRng::seed_from_u64(args.seed);
            Workload::generate(
                args.workload,
                args.bias,
                args.jobs,
                &JobDemandModel::default(),
                30.0 * MINUTE_MS as f64,
                &mut rng,
            )
        }
    };
    if let Some(path) = &args.save {
        std::fs::write(path, wio::to_tsv(&workload)).map_err(|e| format!("{path}: {e}"))?;
        eprintln!("saved workload to {path}");
    }

    let config = SimConfig {
        population: args.population,
        days: args.days,
        seed: args.seed,
        async_mode: args.async_mode,
        overcommit: args.overcommit,
        queue: args.queue,
        demand_gating: args.demand_gating,
        pop_mode: args.pop_mode,
        exec: args.exec,
        env: args.env.config(),
        ..SimConfig::default()
    };
    if args.serve {
        return run_serve(args, config, &workload);
    }

    let result = if let Some(path) = &args.fork_from {
        run_forked(args, path, config, &workload)?
    } else {
        match &args.checkpoint_dir {
            Some(dir) => run_checkpointed(args, dir, config, &workload)?,
            None => {
                let mut scheduler = build_scheduler(args)?;
                Simulation::new(config).run(&workload, &mut *scheduler)
            }
        }
    };
    let b = result.breakdown();

    if args.csv {
        let mut csv = Csv::new(&["job", "jct_ms", "sched_delay_ms", "response_ms", "aborted"]);
        for (i, rec) in result.records.iter().enumerate() {
            csv.row(&[
                i.to_string(),
                rec.jct_ms().map(|v| v.to_string()).unwrap_or_default(),
                rec.sched_delay_ms.to_string(),
                rec.response_ms.to_string(),
                rec.rounds_aborted.to_string(),
            ]);
        }
        print!("{csv}");
        return Ok(());
    }

    println!("scheduler        {}", result.scheduler_name);
    println!("jobs             {}", workload.jobs.len());
    println!(
        "finished         {} ({:.0}%)",
        b.finished(),
        result.completion_rate() * 100.0
    );
    println!("avg JCT          {:.1} min", b.avg_jct_ms() / 60_000.0);
    println!(
        "avg sched delay  {:.1} min",
        b.avg_sched_delay_ms() / 60_000.0
    );
    println!("avg response     {:.1} min", b.avg_response_ms() / 60_000.0);
    println!("aborted rounds   {}", result.aborted_rounds);
    println!(
        "assignments      {} ({} failed)",
        result.assignments, result.failures
    );
    if args.env != EnvPreset::Off {
        let e = &result.env;
        println!("env preset       {}", args.env.label());
        println!(
            "env dynamics     {} dropouts, {} forced offline, {} storm aborts, {} retries",
            e.dropouts, e.forced_offline, e.storm_aborts, e.retries
        );
        for (tier, h) in e.tier_response_ms.iter().enumerate() {
            println!("tier {tier} responses  {}", h.total());
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    match parse_args() {
        Ok(args) => match run(&args) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        },
        Err(e) => {
            if e != "help" {
                eprintln!("error: {e}\n");
            }
            eprintln!(
                "usage: vennsim [serve] [--scheduler venn|random|random-per-device|fifo|srsf] \
                 [--jobs N] \
                 [--population N] [--days N] [--seed N] [--workload even|small|large|low|high] \
                 [--bias general|compute|memory|resource] [--epsilon F] [--tiers N] \
                 [--async] [--overcommit F] [--queue wheel|heap] [--no-gating] [--shards N] \
                 [--pop eager|split-eager|lazy] \
                 [--env off|flash-crowd|straggler-heavy|mass-dropout|chaos] \
                 [--load FILE.tsv] [--save FILE.tsv] [--csv] \
                 [--checkpoint-every SIM_MS] [--checkpoint-dir DIR] [--checkpoint-keep N] \
                 [--resume] [--fork-from FILE.vsnp] \
                 [--journal FILE] [--journal-sync always|batch|off] [--replay FILE] \
                 [--listen ADDR] [--rate F] [--idle-timeout SECS] [--frame-queue N] \
                 [--fault-inject SEED[:PROB]]"
            );
            if e == "help" {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
    }
}
