//! `vennsim` — command-line driver for one-off simulations.
//!
//! A downstream-user front end over the library: generate or load a
//! workload, pick a scheduler and environment, run, and print the JCT
//! report (optionally per-job CSV).
//!
//! ```text
//! USAGE:
//!   vennsim [serve] [--scheduler venn|random|random-per-device|fifo|srsf]
//!           [--jobs N] [--population N] [--days N] [--seed N]
//!           [--workload {even|small|large|low|high}]
//!           [--bias {general|compute|memory|resource}]
//!           [--epsilon F] [--tiers N] [--async] [--overcommit F]
//!           [--queue wheel|heap] [--no-gating] [--shards N]
//!           [--pop eager|split-eager|lazy]
//!           [--env off|flash-crowd|straggler-heavy|mass-dropout|chaos]
//!           [--load FILE.tsv] [--save FILE.tsv] [--csv]
//!           [--checkpoint-every SIM_MS] [--checkpoint-dir DIR]
//!           [--checkpoint-keep N] [--resume] [--fork-from FILE.vsnp]
//!           [--journal FILE] [--replay FILE] [--listen ADDR] [--rate F]
//! ```
//!
//! `--shards N` runs the sharded execution engine with `N` lock-step
//! shards; results are bit-identical to the default sequential engine.
//!
//! `--checkpoint-every SIM_MS` writes a durable snapshot of the full run
//! state to `--checkpoint-dir` every `SIM_MS` of simulated time (the
//! `--checkpoint-keep` newest are retained, default 2). `--resume` picks
//! up from the newest usable checkpoint in the directory — a corrupt or
//! truncated file is skipped with a warning and the previous one is
//! tried — and the resumed run's output is byte-identical to an
//! uninterrupted run with the same parameters. Checkpoints only restore
//! under the same `(seed, population, days, workload, scheduler, env,
//! pop)` run identity; `--queue`, `--shards`, and the exec mode may
//! differ.
//!
//! `--fork-from FILE.vsnp` is the what-if entry point: restore the
//! world from a snapshot but hand it to a **fresh** `--scheduler` arm
//! (open requests are resubmitted so the new arm builds its own book),
//! then run to completion. Unlike `--resume`, the scheduler may differ
//! from the one that wrote the snapshot. An offline `--fork-from` run
//! is byte-identical to the same fork executed inside a live `serve`
//! session at the same instant.
//!
//! `vennsim serve` (first positional argument) starts an online session
//! instead of a batch run: line-delimited JSON commands on stdin (or a
//! `--listen` TCP socket), responses on stdout. Virtual time advances
//! only on `advance` commands, or continuously at `--rate` virtual ms
//! per wall ms. `--journal FILE` records every accepted command;
//! `--replay FILE` feeds a journal back through the same code path and
//! reproduces the live session's output byte for byte. See the
//! "Online serving" section of `ARCHITECTURE.md` for the protocol.
//!
//! Run: `cargo run --release -p venn-bench --bin vennsim -- --jobs 12 --days 5`

use std::process::ExitCode;

use rand::rngs::StdRng;
use rand::SeedableRng;

use venn_baselines::BaselineScheduler;
use venn_core::{Scheduler, VennConfig, VennScheduler, MINUTE_MS};
use venn_env::EnvPreset;
use venn_metrics::csv::Csv;
use venn_sim::{ExecMode, PopMode, QueueKind, SimConfig, SimResult, Simulation, World};
use venn_traces::{io as wio, BiasKind, JobDemandModel, Workload, WorkloadKind};

#[derive(Debug)]
struct Args {
    scheduler: String,
    jobs: usize,
    population: usize,
    days: u32,
    seed: u64,
    workload: WorkloadKind,
    bias: Option<BiasKind>,
    epsilon: f64,
    tiers: usize,
    async_mode: bool,
    overcommit: f64,
    queue: QueueKind,
    demand_gating: bool,
    pop_mode: PopMode,
    exec: ExecMode,
    env: EnvPreset,
    load: Option<String>,
    save: Option<String>,
    csv: bool,
    checkpoint_every: Option<u64>,
    checkpoint_dir: Option<String>,
    checkpoint_keep: usize,
    resume: bool,
    fork_from: Option<String>,
    serve: bool,
    journal: Option<String>,
    replay: Option<String>,
    listen: Option<String>,
    rate: Option<f64>,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            scheduler: "venn".into(),
            jobs: 20,
            population: 3_000,
            days: 7,
            seed: 42,
            workload: WorkloadKind::Even,
            bias: None,
            epsilon: 0.0,
            tiers: 3,
            async_mode: false,
            overcommit: 0.0,
            queue: QueueKind::Wheel,
            demand_gating: true,
            pop_mode: PopMode::Eager,
            exec: ExecMode::Sequential,
            env: EnvPreset::Off,
            load: None,
            save: None,
            csv: false,
            checkpoint_every: None,
            checkpoint_dir: None,
            checkpoint_keep: 2,
            resume: false,
            fork_from: None,
            serve: false,
            journal: None,
            replay: None,
            listen: None,
            rate: None,
        }
    }
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args::default();
    let mut it = std::env::args().skip(1).peekable();
    if it.peek().map(String::as_str) == Some("serve") {
        args.serve = true;
        it.next();
    }
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("missing value for {name}"));
        match flag.as_str() {
            "--scheduler" => args.scheduler = value("--scheduler")?,
            "--jobs" => {
                args.jobs = value("--jobs")?
                    .parse()
                    .map_err(|e| format!("--jobs: {e}"))?
            }
            "--population" => {
                args.population = value("--population")?
                    .parse()
                    .map_err(|e| format!("--population: {e}"))?
            }
            "--days" => {
                args.days = value("--days")?
                    .parse()
                    .map_err(|e| format!("--days: {e}"))?
            }
            "--seed" => {
                args.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            "--workload" => {
                args.workload = match value("--workload")?.as_str() {
                    "even" => WorkloadKind::Even,
                    "small" => WorkloadKind::Small,
                    "large" => WorkloadKind::Large,
                    "low" => WorkloadKind::Low,
                    "high" => WorkloadKind::High,
                    other => {
                        return Err(format!(
                            "--workload: unknown value {other:?} (valid: even|small|large|low|high)"
                        ))
                    }
                }
            }
            "--bias" => {
                args.bias = Some(match value("--bias")?.as_str() {
                    "general" => BiasKind::General,
                    "compute" => BiasKind::ComputeHeavy,
                    "memory" => BiasKind::MemoryHeavy,
                    "resource" => BiasKind::ResourceHeavy,
                    other => return Err(format!(
                        "--bias: unknown value {other:?} (valid: general|compute|memory|resource)"
                    )),
                })
            }
            "--epsilon" => {
                args.epsilon = value("--epsilon")?
                    .parse()
                    .map_err(|e| format!("--epsilon: {e}"))?
            }
            "--tiers" => {
                args.tiers = value("--tiers")?
                    .parse()
                    .map_err(|e| format!("--tiers: {e}"))?
            }
            "--async" => args.async_mode = true,
            "--queue" => {
                args.queue = match value("--queue")?.as_str() {
                    "wheel" => QueueKind::Wheel,
                    "heap" => QueueKind::Heap,
                    other => {
                        return Err(format!(
                            "--queue: unknown value {other:?} (valid: wheel|heap)"
                        ))
                    }
                }
            }
            "--no-gating" => args.demand_gating = false,
            "--shards" => {
                let shards: u32 = value("--shards")?
                    .parse()
                    .map_err(|e| format!("--shards: {e}"))?;
                if shards == 0 {
                    return Err("--shards must be at least 1".into());
                }
                args.exec = ExecMode::Sharded { shards };
            }
            "--pop" => {
                args.pop_mode = match value("--pop")?.as_str() {
                    "eager" => PopMode::Eager,
                    "split-eager" => PopMode::SplitEager,
                    "lazy" => PopMode::Lazy,
                    other => {
                        return Err(format!(
                            "--pop: unknown value {other:?} (valid: eager|split-eager|lazy)"
                        ))
                    }
                }
            }
            "--env" => {
                let name = value("--env")?;
                args.env = EnvPreset::parse(&name).ok_or_else(|| {
                    format!(
                        "--env: unknown value {name:?} (valid: {})",
                        EnvPreset::ALL.map(|p| p.label()).join("|")
                    )
                })?;
            }
            "--overcommit" => {
                args.overcommit = value("--overcommit")?
                    .parse()
                    .map_err(|e| format!("--overcommit: {e}"))?
            }
            "--load" => args.load = Some(value("--load")?),
            "--save" => args.save = Some(value("--save")?),
            "--csv" => args.csv = true,
            "--checkpoint-every" => {
                let every: u64 = value("--checkpoint-every")?
                    .parse()
                    .map_err(|e| format!("--checkpoint-every: {e}"))?;
                if every == 0 {
                    return Err("--checkpoint-every must be at least 1 ms".into());
                }
                args.checkpoint_every = Some(every);
            }
            "--checkpoint-dir" => args.checkpoint_dir = Some(value("--checkpoint-dir")?),
            "--checkpoint-keep" => {
                let keep: usize = value("--checkpoint-keep")?
                    .parse()
                    .map_err(|e| format!("--checkpoint-keep: {e}"))?;
                if keep == 0 {
                    return Err("--checkpoint-keep must be at least 1".into());
                }
                args.checkpoint_keep = keep;
            }
            "--resume" => args.resume = true,
            "--fork-from" => args.fork_from = Some(value("--fork-from")?),
            "--journal" => args.journal = Some(value("--journal")?),
            "--replay" => args.replay = Some(value("--replay")?),
            "--listen" => args.listen = Some(value("--listen")?),
            "--rate" => {
                let rate: f64 = value("--rate")?
                    .parse()
                    .map_err(|e| format!("--rate: {e}"))?;
                if !(rate > 0.0 && rate.is_finite()) {
                    return Err("--rate must be a positive number".into());
                }
                args.rate = Some(rate);
            }
            "--help" | "-h" => {
                return Err("help".into());
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    if (args.checkpoint_every.is_some() || args.resume) && args.checkpoint_dir.is_none() {
        return Err("--checkpoint-every/--resume require --checkpoint-dir".into());
    }
    if !args.serve
        && (args.journal.is_some()
            || args.replay.is_some()
            || args.listen.is_some()
            || args.rate.is_some())
    {
        return Err("--journal/--replay/--listen/--rate only apply to `vennsim serve`".into());
    }
    if args.fork_from.is_some() && (args.serve || args.resume || args.checkpoint_every.is_some()) {
        return Err(
            "--fork-from is a batch mode; it excludes serve/--resume/--checkpoint-every".into(),
        );
    }
    if args.replay.is_some() && (args.listen.is_some() || args.rate.is_some()) {
        return Err("--replay is scripted; it excludes --listen/--rate".into());
    }
    Ok(args)
}

fn build_scheduler(args: &Args) -> Result<Box<dyn Scheduler>, String> {
    Ok(match args.scheduler.as_str() {
        "venn" => Box::new(VennScheduler::new(VennConfig {
            epsilon: args.epsilon,
            tiers: args.tiers,
            seed: args.seed,
            ..VennConfig::default()
        })),
        "random" => Box::new(BaselineScheduler::random_order(args.seed)),
        "random-per-device" => Box::new(BaselineScheduler::random_per_device(args.seed)),
        "fifo" => Box::new(BaselineScheduler::fifo()),
        "srsf" => Box::new(BaselineScheduler::srsf()),
        other => return Err(format!(
            "--scheduler: unknown value {other:?} (valid: venn|random|random-per-device|fifo|srsf)"
        )),
    })
}

/// Checkpoint files in `dir` as `(sim_time_ms, path)`, unsorted.
fn list_checkpoints(dir: &str) -> Result<Vec<(u64, std::path::PathBuf)>, String> {
    let mut out = Vec::new();
    let entries = std::fs::read_dir(dir).map_err(|e| format!("{dir}: {e}"))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("{dir}: {e}"))?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(stamp) = name
            .strip_prefix("ckpt-")
            .and_then(|rest| rest.strip_suffix(".vsnp"))
        else {
            continue;
        };
        if let Ok(time) = stamp.parse::<u64>() {
            out.push((time, entry.path()));
        }
    }
    Ok(out)
}

/// Atomically writes one checkpoint (tmp + rename, so a crash mid-write
/// never leaves a half-written file under the checkpoint name) and prunes
/// all but the newest `keep` (`--checkpoint-keep`, default 2: the newest
/// plus one fallback in case the newest is damaged, e.g. a torn write on
/// a dying filesystem).
fn write_checkpoint(
    dir: &str,
    world: &World,
    scheduler: &dyn Scheduler,
    keep: usize,
) -> Result<(), String> {
    let bytes =
        venn_sim::snapshot_world(world, scheduler).map_err(|e| format!("checkpoint: {e}"))?;
    let path = format!("{dir}/ckpt-{:016}.vsnp", world.now());
    let tmp = format!("{path}.tmp");
    std::fs::write(&tmp, &bytes).map_err(|e| format!("{tmp}: {e}"))?;
    std::fs::rename(&tmp, &path).map_err(|e| format!("{path}: {e}"))?;
    let mut ckpts = list_checkpoints(dir)?;
    ckpts.sort();
    for (_, stale) in ckpts.iter().rev().skip(keep) {
        let _ = std::fs::remove_file(stale);
    }
    Ok(())
}

/// A run's live state: the world plus the scheduler driving it.
type LiveRun = (World, Box<dyn Scheduler>);

/// Resumes from the newest usable checkpoint in `dir`, degrading
/// gracefully: an unreadable, truncated, corrupt, or mismatched-run file
/// is reported and the next-newest tried. Returns `None` (fresh start)
/// when no checkpoint survives triage.
fn resume_from_dir(
    args: &Args,
    dir: &str,
    config: SimConfig,
    workload: &Workload,
) -> Result<Option<LiveRun>, String> {
    let mut ckpts = list_checkpoints(dir)?;
    ckpts.sort();
    for (time, path) in ckpts.iter().rev() {
        let bytes = match std::fs::read(path) {
            Ok(bytes) => bytes,
            Err(e) => {
                eprintln!("warning: skipping checkpoint {}: {e}", path.display());
                continue;
            }
        };
        // A fresh scheduler per attempt: a failed load may leave one
        // partially overwritten.
        let mut scheduler = build_scheduler(args)?;
        match venn_sim::resume_world(&bytes, config, workload, &mut *scheduler) {
            Ok(world) => {
                eprintln!(
                    "resumed from {} (sim time {:.1} h, {} events in)",
                    path.display(),
                    *time as f64 / 3_600_000.0,
                    world.events_processed()
                );
                return Ok(Some((world, scheduler)));
            }
            Err(e) => {
                eprintln!("warning: checkpoint {} unusable: {e}", path.display());
            }
        }
    }
    Ok(None)
}

/// The checkpoint-aware run loop: identical results to
/// [`Simulation::run`] (snapshots are pure reads of the world between
/// event dispatches), plus periodic durable snapshots and/or resume.
fn run_checkpointed(
    args: &Args,
    dir: &str,
    config: SimConfig,
    workload: &Workload,
) -> Result<SimResult, String> {
    std::fs::create_dir_all(dir).map_err(|e| format!("{dir}: {e}"))?;
    let (mut world, mut scheduler) = match args.resume {
        true => match resume_from_dir(args, dir, config, workload)? {
            Some(resumed) => resumed,
            None => {
                eprintln!("no usable checkpoint in {dir}; starting fresh");
                let scheduler = build_scheduler(args)?;
                (World::new(config, workload, scheduler.name()), scheduler)
            }
        },
        false => {
            let scheduler = build_scheduler(args)?;
            (World::new(config, workload, scheduler.name()), scheduler)
        }
    };
    let mut next_checkpoint = args
        .checkpoint_every
        .map(|every| world.now().saturating_add(every));
    while world.step(&mut *scheduler, &mut []) {
        if let (Some(every), Some(at)) = (args.checkpoint_every, next_checkpoint) {
            if world.now() >= at {
                write_checkpoint(dir, &world, &*scheduler, args.checkpoint_keep)?;
                next_checkpoint = Some(world.now().saturating_add(every));
            }
        }
    }
    Ok(world.finish(&mut []))
}

/// The what-if batch mode: restore a snapshot under a fresh
/// `--scheduler` arm (which may differ from the arm that wrote it) and
/// run the remainder of the simulation to completion. Byte-identical to
/// the same fork executed inside a live `serve` session, because both go
/// through [`venn_sim::fork_world`].
fn run_forked(
    args: &Args,
    path: &str,
    config: SimConfig,
    workload: &Workload,
) -> Result<SimResult, String> {
    let bytes = std::fs::read(path).map_err(|e| format!("{path}: {e}"))?;
    let mut scheduler = build_scheduler(args)?;
    let mut world = venn_sim::fork_world(&bytes, config, workload, &mut *scheduler)
        .map_err(|e| format!("{path}: {e}"))?;
    eprintln!(
        "forked from {path} at sim time {:.1} h under scheduler {}",
        world.now() as f64 / 3_600_000.0,
        scheduler.name()
    );
    while world.step(&mut *scheduler, &mut []) {}
    Ok(world.finish(&mut []))
}

/// `vennsim serve`: the online session. Commands in (stdin, a replay
/// file, or one TCP connection), responses out, optional journal.
fn run_serve(args: &Args, config: SimConfig, workload: &Workload) -> Result<(), String> {
    let spec = venn_serve::SchedSpec {
        name: args.scheduler.clone(),
        epsilon: args.epsilon,
        tiers: args.tiers,
        seed: args.seed,
    };
    let mut session = venn_serve::ServeSession::new(config, spec, workload)?;
    if let Some(path) = &args.replay {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        let stdout = std::io::stdout();
        let mut out: Box<dyn std::io::Write> = Box::new(stdout.lock());
        let mut journal: Option<Box<dyn std::io::Write>> = match &args.journal {
            Some(p) => Some(Box::new(
                std::fs::File::create(p).map_err(|e| format!("{p}: {e}"))?,
            )),
            None => None,
        };
        return venn_serve::run_lines(
            &mut session,
            text.lines().map(|l| Ok(l.to_string())),
            &mut out,
            &mut journal,
        )
        .map_err(|e| e.to_string());
    }
    let opts = venn_serve::ServeOpts {
        journal: args.journal.clone(),
        rate: args.rate,
        listen: args.listen.clone(),
    };
    venn_serve::serve(&mut session, &opts).map_err(|e| e.to_string())
}

fn run(args: &Args) -> Result<(), String> {
    let workload = match &args.load {
        Some(path) => {
            let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
            wio::from_tsv(&text).map_err(|e| e.to_string())?
        }
        None => {
            let mut rng = StdRng::seed_from_u64(args.seed);
            Workload::generate(
                args.workload,
                args.bias,
                args.jobs,
                &JobDemandModel::default(),
                30.0 * MINUTE_MS as f64,
                &mut rng,
            )
        }
    };
    if let Some(path) = &args.save {
        std::fs::write(path, wio::to_tsv(&workload)).map_err(|e| format!("{path}: {e}"))?;
        eprintln!("saved workload to {path}");
    }

    let config = SimConfig {
        population: args.population,
        days: args.days,
        seed: args.seed,
        async_mode: args.async_mode,
        overcommit: args.overcommit,
        queue: args.queue,
        demand_gating: args.demand_gating,
        pop_mode: args.pop_mode,
        exec: args.exec,
        env: args.env.config(),
        ..SimConfig::default()
    };
    if args.serve {
        return run_serve(args, config, &workload);
    }

    let result = if let Some(path) = &args.fork_from {
        run_forked(args, path, config, &workload)?
    } else {
        match &args.checkpoint_dir {
            Some(dir) => run_checkpointed(args, dir, config, &workload)?,
            None => {
                let mut scheduler = build_scheduler(args)?;
                Simulation::new(config).run(&workload, &mut *scheduler)
            }
        }
    };
    let b = result.breakdown();

    if args.csv {
        let mut csv = Csv::new(&["job", "jct_ms", "sched_delay_ms", "response_ms", "aborted"]);
        for (i, rec) in result.records.iter().enumerate() {
            csv.row(&[
                i.to_string(),
                rec.jct_ms().map(|v| v.to_string()).unwrap_or_default(),
                rec.sched_delay_ms.to_string(),
                rec.response_ms.to_string(),
                rec.rounds_aborted.to_string(),
            ]);
        }
        print!("{csv}");
        return Ok(());
    }

    println!("scheduler        {}", result.scheduler_name);
    println!("jobs             {}", workload.jobs.len());
    println!(
        "finished         {} ({:.0}%)",
        b.finished(),
        result.completion_rate() * 100.0
    );
    println!("avg JCT          {:.1} min", b.avg_jct_ms() / 60_000.0);
    println!(
        "avg sched delay  {:.1} min",
        b.avg_sched_delay_ms() / 60_000.0
    );
    println!("avg response     {:.1} min", b.avg_response_ms() / 60_000.0);
    println!("aborted rounds   {}", result.aborted_rounds);
    println!(
        "assignments      {} ({} failed)",
        result.assignments, result.failures
    );
    if args.env != EnvPreset::Off {
        let e = &result.env;
        println!("env preset       {}", args.env.label());
        println!(
            "env dynamics     {} dropouts, {} forced offline, {} storm aborts, {} retries",
            e.dropouts, e.forced_offline, e.storm_aborts, e.retries
        );
        for (tier, h) in e.tier_response_ms.iter().enumerate() {
            println!("tier {tier} responses  {}", h.total());
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    match parse_args() {
        Ok(args) => match run(&args) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        },
        Err(e) => {
            if e != "help" {
                eprintln!("error: {e}\n");
            }
            eprintln!(
                "usage: vennsim [serve] [--scheduler venn|random|random-per-device|fifo|srsf] \
                 [--jobs N] \
                 [--population N] [--days N] [--seed N] [--workload even|small|large|low|high] \
                 [--bias general|compute|memory|resource] [--epsilon F] [--tiers N] \
                 [--async] [--overcommit F] [--queue wheel|heap] [--no-gating] [--shards N] \
                 [--pop eager|split-eager|lazy] \
                 [--env off|flash-crowd|straggler-heavy|mass-dropout|chaos] \
                 [--load FILE.tsv] [--save FILE.tsv] [--csv] \
                 [--checkpoint-every SIM_MS] [--checkpoint-dir DIR] [--checkpoint-keep N] \
                 [--resume] [--fork-from FILE.vsnp] \
                 [--journal FILE] [--replay FILE] [--listen ADDR] [--rate F]"
            );
            if e == "help" {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
    }
}
