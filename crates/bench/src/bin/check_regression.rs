//! CI regression gate: re-runs the benchmark baseline matrix and fails on
//! any drift from the committed `BENCH_BASELINE.json`.
//!
//! The simulator is deterministic, so every *behavioral* field of the
//! baseline — `avg_jct_ms`, `completion_rate`, `speedup_vs_random`,
//! `aborted_rounds`, `assignments`, `events`, `peak_queue_len` — must
//! reproduce byte for byte on any machine. A mismatch means a change
//! altered scheduling behavior (or the kernel's event accounting) without
//! regenerating the baseline, and the gate fails with a field-level diff.
//! Timing telemetry (`wall_ms`, `events_per_sec`) is exempt.
//!
//! The seed and the arm configuration (queue, demand gating, env
//! preset) are taken from the committed file's self-describing header,
//! so the gate always replays exactly the recorded experiment — a
//! baseline exported from a reference or environment arm is diffed
//! against that same arm. Headerless (pre-arm-metadata) files fall back
//! to the default arm.
//!
//! With `--shards N` the gate replays the *same committed sequential
//! baseline* on the sharded execution engine and still demands zero
//! drift — sharded execution is pinned bit-identical, so no re-baselined
//! fields and no separate sharded baseline file exist.
//!
//! With `--crashed` every replayed cell is snapshotted at its halfway
//! point, torn down, and resumed from the snapshot bytes before
//! finishing — checkpoint recovery is pinned bit-identical the same way,
//! so the committed baseline must reproduce with zero drift through a
//! crash as well.
//!
//! Run: `cargo run --release -p venn-bench --bin check_regression
//!       [--baseline PATH] [--shards N] [--crashed]`

use std::process::ExitCode;

use venn_bench::{
    baseline_rows, diff_rows, parse_arm_header, parse_baseline, run_baseline_crashed,
    run_baseline_exec,
};
use venn_sim::ExecMode;

fn main() -> ExitCode {
    let mut path = "BENCH_BASELINE.json".to_string();
    let mut exec = ExecMode::Sequential;
    let mut crashed_replay = false;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--baseline" => match it.next() {
                Some(p) => path = p,
                None => {
                    eprintln!("error: --baseline needs a path");
                    return ExitCode::FAILURE;
                }
            },
            "--shards" => match it.next().map(|s| s.parse::<u32>()) {
                Some(Ok(n)) if n >= 1 => exec = ExecMode::Sharded { shards: n },
                other => {
                    eprintln!("error: --shards needs a count >= 1, got {other:?}");
                    return ExitCode::FAILURE;
                }
            },
            "--crashed" => crashed_replay = true,
            other => {
                eprintln!("error: unknown flag {other:?}");
                eprintln!("usage: check_regression [--baseline PATH] [--shards N] [--crashed]");
                return ExitCode::FAILURE;
            }
        }
    }

    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let (seed, committed) = match parse_baseline(&text) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("error: {path}: {e}");
            return ExitCode::FAILURE;
        }
    };

    let (queue, demand_gating, env) = parse_arm_header(&text);
    let exec_label = match exec {
        ExecMode::Sequential => "sequential".to_string(),
        ExecMode::Sharded { shards } => format!("sharded x{shards}"),
    };
    eprintln!(
        "replaying baseline matrix (seed {seed}, {} schedulers, queue {queue:?}, \
         gating {demand_gating}, env {}, exec {exec_label}{})…",
        committed.len(),
        env.label(),
        if crashed_replay {
            ", crash+resume at halfway"
        } else {
            ""
        }
    );
    let (_, runs) = if crashed_replay {
        run_baseline_crashed(seed, queue, demand_gating, env, exec)
    } else {
        run_baseline_exec(seed, queue, demand_gating, env, exec)
    };
    let fresh = baseline_rows(&runs);

    if committed.len() != fresh.len() {
        eprintln!(
            "DRIFT: baseline has {} scheduler rows, fresh run produced {}",
            committed.len(),
            fresh.len()
        );
        return ExitCode::FAILURE;
    }

    let mut drifted = false;
    for (c, f) in committed.iter().zip(&fresh) {
        let drift = diff_rows(c, f);
        if drift.is_empty() {
            eprintln!("  {:12} ok", c.name);
        } else {
            drifted = true;
            eprintln!("  {:12} DRIFT", c.name);
            for d in drift {
                eprintln!("    {d}");
            }
        }
    }
    if drifted {
        let mut flags = String::new();
        if queue == venn_sim::QueueKind::Heap {
            flags.push_str(" --queue heap");
        }
        if !demand_gating {
            flags.push_str(" --no-gating");
        }
        if env != venn_env::EnvPreset::Off {
            flags.push_str(&format!(" --env {}", env.label()));
        }
        eprintln!(
            "\nbenchmark baseline drifted — if the change is intentional, regenerate with:\n  \
             cargo run --release -p venn-bench --bin export_results -- {seed}{flags} --json {path}"
        );
        ExitCode::FAILURE
    } else {
        eprintln!("baseline reproduced exactly — no drift");
        ExitCode::SUCCESS
    }
}
