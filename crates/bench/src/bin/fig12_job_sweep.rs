//! Figure 12 — average-JCT improvement of Venn / SRSF / FIFO over Random
//! as the number of concurrent jobs grows (25 / 50 / 75).
//!
//! Paper shape: Venn stays ahead, and its margin grows with contention.
//!
//! Run: `cargo run --release -p venn-bench --bin fig12_job_sweep [seeds]`

use venn_bench::{mean_speedups_detailed, Experiment, SchedKind};
use venn_metrics::Table;
use venn_traces::WorkloadKind;

fn main() {
    let seeds: Vec<u64> = match std::env::args().nth(1) {
        Some(n) => (0..n.parse::<u64>().expect("seed count")).map(|i| 900 + i).collect(),
        None => vec![900, 901],
    };
    let kinds = [SchedKind::Fifo, SchedKind::Srsf, SchedKind::Venn];
    let mut table = Table::new(
        "Figure 12: speed-up over Random vs number of jobs (Even workload)",
        &["FIFO", "SRSF", "Venn"],
    );
    for jobs in [25usize, 50, 75] {
        let (speedups, completion) = mean_speedups_detailed(
            |seed| Experiment::with_jobs(WorkloadKind::Even, None, jobs, seed),
            &kinds,
            &seeds,
        );
        table.row(&format!("{jobs} jobs"), &speedups);
        eprintln!("{jobs} jobs: completion {completion:?}");
    }
    println!("{table}");
    println!("(paper: Venn leads at every job count; gains grow with contention)");
}
