//! Figure 12 — average-JCT improvement of Venn / SRSF / FIFO over Random
//! as the number of concurrent jobs grows (25 / 50 / 75).
//!
//! Paper shape: Venn stays ahead, and its margin grows with contention.
//!
//! The whole (job-count × seed × scheduler) grid runs in parallel through
//! [`run_matrix`].
//!
//! Run: `cargo run --release -p venn-bench --bin fig12_job_sweep [seeds]`

use venn_bench::{run_matrix, speedup_summary, with_baseline, Experiment, Matrix, SchedKind};
use venn_metrics::Table;
use venn_traces::WorkloadKind;

fn main() {
    let seeds: Vec<u64> = match std::env::args().nth(1) {
        Some(n) => match n.parse::<u64>() {
            Ok(count) => (0..count).map(|i| 900 + i).collect(),
            Err(e) => {
                eprintln!("error: seed count {n:?}: {e}");
                std::process::exit(2);
            }
        },
        None => vec![900, 901],
    };
    let kinds = [SchedKind::Fifo, SchedKind::Srsf, SchedKind::Venn];
    let mut matrix = Matrix::new().kinds(&with_baseline(&kinds)).seeds(&seeds);
    for jobs in [25usize, 50, 75] {
        matrix = matrix.scenario(format!("{jobs} jobs"), move |seed| {
            Experiment::with_jobs(WorkloadKind::Even, None, jobs, seed)
        });
    }
    let runs = run_matrix(&matrix);

    let mut table = Table::new(
        "Figure 12: speed-up over Random vs number of jobs (Even workload)",
        &["FIFO", "SRSF", "Venn"],
    );
    for row in speedup_summary(&runs, &kinds) {
        table.row(&row.scenario, &row.speedups);
        eprintln!("{}: completion {:?}", row.scenario, row.completion);
    }
    println!("{table}");
    println!("(paper: Venn leads at every job count; gains grow with contention)");
}
