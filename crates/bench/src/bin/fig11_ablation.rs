//! Figure 11 — average-JCT improvement breakdown of Venn's two components
//! on the Low and High workloads.
//!
//! Paper reference: Low — Random 1.0, FIFO 1.55, Venn w/o sched 1.62,
//! Venn w/o match 1.79, Venn 1.88. High — 1.0 / 1.42 / 1.42 / 1.63 / 1.63.
//! Tier matching matters most when contention is low (response collection
//! dominates); IRS matters most when contention is high.
//!
//! Run: `cargo run --release -p venn-bench --bin fig11_ablation [seeds]`

use venn_bench::{mean_speedups_detailed, Experiment, SchedKind};
use venn_metrics::Table;
use venn_traces::WorkloadKind;

fn main() {
    let seeds: Vec<u64> = match std::env::args().nth(1) {
        Some(n) => match n.parse::<u64>() {
            Ok(count) => (0..count).map(|i| 300 + i).collect(),
            Err(e) => {
                eprintln!("error: seed count {n:?}: {e}");
                std::process::exit(2);
            }
        },
        None => vec![300, 301, 302],
    };
    let kinds = [
        SchedKind::Random,
        SchedKind::Fifo,
        SchedKind::VennWoSched,
        SchedKind::VennWoMatch,
        SchedKind::Venn,
    ];
    let mut table = Table::new(
        "Figure 11: avg JCT improvement breakdown",
        &["Random", "FIFO", "Venn w/o sched", "Venn w/o match", "Venn"],
    );
    for wk in [WorkloadKind::Low, WorkloadKind::High] {
        let (speedups, completion) = mean_speedups_detailed(
            |seed| Experiment::paper_default(wk, None, seed),
            &kinds,
            &seeds,
        );
        table.row(wk.label(), &speedups);
        eprintln!("{}: completion {:?}", wk.label(), completion);
    }
    println!("{table}");
    println!("(paper Low: 1.0/1.55/1.62/1.79/1.88; High: 1.0/1.42/1.42/1.63/1.63)");
}
