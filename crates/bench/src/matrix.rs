//! The shared sweep executor behind every `fig*`/`table*` binary.
//!
//! A [`Matrix`] declares a (scenario × seed × scheduler) grid; by naming
//! scenarios once and crossing them with seeds and [`SchedKind`]s, the
//! experiment binaries stop duplicating nested run loops. [`run_matrix`]
//! executes the grid in parallel — every cell is an independent,
//! deterministic simulation, so runs fan out across cores with rayon and
//! [`run_matrix_sequential`] produces byte-identical per-run results
//! (wall-clock telemetry aside) in the same cell order.

use std::time::Instant;

use rayon::prelude::*;

use venn_sim::SimResult;

use crate::{run, Experiment, SchedKind};

/// Builds the experiment for one scenario at a given seed.
type ScenarioFn<'a> = Box<dyn Fn(u64) -> Experiment + Sync + 'a>;

/// One cell of the sweep grid.
#[derive(Debug, Clone, PartialEq)]
pub struct MatrixCell {
    /// Scenario name (row label in most tables).
    pub scenario: String,
    /// Scheduler under test.
    pub kind: SchedKind,
    /// Environment/workload seed.
    pub seed: u64,
}

/// One executed cell.
#[derive(Debug)]
pub struct MatrixRun {
    /// The cell that produced this run.
    pub cell: MatrixCell,
    /// Simulation output — deterministic per cell.
    pub result: SimResult,
    /// Wall-clock milliseconds this run took (telemetry only; the one
    /// field that legitimately differs between parallel and sequential
    /// execution).
    pub wall_ms: u64,
}

/// A declarative (scenario × seed × scheduler) sweep.
///
/// ```
/// use venn_bench::{run_matrix, Experiment, Matrix, SchedKind};
/// use venn_traces::WorkloadKind;
///
/// let matrix = Matrix::new()
///     .scenario("even", |seed| Experiment::smoke(WorkloadKind::Even, seed))
///     .kinds(&[SchedKind::Random, SchedKind::Venn])
///     .seeds(&[1, 2]);
/// let runs = run_matrix(&matrix);
/// assert_eq!(runs.len(), 4);
/// ```
#[derive(Default)]
pub struct Matrix<'a> {
    scenarios: Vec<(String, ScenarioFn<'a>)>,
    kinds: Vec<SchedKind>,
    seeds: Vec<u64>,
}

impl<'a> Matrix<'a> {
    /// An empty matrix.
    pub fn new() -> Self {
        Matrix::default()
    }

    /// Adds a named scenario (an experiment builder parameterized by
    /// seed).
    ///
    /// # Panics
    ///
    /// Panics if a scenario with the same name is already registered —
    /// cells are resolved by name, so duplicates would silently alias.
    pub fn scenario(
        mut self,
        name: impl Into<String>,
        make: impl Fn(u64) -> Experiment + Sync + 'a,
    ) -> Self {
        let name = name.into();
        assert!(
            self.scenarios.iter().all(|(n, _)| *n != name),
            "duplicate scenario name {name:?}"
        );
        self.scenarios.push((name, Box::new(make)));
        self
    }

    /// Adds a scenario that ignores the seed axis and always runs one
    /// fixed experiment.
    pub fn fixed(self, name: impl Into<String>, experiment: Experiment) -> Self {
        self.scenario(name, move |_seed| experiment.clone())
    }

    /// Sets the schedulers to cross with every scenario.
    pub fn kinds(mut self, kinds: &[SchedKind]) -> Self {
        self.kinds = kinds.to_vec();
        self
    }

    /// Sets the seed axis.
    pub fn seeds(mut self, seeds: &[u64]) -> Self {
        self.seeds = seeds.to_vec();
        self
    }

    /// The grid in deterministic order: scenario, then seed, then kind.
    pub fn cells(&self) -> Vec<MatrixCell> {
        let mut cells =
            Vec::with_capacity(self.scenarios.len() * self.seeds.len() * self.kinds.len());
        for (name, _) in &self.scenarios {
            for &seed in &self.seeds {
                for &kind in &self.kinds {
                    cells.push(MatrixCell {
                        scenario: name.clone(),
                        kind,
                        seed,
                    });
                }
            }
        }
        cells
    }

    fn execute(&self, cell: MatrixCell) -> MatrixRun {
        let make = &self
            .scenarios
            .iter()
            .find(|(name, _)| *name == cell.scenario)
            .expect("cell scenario comes from this matrix")
            .1;
        let experiment = make(cell.seed);
        let start = Instant::now();
        // Attribute the allocator high-water mark to this run. The
        // counters are process-global, so the number is only a per-run
        // figure under [`run_matrix_sequential`] (and only when the
        // driving binary installs the tracking allocator — otherwise it
        // stays 0, "not measured"); concurrent cells under [`run_matrix`]
        // blend into a whole-sweep peak, which is still a usable
        // memory-ceiling telemetry line.
        venn_metrics::alloc::reset_peak();
        let mut result = run(&experiment, cell.kind);
        result.peak_bytes = venn_metrics::alloc::peak_bytes();
        MatrixRun {
            cell,
            result,
            wall_ms: start.elapsed().as_millis() as u64,
        }
    }
}

/// Executes every cell of the grid in parallel across cores. Cell order
/// and per-run results are identical to [`run_matrix_sequential`]: each
/// run is an independent deterministic simulation, so parallelism cannot
/// change outcomes.
pub fn run_matrix(matrix: &Matrix) -> Vec<MatrixRun> {
    matrix
        .cells()
        .into_par_iter()
        .map(|cell| matrix.execute(cell))
        .collect()
}

/// Executes every cell one after another — the reference order for
/// determinism checks.
pub fn run_matrix_sequential(matrix: &Matrix) -> Vec<MatrixRun> {
    matrix
        .cells()
        .into_iter()
        .map(|cell| matrix.execute(cell))
        .collect()
}

/// Per-scenario average speed-ups over [`SchedKind::Random`].
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpeedups {
    /// Scenario name.
    pub scenario: String,
    /// Mean per-seed `avg_jct(Random) / avg_jct(kind)` per requested kind.
    pub speedups: Vec<f64>,
    /// Mean job completion rate per requested kind.
    pub completion: Vec<f64>,
}

/// Folds matrix runs into per-scenario speed-up rows (the paper's
/// headline normalization). The matrix must include
/// [`SchedKind::Random`] runs for every (scenario, seed) pair to
/// normalize against.
///
/// # Panics
///
/// Panics if a (scenario, seed) pair lacks its Random baseline run.
pub fn speedup_summary(runs: &[MatrixRun], kinds: &[SchedKind]) -> Vec<ScenarioSpeedups> {
    let mut scenarios: Vec<&str> = Vec::new();
    for r in runs {
        if !scenarios.contains(&r.cell.scenario.as_str()) {
            scenarios.push(&r.cell.scenario);
        }
    }
    scenarios
        .iter()
        .map(|&scenario| {
            let in_scenario: Vec<&MatrixRun> = runs
                .iter()
                .filter(|r| r.cell.scenario == scenario)
                .collect();
            let mut seeds: Vec<u64> = Vec::new();
            for r in &in_scenario {
                if !seeds.contains(&r.cell.seed) {
                    seeds.push(r.cell.seed);
                }
            }
            let mut speedups = vec![0.0; kinds.len()];
            let mut completion = vec![0.0; kinds.len()];
            for &seed in &seeds {
                let find = |kind: SchedKind| {
                    in_scenario
                        .iter()
                        .find(|r| r.cell.seed == seed && r.cell.kind == kind)
                        .map(|r| &r.result)
                };
                let base_jct = find(SchedKind::Random)
                    .unwrap_or_else(|| {
                        panic!("matrix lacks Random baseline for {scenario:?} seed {seed}")
                    })
                    .avg_jct_ms();
                for (i, &kind) in kinds.iter().enumerate() {
                    let result = find(kind).unwrap_or_else(|| {
                        panic!("matrix lacks {kind:?} for {scenario:?} seed {seed}")
                    });
                    let jct = result.avg_jct_ms();
                    speedups[i] += if jct > 0.0 { base_jct / jct } else { f64::NAN };
                    completion[i] += result.completion_rate();
                }
            }
            for v in speedups.iter_mut().chain(completion.iter_mut()) {
                *v /= seeds.len() as f64;
            }
            ScenarioSpeedups {
                scenario: scenario.to_string(),
                speedups,
                completion,
            }
        })
        .collect()
}

/// Appends [`SchedKind::Random`] to `kinds` if absent — matrices
/// normalized by [`speedup_summary`] always need the baseline runs.
pub fn with_baseline(kinds: &[SchedKind]) -> Vec<SchedKind> {
    let mut all = kinds.to_vec();
    if !all.contains(&SchedKind::Random) {
        all.push(SchedKind::Random);
    }
    all
}

#[cfg(test)]
mod tests {
    use super::*;
    use venn_traces::WorkloadKind;

    fn smoke_matrix<'a>() -> Matrix<'a> {
        Matrix::new()
            .scenario("even", |seed| Experiment::smoke(WorkloadKind::Even, seed))
            .kinds(&[SchedKind::Random, SchedKind::Fifo])
            .seeds(&[3, 4])
    }

    #[test]
    fn cells_enumerate_the_grid_in_order() {
        let cells = smoke_matrix().cells();
        assert_eq!(cells.len(), 4);
        assert_eq!(
            cells.iter().map(|c| (c.seed, c.kind)).collect::<Vec<_>>(),
            vec![
                (3, SchedKind::Random),
                (3, SchedKind::Fifo),
                (4, SchedKind::Random),
                (4, SchedKind::Fifo),
            ]
        );
    }

    #[test]
    #[should_panic(expected = "duplicate scenario name")]
    fn duplicate_scenario_names_are_rejected() {
        let _ = Matrix::new()
            .scenario("even", |seed| Experiment::smoke(WorkloadKind::Even, seed))
            .scenario("even", |seed| Experiment::smoke(WorkloadKind::Small, seed));
    }

    #[test]
    fn parallel_matches_sequential() {
        let m = smoke_matrix();
        let par = run_matrix(&m);
        let seq = run_matrix_sequential(&m);
        assert_eq!(par.len(), seq.len());
        for (p, s) in par.iter().zip(&seq) {
            assert_eq!(p.cell, s.cell);
            assert_eq!(p.result.records, s.result.records, "{:?}", p.cell);
            assert_eq!(p.result.assignments, s.result.assignments);
            assert_eq!(p.result.events, s.result.events);
        }
    }

    #[test]
    fn speedup_summary_normalizes_to_random() {
        let m = smoke_matrix();
        let runs = run_matrix(&m);
        let rows = speedup_summary(&runs, &[SchedKind::Random, SchedKind::Fifo]);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].scenario, "even");
        assert!(
            (rows[0].speedups[0] - 1.0).abs() < 1e-12,
            "Random vs itself"
        );
        assert!(rows[0].speedups[1].is_finite());
        assert!(rows[0].completion.iter().all(|&c| c > 0.5));
    }

    #[test]
    fn with_baseline_inserts_random_once() {
        let k = with_baseline(&[SchedKind::Venn]);
        assert_eq!(k, vec![SchedKind::Venn, SchedKind::Random]);
        let k2 = with_baseline(&k);
        assert_eq!(k2, k);
    }

    #[test]
    fn fixed_scenario_ignores_seed() {
        let exp = Experiment::smoke(WorkloadKind::Even, 9);
        let m = Matrix::new()
            .fixed("pinned", exp.clone())
            .kinds(&[SchedKind::Fifo])
            .seeds(&[1, 2]);
        let runs = run_matrix_sequential(&m);
        assert_eq!(runs[0].result.records, runs[1].result.records);
    }
}
