//! Criterion bench for the event queue: timing wheel vs binary-heap
//! reference arm.
//!
//! Two views:
//!
//! * `queue_push_pop_mix` — a synthetic steady-state push/pop mix whose
//!   scheduling deltas are drawn from a histogram recorded from a real
//!   run (`paper_default/even`, seed 42, Random arm — see
//!   [`REAL_RUN_DELTA_HISTOGRAM`]), replayed over a queue pre-loaded with
//!   the initialization burst of far-future session starts. This isolates
//!   pure queue cost at realistic occupancy (~75k pending events).
//! * `queue_whole_sim` — full smoke simulations per queue arm, reported
//!   as dispatched events per second.
//!
//! Both arms pop identical sequences (see `tests/queue_equivalence.rs`);
//! any gap here is pure data-structure cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use venn_bench::{Experiment, SchedKind};
use venn_sim::{EventKind, EventQueue, QueueKind, SimConfig, Simulation};
use venn_traces::WorkloadKind;

/// Push-delta histogram recorded from a real run: bucket `i` counts
/// pushes whose delay ahead of the queue cursor fell in
/// `[2^(i-1), 2^i)` ms (bucket 0 = delays below 1 ms), over all
/// 1,772,412 pushes of the `paper_default/even` seed-42 Random-arm run.
/// The mass sits at 2^16 ms (the 60 s re-poll grid, 84 %), flanked by
/// response times (2^13–2^15) and the far-future session-start tail
/// (2^17–2^30) that the wheel's upper tiers keep off the hot path.
const REAL_RUN_DELTA_HISTOGRAM: [(u32, u64); 30] = [
    (1, 5),
    (2, 4),
    (3, 6),
    (4, 6),
    (5, 31),
    (6, 52),
    (7, 115),
    (8, 266),
    (9, 557),
    (10, 1_081),
    (11, 2_447),
    (12, 3_666),
    (13, 19_761),
    (14, 46_989),
    (15, 92_691),
    (16, 1_496_989),
    (17, 1_667),
    (18, 2_796),
    (19, 7_794),
    (20, 4_690),
    (21, 1_784),
    (22, 2_859),
    (23, 5_173),
    (24, 5_310),
    (25, 2_962),
    (26, 2_845),
    (27, 5_828),
    (28, 12_684),
    (29, 23_330),
    (30, 28_024),
];

/// Samples `n` deltas from the recorded histogram (uniform within each
/// log2 bucket), deterministically.
fn sample_deltas(n: usize, rng: &mut StdRng) -> Vec<u64> {
    let total: u64 = REAL_RUN_DELTA_HISTOGRAM.iter().map(|&(_, c)| c).sum();
    (0..n)
        .map(|_| {
            let mut pick = rng.gen_range(0..total);
            for &(bucket, count) in &REAL_RUN_DELTA_HISTOGRAM {
                if pick < count {
                    let lo = 1u64 << (bucket - 1);
                    return lo + rng.gen_range(0..lo);
                }
                pick -= count;
            }
            unreachable!("histogram exhausted")
        })
        .collect()
}

/// A queue carrying the initialization burst: far-future session starts
/// spread over 10 simulated days, matching the real run's steady-state
/// occupancy.
fn preloaded_queue(kind: QueueKind, backlog: usize, rng: &mut StdRng) -> EventQueue {
    let mut q = EventQueue::with_kind(kind);
    for d in 0..backlog {
        let t = rng.gen_range(1..10 * venn_core::DAY_MS);
        q.push(
            t,
            EventKind::SessionStart {
                device: d,
                session_end: t + 1,
            },
        );
    }
    q
}

/// Steady-state push/pop mix at realistic occupancy: every iteration pops
/// one event and re-schedules one at a histogram-drawn delta ahead of it.
fn bench_push_pop_mix(c: &mut Criterion) {
    const OPS: usize = 10_000;
    let mut group = c.benchmark_group("queue_push_pop_mix");
    group.throughput(Throughput::Elements(OPS as u64));
    for kind in [QueueKind::Wheel, QueueKind::Heap] {
        let mut rng = StdRng::seed_from_u64(7);
        let deltas = sample_deltas(OPS, &mut rng);
        let mut q = preloaded_queue(kind, 75_000, &mut rng);
        let mut i = 0usize;
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{kind:?}")),
            &(),
            |b, _| {
                b.iter(|| {
                    for _ in 0..OPS {
                        let e = q.pop().expect("queue never drains");
                        q.push(e.time + deltas[i % OPS], EventKind::CheckIn { device: 0 });
                        i += 1;
                    }
                });
            },
        );
    }
    group.finish();
}

/// End-to-end kernel throughput per queue arm: full smoke simulations,
/// reported as events dispatched per second.
fn bench_whole_sim(c: &mut Criterion) {
    let mut group = c.benchmark_group("queue_whole_sim");
    for kind in [QueueKind::Wheel, QueueKind::Heap] {
        let mut exp = Experiment::smoke(WorkloadKind::Even, 11);
        exp.sim.queue = kind;
        let run = |exp: &Experiment| {
            let mut sched = SchedKind::Random.build(exp.sim.seed ^ 0xA5A5);
            Simulation::new(exp.sim).run(&exp.workload, &mut *sched)
        };
        // One calibration run pins the deterministic event count so the
        // timed runs can be reported as events/sec.
        let events = run(&exp).events;
        group.throughput(Throughput::Elements(events));
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{kind:?}")),
            &exp,
            |b, exp| {
                b.iter(|| run(exp));
            },
        );
    }
    group.finish();
}

/// Same mix with demand gating's wake path: SimConfig-level comparison of
/// gated vs un-gated event counts on the smoke experiment, reported as
/// *dispatched* events per second (gating shrinks the numerator and the
/// wall together; the un-gated arm shows the repoll flood's cost).
fn bench_gating_arms(c: &mut Criterion) {
    let mut group = c.benchmark_group("demand_gating_whole_sim");
    for (label, gating) in [("gated", true), ("ungated", false)] {
        let mut exp = Experiment::smoke(WorkloadKind::Even, 11);
        exp.sim.demand_gating = gating;
        let run = |sim: SimConfig, exp: &Experiment| {
            let mut sched = SchedKind::Random.build(exp.sim.seed ^ 0xA5A5);
            Simulation::new(sim).run(&exp.workload, &mut *sched)
        };
        let events = run(exp.sim, &exp).events;
        group.throughput(Throughput::Elements(events));
        group.bench_with_input(BenchmarkId::from_parameter(label), &exp, |b, exp| {
            b.iter(|| run(exp.sim, exp));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_push_pop_mix,
    bench_whole_sim,
    bench_gating_arms
);
criterion_main!(benches);
