//! Criterion bench for the incremental Venn scheduler: whole-simulation
//! kernel throughput (events/sec) and trigger-path latency, incremental
//! vs. the full-rebuild reference arm (`VennConfig::full_rebuild`).
//!
//! Both arms produce byte-identical assignment streams (see
//! `tests/venn_incremental_parity.rs`), so any gap measured here is pure
//! scheduling overhead.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use venn_bench::{run, Experiment, SchedKind};
use venn_core::{
    Capacity, DeviceId, DeviceInfo, JobId, Request, ResourceSpec, Scheduler, VennConfig,
    VennScheduler,
};
use venn_traces::WorkloadKind;

fn arms() -> [(&'static str, SchedKind); 2] {
    [
        ("incremental", SchedKind::Venn),
        (
            "full-rebuild",
            SchedKind::VennWith(VennConfig::full_rebuild()),
        ),
    ]
}

/// A Venn scheduler with supply history and `jobs` active jobs spread over
/// `groups` distinct resource specs.
fn loaded_scheduler(config: VennConfig, jobs: usize, groups: usize) -> VennScheduler {
    let mut rng = StdRng::seed_from_u64(7);
    let mut venn = VennScheduler::new(config);
    for i in 0..4_000u64 {
        let cap = Capacity::new(rng.gen(), rng.gen());
        venn.on_check_in(&DeviceInfo::new(DeviceId::new(i), cap), i);
    }
    let specs: Vec<ResourceSpec> = (0..groups)
        .map(|g| {
            let t = g as f64 / groups as f64 * 0.9;
            ResourceSpec::new(t, t * 0.8)
        })
        .collect();
    for j in 0..jobs {
        venn.submit(
            Request::new(
                JobId::new(j as u64),
                specs[j % groups],
                1 + (j % 50) as u32,
                100 + j as u64,
            ),
            5_000,
        );
    }
    venn
}

/// End-to-end kernel throughput: full smoke simulations per arm, reported
/// as events dispatched per second (`elem/s`).
fn bench_sim_events_per_sec(c: &mut Criterion) {
    let mut group = c.benchmark_group("venn_incremental_vs_full_sim");
    for (label, kind) in arms() {
        let exp = Experiment::smoke(WorkloadKind::Even, 11);
        // One calibration run pins the deterministic event count so the
        // timed runs can be reported as events/sec.
        let events = run(&exp, kind).events;
        group.throughput(Throughput::Elements(events));
        group.bench_with_input(BenchmarkId::from_parameter(label), &exp, |b, exp| {
            b.iter(|| run(exp, kind));
        });
    }
    group.finish();
}

/// Latency of one scheduling trigger (request completion + arrival) on a
/// loaded scheduler — the path the per-group dirty flags shorten.
fn bench_trigger_latency(c: &mut Criterion) {
    let mut group = c.benchmark_group("venn_trigger_latency");
    for (label, incremental) in [("incremental", true), ("full-rebuild", false)] {
        let config = VennConfig {
            incremental,
            ..VennConfig::default()
        };
        let mut venn = loaded_scheduler(config, 500, 20);
        group.bench_with_input(BenchmarkId::from_parameter(label), &(), |b, _| {
            let mut t = 10_000u64;
            b.iter(|| {
                t += 1;
                venn.withdraw(JobId::new(3), t);
                venn.submit(
                    Request::new(JobId::new(3), ResourceSpec::new(0.09, 0.072), 4, 104),
                    t,
                );
            });
        });
    }
    group.finish();
}

/// Latency of one device assignment on a loaded scheduler — the per-check-
/// in path that no longer clones candidate vectors.
fn bench_assign_latency(c: &mut Criterion) {
    let mut group = c.benchmark_group("venn_assign_latency");
    for (label, incremental) in [("incremental", true), ("full-rebuild", false)] {
        let config = VennConfig {
            incremental,
            ..VennConfig::default()
        };
        let mut venn = loaded_scheduler(config, 500, 20);
        let device = DeviceInfo::new(DeviceId::new(99_999), Capacity::new(0.9, 0.9));
        group.bench_with_input(BenchmarkId::from_parameter(label), &(), |b, _| {
            let mut t = 10_000u64;
            b.iter(|| {
                t += 1;
                let job = venn.assign(&device, t);
                // Return the demand so the scheduler never drains.
                if let Some(j) = job {
                    venn.add_demand(j, 1, t);
                }
                job
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_sim_events_per_sec,
    bench_trigger_latency,
    bench_assign_latency
);
criterion_main!(benches);
