//! Criterion bench behind Figure 10: latency of one scheduling trigger
//! (Algorithm 1 rebuild) and of one device assignment, as the number of
//! jobs and job groups scales — plus whole-simulation throughput
//! (events/sec through the `World` kernel), the perf-trajectory number
//! recorded in `CHANGES.md`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use venn_bench::{run, Experiment, SchedKind};
use venn_core::{
    Capacity, DeviceId, DeviceInfo, JobId, Request, ResourceSpec, Scheduler, VennConfig,
    VennScheduler,
};
use venn_traces::WorkloadKind;

fn loaded_scheduler(jobs: usize, groups: usize) -> VennScheduler {
    let mut rng = StdRng::seed_from_u64(7);
    let mut venn = VennScheduler::new(VennConfig::default());
    for i in 0..4_000u64 {
        let cap = Capacity::new(rng.gen(), rng.gen());
        venn.on_check_in(&DeviceInfo::new(DeviceId::new(i), cap), i);
    }
    let specs: Vec<ResourceSpec> = (0..groups)
        .map(|g| {
            let t = g as f64 / groups as f64 * 0.9;
            ResourceSpec::new(t, t * 0.8)
        })
        .collect();
    for j in 0..jobs {
        venn.submit(
            Request::new(
                JobId::new(j as u64),
                specs[j % groups],
                1 + (j % 50) as u32,
                100 + j as u64,
            ),
            5_000,
        );
    }
    venn
}

fn bench_rebuild_vs_jobs(c: &mut Criterion) {
    let mut group = c.benchmark_group("rebuild_vs_jobs");
    for jobs in [100usize, 500, 1_000] {
        let mut venn = loaded_scheduler(jobs, 20);
        group.bench_with_input(BenchmarkId::from_parameter(jobs), &jobs, |b, _| {
            let mut t = 10_000u64;
            b.iter(|| {
                t += 1;
                venn.rebuild_now(t);
            });
        });
    }
    group.finish();
}

fn bench_rebuild_vs_groups(c: &mut Criterion) {
    let mut group = c.benchmark_group("rebuild_vs_groups");
    for groups in [20usize, 60, 100] {
        let mut venn = loaded_scheduler(500, groups);
        group.bench_with_input(BenchmarkId::from_parameter(groups), &groups, |b, _| {
            let mut t = 10_000u64;
            b.iter(|| {
                t += 1;
                venn.rebuild_now(t);
            });
        });
    }
    group.finish();
}

fn bench_assign(c: &mut Criterion) {
    let mut venn = loaded_scheduler(500, 20);
    let device = DeviceInfo::new(DeviceId::new(99_999), Capacity::new(0.9, 0.9));
    c.bench_function("assign_one_device", |b| {
        let mut t = 10_000u64;
        b.iter(|| {
            t += 1;
            let job = venn.assign(&device, t);
            // Return the demand so the scheduler never drains.
            if let Some(j) = job {
                venn.add_demand(j, 1, t);
            }
            job
        });
    });
}

/// End-to-end kernel throughput: full smoke simulations, reported as
/// events dispatched per second (`elem/s`).
fn bench_sim_events_per_sec(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_events_per_sec");
    for kind in [SchedKind::Fifo, SchedKind::Venn] {
        let exp = Experiment::smoke(WorkloadKind::Even, 11);
        // One calibration run pins the deterministic event count so the
        // timed runs can be reported as events/sec.
        let events = run(&exp, kind).events;
        group.throughput(Throughput::Elements(events));
        group.bench_with_input(BenchmarkId::from_parameter(kind.label()), &exp, |b, exp| {
            b.iter(|| run(exp, kind));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_rebuild_vs_jobs,
    bench_rebuild_vs_groups,
    bench_assign,
    bench_sim_events_per_sec
);
criterion_main!(benches);
