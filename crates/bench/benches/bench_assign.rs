//! Criterion bench for the scheduler data plane in isolation: the
//! submit/check-in/assign mix, replayed against every scheduler arm.
//!
//! Complements `bench_queue` (pure event-queue cost) and
//! `bench_incremental` (incremental vs full-rebuild maintenance): this
//! target times the *scheduler side* of one dispatched check-in — the
//! path the dense data plane (slot-indexed jobs, interned specs, sorted
//! mask table, persistent scratch) made hash- and allocation-free.
//!
//! The op mix is replayed from the recorded `paper_default/even` seed-42
//! run (BENCH_BASELINE.json): every operation is one check-in followed by
//! an assignment attempt over a deterministic capacity sweep, assigned
//! demand is returned straight away (the queue never drains, as in steady
//! state), and every 64th operation fires a request-completion trigger —
//! a withdraw + resubmission of a rotating job — matching the recorded
//! run's ≈1.6 % share of request triggers among scheduler entry points.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use venn_bench::SchedKind;
use venn_core::{
    Capacity, DeviceId, DeviceInfo, JobId, Request, ResourceSpec, Scheduler, SimTime, VennConfig,
};

/// Jobs resident in the scheduler during the mix (the paper's default
/// evaluation scale).
const JOBS: u64 = 50;

/// Operations per timed batch.
const OPS: usize = 10_000;

fn spec_of(j: u64) -> ResourceSpec {
    match j % 4 {
        0 => ResourceSpec::any(),
        1 => ResourceSpec::new(0.5, 0.0),
        2 => ResourceSpec::new(0.0, 0.5),
        _ => ResourceSpec::new(0.5, 0.5),
    }
}

fn submit(sched: &mut dyn Scheduler, j: u64, t: SimTime) {
    sched.submit(
        Request::new(JobId::new(j), spec_of(j), 2 + (j % 5) as u32, 40 + j),
        t,
    );
}

/// Deterministic device sweep covering all four eligibility regions.
fn dev(i: u64) -> DeviceInfo {
    let cpu = ((i * 13) % 10) as f64 / 10.0;
    let mem = ((i * 7) % 10) as f64 / 10.0;
    DeviceInfo::new(DeviceId::new(10_000 + i), Capacity::new(cpu, mem))
}

/// One batch of the recorded mix; returns the advanced clock.
fn drive(sched: &mut dyn Scheduler, mut t: SimTime, ops: usize) -> SimTime {
    for i in 0..ops as u64 {
        t += 1_000;
        let d = dev(i % 997);
        sched.on_check_in(&d, t);
        if let Some(job) = sched.assign(&d, t) {
            // Return the demand so the mix stays in steady state.
            sched.add_demand(job, 1, t);
            if i % 5 == 0 {
                sched.on_response(job, &d, 1_000 + i, t);
            }
            if i % 11 == 0 {
                sched.on_alloc_complete(job, i, t);
            }
        }
        if i % 64 == 0 {
            // Request-completion trigger: withdraw + resubmit.
            let j = (i / 64) % JOBS;
            sched.withdraw(JobId::new(j), t);
            submit(sched, j, t);
        }
    }
    t
}

fn arms() -> [(&'static str, SchedKind); 5] {
    [
        ("venn", SchedKind::Venn),
        ("venn-full", SchedKind::VennWith(VennConfig::full_rebuild())),
        ("random", SchedKind::Random),
        ("fifo", SchedKind::Fifo),
        ("srsf", SchedKind::Srsf),
    ]
}

/// Scheduler-side cost of the steady-state mix, reported as operations
/// (check-in + assign, triggers amortized in) per second.
fn bench_assign_mix(c: &mut Criterion) {
    let mut group = c.benchmark_group("sched_assign_mix");
    group.throughput(Throughput::Elements(OPS as u64));
    for (label, kind) in arms() {
        let mut sched = kind.build(42 ^ 0xA5A5);
        let mut t: SimTime = 0;
        for j in 0..JOBS {
            submit(sched.as_mut(), j, t);
        }
        // Warm-up: supply history, profiler rings, scratch high-water marks.
        t = drive(sched.as_mut(), t, 3 * OPS);
        group.bench_with_input(BenchmarkId::from_parameter(label), &(), |b, _| {
            b.iter(|| {
                t = drive(sched.as_mut(), t, OPS);
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_assign_mix);
criterion_main!(benches);
