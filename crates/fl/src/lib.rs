//! From-scratch federated learning substrate.
//!
//! The paper's testbed experiments (Figs. 4 and 9) train ResNet-18 /
//! MobileNet-V2 on FEMNIST. What those figures actually demonstrate is
//! *scheduler-side* behaviour: (a) partitioning a device pool among more
//! jobs degrades each job's round-to-accuracy curve, and (b) Venn speeds up
//! wall-clock convergence without changing final accuracy. Both properties
//! depend only on having a federated task whose accuracy improves with more
//! (and more diverse) participants per round — so this crate implements
//! the smallest complete such stack from scratch:
//!
//! * [`dataset`] — synthetic non-IID federated classification data
//!   (Gaussian class clusters, Dirichlet label skew across clients);
//! * [`model`] — a multinomial logistic-regression model with softmax
//!   cross-entropy SGD;
//! * [`fedavg`] — FedAvg orchestration: local training on a participant
//!   set, weighted averaging, centralized accuracy evaluation.
//!
//! See `DESIGN.md` for the substitution argument.

pub mod dataset;
pub mod fedavg;
pub mod model;

pub use dataset::{FederatedDataset, FlDataConfig};
pub use fedavg::{FedAvg, FedAvgConfig};
pub use model::SoftmaxModel;
