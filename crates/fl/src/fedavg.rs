//! FedAvg orchestration over the synthetic federated dataset.

use crate::dataset::FederatedDataset;
use crate::model::SoftmaxModel;

/// FedAvg hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FedAvgConfig {
    /// Local SGD epochs per participant per round.
    pub local_epochs: usize,
    /// Local learning rate.
    pub lr: f64,
    /// L2 regularization.
    pub l2: f64,
}

impl Default for FedAvgConfig {
    fn default() -> Self {
        FedAvgConfig {
            local_epochs: 2,
            lr: 0.05,
            l2: 1e-4,
        }
    }
}

/// A FedAvg training run bound to one dataset.
///
/// # Examples
///
/// ```
/// use rand::{rngs::StdRng, SeedableRng};
/// use venn_fl::{FedAvg, FedAvgConfig, FederatedDataset, FlDataConfig};
///
/// let mut rng = StdRng::seed_from_u64(1);
/// let data = FederatedDataset::generate(FlDataConfig::default(), &mut rng);
/// let mut fed = FedAvg::new(data, FedAvgConfig::default());
/// let before = fed.test_accuracy();
/// for round in 0..5 {
///     let participants: Vec<usize> = (0..20).map(|i| (round * 20 + i) % 200).collect();
///     fed.run_round(&participants);
/// }
/// assert!(fed.test_accuracy() > before);
/// ```
#[derive(Debug, Clone)]
pub struct FedAvg {
    dataset: FederatedDataset,
    model: SoftmaxModel,
    config: FedAvgConfig,
    rounds_run: usize,
}

impl FedAvg {
    /// Creates a run with a zero-initialized model.
    pub fn new(dataset: FederatedDataset, config: FedAvgConfig) -> Self {
        let model = SoftmaxModel::new(dataset.config().classes, dataset.config().features);
        FedAvg {
            dataset,
            model,
            config,
            rounds_run: 0,
        }
    }

    /// The dataset.
    pub fn dataset(&self) -> &FederatedDataset {
        &self.dataset
    }

    /// The current global model.
    pub fn model(&self) -> &SoftmaxModel {
        &self.model
    }

    /// Number of rounds run so far.
    pub fn rounds_run(&self) -> usize {
        self.rounds_run
    }

    /// Runs one FedAvg round with the given participant client indices.
    ///
    /// Each participant trains the current global model locally for
    /// `local_epochs`; the new global model is the sample-size-weighted
    /// average of the locals. Returns the mean local loss of the round.
    ///
    /// Participants out of range are ignored (devices in the scheduler's
    /// population need not all hold data); an effectively empty round
    /// leaves the model unchanged.
    pub fn run_round(&mut self, participants: &[usize]) -> f64 {
        let valid: Vec<usize> = participants
            .iter()
            .copied()
            .filter(|&c| c < self.dataset.clients())
            .collect();
        self.rounds_run += 1;
        if valid.is_empty() {
            return 0.0;
        }
        let mut aggregate = vec![0.0; self.model.params().len()];
        let mut total_weight = 0.0;
        let mut total_loss = 0.0;
        for &client in &valid {
            let mut local = self.model.clone();
            let shard = self.dataset.shard(client);
            let mut loss = 0.0;
            for _ in 0..self.config.local_epochs {
                loss = local.sgd_epoch(shard, self.config.lr, self.config.l2);
            }
            total_loss += loss;
            let weight = shard.len() as f64;
            for (agg, p) in aggregate.iter_mut().zip(local.params()) {
                *agg += weight * p;
            }
            total_weight += weight;
        }
        for (dst, agg) in self.model.params_mut().iter_mut().zip(&aggregate) {
            *dst = agg / total_weight;
        }
        total_loss / valid.len() as f64
    }

    /// Accuracy of the current global model on the held-out test set.
    pub fn test_accuracy(&self) -> f64 {
        self.model.accuracy(self.dataset.test_set())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::FlDataConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_fed(seed: u64) -> FedAvg {
        let mut rng = StdRng::seed_from_u64(seed);
        let data = FederatedDataset::generate(
            FlDataConfig {
                clients: 60,
                samples_per_client: 30,
                test_samples: 500,
                ..FlDataConfig::default()
            },
            &mut rng,
        );
        FedAvg::new(data, FedAvgConfig::default())
    }

    #[test]
    fn accuracy_rises_over_rounds() {
        let mut fed = small_fed(1);
        let start = fed.test_accuracy();
        assert!(start < 0.2, "zero model ~ random: {start}");
        for round in 0..15 {
            let participants: Vec<usize> = (0..15).map(|i| (round * 7 + i * 3) % 60).collect();
            fed.run_round(&participants);
        }
        let end = fed.test_accuracy();
        assert!(end > 0.55, "converged accuracy {end}");
        assert_eq!(fed.rounds_run(), 15);
    }

    #[test]
    fn more_participants_converge_faster() {
        let mut few = small_fed(2);
        let mut many = small_fed(2);
        for round in 0..8 {
            let f: Vec<usize> = (0..3).map(|i| (round * 11 + i * 5) % 60).collect();
            let m: Vec<usize> = (0..30).map(|i| (round * 11 + i) % 60).collect();
            few.run_round(&f);
            many.run_round(&m);
        }
        assert!(
            many.test_accuracy() >= few.test_accuracy(),
            "many {} vs few {}",
            many.test_accuracy(),
            few.test_accuracy()
        );
    }

    #[test]
    fn empty_round_is_a_noop_on_the_model() {
        let mut fed = small_fed(3);
        let before = fed.model().params().to_vec();
        let loss = fed.run_round(&[]);
        assert_eq!(loss, 0.0);
        assert_eq!(fed.model().params(), &before[..]);
        assert_eq!(fed.rounds_run(), 1);
    }

    #[test]
    fn out_of_range_participants_are_ignored() {
        let mut fed = small_fed(4);
        let loss = fed.run_round(&[0, 1, 10_000]);
        assert!(loss > 0.0);
    }

    #[test]
    fn training_is_deterministic() {
        let mut a = small_fed(5);
        let mut b = small_fed(5);
        for round in 0..3 {
            let p: Vec<usize> = (0..10).map(|i| (round + i * 2) % 60).collect();
            a.run_round(&p);
            b.run_round(&p);
        }
        assert_eq!(a.model().params(), b.model().params());
    }
}
