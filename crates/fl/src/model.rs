//! Multinomial logistic regression with softmax cross-entropy SGD.

use crate::dataset::Example;

/// A linear softmax classifier: weights `[classes × features]` plus bias.
///
/// Small enough to train thousands of federated rounds in seconds, rich
/// enough that accuracy improves with more and more-diverse participants —
/// the property Figs. 4 and 9 measure.
#[derive(Debug, Clone, PartialEq)]
pub struct SoftmaxModel {
    classes: usize,
    features: usize,
    /// Row-major `[classes][features]` weights followed by `classes` biases.
    params: Vec<f64>,
}

impl SoftmaxModel {
    /// Creates a zero-initialized model.
    ///
    /// # Panics
    ///
    /// Panics if `classes < 2` or `features == 0`.
    pub fn new(classes: usize, features: usize) -> Self {
        assert!(classes >= 2, "need at least two classes");
        assert!(features > 0, "need at least one feature");
        SoftmaxModel {
            classes,
            features,
            params: vec![0.0; classes * features + classes],
        }
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Number of features.
    pub fn features(&self) -> usize {
        self.features
    }

    /// Flat parameter vector (weights then biases).
    pub fn params(&self) -> &[f64] {
        &self.params
    }

    /// Mutable flat parameter vector.
    pub fn params_mut(&mut self) -> &mut [f64] {
        &mut self.params
    }

    fn logits(&self, x: &[f64]) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.classes);
        for c in 0..self.classes {
            let w = &self.params[c * self.features..(c + 1) * self.features];
            let b = self.params[self.classes * self.features + c];
            out.push(b + w.iter().zip(x).map(|(wi, xi)| wi * xi).sum::<f64>());
        }
        out
    }

    /// Class probabilities for one input.
    pub fn predict_proba(&self, x: &[f64]) -> Vec<f64> {
        let logits = self.logits(x);
        let max = logits.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let exps: Vec<f64> = logits.iter().map(|l| (l - max).exp()).collect();
        let sum: f64 = exps.iter().sum();
        exps.into_iter().map(|e| e / sum).collect()
    }

    /// Most likely class for one input.
    pub fn predict(&self, x: &[f64]) -> usize {
        let probs = self.predict_proba(x);
        probs
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite probs"))
            .map(|(i, _)| i)
            .expect("at least one class")
    }

    /// One epoch of plain SGD over `examples` with learning rate `lr` and
    /// L2 regularization `l2`. Returns the mean cross-entropy loss.
    pub fn sgd_epoch(&mut self, examples: &[Example], lr: f64, l2: f64) -> f64 {
        let mut total_loss = 0.0;
        for ex in examples {
            let probs = self.predict_proba(&ex.x);
            total_loss += -(probs[ex.y].max(1e-12)).ln();
            for (c, &prob) in probs.iter().enumerate().take(self.classes) {
                let err = prob - if c == ex.y { 1.0 } else { 0.0 };
                let base = c * self.features;
                for (f, xf) in ex.x.iter().enumerate() {
                    let w = &mut self.params[base + f];
                    *w -= lr * (err * xf + l2 * *w);
                }
                self.params[self.classes * self.features + c] -= lr * err;
            }
        }
        if examples.is_empty() {
            0.0
        } else {
            total_loss / examples.len() as f64
        }
    }

    /// Top-1 accuracy on a labelled set; `0.0` for an empty set.
    pub fn accuracy(&self, examples: &[Example]) -> f64 {
        if examples.is_empty() {
            return 0.0;
        }
        let correct = examples
            .iter()
            .filter(|ex| self.predict(&ex.x) == ex.y)
            .count();
        correct as f64 / examples.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{FederatedDataset, FlDataConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy_examples() -> Vec<Example> {
        // Two linearly separable blobs on one feature.
        (0..40)
            .map(|i| Example {
                x: vec![if i % 2 == 0 { 1.0 } else { -1.0 }],
                y: i % 2,
            })
            .collect()
    }

    #[test]
    fn zero_model_predicts_uniform() {
        let m = SoftmaxModel::new(4, 3);
        let p = m.predict_proba(&[1.0, 2.0, 3.0]);
        for v in p {
            assert!((v - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn sgd_fits_separable_data() {
        let mut m = SoftmaxModel::new(2, 1);
        let data = toy_examples();
        let first_loss = m.sgd_epoch(&data, 0.5, 0.0);
        let mut last_loss = first_loss;
        for _ in 0..20 {
            last_loss = m.sgd_epoch(&data, 0.5, 0.0);
        }
        assert!(last_loss < first_loss / 2.0, "{first_loss} -> {last_loss}");
        assert_eq!(m.accuracy(&data), 1.0);
    }

    #[test]
    fn accuracy_improves_on_synthetic_federated_data() {
        let mut rng = StdRng::seed_from_u64(1);
        let data = FederatedDataset::generate(
            FlDataConfig {
                clients: 20,
                ..FlDataConfig::default()
            },
            &mut rng,
        );
        let mut m = SoftmaxModel::new(10, 32);
        let before = m.accuracy(data.test_set());
        let all: Vec<Example> = (0..20).flat_map(|c| data.shard(c).to_vec()).collect();
        for _ in 0..5 {
            m.sgd_epoch(&all, 0.05, 1e-4);
        }
        let after = m.accuracy(data.test_set());
        assert!(after > before + 0.3, "{before} -> {after}");
    }

    #[test]
    fn softmax_is_numerically_stable() {
        let mut m = SoftmaxModel::new(2, 1);
        m.params_mut()[0] = 1e3; // huge logit
        let p = m.predict_proba(&[1.0]);
        assert!(p.iter().all(|v| v.is_finite()));
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_epoch_is_zero_loss() {
        let mut m = SoftmaxModel::new(2, 1);
        assert_eq!(m.sgd_epoch(&[], 0.1, 0.0), 0.0);
        assert_eq!(m.accuracy(&[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "two classes")]
    fn one_class_panics() {
        SoftmaxModel::new(1, 4);
    }
}
