//! Synthetic non-IID federated dataset (FEMNIST stand-in).
//!
//! Classes are Gaussian clusters in feature space; each client draws its
//! label distribution from a Dirichlet, so clients are non-IID — the
//! property that makes participant diversity matter, which is what the
//! paper's Fig. 4 (contention hurts accuracy) exercises.

use rand::Rng;

use venn_traces::dist::Normal;

/// Configuration of a synthetic federated dataset.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlDataConfig {
    /// Number of classes.
    pub classes: usize,
    /// Feature dimensionality.
    pub features: usize,
    /// Number of clients.
    pub clients: usize,
    /// Samples per client.
    pub samples_per_client: usize,
    /// Dirichlet concentration: small → highly non-IID clients.
    pub alpha: f64,
    /// Within-class noise (relative to unit cluster separation).
    pub noise: f64,
    /// Held-out test samples.
    pub test_samples: usize,
}

impl Default for FlDataConfig {
    fn default() -> Self {
        FlDataConfig {
            classes: 10,
            features: 32,
            clients: 200,
            samples_per_client: 40,
            alpha: 0.3,
            noise: 0.9,
            test_samples: 1_000,
        }
    }
}

/// One labelled example.
#[derive(Debug, Clone, PartialEq)]
pub struct Example {
    /// Feature vector.
    pub x: Vec<f64>,
    /// Class label.
    pub y: usize,
}

/// A synthetic federated dataset: per-client shards plus a test set.
#[derive(Debug, Clone)]
pub struct FederatedDataset {
    config: FlDataConfig,
    class_means: Vec<Vec<f64>>,
    shards: Vec<Vec<Example>>,
    test: Vec<Example>,
}

impl FederatedDataset {
    /// Generates a dataset.
    ///
    /// # Panics
    ///
    /// Panics on degenerate configs (zero classes/features/clients).
    pub fn generate<R: Rng + ?Sized>(config: FlDataConfig, rng: &mut R) -> Self {
        assert!(config.classes > 1, "need at least two classes");
        assert!(config.features > 0, "need at least one feature");
        assert!(config.clients > 0, "need at least one client");
        let std_normal = Normal::new(0.0, 1.0);
        // Unit-norm class means scattered on the sphere.
        let class_means: Vec<Vec<f64>> = (0..config.classes)
            .map(|_| {
                let v: Vec<f64> = (0..config.features)
                    .map(|_| std_normal.sample(rng))
                    .collect();
                let norm = v.iter().map(|a| a * a).sum::<f64>().sqrt().max(1e-9);
                v.into_iter().map(|a| a / norm * 2.0).collect()
            })
            .collect();

        let noise = Normal::new(0.0, config.noise);
        let sample_example = |class: usize, rng: &mut R| -> Example {
            let x = class_means[class]
                .iter()
                .map(|m| m + noise.sample(rng))
                .collect();
            Example { x, y: class }
        };

        let shards: Vec<Vec<Example>> = (0..config.clients)
            .map(|_| {
                let probs = dirichlet(config.alpha, config.classes, rng);
                (0..config.samples_per_client)
                    .map(|_| {
                        let class = sample_categorical(&probs, rng);
                        sample_example(class, rng)
                    })
                    .collect()
            })
            .collect();

        // Test set is class-balanced.
        let test: Vec<Example> = (0..config.test_samples)
            .map(|i| sample_example(i % config.classes, rng))
            .collect();

        FederatedDataset {
            config,
            class_means,
            shards,
            test,
        }
    }

    /// The generation config.
    pub fn config(&self) -> &FlDataConfig {
        &self.config
    }

    /// Number of clients.
    pub fn clients(&self) -> usize {
        self.shards.len()
    }

    /// Training shard of one client.
    ///
    /// # Panics
    ///
    /// Panics if `client` is out of range.
    pub fn shard(&self, client: usize) -> &[Example] {
        &self.shards[client]
    }

    /// The held-out test set.
    pub fn test_set(&self) -> &[Example] {
        &self.test
    }

    /// The generating class means (one unit-scaled vector per class) —
    /// exposed for diagnostics and tests.
    pub fn class_means(&self) -> &[Vec<f64>] {
        &self.class_means
    }

    /// Empirical label distribution of one client (for diversity metrics).
    pub fn label_histogram(&self, client: usize) -> Vec<f64> {
        let mut h = vec![0.0; self.config.classes];
        for ex in &self.shards[client] {
            h[ex.y] += 1.0;
        }
        let total: f64 = h.iter().sum::<f64>().max(1.0);
        h.iter_mut().for_each(|v| *v /= total);
        h
    }
}

/// Samples from a symmetric Dirichlet via normalized Gamma(alpha, 1) draws
/// (Marsaglia–Tsang for alpha < 1 via boost, otherwise squeeze method).
fn dirichlet<R: Rng + ?Sized>(alpha: f64, k: usize, rng: &mut R) -> Vec<f64> {
    let mut draws: Vec<f64> = (0..k).map(|_| gamma(alpha, rng)).collect();
    let sum: f64 = draws.iter().sum::<f64>().max(1e-12);
    draws.iter_mut().for_each(|v| *v /= sum);
    draws
}

/// Gamma(shape, 1) sampler (Marsaglia & Tsang 2000, with the alpha < 1
/// boosting trick).
fn gamma<R: Rng + ?Sized>(shape: f64, rng: &mut R) -> f64 {
    if shape < 1.0 {
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        return gamma(shape + 1.0, rng) * u.powf(1.0 / shape);
    }
    let d = shape - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    let normal = Normal::new(0.0, 1.0);
    loop {
        let x = normal.sample(rng);
        let v = (1.0 + c * x).powi(3);
        if v <= 0.0 {
            continue;
        }
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        if u.ln() < 0.5 * x * x + d - d * v + d * v.ln() {
            return d * v;
        }
    }
}

fn sample_categorical<R: Rng + ?Sized>(probs: &[f64], rng: &mut R) -> usize {
    let mut u: f64 = rng.gen();
    for (i, p) in probs.iter().enumerate() {
        if u < *p {
            return i;
        }
        u -= p;
    }
    probs.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn dataset(seed: u64) -> FederatedDataset {
        let mut rng = StdRng::seed_from_u64(seed);
        FederatedDataset::generate(FlDataConfig::default(), &mut rng)
    }

    #[test]
    fn shapes_match_config() {
        let d = dataset(1);
        assert_eq!(d.clients(), 200);
        assert_eq!(d.shard(0).len(), 40);
        assert_eq!(d.shard(0)[0].x.len(), 32);
        assert_eq!(d.test_set().len(), 1_000);
    }

    #[test]
    fn labels_are_in_range() {
        let d = dataset(2);
        for c in 0..d.clients() {
            for ex in d.shard(c) {
                assert!(ex.y < 10);
            }
        }
    }

    #[test]
    fn clients_are_non_iid() {
        let d = dataset(3);
        // With alpha = 0.3, most clients concentrate on few classes: the
        // max label share should often exceed 0.5.
        let concentrated = (0..d.clients())
            .filter(|&c| d.label_histogram(c).iter().cloned().fold(0.0, f64::max) > 0.5)
            .count();
        assert!(
            concentrated > d.clients() / 3,
            "only {concentrated} concentrated clients"
        );
    }

    #[test]
    fn test_set_is_balanced() {
        let d = dataset(4);
        let mut counts = vec![0usize; 10];
        for ex in d.test_set() {
            counts[ex.y] += 1;
        }
        assert!(counts.iter().all(|&c| c == 100), "{counts:?}");
    }

    #[test]
    fn dirichlet_sums_to_one() {
        let mut rng = StdRng::seed_from_u64(5);
        for alpha in [0.1, 0.5, 1.0, 5.0] {
            let p = dirichlet(alpha, 8, &mut rng);
            assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            assert!(p.iter().all(|&v| v >= 0.0));
        }
    }

    #[test]
    fn gamma_mean_matches_shape() {
        let mut rng = StdRng::seed_from_u64(6);
        let mean: f64 = (0..20_000).map(|_| gamma(2.5, &mut rng)).sum::<f64>() / 20_000.0;
        assert!((mean - 2.5).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn generation_is_deterministic() {
        let a = dataset(7);
        let b = dataset(7);
        assert_eq!(a.shard(3), b.shard(3));
    }
}
