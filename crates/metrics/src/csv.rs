//! Minimal CSV rendering for experiment artifacts.
//!
//! Hand-rolled (RFC 4180 quoting) so the workspace needs no serialization
//! dependency; used by the bench binaries to dump per-job records for
//! external plotting.

/// A CSV document under construction.
///
/// # Examples
///
/// ```
/// use venn_metrics::csv::Csv;
///
/// let mut csv = Csv::new(&["job", "jct_ms"]);
/// csv.row(&["0".into(), "1234".into()]);
/// assert_eq!(csv.to_string(), "job,jct_ms\n0,1234\n");
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Csv {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Csv {
    /// Creates a document with the given column names.
    pub fn new(header: &[&str]) -> Self {
        Csv {
            header: header.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header width.
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row width must match header"
        );
        self.rows.push(cells.to_vec());
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the document has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    fn escape(cell: &str) -> String {
        if cell.contains([',', '"', '\n']) {
            format!("\"{}\"", cell.replace('"', "\"\""))
        } else {
            cell.to_string()
        }
    }
}

impl std::fmt::Display for Csv {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let line = |cells: &[String]| {
            cells
                .iter()
                .map(|c| Self::escape(c))
                .collect::<Vec<_>>()
                .join(",")
        };
        writeln!(f, "{}", line(&self.header))?;
        for row in &self.rows {
            writeln!(f, "{}", line(row))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_header_and_rows() {
        let mut c = Csv::new(&["a", "b"]);
        c.row(&["1".into(), "2".into()]);
        c.row(&["3".into(), "4".into()]);
        assert_eq!(c.to_string(), "a,b\n1,2\n3,4\n");
        assert_eq!(c.len(), 2);
        assert!(!c.is_empty());
    }

    #[test]
    fn escapes_commas_quotes_newlines() {
        let mut c = Csv::new(&["x"]);
        c.row(&["a,b".into()]);
        c.row(&["say \"hi\"".into()]);
        c.row(&["line\nbreak".into()]);
        let out = c.to_string();
        assert!(out.contains("\"a,b\""));
        assert!(out.contains("\"say \"\"hi\"\"\""));
        assert!(out.contains("\"line\nbreak\""));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        Csv::new(&["a"]).row(&["1".into(), "2".into()]);
    }

    #[test]
    fn empty_document_is_header_only() {
        let c = Csv::new(&["only"]);
        assert!(c.is_empty());
        assert_eq!(c.to_string(), "only\n");
    }
}
