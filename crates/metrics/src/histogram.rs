//! Fixed-width histogram for distribution sketches.

/// A fixed-width binned histogram over a closed range.
///
/// Values outside the range are clamped into the first/last bin so totals are
/// conserved — useful when sketching heavy-tailed response-time
/// distributions.
///
/// # Examples
///
/// ```
/// use venn_metrics::Histogram;
///
/// let mut h = Histogram::new(0.0, 10.0, 5);
/// h.record(1.0);
/// h.record(9.5);
/// assert_eq!(h.counts()[0], 1);
/// assert_eq!(h.counts()[4], 1);
/// assert_eq!(h.total(), 2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
}

impl Histogram {
    /// Creates a histogram over `[lo, hi]` with `bins` equal-width bins.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0` or `hi <= lo`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(hi > lo, "histogram range must be non-empty");
        Histogram {
            lo,
            hi,
            counts: vec![0; bins],
        }
    }

    /// Rebuilds a histogram from its raw parts (snapshot restore).
    ///
    /// # Panics
    ///
    /// Panics under the same invalid-shape conditions as [`Histogram::new`].
    pub fn from_parts(lo: f64, hi: f64, counts: Vec<u64>) -> Self {
        assert!(!counts.is_empty(), "histogram needs at least one bin");
        assert!(hi > lo, "histogram range must be non-empty");
        Histogram { lo, hi, counts }
    }

    /// The `(lo, hi)` value range the bins cover.
    pub fn bounds(&self) -> (f64, f64) {
        (self.lo, self.hi)
    }

    /// Records one value, clamping to the histogram range.
    pub fn record(&mut self, value: f64) {
        let bins = self.counts.len();
        let width = (self.hi - self.lo) / bins as f64;
        let idx = ((value - self.lo) / width).floor();
        let idx = idx.clamp(0.0, (bins - 1) as f64) as usize;
        self.counts[idx] += 1;
    }

    /// Per-bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total number of recorded values.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Midpoint of bin `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn bin_center(&self, i: usize) -> f64 {
        let width = (self.hi - self.lo) / self.counts.len() as f64;
        assert!(i < self.counts.len(), "bin index out of range");
        self.lo + width * (i as f64 + 0.5)
    }

    /// Fraction of mass in bin `i`; `0.0` when the histogram is empty.
    pub fn fraction(&self, i: usize) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.counts[i] as f64 / total as f64
        }
    }

    /// Renders a one-line-per-bin sparkbar sketch.
    pub fn render(&self) -> String {
        let max = self.counts.iter().copied().max().unwrap_or(0).max(1);
        let mut out = String::new();
        for (i, c) in self.counts.iter().enumerate() {
            let bar = "#".repeat((c * 40 / max) as usize);
            out.push_str(&format!(
                "{:>10.3} | {:<40} {}\n",
                self.bin_center(i),
                bar,
                c
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn values_land_in_correct_bins() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.record(0.5);
        h.record(5.5);
        h.record(9.99);
        assert_eq!(h.counts()[0], 1);
        assert_eq!(h.counts()[5], 1);
        assert_eq!(h.counts()[9], 1);
    }

    #[test]
    fn out_of_range_clamps() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        h.record(-5.0);
        h.record(5.0);
        assert_eq!(h.counts()[0], 1);
        assert_eq!(h.counts()[3], 1);
        assert_eq!(h.total(), 2);
    }

    #[test]
    fn bin_centers_are_midpoints() {
        let h = Histogram::new(0.0, 4.0, 4);
        assert_eq!(h.bin_center(0), 0.5);
        assert_eq!(h.bin_center(3), 3.5);
    }

    #[test]
    fn fractions_sum_to_one() {
        let mut h = Histogram::new(0.0, 1.0, 3);
        for i in 0..9 {
            h.record(i as f64 / 9.0);
        }
        let total: f64 = (0..3).map(|i| h.fraction(i)).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_fraction_is_zero() {
        let h = Histogram::new(0.0, 1.0, 2);
        assert_eq!(h.fraction(0), 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn zero_bins_panics() {
        Histogram::new(0.0, 1.0, 0);
    }

    #[test]
    fn render_contains_counts() {
        let mut h = Histogram::new(0.0, 1.0, 2);
        h.record(0.1);
        let s = h.render();
        assert!(s.contains('#'));
    }
}
