//! Sample buffers with exact percentile queries.

use crate::Welford;

/// A buffer of `f64` samples supporting exact percentiles.
///
/// Percentiles use linear interpolation between closest ranks (the same
/// convention as NumPy's default), which is what the paper's percentile
/// breakdowns (Table 2) assume.
///
/// # Examples
///
/// ```
/// use venn_metrics::Samples;
///
/// let mut s: Samples = [10.0, 20.0, 30.0, 40.0].into_iter().collect();
/// assert_eq!(s.percentile(0.0), 10.0);
/// assert_eq!(s.percentile(100.0), 40.0);
/// assert_eq!(s.percentile(50.0), 25.0);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Samples {
    values: Vec<f64>,
    sorted: bool,
}

impl Samples {
    /// Creates an empty sample buffer.
    pub fn new() -> Self {
        Samples {
            values: Vec::new(),
            sorted: true,
        }
    }

    /// Creates an empty buffer with room for `capacity` samples.
    pub fn with_capacity(capacity: usize) -> Self {
        Samples {
            values: Vec::with_capacity(capacity),
            sorted: true,
        }
    }

    /// Adds one sample.
    ///
    /// Non-finite values are ignored so a single failed measurement cannot
    /// poison a report.
    pub fn push(&mut self, value: f64) {
        if value.is_finite() {
            self.values.push(value);
            self.sorted = false;
        }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the buffer holds no samples.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Arithmetic mean; `0.0` when empty.
    pub fn mean(&self) -> f64 {
        if self.values.is_empty() {
            0.0
        } else {
            self.values.iter().sum::<f64>() / self.values.len() as f64
        }
    }

    /// Exact percentile `p` in `[0, 100]` with linear interpolation.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 100]` or the buffer is empty.
    pub fn percentile(&mut self, p: f64) -> f64 {
        assert!((0.0..=100.0).contains(&p), "percentile out of range: {p}");
        assert!(!self.values.is_empty(), "percentile of empty sample set");
        self.ensure_sorted();
        let n = self.values.len();
        if n == 1 {
            return self.values[0];
        }
        let rank = p / 100.0 * (n - 1) as f64;
        let lo = rank.floor() as usize;
        let hi = rank.ceil() as usize;
        let frac = rank - lo as f64;
        self.values[lo] * (1.0 - frac) + self.values[hi] * frac
    }

    /// Median (50th percentile).
    pub fn median(&mut self) -> f64 {
        self.percentile(50.0)
    }

    /// Returns the samples whose value is at or below the `p`-th percentile.
    ///
    /// Used for the paper's Table 2 (improvement across jobs with lowest
    /// 25 %/50 %/75 % of total demand).
    pub fn below_percentile(&mut self, p: f64) -> Vec<f64> {
        let cut = self.percentile(p);
        self.values.iter().copied().filter(|v| *v <= cut).collect()
    }

    /// Streaming summary (mean/var/min/max) of the buffer.
    pub fn summary(&self) -> Welford {
        self.values.iter().copied().collect()
    }

    /// Immutable view of the raw samples (unsorted order not guaranteed).
    pub fn as_slice(&self) -> &[f64] {
        &self.values
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.values
                .sort_by(|a, b| a.partial_cmp(b).expect("non-finite sample"));
            self.sorted = true;
        }
    }
}

impl Extend<f64> for Samples {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for v in iter {
            self.push(v);
        }
    }
}

impl FromIterator<f64> for Samples {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut s = Samples::new();
        s.extend(iter);
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_interpolate() {
        let mut s: Samples = [1.0, 2.0, 3.0, 4.0, 5.0].into_iter().collect();
        assert_eq!(s.percentile(0.0), 1.0);
        assert_eq!(s.percentile(25.0), 2.0);
        assert_eq!(s.percentile(50.0), 3.0);
        assert_eq!(s.percentile(75.0), 4.0);
        assert_eq!(s.percentile(100.0), 5.0);
        assert_eq!(s.percentile(10.0), 1.4);
    }

    #[test]
    fn single_element_percentile() {
        let mut s: Samples = [7.0].into_iter().collect();
        assert_eq!(s.percentile(0.0), 7.0);
        assert_eq!(s.percentile(99.0), 7.0);
    }

    #[test]
    #[should_panic(expected = "percentile of empty")]
    fn empty_percentile_panics() {
        Samples::new().percentile(50.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_percentile_panics() {
        let mut s: Samples = [1.0].into_iter().collect();
        s.percentile(101.0);
    }

    #[test]
    fn non_finite_samples_dropped() {
        let mut s = Samples::new();
        s.push(f64::NAN);
        s.push(f64::INFINITY);
        s.push(1.0);
        assert_eq!(s.len(), 1);
        assert_eq!(s.mean(), 1.0);
    }

    #[test]
    fn below_percentile_filters() {
        let mut s: Samples = (1..=100).map(f64::from).collect();
        let low = s.below_percentile(25.0);
        assert_eq!(low.len(), 25);
        assert!(low.iter().all(|v| *v <= 25.75));
    }

    #[test]
    fn push_after_percentile_resorts() {
        let mut s: Samples = [3.0, 1.0].into_iter().collect();
        assert_eq!(s.median(), 2.0);
        s.push(100.0);
        assert_eq!(s.median(), 3.0);
    }

    #[test]
    fn summary_matches_mean() {
        let s: Samples = [2.0, 4.0].into_iter().collect();
        assert_eq!(s.summary().mean(), s.mean());
    }
}
