//! One incremental snapshot of a live run's observable state — the unit
//! the online control plane streams to metric subscribers.
//!
//! A [`MetricsFrame`] is a pure value: plain counters and percentiles
//! captured at one virtual-time instant, with no references into the
//! world that produced it. Frames are built by the simulation kernel
//! (`World::metrics_frame`) and serialized by the serving layer; keeping
//! the struct here, in the dependency-free metrics crate, lets offline
//! tooling consume recorded frame streams without linking the kernel.

/// Point-in-time metrics of a running simulation.
///
/// All fields are deterministic functions of the run state, so a frame
/// captured at the same virtual time in a journal replay is identical to
/// the live one — frames are part of the serving layer's byte-identical
/// replay surface. Percentiles are `None` until at least one job has
/// finished.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MetricsFrame {
    /// Virtual time of the capture, in simulated milliseconds.
    pub vt_ms: u64,
    /// Events dispatched since the run began.
    pub events: u64,
    /// Assignments made since the run began.
    pub assignments: u64,
    /// Failed assignments (devices departed mid-computation).
    pub failures: u64,
    /// Rounds aborted (deadline misses and abort storms).
    pub aborted_rounds: u64,
    /// Total jobs known to the run (static plans plus live submissions).
    pub jobs: u64,
    /// Jobs that have completed all rounds.
    pub jobs_finished: u64,
    /// Jobs currently computing a round.
    pub jobs_running: u64,
    /// Jobs with an outstanding allocation request.
    pub jobs_allocating: u64,
    /// Devices currently inside an availability session.
    pub live_devices: u64,
    /// Devices currently held for an allocating round.
    pub held_devices: u64,
    /// Demand-gated polls currently parked.
    pub parked_polls: u64,
    /// Pending events in the queue.
    pub queue_len: u64,
    /// Median completion time over finished jobs, ms.
    pub jct_p50_ms: Option<u64>,
    /// 90th-percentile completion time over finished jobs, ms.
    pub jct_p90_ms: Option<u64>,
    /// 99th-percentile completion time over finished jobs, ms.
    pub jct_p99_ms: Option<u64>,
    /// Environment: mid-round participant dropouts so far.
    pub env_dropouts: u64,
    /// Environment: devices forced offline by faults so far.
    pub env_forced_offline: u64,
    /// Environment: abort-storm strikes so far.
    pub env_storm_aborts: u64,
    /// Environment: round retries attributed to the environment so far.
    pub env_retries: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_frame_is_zeroed() {
        let f = MetricsFrame::default();
        assert_eq!(f.vt_ms, 0);
        assert_eq!(f.jobs, 0);
        assert_eq!(f.jct_p50_ms, None);
    }
}
