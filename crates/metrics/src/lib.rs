//! Streaming statistics, JCT accounting, and ASCII rendering for Venn
//! experiments.
//!
//! The Venn paper reports averages, percentile breakdowns, and speed-up
//! tables over job completion times (JCT). This crate provides the small,
//! dependency-free measurement substrate those reports are built on:
//!
//! * [`Welford`] — numerically stable streaming mean/variance.
//! * [`Samples`] — a sample buffer with exact percentiles.
//! * [`Histogram`] — fixed-width binning for distribution sketches.
//! * [`JctRecord`] / [`JctBreakdown`] — per-job completion-time accounting
//!   split into scheduling delay and response collection time (paper Fig. 1).
//! * [`Table`] and [`Series`] — plain-text renderers used by the bench
//!   binaries so every paper table/figure prints in the same shape the paper
//!   reports it.
//!
//! # Examples
//!
//! ```
//! use venn_metrics::Samples;
//!
//! let mut s = Samples::new();
//! for v in [4.0, 1.0, 3.0, 2.0] {
//!     s.push(v);
//! }
//! assert_eq!(s.mean(), 2.5);
//! assert_eq!(s.percentile(50.0), 2.5);
//! ```

pub mod alloc;
pub mod csv;
pub mod env;
pub mod frame;
pub mod histogram;
pub mod jct;
pub mod samples;
pub mod series;
pub mod table;
pub mod welford;

pub use env::EnvStats;
pub use frame::MetricsFrame;
pub use histogram::Histogram;
pub use jct::{JctBreakdown, JctRecord};
pub use samples::Samples;
pub use series::Series;
pub use table::Table;
pub use welford::Welford;
