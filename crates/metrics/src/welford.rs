//! Numerically stable streaming mean and variance (Welford's algorithm).

/// Streaming mean/variance accumulator.
///
/// Uses Welford's online algorithm, which is numerically stable for long
/// streams of samples with large offsets — exactly the situation when
/// accumulating millisecond-scale completion times over multi-day simulated
/// horizons.
///
/// # Examples
///
/// ```
/// use venn_metrics::Welford;
///
/// let mut w = Welford::new();
/// for v in [2.0, 4.0, 6.0] {
///     w.push(v);
/// }
/// assert_eq!(w.mean(), 4.0);
/// assert_eq!(w.variance(), 4.0); // sample variance
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Welford {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Welford {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Welford {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one sample.
    pub fn push(&mut self, value: f64) {
        self.count += 1;
        let delta = value - self.mean;
        self.mean += delta / self.count as f64;
        let delta2 = value - self.mean;
        self.m2 += delta * delta2;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of samples observed so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean of the samples; `0.0` when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance; `0.0` with fewer than two samples.
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest sample observed; `None` when empty.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample observed; `None` when empty.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &Welford) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        self.mean += delta * other.count as f64 / total as f64;
        self.m2 +=
            other.m2 + delta * delta * (self.count as f64 * other.count as f64) / total as f64;
        self.count = total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl Extend<f64> for Welford {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for v in iter {
            self.push(v);
        }
    }
}

impl FromIterator<f64> for Welford {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut w = Welford::new();
        w.extend(iter);
        w
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_zero() {
        let w = Welford::new();
        assert_eq!(w.count(), 0);
        assert_eq!(w.mean(), 0.0);
        assert_eq!(w.variance(), 0.0);
        assert_eq!(w.min(), None);
        assert_eq!(w.max(), None);
    }

    #[test]
    fn mean_and_variance_match_closed_form() {
        let data = [1.0, 2.0, 3.0, 4.0, 5.0];
        let w: Welford = data.iter().copied().collect();
        assert_eq!(w.count(), 5);
        assert!((w.mean() - 3.0).abs() < 1e-12);
        assert!((w.variance() - 2.5).abs() < 1e-12);
        assert_eq!(w.min(), Some(1.0));
        assert_eq!(w.max(), Some(5.0));
    }

    #[test]
    fn single_sample_has_zero_variance() {
        let mut w = Welford::new();
        w.push(42.0);
        assert_eq!(w.variance(), 0.0);
        assert_eq!(w.mean(), 42.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let mut a = Welford::new();
        let mut b = Welford::new();
        let mut all = Welford::new();
        for i in 0..50 {
            let v = (i as f64).sin() * 10.0 + 5.0;
            if i % 2 == 0 {
                a.push(v);
            } else {
                b.push(v);
            }
            all.push(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-10);
        assert!((a.variance() - all.variance()).abs() < 1e-10);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a: Welford = [1.0, 2.0].into_iter().collect();
        let before = a;
        a.merge(&Welford::new());
        assert_eq!(a, before);

        let mut e = Welford::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn large_offset_is_stable() {
        let base = 1e12;
        let w: Welford = (0..1000).map(|i| base + (i % 10) as f64).collect();
        // Variance of 0..=9 repeated is ~8.2575 (sample variance of the stream).
        assert!((w.mean() - (base + 4.5)).abs() < 1e-3);
        assert!(w.variance() > 8.0 && w.variance() < 8.5);
    }
}
