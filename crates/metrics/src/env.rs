//! Environment-dynamics telemetry: what the `venn-env` subsystem did to
//! a run.
//!
//! The simulation kernel fills one [`EnvStats`] per run; with the
//! environment disabled it stays at its empty default, so the env-off
//! arm carries no extra accounting. Per-tier response histograms use the
//! crate's fixed-width [`Histogram`] over a log-friendly 0–30 min range.

use crate::histogram::Histogram;

/// Response-time histogram range: 0–30 simulated minutes, 60 bins of
/// 30 s each (responses beyond clamp into the last bin).
const RESPONSE_HIST_MAX_MS: f64 = 30.0 * 60_000.0;
const RESPONSE_HIST_BINS: usize = 60;

/// Counters and sketches of environment-injected dynamics in one run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EnvStats {
    /// Participants dropped mid-round by their network tier (each one an
    /// `AssignFailure` scheduled before the response would have landed).
    pub dropouts: u64,
    /// Devices forced offline by mass-offline disturbances or scripted
    /// device faults.
    pub forced_offline: u64,
    /// Rounds aborted by abort storms (also counted in the kernel's
    /// `aborted_rounds`).
    pub storm_aborts: u64,
    /// Round retries scheduled after any abort while the environment was
    /// active (deadline misses and storms alike).
    pub retries: u64,
    /// Per-network-tier histograms of counted response times, indexed by
    /// tier. Empty when the environment is off.
    pub tier_response_ms: Vec<Histogram>,
}

impl EnvStats {
    /// Stats sized for `tiers` network tiers (histograms pre-allocated).
    pub fn with_tiers(tiers: usize) -> Self {
        EnvStats {
            tier_response_ms: (0..tiers)
                .map(|_| Histogram::new(0.0, RESPONSE_HIST_MAX_MS, RESPONSE_HIST_BINS))
                .collect(),
            ..EnvStats::default()
        }
    }

    /// Records one counted response for `tier`.
    ///
    /// # Panics
    ///
    /// Panics if `tier` is out of range for the stats' tier table.
    pub fn record_response(&mut self, tier: usize, response_ms: u64) {
        self.tier_response_ms[tier].record(response_ms as f64);
    }

    /// Whether any environment dynamics fired in this run.
    pub fn is_empty(&self) -> bool {
        self.dropouts == 0
            && self.forced_offline == 0
            && self.storm_aborts == 0
            && self.retries == 0
            && self.tier_response_ms.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_empty_and_tierless() {
        let s = EnvStats::default();
        assert!(s.is_empty());
        assert!(s.tier_response_ms.is_empty());
    }

    #[test]
    fn with_tiers_allocates_histograms() {
        let mut s = EnvStats::with_tiers(3);
        assert_eq!(s.tier_response_ms.len(), 3);
        assert!(!s.is_empty());
        s.record_response(1, 90_000);
        assert_eq!(s.tier_response_ms[1].total(), 1);
        assert_eq!(s.tier_response_ms[0].total(), 0);
    }

    #[test]
    fn responses_clamp_into_the_last_bin() {
        let mut s = EnvStats::with_tiers(1);
        s.record_response(0, 3 * 3_600_000); // 3 h ≫ 30 min range
        let h = &s.tier_response_ms[0];
        assert_eq!(h.counts()[h.counts().len() - 1], 1);
    }
}
