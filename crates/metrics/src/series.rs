//! (x, y) series rendering for figure-style outputs.

use std::fmt;

/// A named sequence of `(x, y)` points, printed one point per line.
///
/// Bench binaries that regenerate paper *figures* (line plots) print one
/// `Series` per curve; downstream plotting is a cut-and-paste away.
///
/// # Examples
///
/// ```
/// use venn_metrics::Series;
///
/// let mut s = Series::new("accuracy");
/// s.point(0.0, 0.1);
/// s.point(1.0, 0.5);
/// assert_eq!(s.len(), 2);
/// assert!(s.to_string().contains("accuracy"));
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Series {
    name: String,
    points: Vec<(f64, f64)>,
}

impl Series {
    /// Creates an empty series with the given curve name.
    pub fn new(name: &str) -> Self {
        Series {
            name: name.to_string(),
            points: Vec::new(),
        }
    }

    /// Appends one point.
    pub fn point(&mut self, x: f64, y: f64) {
        self.points.push((x, y));
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the series has no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Curve name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Immutable view of the points.
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }

    /// Final y value, if any — handy for "final accuracy" style assertions.
    pub fn last_y(&self) -> Option<f64> {
        self.points.last().map(|p| p.1)
    }

    /// Maximum y value, if any.
    pub fn max_y(&self) -> Option<f64> {
        self.points
            .iter()
            .map(|p| p.1)
            .fold(None, |acc, y| Some(acc.map_or(y, |m: f64| m.max(y))))
    }
}

impl fmt::Display for Series {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "# series: {}", self.name)?;
        for (x, y) in &self.points {
            writeln!(f, "{x:>12.4}  {y:>12.4}")?;
        }
        Ok(())
    }
}

impl Extend<(f64, f64)> for Series {
    fn extend<T: IntoIterator<Item = (f64, f64)>>(&mut self, iter: T) {
        self.points.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn points_kept_in_order() {
        let mut s = Series::new("c");
        s.point(2.0, 1.0);
        s.point(1.0, 3.0);
        assert_eq!(s.points(), &[(2.0, 1.0), (1.0, 3.0)]);
    }

    #[test]
    fn last_and_max_y() {
        let mut s = Series::new("c");
        assert_eq!(s.last_y(), None);
        assert_eq!(s.max_y(), None);
        s.extend([(0.0, 1.0), (1.0, 5.0), (2.0, 3.0)]);
        assert_eq!(s.last_y(), Some(3.0));
        assert_eq!(s.max_y(), Some(5.0));
    }

    #[test]
    fn display_contains_name_and_points() {
        let mut s = Series::new("acc");
        s.point(1.0, 0.5);
        let out = s.to_string();
        assert!(out.contains("# series: acc"));
        assert!(out.contains("0.5000"));
    }

    #[test]
    fn empty_checks() {
        let s = Series::new("e");
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
        assert_eq!(s.name(), "e");
    }
}
