//! Job-completion-time records and aggregate breakdowns.
//!
//! The paper decomposes each round of a CL job into *scheduling delay* (time
//! to acquire the needed devices) and *response collection time* (time until
//! the quorum of responses arrives) — Figure 1. These types accumulate that
//! decomposition per job and across jobs.

use crate::{Samples, Welford};

/// Completion-time accounting for one job.
///
/// Times are in simulated milliseconds. A record is complete once
/// [`JctRecord::finish`] has been called.
#[derive(Debug, Clone, PartialEq)]
pub struct JctRecord {
    /// Arrival (submission) time of the job.
    pub arrival_ms: u64,
    /// Completion time of the job's last round, if finished.
    pub finish_ms: Option<u64>,
    /// Total time spent waiting for devices across all rounds.
    pub sched_delay_ms: u64,
    /// Total time spent collecting responses across all rounds.
    pub response_ms: u64,
    /// Rounds that completed successfully.
    pub rounds_completed: u32,
    /// Rounds that aborted (quorum missed the deadline).
    pub rounds_aborted: u32,
}

impl JctRecord {
    /// Creates a record for a job arriving at `arrival_ms`.
    pub fn new(arrival_ms: u64) -> Self {
        JctRecord {
            arrival_ms,
            finish_ms: None,
            sched_delay_ms: 0,
            response_ms: 0,
            rounds_completed: 0,
            rounds_aborted: 0,
        }
    }

    /// Marks the job finished at `finish_ms`.
    ///
    /// # Panics
    ///
    /// Panics if `finish_ms` precedes the arrival time.
    pub fn finish(&mut self, finish_ms: u64) {
        assert!(finish_ms >= self.arrival_ms, "finish before arrival");
        self.finish_ms = Some(finish_ms);
    }

    /// Job completion time in milliseconds, if the job finished.
    pub fn jct_ms(&self) -> Option<u64> {
        self.finish_ms.map(|f| f - self.arrival_ms)
    }

    /// Whether the job has finished.
    pub fn is_finished(&self) -> bool {
        self.finish_ms.is_some()
    }
}

/// Aggregate JCT statistics over a set of jobs.
///
/// # Examples
///
/// ```
/// use venn_metrics::{JctBreakdown, JctRecord};
///
/// let mut r = JctRecord::new(0);
/// r.sched_delay_ms = 30;
/// r.response_ms = 70;
/// r.finish(100);
///
/// let mut b = JctBreakdown::new();
/// b.add(&r);
/// assert_eq!(b.avg_jct_ms(), 100.0);
/// assert_eq!(b.avg_sched_delay_ms(), 30.0);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct JctBreakdown {
    jct: Welford,
    sched: Welford,
    resp: Welford,
    jct_samples: Samples,
    unfinished: u64,
}

impl JctBreakdown {
    /// Creates an empty breakdown.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one job record. Unfinished jobs are counted but contribute no
    /// completion time.
    pub fn add(&mut self, record: &JctRecord) {
        match record.jct_ms() {
            Some(jct) => {
                self.jct.push(jct as f64);
                self.jct_samples.push(jct as f64);
                self.sched.push(record.sched_delay_ms as f64);
                self.resp.push(record.response_ms as f64);
            }
            None => self.unfinished += 1,
        }
    }

    /// Number of finished jobs.
    pub fn finished(&self) -> u64 {
        self.jct.count()
    }

    /// Number of jobs that never finished within the simulated horizon.
    pub fn unfinished(&self) -> u64 {
        self.unfinished
    }

    /// Average JCT in milliseconds over finished jobs.
    pub fn avg_jct_ms(&self) -> f64 {
        self.jct.mean()
    }

    /// Average total scheduling delay in milliseconds.
    pub fn avg_sched_delay_ms(&self) -> f64 {
        self.sched.mean()
    }

    /// Average total response collection time in milliseconds.
    pub fn avg_response_ms(&self) -> f64 {
        self.resp.mean()
    }

    /// JCT percentile over finished jobs.
    ///
    /// # Panics
    ///
    /// Panics when no job has finished.
    pub fn jct_percentile(&mut self, p: f64) -> f64 {
        self.jct_samples.percentile(p)
    }

    /// Speed-up of this breakdown relative to `baseline`
    /// (`baseline.avg_jct / self.avg_jct`), the paper's headline metric.
    ///
    /// Returns `None` if either side has no finished jobs.
    pub fn speedup_over(&self, baseline: &JctBreakdown) -> Option<f64> {
        if self.finished() == 0 || baseline.finished() == 0 || self.avg_jct_ms() == 0.0 {
            return None;
        }
        Some(baseline.avg_jct_ms() / self.avg_jct_ms())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(arrival: u64, finish: u64, sched: u64, resp: u64) -> JctRecord {
        let mut r = JctRecord::new(arrival);
        r.sched_delay_ms = sched;
        r.response_ms = resp;
        r.finish(finish);
        r
    }

    #[test]
    fn jct_is_finish_minus_arrival() {
        let r = rec(100, 250, 50, 100);
        assert_eq!(r.jct_ms(), Some(150));
        assert!(r.is_finished());
    }

    #[test]
    fn unfinished_has_no_jct() {
        let r = JctRecord::new(5);
        assert_eq!(r.jct_ms(), None);
        assert!(!r.is_finished());
    }

    #[test]
    #[should_panic(expected = "finish before arrival")]
    fn finish_before_arrival_panics() {
        JctRecord::new(10).finish(5);
    }

    #[test]
    fn breakdown_averages() {
        let mut b = JctBreakdown::new();
        b.add(&rec(0, 100, 30, 70));
        b.add(&rec(0, 300, 100, 200));
        assert_eq!(b.finished(), 2);
        assert_eq!(b.avg_jct_ms(), 200.0);
        assert_eq!(b.avg_sched_delay_ms(), 65.0);
        assert_eq!(b.avg_response_ms(), 135.0);
    }

    #[test]
    fn unfinished_jobs_tracked_separately() {
        let mut b = JctBreakdown::new();
        b.add(&JctRecord::new(0));
        b.add(&rec(0, 10, 5, 5));
        assert_eq!(b.unfinished(), 1);
        assert_eq!(b.finished(), 1);
        assert_eq!(b.avg_jct_ms(), 10.0);
    }

    #[test]
    fn speedup_is_baseline_over_self() {
        let mut fast = JctBreakdown::new();
        fast.add(&rec(0, 100, 0, 0));
        let mut slow = JctBreakdown::new();
        slow.add(&rec(0, 188, 0, 0));
        let s = fast.speedup_over(&slow).unwrap();
        assert!((s - 1.88).abs() < 1e-12);
    }

    #[test]
    fn speedup_none_when_empty() {
        let empty = JctBreakdown::new();
        let mut one = JctBreakdown::new();
        one.add(&rec(0, 10, 0, 0));
        assert!(empty.speedup_over(&one).is_none());
        assert!(one.speedup_over(&empty).is_none());
    }

    #[test]
    fn percentiles_over_jcts() {
        let mut b = JctBreakdown::new();
        for f in [100, 200, 300] {
            b.add(&rec(0, f, 0, 0));
        }
        assert_eq!(b.jct_percentile(50.0), 200.0);
    }
}
