//! A counting global allocator with a resettable high-water mark.
//!
//! Grown out of the steady-state no-allocation harness in
//! `tests/no_alloc_steady_state.rs`: besides counting allocation *calls*
//! (the steady-state invariant), [`TrackingAlloc`] tracks live bytes and
//! their peak, so binaries can report an allocator high-water mark per
//! run (`peak_bytes` in `SimResult` exports) — the memory axis of the
//! `bench_scale` sweep.
//!
//! The library never installs the allocator; a binary or test that wants
//! tracking opts in:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: venn_metrics::alloc::TrackingAlloc = venn_metrics::alloc::TrackingAlloc;
//! ```
//!
//! With no tracker installed every probe reports 0, which downstream
//! consumers treat as "not measured". Counters are global process state:
//! concurrent measured regions would blend, so measurement belongs in
//! single-run drivers (the bench binaries run one simulation at a time).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);
static CURRENT_BYTES: AtomicU64 = AtomicU64::new(0);
static PEAK_BYTES: AtomicU64 = AtomicU64::new(0);

/// System allocator wrapper counting calls, live bytes, and peak bytes.
pub struct TrackingAlloc;

impl TrackingAlloc {
    fn on_alloc(size: usize) {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        let live = CURRENT_BYTES.fetch_add(size as u64, Ordering::Relaxed) + size as u64;
        PEAK_BYTES.fetch_max(live, Ordering::Relaxed);
    }

    fn on_dealloc(size: usize) {
        CURRENT_BYTES.fetch_sub(size as u64, Ordering::Relaxed);
    }
}

// SAFETY: defers all allocation to `System`; the bookkeeping only touches
// atomics and never allocates.
unsafe impl GlobalAlloc for TrackingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            Self::on_alloc(layout.size());
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        Self::on_dealloc(layout.size());
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = System.realloc(ptr, layout, new_size);
        if !p.is_null() {
            // Count a realloc as one allocator call with the size delta
            // applied to the live total.
            ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
            let old = layout.size() as u64;
            let new = new_size as u64;
            if new >= old {
                let live = CURRENT_BYTES.fetch_add(new - old, Ordering::Relaxed) + (new - old);
                PEAK_BYTES.fetch_max(live, Ordering::Relaxed);
            } else {
                CURRENT_BYTES.fetch_sub(old - new, Ordering::Relaxed);
            }
        }
        p
    }
}

/// Total allocator calls (alloc + realloc) since process start; 0 when no
/// [`TrackingAlloc`] is installed.
pub fn allocation_calls() -> u64 {
    ALLOC_CALLS.load(Ordering::Relaxed)
}

/// Live heap bytes right now; 0 when no tracker is installed.
pub fn current_bytes() -> u64 {
    CURRENT_BYTES.load(Ordering::Relaxed)
}

/// High-water mark of live heap bytes since process start (or the last
/// [`reset_peak`]); 0 when no tracker is installed.
pub fn peak_bytes() -> u64 {
    PEAK_BYTES.load(Ordering::Relaxed)
}

/// Restarts the high-water mark at the current live total, so a driver
/// can attribute a peak to one measured region (e.g. one simulation run).
pub fn reset_peak() {
    PEAK_BYTES.store(CURRENT_BYTES.load(Ordering::Relaxed), Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    // The test binary does NOT install the tracker (that would perturb
    // every other test's timing); these pin the uninstalled contract and
    // the pure bookkeeping arithmetic.
    use super::*;

    // One test, not several: the counters are process-global, and
    // parallel tests mutating them would race each other's assertions.
    #[test]
    fn bookkeeping_tracks_calls_live_and_peak() {
        // Without `#[global_allocator]` the counters only move via the
        // explicit hooks below; snapshot-and-compare keeps this test
        // independent of anything the process did before it.
        let calls = allocation_calls();
        let live = current_bytes();
        TrackingAlloc::on_alloc(1024);
        assert_eq!(allocation_calls(), calls + 1);
        assert_eq!(current_bytes(), live + 1024);
        assert!(peak_bytes() >= live + 1024);
        TrackingAlloc::on_dealloc(1024);
        assert_eq!(current_bytes(), live);

        TrackingAlloc::on_alloc(4096);
        TrackingAlloc::on_dealloc(2048);
        reset_peak();
        assert_eq!(peak_bytes(), current_bytes(), "peak rebased to live");
        TrackingAlloc::on_dealloc(2048);
        assert_eq!(current_bytes(), live);
    }
}
