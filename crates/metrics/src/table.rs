//! Plain-text table rendering for experiment reports.

use std::fmt;

/// A simple left-labelled ASCII table.
///
/// Every bench binary renders its paper table through this type so outputs
/// share one shape and are easy to diff against `EXPERIMENTS.md`.
///
/// # Examples
///
/// ```
/// use venn_metrics::Table;
///
/// let mut t = Table::new("Table 1", &["FIFO", "SRSF", "Venn"]);
/// t.row("Even", &[1.38, 1.69, 1.87]);
/// let s = t.to_string();
/// assert!(s.contains("Even"));
/// assert!(s.contains("1.87"));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    title: String,
    columns: Vec<String>,
    rows: Vec<(String, Vec<String>)>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: &str, columns: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            columns: columns.iter().map(|c| c.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row of numeric cells, rendered with two decimals and an `x`
    /// suffix-free format.
    ///
    /// # Panics
    ///
    /// Panics if the number of values differs from the number of columns.
    pub fn row(&mut self, label: &str, values: &[f64]) {
        assert_eq!(
            values.len(),
            self.columns.len(),
            "row width must match column count"
        );
        self.rows.push((
            label.to_string(),
            values.iter().map(|v| format!("{v:.2}")).collect(),
        ));
    }

    /// Appends a row of pre-formatted string cells.
    ///
    /// # Panics
    ///
    /// Panics if the number of cells differs from the number of columns.
    pub fn row_str(&mut self, label: &str, cells: &[String]) {
        assert_eq!(
            cells.len(),
            self.columns.len(),
            "row width must match column count"
        );
        self.rows.push((label.to_string(), cells.to_vec()));
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let label_w = self
            .rows
            .iter()
            .map(|(l, _)| l.len())
            .chain([5])
            .max()
            .unwrap();
        let col_ws: Vec<usize> = self
            .columns
            .iter()
            .enumerate()
            .map(|(i, c)| {
                self.rows
                    .iter()
                    .map(|(_, cells)| cells[i].len())
                    .chain([c.len()])
                    .max()
                    .unwrap()
            })
            .collect();

        writeln!(f, "== {} ==", self.title)?;
        write!(f, "{:<label_w$}", "")?;
        for (c, w) in self.columns.iter().zip(&col_ws) {
            write!(f, "  {c:>w$}")?;
        }
        writeln!(f)?;
        let total = label_w + col_ws.iter().map(|w| w + 2).sum::<usize>();
        writeln!(f, "{}", "-".repeat(total))?;
        for (label, cells) in &self.rows {
            write!(f, "{label:<label_w$}")?;
            for (cell, w) in cells.iter().zip(&col_ws) {
                write!(f, "  {cell:>w$}")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_title_headers_and_rows() {
        let mut t = Table::new("T", &["A", "B"]);
        t.row("r1", &[1.0, 2.5]);
        t.row("r2", &[3.0, 4.0]);
        let s = t.to_string();
        assert!(s.contains("== T =="));
        assert!(s.contains('A') && s.contains('B'));
        assert!(s.contains("1.00") && s.contains("2.50"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        Table::new("T", &["A"]).row("r", &[1.0, 2.0]);
    }

    #[test]
    fn string_rows_render_verbatim() {
        let mut t = Table::new("T", &["A"]);
        t.row_str("r", &["1.88x".to_string()]);
        assert!(t.to_string().contains("1.88x"));
    }

    #[test]
    fn empty_table_renders_header_only() {
        let t = Table::new("Empty", &["X"]);
        assert!(t.is_empty());
        assert!(t.to_string().contains("Empty"));
    }

    #[test]
    fn columns_are_aligned() {
        let mut t = Table::new("T", &["Col"]);
        t.row("short", &[1.0]);
        t.row("a-much-longer-label", &[2.0]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().filter(|l| l.contains('.')).collect();
        // All numeric cells end at the same column.
        let ends: Vec<usize> = lines.iter().map(|l| l.trim_end().len()).collect();
        assert!(ends.windows(2).all(|w| w[0] == w[1]));
    }
}
