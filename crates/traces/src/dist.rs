//! Distribution samplers built on uniform draws.
//!
//! Implemented from scratch (Box–Muller, inversion, Knuth) so the workspace
//! only depends on `rand`'s uniform source. Each distribution is a small
//! value type with a `sample` method, mirroring `rand_distr`'s API shape.

use rand::Rng;

/// Normal distribution via the Box–Muller transform.
///
/// # Examples
///
/// ```
/// use rand::{rngs::StdRng, SeedableRng};
/// use venn_traces::dist::Normal;
///
/// let mut rng = StdRng::seed_from_u64(1);
/// let n = Normal::new(10.0, 2.0);
/// let x = n.sample(&mut rng);
/// assert!(x.is_finite());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

impl Normal {
    /// Creates a normal distribution.
    ///
    /// # Panics
    ///
    /// Panics if `std_dev` is negative or either parameter is non-finite.
    pub fn new(mean: f64, std_dev: f64) -> Self {
        assert!(
            mean.is_finite() && std_dev.is_finite() && std_dev >= 0.0,
            "invalid normal parameters"
        );
        Normal { mean, std_dev }
    }

    /// Draws one sample.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // Box–Muller; u1 is kept away from 0 so ln is finite.
        let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = rng.gen();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        self.mean + self.std_dev * z
    }
}

/// Log-normal distribution parameterized by the underlying normal.
///
/// Device response times follow a log-normal (paper §4.3, citing FLINT), as
/// do the job demand marginals we fit to Fig. 8b.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    inner: Normal,
}

impl LogNormal {
    /// Creates from the *log-space* mean and standard deviation.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`Normal::new`].
    pub fn new(mu: f64, sigma: f64) -> Self {
        LogNormal {
            inner: Normal::new(mu, sigma),
        }
    }

    /// Creates a log-normal with the given *linear-space* mean and
    /// coefficient of variation (`cv = std/mean`).
    ///
    /// # Panics
    ///
    /// Panics if `mean <= 0` or `cv < 0`.
    pub fn from_mean_cv(mean: f64, cv: f64) -> Self {
        assert!(mean > 0.0 && cv >= 0.0, "invalid log-normal parameters");
        let sigma2 = (1.0 + cv * cv).ln();
        let mu = mean.ln() - sigma2 / 2.0;
        LogNormal::new(mu, sigma2.sqrt())
    }

    /// Draws one sample (always positive).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.inner.sample(rng).exp()
    }
}

/// Exponential distribution (inter-arrival times of Poisson processes).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    rate: f64,
}

impl Exponential {
    /// Creates an exponential with events per unit time `rate`.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not strictly positive and finite.
    pub fn new(rate: f64) -> Self {
        assert!(rate.is_finite() && rate > 0.0, "rate must be positive");
        Exponential { rate }
    }

    /// Creates from the mean inter-arrival time.
    ///
    /// # Panics
    ///
    /// Panics if `mean` is not strictly positive and finite.
    pub fn from_mean(mean: f64) -> Self {
        assert!(mean.is_finite() && mean > 0.0, "mean must be positive");
        Exponential { rate: 1.0 / mean }
    }

    /// Draws one sample (inversion method).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        -u.ln() / self.rate
    }
}

/// Poisson distribution (counts per interval).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Poisson {
    lambda: f64,
}

impl Poisson {
    /// Creates a Poisson with mean `lambda`.
    ///
    /// # Panics
    ///
    /// Panics if `lambda` is negative or non-finite.
    pub fn new(lambda: f64) -> Self {
        assert!(lambda.is_finite() && lambda >= 0.0, "invalid lambda");
        Poisson { lambda }
    }

    /// Draws one count. Uses Knuth's method for small `lambda` and a
    /// normal approximation above 64 (error is negligible there).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        if self.lambda == 0.0 {
            return 0;
        }
        if self.lambda > 64.0 {
            let n = Normal::new(self.lambda, self.lambda.sqrt()).sample(rng);
            return n.round().max(0.0) as u64;
        }
        let l = (-self.lambda).exp();
        let mut k = 0u64;
        let mut p = 1.0;
        loop {
            p *= rng.gen::<f64>();
            if p <= l {
                return k;
            }
            k += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn mean_var(samples: &[f64]) -> (f64, f64) {
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0);
        (mean, var)
    }

    #[test]
    fn normal_matches_moments() {
        let mut rng = StdRng::seed_from_u64(7);
        let d = Normal::new(5.0, 2.0);
        let samples: Vec<f64> = (0..20_000).map(|_| d.sample(&mut rng)).collect();
        let (m, v) = mean_var(&samples);
        assert!((m - 5.0).abs() < 0.1, "mean {m}");
        assert!((v - 4.0).abs() < 0.3, "var {v}");
    }

    #[test]
    fn lognormal_is_positive_and_matches_mean() {
        let mut rng = StdRng::seed_from_u64(8);
        let d = LogNormal::from_mean_cv(10.0, 0.5);
        let samples: Vec<f64> = (0..40_000).map(|_| d.sample(&mut rng)).collect();
        assert!(samples.iter().all(|&x| x > 0.0));
        let (m, _) = mean_var(&samples);
        assert!((m - 10.0).abs() < 0.3, "mean {m}");
    }

    #[test]
    fn lognormal_cv_controls_spread() {
        let mut rng = StdRng::seed_from_u64(9);
        let narrow = LogNormal::from_mean_cv(10.0, 0.1);
        let wide = LogNormal::from_mean_cv(10.0, 2.0);
        let ns: Vec<f64> = (0..10_000).map(|_| narrow.sample(&mut rng)).collect();
        let ws: Vec<f64> = (0..10_000).map(|_| wide.sample(&mut rng)).collect();
        assert!(mean_var(&ns).1 < mean_var(&ws).1);
    }

    #[test]
    fn exponential_matches_mean() {
        let mut rng = StdRng::seed_from_u64(10);
        let d = Exponential::from_mean(30.0);
        let samples: Vec<f64> = (0..20_000).map(|_| d.sample(&mut rng)).collect();
        let (m, _) = mean_var(&samples);
        assert!((m - 30.0).abs() < 1.0, "mean {m}");
        assert!(samples.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn poisson_small_lambda_matches_mean() {
        let mut rng = StdRng::seed_from_u64(11);
        let d = Poisson::new(3.0);
        let total: u64 = (0..20_000).map(|_| d.sample(&mut rng)).sum();
        let mean = total as f64 / 20_000.0;
        assert!((mean - 3.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn poisson_large_lambda_uses_normal_approx() {
        let mut rng = StdRng::seed_from_u64(12);
        let d = Poisson::new(400.0);
        let total: u64 = (0..5_000).map(|_| d.sample(&mut rng)).sum();
        let mean = total as f64 / 5_000.0;
        assert!((mean - 400.0).abs() < 2.0, "mean {mean}");
    }

    #[test]
    fn poisson_zero_lambda_is_zero() {
        let mut rng = StdRng::seed_from_u64(13);
        assert_eq!(Poisson::new(0.0).sample(&mut rng), 0);
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let d = Normal::new(0.0, 1.0);
        let a: Vec<f64> = {
            let mut rng = StdRng::seed_from_u64(42);
            (0..5).map(|_| d.sample(&mut rng)).collect()
        };
        let b: Vec<f64> = {
            let mut rng = StdRng::seed_from_u64(42);
            (0..5).map(|_| d.sample(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn zero_rate_panics() {
        Exponential::new(0.0);
    }

    #[test]
    #[should_panic(expected = "invalid normal parameters")]
    fn negative_std_panics() {
        Normal::new(0.0, -1.0);
    }
}
