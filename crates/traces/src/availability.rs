//! Diurnal device availability (substitute for the FedScale trace).
//!
//! Figure 2a of the paper shows the fraction of available devices
//! (charging and on WiFi) swinging diurnally between roughly 15 % and
//! 30 % of the population over a multi-day horizon. [`AvailabilityModel`] generates
//! per-device availability *sessions* from a sinusoidal daily intensity:
//! each device independently starts 0–2 sessions per day, biased toward the
//! nightly charging peak, with log-normal session durations. The union of
//! sessions reproduces the diurnal supply curve the scheduler observes.

use rand::Rng;

use venn_core::{SimTime, DAY_MS, HOUR_MS};

use crate::dist::LogNormal;

/// One availability window of one device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Session {
    /// Index of the device in the population.
    pub device: usize,
    /// When the device checks in.
    pub start: SimTime,
    /// When the device departs (battery unplugged, WiFi lost...).
    pub end: SimTime,
}

impl Session {
    /// Session length in milliseconds.
    pub fn duration(&self) -> SimTime {
        self.end - self.start
    }
}

/// Generator of diurnal availability sessions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AvailabilityModel {
    /// Expected number of sessions a device starts per day.
    pub sessions_per_day: f64,
    /// Hour of day (0-24) at which session starts peak.
    pub peak_hour: f64,
    /// Peak-to-trough ratio of the diurnal start-time density (≥ 1).
    pub diurnal_strength: f64,
    /// Mean session duration in milliseconds.
    pub mean_session_ms: f64,
    /// Coefficient of variation of session durations.
    pub duration_cv: f64,
}

impl Default for AvailabilityModel {
    fn default() -> Self {
        AvailabilityModel {
            sessions_per_day: 1.5,
            peak_hour: 22.0, // overnight charging
            diurnal_strength: 3.0,
            mean_session_ms: 3.0 * HOUR_MS as f64,
            duration_cv: 0.8,
        }
    }
}

impl AvailabilityModel {
    /// Relative session-start intensity at millisecond `t` (peak = 1.0).
    pub fn intensity(&self, t: SimTime) -> f64 {
        let hour = (t % DAY_MS) as f64 / HOUR_MS as f64;
        let phase = (hour - self.peak_hour) / 24.0 * std::f64::consts::TAU;
        // Cosine between trough (1/strength) and peak (1.0).
        let lo = 1.0 / self.diurnal_strength;
        lo + (1.0 - lo) * (0.5 + 0.5 * phase.cos())
    }

    /// Samples a session start hour of day via rejection against the
    /// diurnal intensity.
    fn sample_start_in_day<R: Rng + ?Sized>(&self, rng: &mut R) -> SimTime {
        loop {
            let t = rng.gen_range(0..DAY_MS);
            if rng.gen::<f64>() < self.intensity(t) {
                return t;
            }
        }
    }

    /// Appends the sessions `device` starts on `day` to `out`, drawing
    /// from `rng` in the model's canonical order (two Bernoulli count
    /// draws, then start + duration per session). Both generation paths —
    /// the eager sequential trace and the per-`(device, day)` split
    /// streams — funnel through this one body, so they cannot drift.
    fn day_sessions_into<R: Rng + ?Sized>(
        &self,
        duration: &LogNormal,
        device: usize,
        day: u64,
        rng: &mut R,
        out: &mut Vec<Session>,
    ) {
        // Bernoulli split of the expected rate into 0..=2 sessions.
        let mut count = 0usize;
        let lambda = self.sessions_per_day;
        if rng.gen::<f64>() < (lambda / 2.0).min(1.0) {
            count += 1;
        }
        if rng.gen::<f64>() < (lambda / 2.0).min(1.0) {
            count += 1;
        }
        for _ in 0..count {
            let start = day * DAY_MS + self.sample_start_in_day(rng);
            let dur = duration.sample(rng).max(5.0 * 60_000.0) as SimTime;
            out.push(Session {
                device,
                start,
                end: start + dur,
            });
        }
    }

    /// Generates the availability sessions of a population of `population`
    /// devices over `days` days, sorted by start time.
    ///
    /// # Panics
    ///
    /// Panics if `days == 0`.
    pub fn generate<R: Rng + ?Sized>(
        &self,
        population: usize,
        days: u32,
        rng: &mut R,
    ) -> Vec<Session> {
        assert!(days > 0, "horizon must cover at least one day");
        let duration = LogNormal::from_mean_cv(self.mean_session_ms, self.duration_cv);
        let mut sessions = Vec::new();
        for device in 0..population {
            for day in 0..days as u64 {
                self.day_sessions_into(&duration, device, day, rng, &mut sessions);
            }
        }
        sessions.sort_by_key(|s| (s.start, s.device));
        sessions
    }

    /// Regenerates the sessions `device` starts on `day` from the device's
    /// own split RNG stream (see [`crate::stream`]), appended to `out`
    /// sorted by start (stable, so same-start sessions keep draw order —
    /// matching the relative order [`generate`](Self::generate)'s global
    /// `(start, device)` sort gives one device's ties).
    ///
    /// Because the stream is keyed by `(seed, device, day)` the result is
    /// a pure function of those values: no other device's generation, and
    /// no materialization order, can perturb it. Cost is O(sessions in
    /// the day) — a cursor resuming mid-horizon replays one day block.
    pub fn device_day_sessions(&self, seed: u64, device: usize, day: u64, out: &mut Vec<Session>) {
        let duration = LogNormal::from_mean_cv(self.mean_session_ms, self.duration_cv);
        let mut rng = crate::stream::session_rng(seed, device, day);
        let base = out.len();
        self.day_sessions_into(&duration, device, day, &mut rng, out);
        out[base..].sort_by_key(|s| s.start);
    }

    /// Fraction of the population online at each sampled timestamp —
    /// regenerates the Fig. 2a curve.
    pub fn online_fraction_curve(
        sessions: &[Session],
        population: usize,
        horizon_ms: SimTime,
        step_ms: SimTime,
    ) -> Vec<(SimTime, f64)> {
        assert!(step_ms > 0, "step must be positive");
        let mut curve = Vec::new();
        let mut t = 0;
        while t <= horizon_ms {
            let online = sessions
                .iter()
                .filter(|s| s.start <= t && t < s.end)
                .count();
            curve.push((t, online as f64 / population.max(1) as f64));
            t += step_ms;
        }
        curve
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn sessions_are_well_formed_and_sorted() {
        let mut rng = StdRng::seed_from_u64(1);
        let sessions = AvailabilityModel::default().generate(200, 3, &mut rng);
        assert!(!sessions.is_empty());
        for s in &sessions {
            assert!(s.end > s.start);
            assert!(s.device < 200);
        }
        assert!(sessions.windows(2).all(|w| w[0].start <= w[1].start));
    }

    #[test]
    fn intensity_peaks_at_peak_hour() {
        let m = AvailabilityModel::default();
        let peak_t = (m.peak_hour * HOUR_MS as f64) as SimTime;
        let trough_t = ((m.peak_hour + 12.0) % 24.0 * HOUR_MS as f64) as SimTime;
        assert!(m.intensity(peak_t) > 0.99);
        let expected_trough = 1.0 / m.diurnal_strength;
        assert!((m.intensity(trough_t) - expected_trough).abs() < 0.01);
    }

    #[test]
    fn supply_is_diurnal() {
        let mut rng = StdRng::seed_from_u64(2);
        let m = AvailabilityModel::default();
        let pop = 2_000;
        let sessions = m.generate(pop, 4, &mut rng);
        let curve = AvailabilityModel::online_fraction_curve(&sessions, pop, 4 * DAY_MS, HOUR_MS);
        // Skip day 0 warm-up (no sessions carry in from "yesterday").
        let steady: Vec<f64> = curve
            .iter()
            .filter(|(t, _)| *t >= DAY_MS)
            .map(|(_, f)| *f)
            .collect();
        let max = steady.iter().cloned().fold(0.0, f64::max);
        let min = steady.iter().cloned().fold(1.0, f64::min);
        assert!(
            max > 1.5 * min,
            "diurnal swing expected: min={min} max={max}"
        );
        // Magnitudes in the Fig. 2a ballpark (a few percent to tens of %).
        assert!(max < 0.6 && max > 0.05, "online fraction peak {max}");
    }

    #[test]
    fn session_count_scales_with_rate() {
        let mut rng = StdRng::seed_from_u64(3);
        let low = AvailabilityModel {
            sessions_per_day: 0.4,
            ..AvailabilityModel::default()
        };
        let high = AvailabilityModel {
            sessions_per_day: 2.0,
            ..AvailabilityModel::default()
        };
        let nl = low.generate(500, 2, &mut rng).len();
        let nh = high.generate(500, 2, &mut rng).len();
        assert!(nh > 3 * nl, "low={nl} high={nh}");
    }

    #[test]
    fn generation_is_deterministic() {
        let m = AvailabilityModel::default();
        let a = m.generate(50, 2, &mut StdRng::seed_from_u64(9));
        let b = m.generate(50, 2, &mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "at least one day")]
    fn zero_days_panics() {
        AvailabilityModel::default().generate(1, 0, &mut StdRng::seed_from_u64(0));
    }

    #[test]
    fn split_day_sessions_are_pure_and_sorted() {
        let m = AvailabilityModel::default();
        for device in [0usize, 17, 123_456] {
            for day in 0..4u64 {
                let mut a = Vec::new();
                let mut b = Vec::new();
                m.device_day_sessions(42, device, day, &mut a);
                m.device_day_sessions(42, device, day, &mut b);
                assert_eq!(a, b, "split stream must be a pure function of its key");
                assert!(a.windows(2).all(|w| w[0].start <= w[1].start));
                for s in &a {
                    assert_eq!(s.device, device);
                    assert!(s.start >= day * DAY_MS && s.start < (day + 1) * DAY_MS);
                    assert!(s.end > s.start);
                }
            }
        }
    }

    #[test]
    fn split_day_sessions_match_model_statistics() {
        // The split path draws through the same body as `generate`, so
        // per-day session counts follow the same 0..=2 Bernoulli split.
        let m = AvailabilityModel::default();
        let mut out = Vec::new();
        for device in 0..500usize {
            for day in 0..2u64 {
                m.device_day_sessions(7, device, day, &mut out);
            }
        }
        let per_device_day = out.len() as f64 / 1_000.0;
        assert!(
            (per_device_day - m.sessions_per_day).abs() < 0.25,
            "rate {per_device_day} vs {}",
            m.sessions_per_day
        );
    }
}
