//! Device hardware capacity sampling (substitute for AI-Benchmark data).
//!
//! Figure 2b/8a of the paper shows normalized CPU and memory scores with
//! most devices in the low-to-mid range and a long right tail of flagship
//! hardware, stratified into four eligibility regions. [`CapacityModel`]
//! reproduces that shape with a two-component log-normal mixture per axis
//! (mainstream + flagship cluster), clipped to `[0, 1]`, and derives each
//! device's *execution speed* from its capacity — faster hardware responds
//! faster, which is what makes tier-based matching worthwhile.

use rand::Rng;

use venn_core::{Capacity, CategoryThresholds, SpecCategory};

use crate::dist::{LogNormal, Normal};

/// A sampled device: advertised capacity plus hidden execution speed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeviceProfile {
    /// Advertised (scheduler-visible) hardware capacity.
    pub capacity: Capacity,
    /// Hidden relative execution speed; `1.0` is the population baseline.
    /// Response time = task cost / speed × log-normal noise.
    pub speed: f64,
}

/// Generator of device hardware profiles.
///
/// # Examples
///
/// ```
/// use rand::{rngs::StdRng, SeedableRng};
/// use venn_traces::CapacityModel;
///
/// let mut rng = StdRng::seed_from_u64(3);
/// let model = CapacityModel::default();
/// let d = model.sample(&mut rng);
/// assert!(d.capacity.cpu() <= 1.0 && d.speed > 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CapacityModel {
    /// Fraction of devices in the flagship cluster.
    pub flagship_fraction: f64,
    /// Mainstream cluster means (cpu, mem).
    pub mainstream_mean: (f64, f64),
    /// Flagship cluster means (cpu, mem).
    pub flagship_mean: (f64, f64),
    /// Coefficient of variation inside each cluster.
    pub cv: f64,
    /// Correlation-inducing shared factor between cpu and mem (0..1).
    pub axis_correlation: f64,
}

impl Default for CapacityModel {
    fn default() -> Self {
        CapacityModel {
            flagship_fraction: 0.25,
            mainstream_mean: (0.30, 0.32),
            flagship_mean: (0.70, 0.68),
            cv: 0.45,
            axis_correlation: 0.6,
        }
    }
}

impl CapacityModel {
    /// Samples one device profile.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> DeviceProfile {
        let flagship = rng.gen::<f64>() < self.flagship_fraction;
        let (mc, mm) = if flagship {
            self.flagship_mean
        } else {
            self.mainstream_mean
        };
        // A shared log-normal factor correlates the two axes: high-end
        // phones tend to be high-end on both.
        let shared = LogNormal::from_mean_cv(1.0, self.cv * self.axis_correlation).sample(rng);
        let own_cv = self.cv * (1.0 - self.axis_correlation);
        let cpu = (mc * shared * LogNormal::from_mean_cv(1.0, own_cv).sample(rng)).clamp(0.0, 1.0);
        let mem = (mm * shared * LogNormal::from_mean_cv(1.0, own_cv).sample(rng)).clamp(0.0, 1.0);
        let capacity = Capacity::new(cpu, mem);
        // Speed grows super-linearly with the capacity score plus
        // device-specific jitter (thermal limits, background load, OS
        // version...). The steep curve mirrors the paper's premise that
        // low-end devices are the stragglers tier matching removes.
        let jitter = Normal::new(0.0, 0.06).sample(rng);
        let speed = (0.15 + 2.2 * capacity.score().powf(1.6) + jitter).max(0.08);
        DeviceProfile { capacity, speed }
    }

    /// Samples `n` device profiles.
    pub fn sample_population<R: Rng + ?Sized>(&self, n: usize, rng: &mut R) -> Vec<DeviceProfile> {
        (0..n).map(|_| self.sample(rng)).collect()
    }

    /// Samples one device's profile from its own split RNG stream (see
    /// [`crate::stream`]): a pure function of `(seed, device)`, so the
    /// profile is identical whether the device is materialized first,
    /// last, or never-until-hour-40 — touch order cannot affect draws.
    pub fn sample_device(&self, seed: u64, device: usize) -> DeviceProfile {
        self.sample(&mut crate::stream::profile_rng(seed, device))
    }

    /// Fraction of a sampled population in each of the paper's four regions
    /// (General-only, Compute-Rich-only, Memory-Rich-only, High-Perf),
    /// in [`SpecCategory::ALL`] order of the *finest* region.
    pub fn region_fractions(
        population: &[DeviceProfile],
        thresholds: CategoryThresholds,
    ) -> [f64; 4] {
        let mut counts = [0usize; 4];
        for d in population {
            let cat = SpecCategory::of_device(&d.capacity, thresholds);
            let idx = SpecCategory::ALL
                .iter()
                .position(|c| *c == cat)
                .expect("category in ALL");
            counts[idx] += 1;
        }
        let n = population.len().max(1) as f64;
        [
            counts[0] as f64 / n,
            counts[1] as f64 / n,
            counts[2] as f64 / n,
            counts[3] as f64 / n,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn population(n: usize, seed: u64) -> Vec<DeviceProfile> {
        let mut rng = StdRng::seed_from_u64(seed);
        CapacityModel::default().sample_population(n, &mut rng)
    }

    #[test]
    fn capacities_are_in_unit_square() {
        for d in population(2_000, 1) {
            assert!((0.0..=1.0).contains(&d.capacity.cpu()));
            assert!((0.0..=1.0).contains(&d.capacity.mem()));
            assert!(d.speed > 0.0);
        }
    }

    #[test]
    fn all_four_regions_are_populated() {
        let pop = population(5_000, 2);
        let f = CapacityModel::region_fractions(&pop, CategoryThresholds::default());
        for (i, frac) in f.iter().enumerate() {
            assert!(*frac > 0.02, "region {i} underpopulated: {frac}");
        }
        assert!((f.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn high_perf_is_scarcest_general_most_common() {
        let pop = population(10_000, 3);
        let f = CapacityModel::region_fractions(&pop, CategoryThresholds::default());
        // f = [general-only, compute-only, memory-only, high-perf]
        assert!(f[0] > f[3], "general-only should outnumber high-perf");
        assert!(f[0] > 0.3, "most devices are low/mid range: {f:?}");
    }

    #[test]
    fn speed_correlates_with_capacity() {
        let pop = population(5_000, 4);
        let mut high: Vec<f64> = Vec::new();
        let mut low: Vec<f64> = Vec::new();
        for d in pop {
            if d.capacity.score() > 0.6 {
                high.push(d.speed);
            } else if d.capacity.score() < 0.3 {
                low.push(d.speed);
            }
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(mean(&high) > 2.0 * mean(&low));
    }

    #[test]
    fn axes_are_positively_correlated() {
        let pop = population(5_000, 5);
        let mx = pop.iter().map(|d| d.capacity.cpu()).sum::<f64>() / pop.len() as f64;
        let my = pop.iter().map(|d| d.capacity.mem()).sum::<f64>() / pop.len() as f64;
        let cov: f64 = pop
            .iter()
            .map(|d| (d.capacity.cpu() - mx) * (d.capacity.mem() - my))
            .sum::<f64>()
            / pop.len() as f64;
        assert!(cov > 0.0, "covariance should be positive: {cov}");
    }

    #[test]
    fn sampling_is_deterministic() {
        assert_eq!(population(10, 42), population(10, 42));
    }
}
