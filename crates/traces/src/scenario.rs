//! Scenario presets: named (workload × environment) compositions.
//!
//! The paper's evaluation crosses workload slices (§5.1) with one static
//! environment; the `venn-env` subsystem adds environment dynamics as a
//! second axis. A [`ScenarioPreset`] names one point of that product so
//! the sweep harness, CLIs, and CI smoke jobs can iterate "scenarios"
//! without re-deriving the combinations — and so a scenario name in a
//! results file pins both axes at once.

use venn_env::EnvPreset;

use crate::workload::{BiasKind, WorkloadKind};

/// One named (workload kind, bias, environment preset) composition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ScenarioPreset {
    /// Stable scenario name (`<workload>/<env>`), used as row label and
    /// in results metadata.
    pub name: &'static str,
    /// Which slice of the job-demand trace the workload samples.
    pub workload: WorkloadKind,
    /// Optional category bias (Table 4 case study).
    pub bias: Option<BiasKind>,
    /// Environment-dynamics preset.
    pub env: EnvPreset,
}

impl ScenarioPreset {
    /// The baseline scenario plus every environment preset over the
    /// workload slice it stresses most, in sweep order: flash crowds
    /// shake the default mix, stragglers hurt high per-round demand, and
    /// mass dropouts hit large total demand hardest.
    pub const ALL: [ScenarioPreset; 5] = [
        ScenarioPreset {
            name: "even/off",
            workload: WorkloadKind::Even,
            bias: None,
            env: EnvPreset::Off,
        },
        ScenarioPreset {
            name: "even/flash-crowd",
            workload: WorkloadKind::Even,
            bias: None,
            env: EnvPreset::FlashCrowd,
        },
        ScenarioPreset {
            name: "high/straggler-heavy",
            workload: WorkloadKind::High,
            bias: None,
            env: EnvPreset::StragglerHeavy,
        },
        ScenarioPreset {
            name: "large/mass-dropout",
            workload: WorkloadKind::Large,
            bias: None,
            env: EnvPreset::MassDropout,
        },
        ScenarioPreset {
            name: "even/chaos",
            workload: WorkloadKind::Even,
            bias: None,
            env: EnvPreset::Chaos,
        },
    ];

    /// Looks a preset up by its stable name.
    pub fn by_name(name: &str) -> Option<ScenarioPreset> {
        ScenarioPreset::ALL.into_iter().find(|p| p.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_unique_and_resolvable() {
        for p in ScenarioPreset::ALL {
            assert_eq!(ScenarioPreset::by_name(p.name), Some(p));
            let (workload, env) = p.name.split_once('/').expect("name is workload/env");
            assert_eq!(env, p.env.label());
            assert_eq!(workload, p.workload.label().to_lowercase());
        }
        let mut names: Vec<_> = ScenarioPreset::ALL.iter().map(|p| p.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), ScenarioPreset::ALL.len());
    }

    #[test]
    fn every_env_preset_appears() {
        for env in EnvPreset::ALL {
            assert!(
                ScenarioPreset::ALL.iter().any(|p| p.env == env),
                "{env:?} missing from the sweep"
            );
        }
    }
}
