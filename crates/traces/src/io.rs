//! Plain-text (TSV) workload serialization.
//!
//! Lets experiments be frozen to disk and replayed bit-for-bit across
//! machines without a serialization dependency. One job per line:
//!
//! ```text
//! id  arrival_ms  category  rounds  demand  task_ms
//! ```

use std::error::Error;
use std::fmt;
use std::str::FromStr;

use venn_core::{JobId, SimTime, SpecCategory};

use crate::jobs::JobPlan;
use crate::workload::Workload;

/// Error parsing a workload TSV document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseWorkloadError {
    line: usize,
    reason: String,
}

impl ParseWorkloadError {
    fn new(line: usize, reason: impl Into<String>) -> Self {
        ParseWorkloadError {
            line,
            reason: reason.into(),
        }
    }

    /// 1-based line number of the offending record.
    pub fn line(&self) -> usize {
        self.line
    }
}

impl fmt::Display for ParseWorkloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid workload record on line {}: {}",
            self.line, self.reason
        )
    }
}

impl Error for ParseWorkloadError {}

fn category_from_label(label: &str) -> Option<SpecCategory> {
    SpecCategory::ALL
        .iter()
        .copied()
        .find(|c| c.label() == label)
}

/// Renders a workload as TSV (with a `#`-prefixed header line).
pub fn to_tsv(workload: &Workload) -> String {
    let mut out = String::from("#id\tarrival_ms\tcategory\trounds\tdemand\ttask_ms\n");
    for j in &workload.jobs {
        out.push_str(&format!(
            "{}\t{}\t{}\t{}\t{}\t{}\n",
            j.id.as_u64(),
            j.arrival_ms,
            j.category.label(),
            j.rounds,
            j.demand,
            j.task_ms
        ));
    }
    out
}

/// Parses a workload from TSV produced by [`to_tsv`].
///
/// # Errors
///
/// Returns [`ParseWorkloadError`] on malformed lines, unknown categories,
/// or non-numeric fields. Blank lines and `#` comments are skipped.
pub fn from_tsv(text: &str) -> Result<Workload, ParseWorkloadError> {
    let mut jobs = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = line.split('\t').collect();
        if fields.len() != 6 {
            return Err(ParseWorkloadError::new(
                lineno + 1,
                format!("expected 6 fields, got {}", fields.len()),
            ));
        }
        fn num<T: FromStr>(lineno: usize, name: &str, s: &str) -> Result<T, ParseWorkloadError> {
            s.parse()
                .map_err(|_| ParseWorkloadError::new(lineno + 1, format!("bad {name}: {s:?}")))
        }
        let category = category_from_label(fields[2]).ok_or_else(|| {
            ParseWorkloadError::new(lineno + 1, format!("unknown category {:?}", fields[2]))
        })?;
        jobs.push(JobPlan {
            id: JobId::new(num(lineno, "id", fields[0])?),
            arrival_ms: num::<SimTime>(lineno, "arrival_ms", fields[1])?,
            category,
            rounds: num(lineno, "rounds", fields[3])?,
            demand: num(lineno, "demand", fields[4])?,
            task_ms: num(lineno, "task_ms", fields[5])?,
        });
    }
    Ok(Workload { jobs })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn roundtrip_preserves_workload() {
        let mut rng = StdRng::seed_from_u64(3);
        let w = Workload::default_scenario(20, &mut rng);
        let text = to_tsv(&w);
        let back = from_tsv(&text).expect("roundtrip parses");
        assert_eq!(w, back);
    }

    #[test]
    fn comments_and_blanks_are_skipped() {
        let text = "# header\n\n0\t100\tGeneral\t2\t5\t60000\n";
        let w = from_tsv(text).unwrap();
        assert_eq!(w.jobs.len(), 1);
        assert_eq!(w.jobs[0].demand, 5);
    }

    #[test]
    fn bad_field_count_reports_line() {
        let err = from_tsv("0\t1\tGeneral\n").unwrap_err();
        assert_eq!(err.line(), 1);
        assert!(err.to_string().contains("expected 6 fields"));
    }

    #[test]
    fn unknown_category_is_rejected() {
        let err = from_tsv("0\t1\tTuring\t2\t5\t1000\n").unwrap_err();
        assert!(err.to_string().contains("unknown category"));
    }

    #[test]
    fn non_numeric_field_is_rejected() {
        let err = from_tsv("0\tsoon\tGeneral\t2\t5\t1000\n").unwrap_err();
        assert!(err.to_string().contains("bad arrival_ms"));
    }

    #[test]
    fn all_categories_roundtrip() {
        for cat in SpecCategory::ALL {
            assert_eq!(category_from_label(cat.label()), Some(cat));
        }
    }
}
