//! CL job demand sampling (substitute for the Fig. 8b job trace).
//!
//! The paper's job trace spans up to ~4 000 rounds and ~1 500 participants
//! per round; jobs run for days. A faithful reproduction at that absolute
//! scale would take CPU-days per scheduler per workload, so
//! [`JobDemandModel`] samples the same *log-normal marginals scaled down by
//! a constant factor* (documented in `DESIGN.md`): relative comparisons
//! between schedulers — the paper's metric — are preserved because every
//! scheduler sees the identical workload.

use rand::Rng;

use venn_core::{JobId, ResourceSpec, SimTime, SpecCategory};

use crate::dist::LogNormal;

/// One job as consumed by the simulator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JobPlan {
    /// Job identifier.
    pub id: JobId,
    /// Submission time.
    pub arrival_ms: SimTime,
    /// Device-requirement category (maps to a [`ResourceSpec`]).
    pub category: SpecCategory,
    /// Number of training rounds.
    pub rounds: u32,
    /// Participants required per round.
    pub demand: u32,
    /// Base on-device task cost in milliseconds (divided by device speed).
    pub task_ms: u64,
}

impl JobPlan {
    /// Total demand over the job's lifetime, in device-rounds — the measure
    /// behind the Small/Large workload split and SRSF's priority.
    pub fn total_demand(&self) -> u64 {
        self.rounds as u64 * self.demand as u64
    }

    /// The concrete [`ResourceSpec`] of this job under `thresholds`.
    pub fn spec(&self, thresholds: venn_core::CategoryThresholds) -> ResourceSpec {
        self.category.spec(thresholds)
    }
}

/// Sampler of per-job (rounds, demand, task cost) triples.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JobDemandModel {
    /// Mean number of rounds.
    pub rounds_mean: f64,
    /// Coefficient of variation of rounds.
    pub rounds_cv: f64,
    /// Inclusive cap on rounds.
    pub rounds_max: u32,
    /// Mean per-round demand (participants).
    pub demand_mean: f64,
    /// Coefficient of variation of demand.
    pub demand_cv: f64,
    /// Inclusive cap on per-round demand.
    pub demand_max: u32,
    /// Mean base task cost in milliseconds.
    pub task_ms_mean: f64,
    /// Coefficient of variation of task cost.
    pub task_ms_cv: f64,
}

impl Default for JobDemandModel {
    fn default() -> Self {
        // Fig. 8b marginals scaled down ~66× on rounds and ~15× on demand
        // so a 50-job workload simulates in seconds. The demand cap keeps
        // the demand-to-online-population ratio in the same regime as the
        // paper's trace (~1-3 % of the online pool per round).
        JobDemandModel {
            rounds_mean: 6.0,
            rounds_cv: 1.0,
            rounds_max: 30,
            demand_mean: 12.0,
            demand_cv: 1.0,
            demand_max: 40,
            task_ms_mean: 120_000.0,
            task_ms_cv: 0.4,
        }
    }
}

impl JobDemandModel {
    /// Samples (rounds, demand, task cost) for one job.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> (u32, u32, u64) {
        let rounds = LogNormal::from_mean_cv(self.rounds_mean, self.rounds_cv)
            .sample(rng)
            .round()
            .clamp(1.0, self.rounds_max as f64) as u32;
        let demand = LogNormal::from_mean_cv(self.demand_mean, self.demand_cv)
            .sample(rng)
            .round()
            .clamp(1.0, self.demand_max as f64) as u32;
        let task_ms = LogNormal::from_mean_cv(self.task_ms_mean, self.task_ms_cv)
            .sample(rng)
            .max(1_000.0) as u64;
        (rounds, demand, task_ms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn samples_respect_caps() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = JobDemandModel::default();
        for _ in 0..2_000 {
            let (r, d, t) = m.sample(&mut rng);
            assert!((1..=m.rounds_max).contains(&r));
            assert!((1..=m.demand_max).contains(&d));
            assert!(t >= 1_000);
        }
    }

    #[test]
    fn marginals_are_heavy_tailed() {
        let mut rng = StdRng::seed_from_u64(2);
        let m = JobDemandModel::default();
        let demands: Vec<u32> = (0..5_000).map(|_| m.sample(&mut rng).1).collect();
        let mean = demands.iter().map(|&d| d as f64).sum::<f64>() / demands.len() as f64;
        let mut sorted = demands.clone();
        sorted.sort_unstable();
        let median = sorted[sorted.len() / 2] as f64;
        assert!(mean > median, "log-normal: mean {mean} > median {median}");
    }

    #[test]
    fn total_demand_multiplies() {
        let plan = JobPlan {
            id: JobId::new(1),
            arrival_ms: 0,
            category: SpecCategory::General,
            rounds: 10,
            demand: 25,
            task_ms: 1_000,
        };
        assert_eq!(plan.total_demand(), 250);
    }

    #[test]
    fn spec_follows_category() {
        let th = venn_core::CategoryThresholds::default();
        let plan = JobPlan {
            id: JobId::new(1),
            arrival_ms: 0,
            category: SpecCategory::HighPerf,
            rounds: 1,
            demand: 1,
            task_ms: 1,
        };
        assert_eq!(plan.spec(th), ResourceSpec::new(0.5, 0.5));
    }

    #[test]
    fn sampling_is_deterministic() {
        let m = JobDemandModel::default();
        let a: Vec<_> = {
            let mut rng = StdRng::seed_from_u64(5);
            (0..10).map(|_| m.sample(&mut rng)).collect()
        };
        let b: Vec<_> = {
            let mut rng = StdRng::seed_from_u64(5);
            (0..10).map(|_| m.sample(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }
}
