//! Per-device RNG stream splitting.
//!
//! The eager world draws every device's profile and sessions from one
//! sequential RNG, which forces O(population) work and memory before the
//! first event fires. The streamed world instead derives an independent
//! generator for each `(seed, purpose, device[, day])` tuple, so any
//! device's draws can be reproduced *on demand*, in any order, at any
//! time — a device materialized at hour 40 of the run gets byte-identical
//! state to one materialized at hour 2, because the stream is a pure
//! function of the key, never of touch order.
//!
//! The construction mirrors `venn-env`'s split streams (a salted
//! SplitMix/Murmur-style finalizer over the run seed) but uses distinct
//! salts, so environment dynamics and device generation can never collide
//! even under the same run seed.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Salt of the per-device capacity-profile stream.
const PROFILE_SALT: u64 = 0x9D3F_7A11_C0DE_D00D;
/// Salt of the per-(device, day) availability-session stream.
const SESSION_SALT: u64 = 0x51E5_510E_5EED_CAFE;

/// Murmur3-style 64-bit finalizer: full avalanche, so adjacent device
/// ids land in unrelated seed neighborhoods.
#[inline]
fn mix(mut h: u64) -> u64 {
    h ^= h >> 33;
    h = h.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    h ^= h >> 33;
    h = h.wrapping_mul(0xC4CE_B9FE_1A85_EC53);
    h ^= h >> 33;
    h
}

/// Derives a child seed from `(seed, salt, a, b)`. Each input is mixed in
/// through a full-avalanche round, so streams keyed by different tuples
/// are independent for all practical purposes.
#[inline]
pub fn split_seed(seed: u64, salt: u64, a: u64, b: u64) -> u64 {
    mix(mix(mix(seed ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15)) ^ a) ^ b)
}

/// The capacity-profile generator of one device: a pure function of
/// `(seed, device)` — identical no matter when (or whether) any other
/// device was generated.
#[inline]
pub fn profile_rng(seed: u64, device: usize) -> StdRng {
    StdRng::seed_from_u64(split_seed(seed, PROFILE_SALT, device as u64, 0))
}

/// The availability-session generator of one device on one day. Keying by
/// `(device, day)` keeps regeneration O(sessions-in-day): a cursor that
/// resumes mid-horizon replays one day block, never the whole trace.
#[inline]
pub fn session_rng(seed: u64, device: usize, day: u64) -> StdRng {
    StdRng::seed_from_u64(split_seed(seed, SESSION_SALT, device as u64, day))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn streams_are_pure_functions_of_their_key() {
        for device in [0usize, 1, 999_999] {
            let a: Vec<u64> = (0..8)
                .map({
                    let mut r = profile_rng(42, device);
                    move |_| r.gen()
                })
                .collect();
            let b: Vec<u64> = (0..8)
                .map({
                    let mut r = profile_rng(42, device);
                    move |_| r.gen()
                })
                .collect();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn distinct_keys_give_distinct_streams() {
        let draw = |mut r: StdRng| -> Vec<u64> { (0..4).map(|_| r.gen()).collect() };
        assert_ne!(draw(profile_rng(42, 0)), draw(profile_rng(42, 1)));
        assert_ne!(draw(profile_rng(42, 0)), draw(profile_rng(43, 0)));
        assert_ne!(draw(profile_rng(42, 7)), draw(session_rng(42, 7, 0)));
        assert_ne!(draw(session_rng(42, 7, 0)), draw(session_rng(42, 7, 1)));
    }

    #[test]
    fn adjacent_devices_are_uncorrelated_in_the_low_bits() {
        // A weak split (e.g. seed + device) would give neighboring devices
        // nearly identical first draws; the finalizer must not.
        let firsts: Vec<u64> = (0..64).map(|d| profile_rng(1, d).gen::<u64>()).collect();
        let mut sorted = firsts.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), firsts.len(), "collisions in first draws");
    }
}
