//! Workload scenario builders (paper §5.1).
//!
//! The evaluation samples jobs from the demand trace five ways — **Even**
//! (all jobs), **Small**/**Large** (below/above-average *total* demand),
//! **Low**/**High** (below/above-average *per-round* demand) — and, for the
//! Table 4 case study, biases the device-requirement mix toward one
//! category. Jobs arrive by a Poisson process with 30-minute mean
//! inter-arrival.

use rand::Rng;

use venn_core::{JobId, SimTime, SpecCategory, MINUTE_MS};

use crate::dist::Exponential;
use crate::jobs::{JobDemandModel, JobPlan};

/// Which slice of the job-demand trace a workload samples (paper §5.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WorkloadKind {
    /// Sampled from all jobs (the default trace).
    Even,
    /// Only jobs with below-average total demand.
    Small,
    /// Only jobs with above-average total demand.
    Large,
    /// Only jobs with below-average demand per round.
    Low,
    /// Only jobs with above-average demand per round.
    High,
}

impl WorkloadKind {
    /// All five scenarios in the paper's table order.
    pub const ALL: [WorkloadKind; 5] = [
        WorkloadKind::Even,
        WorkloadKind::Small,
        WorkloadKind::Large,
        WorkloadKind::Low,
        WorkloadKind::High,
    ];

    /// Row label used in experiment tables.
    pub fn label(&self) -> &'static str {
        match self {
            WorkloadKind::Even => "Even",
            WorkloadKind::Small => "Small",
            WorkloadKind::Large => "Large",
            WorkloadKind::Low => "Low",
            WorkloadKind::High => "High",
        }
    }
}

/// Resource-requirement bias for the Table 4 case study: half the jobs ask
/// for the named category, the rest spread evenly over the other three.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BiasKind {
    /// Half the jobs want General resources.
    General,
    /// Half the jobs want Compute-Rich resources.
    ComputeHeavy,
    /// Half the jobs want Memory-Rich resources.
    MemoryHeavy,
    /// Half the jobs want High-Performance resources.
    ResourceHeavy,
}

impl BiasKind {
    /// All four biased scenarios in the paper's table order.
    pub const ALL: [BiasKind; 4] = [
        BiasKind::General,
        BiasKind::ComputeHeavy,
        BiasKind::MemoryHeavy,
        BiasKind::ResourceHeavy,
    ];

    /// Row label used in experiment tables.
    pub fn label(&self) -> &'static str {
        match self {
            BiasKind::General => "General",
            BiasKind::ComputeHeavy => "Compute-heavy",
            BiasKind::MemoryHeavy => "Memory-heavy",
            BiasKind::ResourceHeavy => "Resource-heavy",
        }
    }

    fn favored(&self) -> SpecCategory {
        match self {
            BiasKind::General => SpecCategory::General,
            BiasKind::ComputeHeavy => SpecCategory::ComputeRich,
            BiasKind::MemoryHeavy => SpecCategory::MemoryRich,
            BiasKind::ResourceHeavy => SpecCategory::HighPerf,
        }
    }
}

/// A generated workload: the job list handed to the simulator.
#[derive(Debug, Clone, PartialEq)]
pub struct Workload {
    /// Jobs sorted by arrival time.
    pub jobs: Vec<JobPlan>,
}

impl Workload {
    /// Generates `num_jobs` jobs of the given `kind`, with optional
    /// category `bias`, Poisson arrivals at `mean_interarrival_ms`, sampling
    /// demands from `model`.
    ///
    /// # Panics
    ///
    /// Panics if `num_jobs == 0` or `mean_interarrival_ms <= 0`.
    pub fn generate<R: Rng + ?Sized>(
        kind: WorkloadKind,
        bias: Option<BiasKind>,
        num_jobs: usize,
        model: &JobDemandModel,
        mean_interarrival_ms: f64,
        rng: &mut R,
    ) -> Workload {
        assert!(num_jobs > 0, "workload needs at least one job");
        assert!(mean_interarrival_ms > 0.0, "inter-arrival must be positive");

        // Estimate the trace averages from a large candidate pool, then
        // rejection-sample the requested slice — mirroring "uniformly
        // sampled only from jobs with below-average ..." in §5.1.
        let pool: Vec<(u32, u32, u64)> = (0..2_000).map(|_| model.sample(rng)).collect();
        let avg_total: f64 = pool
            .iter()
            .map(|(r, d, _)| *r as f64 * *d as f64)
            .sum::<f64>()
            / pool.len() as f64;
        let avg_demand: f64 =
            pool.iter().map(|(_, d, _)| *d as f64).sum::<f64>() / pool.len() as f64;

        let accepts = |r: u32, d: u32| -> bool {
            let total = r as f64 * d as f64;
            match kind {
                WorkloadKind::Even => true,
                WorkloadKind::Small => total <= avg_total,
                WorkloadKind::Large => total > avg_total,
                WorkloadKind::Low => (d as f64) <= avg_demand,
                WorkloadKind::High => (d as f64) > avg_demand,
            }
        };

        let interarrival = Exponential::from_mean(mean_interarrival_ms);
        let mut jobs = Vec::with_capacity(num_jobs);
        let mut arrival = 0.0f64;
        for i in 0..num_jobs {
            let (rounds, demand, task_ms) = loop {
                let s = model.sample(rng);
                if accepts(s.0, s.1) {
                    break s;
                }
            };
            let category = sample_category(bias, rng);
            arrival += interarrival.sample(rng);
            jobs.push(JobPlan {
                id: JobId::new(i as u64),
                arrival_ms: arrival as SimTime,
                category,
                rounds,
                demand,
                task_ms,
            });
        }
        Workload { jobs }
    }

    /// Convenience: the paper's default scenario (Even, unbiased, 30-minute
    /// Poisson arrivals).
    pub fn default_scenario<R: Rng + ?Sized>(num_jobs: usize, rng: &mut R) -> Workload {
        Workload::generate(
            WorkloadKind::Even,
            None,
            num_jobs,
            &JobDemandModel::default(),
            30.0 * MINUTE_MS as f64,
            rng,
        )
    }

    /// Total demand of the workload in device-rounds.
    pub fn total_demand(&self) -> u64 {
        self.jobs.iter().map(|j| j.total_demand()).sum()
    }

    /// Number of jobs per category, in [`SpecCategory::ALL`] order.
    pub fn category_counts(&self) -> [usize; 4] {
        let mut counts = [0usize; 4];
        for j in &self.jobs {
            let idx = SpecCategory::ALL
                .iter()
                .position(|c| *c == j.category)
                .expect("category in ALL");
            counts[idx] += 1;
        }
        counts
    }
}

fn sample_category<R: Rng + ?Sized>(bias: Option<BiasKind>, rng: &mut R) -> SpecCategory {
    match bias {
        None => SpecCategory::ALL[rng.gen_range(0..4usize)],
        Some(b) => {
            let favored = b.favored();
            if rng.gen::<f64>() < 0.5 {
                favored
            } else {
                let others: Vec<SpecCategory> = SpecCategory::ALL
                    .iter()
                    .copied()
                    .filter(|c| *c != favored)
                    .collect();
                others[rng.gen_range(0..others.len())]
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn gen(kind: WorkloadKind, bias: Option<BiasKind>, n: usize, seed: u64) -> Workload {
        let mut rng = StdRng::seed_from_u64(seed);
        Workload::generate(
            kind,
            bias,
            n,
            &JobDemandModel::default(),
            30.0 * MINUTE_MS as f64,
            &mut rng,
        )
    }

    #[test]
    fn arrivals_are_increasing_and_poisson_scaled() {
        let w = gen(WorkloadKind::Even, None, 50, 1);
        assert_eq!(w.jobs.len(), 50);
        assert!(w
            .jobs
            .windows(2)
            .all(|p| p[0].arrival_ms <= p[1].arrival_ms));
        let span = w.jobs.last().unwrap().arrival_ms as f64;
        let expected = 50.0 * 30.0 * MINUTE_MS as f64;
        assert!(
            span > expected * 0.5 && span < expected * 2.0,
            "span {span}"
        );
    }

    #[test]
    fn small_and_large_partition_around_average() {
        let small = gen(WorkloadKind::Small, None, 200, 2);
        let large = gen(WorkloadKind::Large, None, 200, 2);
        let avg_small = small.total_demand() as f64 / 200.0;
        let avg_large = large.total_demand() as f64 / 200.0;
        assert!(
            avg_large > 3.0 * avg_small,
            "large ({avg_large}) should dwarf small ({avg_small})"
        );
    }

    #[test]
    fn low_and_high_split_per_round_demand() {
        let low = gen(WorkloadKind::Low, None, 200, 3);
        let high = gen(WorkloadKind::High, None, 200, 3);
        let mean_d = |w: &Workload| {
            w.jobs.iter().map(|j| j.demand as f64).sum::<f64>() / w.jobs.len() as f64
        };
        assert!(mean_d(&high) > 2.0 * mean_d(&low));
    }

    #[test]
    fn unbiased_categories_are_roughly_uniform() {
        let w = gen(WorkloadKind::Even, None, 1_000, 4);
        for count in w.category_counts() {
            assert!((150..=350).contains(&count), "count {count}");
        }
    }

    #[test]
    fn bias_puts_half_on_favored_category() {
        let w = gen(WorkloadKind::Even, Some(BiasKind::ComputeHeavy), 1_000, 5);
        let counts = w.category_counts();
        let compute_idx = SpecCategory::ALL
            .iter()
            .position(|c| *c == SpecCategory::ComputeRich)
            .unwrap();
        assert!(
            (400..=600).contains(&counts[compute_idx]),
            "favored {counts:?}"
        );
        for (i, c) in counts.iter().enumerate() {
            if i != compute_idx {
                assert!((100..=250).contains(c), "others {counts:?}");
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(
            gen(WorkloadKind::High, Some(BiasKind::General), 30, 9),
            gen(WorkloadKind::High, Some(BiasKind::General), 30, 9)
        );
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(WorkloadKind::Even.label(), "Even");
        assert_eq!(BiasKind::ResourceHeavy.label(), "Resource-heavy");
        assert_eq!(WorkloadKind::ALL.len(), 5);
        assert_eq!(BiasKind::ALL.len(), 4);
    }

    #[test]
    #[should_panic(expected = "at least one job")]
    fn empty_workload_panics() {
        gen(WorkloadKind::Even, None, 0, 1);
    }
}
