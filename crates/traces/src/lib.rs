//! Synthetic trace generation for the Venn evaluation.
//!
//! The paper drives its event-driven simulation with three real data
//! sources none of which can ship with a reproduction:
//!
//! | Paper source | Module here |
//! |---|---|
//! | FedScale client-availability trace (diurnal, Fig. 2a) | [`availability`] |
//! | AI-Benchmark device capacities (Fig. 2b / 8a) | [`capacity`] |
//! | Production CL job demands (Fig. 8b) | [`jobs`] + [`workload`] |
//!
//! Each module is a calibrated synthetic equivalent: the scheduler only
//! observes check-in event streams, capacity distributions, and
//! (rounds, demand) marginals, so generators matched to the published
//! figures exercise the exact same code paths (see `DESIGN.md` for the
//! substitution argument).
//!
//! Everything samples from caller-provided [`rand::Rng`] state, and all the
//! classical distributions (normal, log-normal, exponential, Poisson) are
//! implemented in [`dist`] on top of uniform draws — no extra dependencies.

pub mod availability;
pub mod capacity;
pub mod dist;
pub mod io;
pub mod jobs;
pub mod scenario;
pub mod stream;
pub mod workload;

pub use availability::{AvailabilityModel, Session};
pub use capacity::{CapacityModel, DeviceProfile};
pub use jobs::{JobDemandModel, JobPlan};
pub use scenario::ScenarioPreset;
pub use workload::{BiasKind, Workload, WorkloadKind};
