//! Configuration of the Venn scheduler.

use crate::{SimTime, DAY_MS};

/// Tunables of [`VennScheduler`](crate::VennScheduler).
///
/// The defaults reproduce the paper's evaluation setup; the toggles exist
/// for the Fig. 11 ablation (`use_irs` / `use_matching`) and the Fig. 13/14
/// sweeps (`tiers` / `epsilon`).
///
/// # Examples
///
/// ```
/// use venn_core::VennConfig;
///
/// let sched_only = VennConfig {
///     use_matching: false,
///     ..VennConfig::default()
/// };
/// assert!(sched_only.use_irs);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VennConfig {
    /// Fairness knob ε (§4.4). `0.0` disables starvation prevention.
    pub epsilon: f64,
    /// Number of device tiers `V` for Algorithm 2. `1` disables tiering.
    pub tiers: usize,
    /// Enable the IRS job-ordering algorithm (Algorithm 1). When `false`
    /// jobs are served FIFO — the paper's "Venn w/o sched" ablation arm.
    pub use_irs: bool,
    /// Enable Algorithm 1's greedy cross-group reallocation (lines 10-23).
    /// When `false`, groups keep their scarcest-first seeding — a design
    /// ablation isolating the value of the queue-ratio steal step.
    pub use_steal: bool,
    /// Enable tier-based matching (Algorithm 2). When `false` this is the
    /// paper's "Venn w/o match" ablation arm.
    pub use_matching: bool,
    /// Sliding window for supply estimation; the paper averages over 24 h.
    pub supply_window_ms: SimTime,
    /// Periodic plan refresh between job arrival/completion triggers, so
    /// the plan tracks diurnal supply drift.
    pub rebuild_interval_ms: SimTime,
    /// Minimum profiled responses before a job may be tier-restricted.
    pub min_profile_samples: usize,
    /// Seed for the rotating random tier pick.
    pub seed: u64,
    /// Maintain job orders and the IRS plan incrementally (dirty-flag per
    /// group) instead of recomputing everything at every trigger. Both
    /// modes produce byte-identical assignment streams — `false` exists as
    /// the reference arm of the parity harness
    /// (`tests/venn_incremental_parity.rs`) and for overhead benchmarking.
    pub incremental: bool,
}

impl Default for VennConfig {
    fn default() -> Self {
        VennConfig {
            epsilon: 0.0,
            tiers: 3,
            use_irs: true,
            use_steal: true,
            use_matching: true,
            supply_window_ms: DAY_MS,
            rebuild_interval_ms: 60_000,
            min_profile_samples: 10,
            seed: 0xC0FFEE,
            incremental: true,
        }
    }
}

impl VennConfig {
    /// The "Venn w/o match" ablation arm: IRS only.
    pub fn scheduling_only() -> Self {
        VennConfig {
            use_matching: false,
            ..VennConfig::default()
        }
    }

    /// The "Venn w/o sched" ablation arm: FIFO order + tier matching.
    pub fn matching_only() -> Self {
        VennConfig {
            use_irs: false,
            ..VennConfig::default()
        }
    }

    /// Full Venn with the starvation-prevention knob set to `epsilon`.
    pub fn with_fairness(epsilon: f64) -> Self {
        VennConfig {
            epsilon,
            ..VennConfig::default()
        }
    }

    /// Full Venn with incremental maintenance off: every trigger recomputes
    /// all job orders and the IRS plan from scratch. The reference arm the
    /// parity tests compare incremental scheduling against.
    pub fn full_rebuild() -> Self {
        VennConfig {
            incremental: false,
            ..VennConfig::default()
        }
    }

    /// Validates invariants; called by the scheduler constructor.
    ///
    /// # Panics
    ///
    /// Panics if `tiers == 0`, ε is negative/non-finite, or a window is 0.
    pub fn validate(&self) {
        assert!(self.tiers > 0, "tier count must be positive");
        assert!(
            self.epsilon.is_finite() && self.epsilon >= 0.0,
            "epsilon must be finite and non-negative"
        );
        assert!(self.supply_window_ms > 0, "supply window must be positive");
        assert!(
            self.rebuild_interval_ms > 0,
            "rebuild interval must be positive"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_setup() {
        let c = VennConfig::default();
        assert_eq!(c.epsilon, 0.0);
        assert!(c.use_irs && c.use_matching);
        assert_eq!(c.supply_window_ms, DAY_MS);
        c.validate();
    }

    #[test]
    fn ablation_arms() {
        assert!(!VennConfig::scheduling_only().use_matching);
        assert!(VennConfig::scheduling_only().use_irs);
        assert!(!VennConfig::matching_only().use_irs);
        assert!(VennConfig::matching_only().use_matching);
        assert_eq!(VennConfig::with_fairness(2.0).epsilon, 2.0);
    }

    #[test]
    fn full_rebuild_arm_disables_incremental_maintenance() {
        assert!(VennConfig::default().incremental);
        let c = VennConfig::full_rebuild();
        assert!(!c.incremental);
        c.validate();
    }

    #[test]
    #[should_panic(expected = "tier count")]
    fn zero_tiers_rejected() {
        VennConfig {
            tiers: 0,
            ..VennConfig::default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "epsilon")]
    fn negative_epsilon_rejected() {
        VennConfig {
            epsilon: -1.0,
            ..VennConfig::default()
        }
        .validate();
    }
}
