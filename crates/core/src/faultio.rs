//! Deterministic I/O fault injection: the [`SimFs`] boundary.
//!
//! Every durable side effect in the workspace — checkpoint files, the
//! serve journal, CSV/TSV/JSON exports — goes through one narrow trait,
//! [`SimFs`], instead of calling `std::fs` directly. That buys two
//! things:
//!
//! 1. **A real backend** ([`RealFs`]) that is a thin passthrough to the
//!    operating system, plus an **in-memory backend** ([`MemFs`]) whose
//!    contents are plain byte maps — so durability tests can inspect
//!    exactly what "disk" holds after any sequence of operations without
//!    touching a real filesystem.
//! 2. **A fault-injecting decorator** ([`FaultFs`]) that wraps either
//!    backend and injects ENOSPC, EIO, torn writes at byte *k*,
//!    crash-after-write, and crash-before-rename — driven by an explicit
//!    script of [`FaultRule`]s or by its own seeded RNG stream. Recovery
//!    paths become *exhaustively* testable: instead of hoping a `kill -9`
//!    lands in the window of interest, a test states the window.
//!
//! The failure model mirrors what POSIX actually promises. A torn write
//! leaves a **prefix** of the payload; a crash freezes the backend state
//! at the instant of the fault (subsequent operations fail with
//! [`FioError::Crashed`] and the test inspects the survivor state to
//! drive recovery); `rename` within a directory is atomic — it either
//! happened or it did not, never half.
//!
//! Errors are typed ([`FioError`]), never panics: callers either retry,
//! degrade, or surface the error — the standing bar is that no fault
//! reachable through this trait may take down a run with anything other
//! than a typed error.

use std::collections::BTreeMap;
use std::fmt;
use std::io::Write as _;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Typed failure from a [`SimFs`] operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FioError {
    /// The backing store is out of space (ENOSPC). At most a prefix of
    /// the payload reached the store.
    NoSpace {
        /// Path of the failed operation.
        path: String,
    },
    /// A device-level I/O failure (EIO), or a real-OS error surfaced
    /// through [`RealFs`]. At most a prefix of the payload reached the
    /// store.
    Io {
        /// Path of the failed operation.
        path: String,
        /// Backend diagnostic.
        msg: String,
    },
    /// The path does not exist.
    NotFound {
        /// Path of the failed operation.
        path: String,
    },
    /// The simulated process crashed at an injected fault point; the
    /// backend is frozen and every further operation fails with this.
    Crashed,
}

impl FioError {
    /// Whether retrying the operation could plausibly succeed —
    /// ENOSPC and EIO are transient in real deployments (space freed,
    /// controller recovers); a crash is not.
    pub fn is_transient(&self) -> bool {
        matches!(self, FioError::NoSpace { .. } | FioError::Io { .. })
    }
}

impl fmt::Display for FioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FioError::NoSpace { path } => write!(f, "{path}: no space left on device"),
            FioError::Io { path, msg } => write!(f, "{path}: I/O error: {msg}"),
            FioError::NotFound { path } => write!(f, "{path}: not found"),
            FioError::Crashed => write!(f, "simulated crash: filesystem frozen"),
        }
    }
}

impl std::error::Error for FioError {}

/// The durable-write boundary: every operation the workspace performs
/// against a filesystem, and nothing more.
///
/// Paths are plain strings (the workspace never needs non-UTF-8 paths);
/// directories are created explicitly; `list` returns *file names* (not
/// full paths) in sorted order so iteration is deterministic on every
/// backend.
pub trait SimFs {
    /// Creates or truncates `path` and writes `bytes` to it.
    fn write(&mut self, path: &str, bytes: &[u8]) -> Result<(), FioError>;

    /// Appends `bytes` to `path`, creating it if absent.
    fn append(&mut self, path: &str, bytes: &[u8]) -> Result<(), FioError>;

    /// Durably flushes `path` (fsync). A no-op on [`MemFs`].
    fn sync(&mut self, path: &str) -> Result<(), FioError>;

    /// Atomically renames `from` to `to` (same directory).
    fn rename(&mut self, from: &str, to: &str) -> Result<(), FioError>;

    /// Removes the file at `path`.
    fn remove(&mut self, path: &str) -> Result<(), FioError>;

    /// Reads the full contents of `path`.
    fn read(&mut self, path: &str) -> Result<Vec<u8>, FioError>;

    /// Whether a file exists at `path`.
    fn exists(&mut self, path: &str) -> bool;

    /// File names directly under `dir`, sorted.
    fn list(&mut self, dir: &str) -> Result<Vec<String>, FioError>;

    /// Creates `dir` and any missing parents.
    fn create_dir_all(&mut self, dir: &str) -> Result<(), FioError>;

    /// The atomic-publish idiom every durable artifact uses: write the
    /// payload to `<path>.tmp`, fsync it, then rename over `path`. A
    /// crash at any interior point leaves either the old file, or the
    /// old file plus a stale `.tmp` — never a torn file under the real
    /// name.
    fn write_atomic(&mut self, path: &str, bytes: &[u8]) -> Result<(), FioError> {
        let tmp = format!("{path}.tmp");
        self.write(&tmp, bytes)?;
        self.sync(&tmp)?;
        self.rename(&tmp, path)
    }
}

/// Which [`SimFs`] operation a [`FaultRule`] targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FioOp {
    /// [`SimFs::write`]
    Write,
    /// [`SimFs::append`]
    Append,
    /// [`SimFs::sync`]
    Sync,
    /// [`SimFs::rename`]
    Rename,
    /// [`SimFs::remove`]
    Remove,
    /// [`SimFs::read`]
    Read,
}

/// What an injected fault does to the targeted operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Fault {
    /// Fail with [`FioError::NoSpace`]; nothing is written.
    NoSpace,
    /// Fail with [`FioError::Io`]; nothing is written.
    Io,
    /// A torn write: only the first `keep` bytes of the payload reach
    /// the store, then the operation fails with [`FioError::Io`]. On
    /// non-payload operations this degrades to plain [`Fault::Io`].
    Torn {
        /// Bytes of the payload that survive.
        keep: usize,
    },
    /// Perform the operation fully, then crash — later operations fail
    /// with [`FioError::Crashed`]. Models power loss just after a write
    /// (e.g. before the rename that would publish it).
    CrashAfter,
    /// Crash without touching anything. Models power loss just before
    /// the operation.
    CrashBefore,
}

/// One scripted fault: fires on the `countdown`-th matching operation
/// (0 = the next one), then retires.
#[derive(Debug, Clone)]
pub struct FaultRule {
    /// Operation kind to match.
    pub op: FioOp,
    /// Substring the path must contain (empty matches everything).
    pub path_contains: String,
    /// Matching operations to let through before firing.
    pub countdown: usize,
    /// The fault to inject.
    pub fault: Fault,
}

impl FaultRule {
    /// A rule firing on the next `op` whose path contains `path`.
    pub fn on(op: FioOp, path: &str, fault: Fault) -> Self {
        FaultRule {
            op,
            path_contains: path.to_string(),
            countdown: 0,
            fault,
        }
    }

    /// Same, but lets `skip` matching operations through first.
    pub fn after(op: FioOp, path: &str, skip: usize, fault: Fault) -> Self {
        FaultRule {
            countdown: skip,
            ..FaultRule::on(op, path, fault)
        }
    }
}

/// The real filesystem: a thin passthrough to `std::fs`. OS errors are
/// mapped onto the typed [`FioError`] surface (`ENOSPC` is recognized by
/// its `ErrorKind` where the platform reports it, everything else is
/// [`FioError::Io`]).
#[derive(Debug, Default)]
pub struct RealFs;

impl RealFs {
    fn map(path: &str, e: std::io::Error) -> FioError {
        match e.kind() {
            std::io::ErrorKind::NotFound => FioError::NotFound {
                path: path.to_string(),
            },
            // `StorageFull` is unstable on older toolchains; match the
            // raw errno instead so ENOSPC keeps its typed identity.
            _ if e.raw_os_error() == Some(28) => FioError::NoSpace {
                path: path.to_string(),
            },
            _ => FioError::Io {
                path: path.to_string(),
                msg: e.to_string(),
            },
        }
    }
}

impl SimFs for RealFs {
    fn write(&mut self, path: &str, bytes: &[u8]) -> Result<(), FioError> {
        std::fs::write(path, bytes).map_err(|e| Self::map(path, e))
    }

    fn append(&mut self, path: &str, bytes: &[u8]) -> Result<(), FioError> {
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .map_err(|e| Self::map(path, e))?;
        f.write_all(bytes).map_err(|e| Self::map(path, e))
    }

    fn sync(&mut self, path: &str) -> Result<(), FioError> {
        let f = std::fs::OpenOptions::new()
            .read(true)
            .open(path)
            .map_err(|e| Self::map(path, e))?;
        f.sync_all().map_err(|e| Self::map(path, e))
    }

    fn rename(&mut self, from: &str, to: &str) -> Result<(), FioError> {
        std::fs::rename(from, to).map_err(|e| Self::map(from, e))
    }

    fn remove(&mut self, path: &str) -> Result<(), FioError> {
        std::fs::remove_file(path).map_err(|e| Self::map(path, e))
    }

    fn read(&mut self, path: &str) -> Result<Vec<u8>, FioError> {
        std::fs::read(path).map_err(|e| Self::map(path, e))
    }

    fn exists(&mut self, path: &str) -> bool {
        std::path::Path::new(path).exists()
    }

    fn list(&mut self, dir: &str) -> Result<Vec<String>, FioError> {
        let mut out = Vec::new();
        for entry in std::fs::read_dir(dir).map_err(|e| Self::map(dir, e))? {
            let entry = entry.map_err(|e| Self::map(dir, e))?;
            if let Some(name) = entry.file_name().to_str() {
                out.push(name.to_string());
            }
        }
        out.sort();
        Ok(out)
    }

    fn create_dir_all(&mut self, dir: &str) -> Result<(), FioError> {
        std::fs::create_dir_all(dir).map_err(|e| Self::map(dir, e))
    }
}

/// An in-memory filesystem: files are byte vectors in a sorted map.
/// Deterministic, inspectable, and the natural inner backend for
/// [`FaultFs`]-driven durability tests.
#[derive(Debug, Default, Clone)]
pub struct MemFs {
    files: BTreeMap<String, Vec<u8>>,
}

impl MemFs {
    /// An empty in-memory filesystem.
    pub fn new() -> Self {
        MemFs::default()
    }

    /// Direct read access to a file's bytes, for assertions.
    pub fn get(&self, path: &str) -> Option<&[u8]> {
        self.files.get(path).map(Vec::as_slice)
    }

    /// All `(path, size)` pairs, for assertions.
    pub fn paths(&self) -> Vec<(String, usize)> {
        self.files
            .iter()
            .map(|(p, b)| (p.clone(), b.len()))
            .collect()
    }
}

impl SimFs for MemFs {
    fn write(&mut self, path: &str, bytes: &[u8]) -> Result<(), FioError> {
        self.files.insert(path.to_string(), bytes.to_vec());
        Ok(())
    }

    fn append(&mut self, path: &str, bytes: &[u8]) -> Result<(), FioError> {
        self.files
            .entry(path.to_string())
            .or_default()
            .extend_from_slice(bytes);
        Ok(())
    }

    fn sync(&mut self, _path: &str) -> Result<(), FioError> {
        Ok(())
    }

    fn rename(&mut self, from: &str, to: &str) -> Result<(), FioError> {
        match self.files.remove(from) {
            Some(bytes) => {
                self.files.insert(to.to_string(), bytes);
                Ok(())
            }
            None => Err(FioError::NotFound {
                path: from.to_string(),
            }),
        }
    }

    fn remove(&mut self, path: &str) -> Result<(), FioError> {
        self.files
            .remove(path)
            .map(|_| ())
            .ok_or(FioError::NotFound {
                path: path.to_string(),
            })
    }

    fn read(&mut self, path: &str) -> Result<Vec<u8>, FioError> {
        self.files.get(path).cloned().ok_or(FioError::NotFound {
            path: path.to_string(),
        })
    }

    fn exists(&mut self, path: &str) -> bool {
        self.files.contains_key(path)
    }

    fn list(&mut self, dir: &str) -> Result<Vec<String>, FioError> {
        let prefix = if dir.ends_with('/') {
            dir.to_string()
        } else {
            format!("{dir}/")
        };
        Ok(self
            .files
            .keys()
            .filter_map(|p| p.strip_prefix(&prefix))
            .filter(|rest| !rest.contains('/'))
            .map(String::from)
            .collect())
    }

    fn create_dir_all(&mut self, _dir: &str) -> Result<(), FioError> {
        Ok(())
    }
}

/// How a [`FaultFs`] decides when to inject.
#[derive(Debug)]
enum FaultPlan {
    /// An explicit script: rules fire in declaration order as their
    /// countdowns reach zero.
    Script(Vec<FaultRule>),
    /// A seeded stream: every mutating operation draws from its own
    /// split RNG and injects a survivable fault (ENOSPC / EIO / torn)
    /// with probability `p`. Crashes are never drawn — random mode
    /// exercises retry/degrade paths, scripted mode exercises crashes.
    Random { rng: StdRng, p: f64 },
}

/// The fault-injecting [`SimFs`] decorator.
///
/// Wraps any backend and consults its `FaultPlan` before each
/// operation. After a crash fault fires, the inner backend is frozen:
/// every operation returns [`FioError::Crashed`], and the test harness
/// recovers the "disk at power loss" via [`FaultFs::into_inner`].
pub struct FaultFs<F: SimFs> {
    inner: F,
    plan: FaultPlan,
    crashed: bool,
    ops: u64,
    injected: u64,
}

impl<F: SimFs> FaultFs<F> {
    /// A scripted fault plan over `inner`.
    pub fn scripted(inner: F, rules: Vec<FaultRule>) -> Self {
        FaultFs {
            inner,
            plan: FaultPlan::Script(rules),
            crashed: false,
            ops: 0,
            injected: 0,
        }
    }

    /// A seeded random fault plan over `inner`: each mutating operation
    /// fails with probability `p` (ENOSPC, EIO, or a torn write chosen
    /// uniformly; never a crash).
    pub fn random(inner: F, seed: u64, p: f64) -> Self {
        FaultFs {
            inner,
            plan: FaultPlan::Random {
                rng: StdRng::seed_from_u64(seed),
                p,
            },
            crashed: false,
            ops: 0,
            injected: 0,
        }
    }

    /// Consumes the decorator and returns the backend — the state of
    /// "disk" at this instant, including after a crash.
    pub fn into_inner(self) -> F {
        self.inner
    }

    /// Read access to the backend without consuming the decorator.
    pub fn inner(&self) -> &F {
        &self.inner
    }

    /// Direct access to the backend, bypassing fault injection — the
    /// "repair tooling" view of the disk.
    pub fn inner_mut(&mut self) -> &mut F {
        &mut self.inner
    }

    /// Whether a crash fault has fired.
    pub fn is_crashed(&self) -> bool {
        self.crashed
    }

    /// `(operations seen, faults injected)` — telemetry for chaos logs.
    pub fn stats(&self) -> (u64, u64) {
        (self.ops, self.injected)
    }

    /// Decides whether this operation faults, and how.
    fn draw(&mut self, op: FioOp, path: &str, payload_len: Option<usize>) -> Option<Fault> {
        self.ops += 1;
        match &mut self.plan {
            FaultPlan::Script(rules) => {
                let idx = rules
                    .iter()
                    .position(|r| r.op == op && path.contains(&r.path_contains))?;
                if rules[idx].countdown > 0 {
                    rules[idx].countdown -= 1;
                    return None;
                }
                Some(rules.remove(idx).fault)
            }
            FaultPlan::Random { rng, p } => {
                // Reads never fault in random mode: the chaos harness
                // targets the durability of *writes*; recovery reads are
                // exercised by scripted plans.
                if matches!(op, FioOp::Read) || !rng.gen_bool(*p) {
                    return None;
                }
                Some(match rng.gen_range(0u32..3) {
                    0 => Fault::NoSpace,
                    1 => Fault::Io,
                    _ => Fault::Torn {
                        keep: match payload_len {
                            Some(len) if len > 0 => rng.gen_range(0usize..len),
                            _ => 0,
                        },
                    },
                })
            }
        }
    }

    /// Applies one drawn fault around a payload-carrying operation.
    fn faulted_payload_op(
        &mut self,
        op: FioOp,
        path: &str,
        bytes: &[u8],
        apply: impl Fn(&mut F, &str, &[u8]) -> Result<(), FioError>,
    ) -> Result<(), FioError> {
        if self.crashed {
            return Err(FioError::Crashed);
        }
        match self.draw(op, path, Some(bytes.len())) {
            None => apply(&mut self.inner, path, bytes),
            Some(fault) => {
                self.injected += 1;
                match fault {
                    Fault::NoSpace => Err(FioError::NoSpace {
                        path: path.to_string(),
                    }),
                    Fault::Io => Err(FioError::Io {
                        path: path.to_string(),
                        msg: "injected EIO".into(),
                    }),
                    Fault::Torn { keep } => {
                        let keep = keep.min(bytes.len());
                        apply(&mut self.inner, path, &bytes[..keep])?;
                        Err(FioError::Io {
                            path: path.to_string(),
                            msg: format!("injected torn write after {keep} bytes"),
                        })
                    }
                    Fault::CrashAfter => {
                        let r = apply(&mut self.inner, path, bytes);
                        self.crashed = true;
                        r.and(Err(FioError::Crashed))
                    }
                    Fault::CrashBefore => {
                        self.crashed = true;
                        Err(FioError::Crashed)
                    }
                }
            }
        }
    }

    /// Applies one drawn fault around a payload-less operation.
    fn faulted_plain_op(
        &mut self,
        op: FioOp,
        path: &str,
        apply: impl FnOnce(&mut F) -> Result<(), FioError>,
    ) -> Result<(), FioError> {
        if self.crashed {
            return Err(FioError::Crashed);
        }
        match self.draw(op, path, None) {
            None => apply(&mut self.inner),
            Some(fault) => {
                self.injected += 1;
                match fault {
                    Fault::NoSpace => Err(FioError::NoSpace {
                        path: path.to_string(),
                    }),
                    Fault::Io | Fault::Torn { .. } => Err(FioError::Io {
                        path: path.to_string(),
                        msg: "injected EIO".into(),
                    }),
                    Fault::CrashAfter => {
                        let r = apply(&mut self.inner);
                        self.crashed = true;
                        r.and(Err(FioError::Crashed))
                    }
                    Fault::CrashBefore => {
                        self.crashed = true;
                        Err(FioError::Crashed)
                    }
                }
            }
        }
    }
}

impl<F: SimFs> SimFs for FaultFs<F> {
    fn write(&mut self, path: &str, bytes: &[u8]) -> Result<(), FioError> {
        self.faulted_payload_op(FioOp::Write, path, bytes, |fs, p, b| fs.write(p, b))
    }

    fn append(&mut self, path: &str, bytes: &[u8]) -> Result<(), FioError> {
        self.faulted_payload_op(FioOp::Append, path, bytes, |fs, p, b| fs.append(p, b))
    }

    fn sync(&mut self, path: &str) -> Result<(), FioError> {
        let path_owned = path.to_string();
        self.faulted_plain_op(FioOp::Sync, path, move |fs| fs.sync(&path_owned))
    }

    fn rename(&mut self, from: &str, to: &str) -> Result<(), FioError> {
        let (f, t) = (from.to_string(), to.to_string());
        self.faulted_plain_op(FioOp::Rename, from, move |fs| fs.rename(&f, &t))
    }

    fn remove(&mut self, path: &str) -> Result<(), FioError> {
        let p = path.to_string();
        self.faulted_plain_op(FioOp::Remove, path, move |fs| fs.remove(&p))
    }

    fn read(&mut self, path: &str) -> Result<Vec<u8>, FioError> {
        if self.crashed {
            return Err(FioError::Crashed);
        }
        match self.draw(FioOp::Read, path, None) {
            None => self.inner.read(path),
            Some(fault) => {
                self.injected += 1;
                match fault {
                    Fault::NoSpace | Fault::Io | Fault::Torn { .. } => Err(FioError::Io {
                        path: path.to_string(),
                        msg: "injected read EIO".into(),
                    }),
                    Fault::CrashAfter | Fault::CrashBefore => {
                        self.crashed = true;
                        Err(FioError::Crashed)
                    }
                }
            }
        }
    }

    fn exists(&mut self, path: &str) -> bool {
        !self.crashed && self.inner.exists(path)
    }

    fn list(&mut self, dir: &str) -> Result<Vec<String>, FioError> {
        if self.crashed {
            return Err(FioError::Crashed);
        }
        self.inner.list(dir)
    }

    fn create_dir_all(&mut self, dir: &str) -> Result<(), FioError> {
        if self.crashed {
            return Err(FioError::Crashed);
        }
        self.inner.create_dir_all(dir)
    }
}

/// Retries a transient-faulting operation with bounded backoff: the
/// workspace-wide policy for durable writes that may hit ENOSPC/EIO on a
/// struggling disk. Non-transient errors (crash, not-found) surface
/// immediately. `attempts` counts total tries; backoff doubles from
/// `base` between tries (wall-clock, so simulation determinism is
/// untouched — virtual time never observes it).
pub fn retry_transient<T>(
    attempts: u32,
    base: std::time::Duration,
    mut op: impl FnMut() -> Result<T, FioError>,
) -> Result<T, FioError> {
    let mut delay = base;
    let mut last = None;
    for attempt in 0..attempts.max(1) {
        match op() {
            Ok(v) => return Ok(v),
            Err(e) if e.is_transient() => {
                if attempt + 1 < attempts {
                    std::thread::sleep(delay);
                    delay = delay.saturating_mul(2);
                }
                last = Some(e);
            }
            Err(e) => return Err(e),
        }
    }
    Err(last.unwrap_or(FioError::Crashed))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memfs_round_trips_and_lists_sorted() {
        let mut fs = MemFs::new();
        fs.create_dir_all("d").unwrap();
        fs.write("d/b.txt", b"bee").unwrap();
        fs.write("d/a.txt", b"ay").unwrap();
        fs.append("d/a.txt", b"!").unwrap();
        assert_eq!(fs.read("d/a.txt").unwrap(), b"ay!");
        assert_eq!(fs.list("d").unwrap(), vec!["a.txt", "b.txt"]);
        fs.rename("d/a.txt", "d/c.txt").unwrap();
        assert!(!fs.exists("d/a.txt"));
        assert!(fs.exists("d/c.txt"));
        fs.remove("d/b.txt").unwrap();
        assert!(matches!(fs.read("d/b.txt"), Err(FioError::NotFound { .. })));
    }

    #[test]
    fn write_atomic_publishes_or_leaves_old() {
        let mut fs = MemFs::new();
        fs.write("f", b"old").unwrap();
        fs.write_atomic("f", b"new").unwrap();
        assert_eq!(fs.read("f").unwrap(), b"new");
        assert!(!fs.exists("f.tmp"));

        // Crash before the rename: old survives, tmp is stranded.
        let mut fs = FaultFs::scripted(
            {
                let mut m = MemFs::new();
                m.write("f", b"old").unwrap();
                m
            },
            vec![FaultRule::on(FioOp::Rename, "f", Fault::CrashBefore)],
        );
        assert_eq!(fs.write_atomic("f", b"new"), Err(FioError::Crashed));
        let disk = fs.into_inner();
        assert_eq!(disk.get("f").unwrap(), b"old");
        assert_eq!(disk.get("f.tmp").unwrap(), b"new");
    }

    #[test]
    fn scripted_faults_fire_once_in_order() {
        let mut fs = FaultFs::scripted(
            MemFs::new(),
            vec![
                FaultRule::after(FioOp::Write, "log", 1, Fault::NoSpace),
                FaultRule::on(FioOp::Append, "", Fault::Torn { keep: 2 }),
            ],
        );
        fs.write("log-a", b"x").unwrap(); // countdown 1 -> 0
        assert!(matches!(
            fs.write("log-b", b"y"),
            Err(FioError::NoSpace { .. })
        ));
        fs.write("log-c", b"z").unwrap(); // rule retired
        assert!(matches!(fs.append("j", b"hello"), Err(FioError::Io { .. })));
        assert_eq!(fs.inner().get("j").unwrap(), b"he");
        fs.append("j", b"llo").unwrap();
        assert_eq!(fs.inner().get("j").unwrap(), b"hello");
        assert_eq!(fs.stats().1, 2);
    }

    #[test]
    fn crash_freezes_the_backend() {
        let mut fs = FaultFs::scripted(
            MemFs::new(),
            vec![FaultRule::on(FioOp::Write, "ckpt", Fault::CrashAfter)],
        );
        fs.write("other", b"ok").unwrap();
        assert_eq!(fs.write("ckpt-1", b"bytes"), Err(FioError::Crashed));
        assert!(fs.is_crashed());
        assert_eq!(fs.write("other", b"more"), Err(FioError::Crashed));
        assert_eq!(fs.read("other"), Err(FioError::Crashed));
        let disk = fs.into_inner();
        // CrashAfter: the faulted write itself landed.
        assert_eq!(disk.get("ckpt-1").unwrap(), b"bytes");
        assert_eq!(disk.get("other").unwrap(), b"ok");
    }

    #[test]
    fn random_plan_is_deterministic_per_seed() {
        let run = |seed| {
            let mut fs = FaultFs::random(MemFs::new(), seed, 0.3);
            let mut outcomes = Vec::new();
            for i in 0..50 {
                outcomes.push(fs.write(&format!("f{i}"), b"payload-bytes").is_ok());
            }
            (outcomes, fs.stats())
        };
        assert_eq!(run(7), run(7));
        let (outcomes, (ops, injected)) = run(7);
        assert_eq!(ops, 50);
        assert!(injected > 0, "p=0.3 over 50 ops must inject");
        assert!(outcomes.iter().any(|ok| *ok));
        assert_ne!(run(7).0, run(8).0);
    }

    #[test]
    fn retry_transient_retries_then_succeeds() {
        let mut fs = FaultFs::scripted(
            MemFs::new(),
            vec![
                FaultRule::on(FioOp::Write, "", Fault::NoSpace),
                FaultRule::on(FioOp::Write, "", Fault::Io),
            ],
        );
        retry_transient(3, std::time::Duration::from_millis(1), || {
            fs.write("f", b"v")
        })
        .unwrap();
        assert_eq!(fs.inner().get("f").unwrap(), b"v");

        // A crash is not transient: no retry, immediate surface.
        let mut fs = FaultFs::scripted(
            MemFs::new(),
            vec![FaultRule::on(FioOp::Write, "", Fault::CrashBefore)],
        );
        let mut calls = 0;
        let r = retry_transient(5, std::time::Duration::from_millis(1), || {
            calls += 1;
            fs.write("f", b"v")
        });
        assert_eq!(r, Err(FioError::Crashed));
        assert_eq!(calls, 1);
    }

    #[test]
    fn retry_transient_exhausts_with_the_last_error() {
        let mut fs = FaultFs::scripted(
            MemFs::new(),
            vec![
                FaultRule::on(FioOp::Write, "", Fault::NoSpace),
                FaultRule::on(FioOp::Write, "", Fault::NoSpace),
                FaultRule::on(FioOp::Write, "", Fault::NoSpace),
            ],
        );
        let r = retry_transient(3, std::time::Duration::from_millis(1), || {
            fs.write("f", b"v")
        });
        assert!(matches!(r, Err(FioError::NoSpace { .. })));
        assert!(!fs.inner_mut().exists("f"));
    }
}
