//! Resource-aware tier-based device-to-job matching — the paper's
//! Algorithm 2.
//!
//! Response collection time is set by the *slowest* of a round's
//! participants, so mixing fast and slow devices wastes the fast ones.
//! Venn therefore partitions a served job's eligible devices into `V`
//! capacity tiers, picks one tier in a rotating random fashion (diversity!),
//! and restricts the job to that tier **only when the projected JCT
//! improves**:
//!
//! ```text
//! 1 + c  >  V + c · g_u        (paper §4.3, Fig. 7)
//! ```
//!
//! where `c = t_response / t_schedule` is the job's response-to-scheduling
//! cost ratio and `g_u ≤ 1` the tier's p95 response-time speed-up. Tiering
//! multiplies scheduling delay by up to `V` (only `1/V` of the supply
//! remains eligible) while scaling response time by `g_u`; the inequality
//! triggers exactly when that trade wins.
//!
//! [`TierProfiler`] accumulates the per-job observations (participant
//! capacity scores, response times, scheduling delays) the decision needs;
//! the paper's Venn likewise profiles a job's earlier rounds before tiering
//! it.

use crate::snapshot::{SnapError, SnapReader, SnapWriter, Snapshot};

/// Per-job profile of participant capacities and response behaviour.
///
/// Sample buffers are bounded (ring semantics) so long-running jobs adapt to
/// drift and memory stays constant.
#[derive(Debug, Clone)]
pub struct TierProfiler {
    scores: Vec<f64>,
    responses: Vec<(f64, f64)>, // (capacity score, response ms)
    sched_delays: Vec<f64>,
    cap: usize,
    cursor_scores: usize,
    cursor_resp: usize,
    cursor_delay: usize,
    /// Reused sort buffer for the percentile computations on the
    /// per-submit decision path — no allocation once warm.
    sort_scratch: Vec<f64>,
    /// Reused tier-edge buffer for [`decide_tier`].
    edges_scratch: Vec<f64>,
}

impl Default for TierProfiler {
    fn default() -> Self {
        TierProfiler::new()
    }
}

impl TierProfiler {
    /// Default bound on each sample buffer.
    pub const DEFAULT_CAPACITY: usize = 512;

    /// Creates a profiler with the default buffer capacity.
    pub fn new() -> Self {
        TierProfiler::with_capacity(Self::DEFAULT_CAPACITY)
    }

    /// Creates a profiler bounding each sample buffer at `cap` entries.
    ///
    /// # Panics
    ///
    /// Panics if `cap` is zero.
    pub fn with_capacity(cap: usize) -> Self {
        assert!(cap > 0, "profiler capacity must be positive");
        // The rings are bounded at `cap` anyway; reserving them up front
        // keeps every later record/percentile strictly allocation-free
        // (the sort scratch's high-water mark is one full ring).
        TierProfiler {
            scores: Vec::with_capacity(cap),
            responses: Vec::with_capacity(cap),
            sched_delays: Vec::with_capacity(cap),
            cap,
            cursor_scores: 0,
            cursor_resp: 0,
            cursor_delay: 0,
            sort_scratch: Vec::with_capacity(cap),
            edges_scratch: Vec::new(),
        }
    }

    fn push_bounded(buf: &mut Vec<f64>, cursor: &mut usize, cap: usize, v: f64) {
        if buf.len() < cap {
            buf.push(v);
        } else {
            buf[*cursor] = v;
            *cursor = (*cursor + 1) % cap;
        }
    }

    /// Records the capacity score of a device assigned to the job.
    pub fn record_participant(&mut self, score: f64) {
        Self::push_bounded(&mut self.scores, &mut self.cursor_scores, self.cap, score);
    }

    /// Records a completed response: the device's capacity score and its
    /// response time in milliseconds.
    pub fn record_response(&mut self, score: f64, response_ms: u64) {
        if self.responses.len() < self.cap {
            self.responses.push((score, response_ms as f64));
        } else {
            self.responses[self.cursor_resp] = (score, response_ms as f64);
            self.cursor_resp = (self.cursor_resp + 1) % self.cap;
        }
    }

    /// Records the scheduling delay of one fully allocated request.
    pub fn record_sched_delay(&mut self, delay_ms: u64) {
        Self::push_bounded(
            &mut self.sched_delays,
            &mut self.cursor_delay,
            self.cap,
            delay_ms as f64,
        );
    }

    /// Number of recorded responses.
    pub fn response_count(&self) -> usize {
        self.responses.len()
    }

    /// Whether enough history exists to drive a tier decision.
    pub fn is_ready(&self, min_samples: usize) -> bool {
        self.responses.len() >= min_samples && !self.sched_delays.is_empty()
    }

    /// Capacity-score tier edges for `v` tiers: `v + 1` edges where edge 0
    /// is `-inf` and edge `v` is `+inf`, interior edges at score quantiles.
    ///
    /// # Panics
    ///
    /// Panics if `v == 0`.
    pub fn tier_edges(&self, v: usize) -> Vec<f64> {
        let mut edges = Vec::new();
        Self::fill_tier_edges(&mut edges, &mut Vec::new(), &self.scores, v);
        edges
    }

    /// The one edge computation both the allocating [`tier_edges`] and the
    /// scratch-backed decision path run; `sort` is the score sort buffer.
    ///
    /// [`tier_edges`]: Self::tier_edges
    fn fill_tier_edges(edges: &mut Vec<f64>, sort: &mut Vec<f64>, scores: &[f64], v: usize) {
        assert!(v > 0, "tier count must be positive");
        edges.clear();
        edges.push(f64::NEG_INFINITY);
        if v > 1 && !scores.is_empty() {
            sort.clear();
            sort.extend_from_slice(scores);
            sort.sort_unstable_by(|a, b| a.partial_cmp(b).expect("non-finite score"));
            for i in 1..v {
                let rank = (i as f64 / v as f64 * (sort.len() - 1) as f64).round() as usize;
                edges.push(sort[rank]);
            }
        } else {
            // No data yet: degenerate interior edges collapse to one tier.
            for _ in 1..v {
                edges.push(f64::NEG_INFINITY);
            }
        }
        edges.push(f64::INFINITY);
    }

    /// p95 over `values`, sorting inside `scratch` (capacity reused). The
    /// unstable sort matches the old stable one bit for bit: only the
    /// values themselves are ordered, so equal elements are
    /// interchangeable.
    fn p95_into(scratch: &mut Vec<f64>, values: impl Iterator<Item = f64>) -> Option<f64> {
        scratch.clear();
        scratch.extend(values);
        if scratch.is_empty() {
            return None;
        }
        scratch.sort_unstable_by(|a, b| a.partial_cmp(b).expect("non-finite sample"));
        let rank = ((scratch.len() - 1) as f64 * 0.95).round() as usize;
        Some(scratch[rank])
    }

    /// Response-time speed-up factor `g_u = t_u / t_0` of tier `u` under a
    /// `v`-tier partition: the tier's p95 response time relative to the
    /// untired p95 (the paper uses p95 as the statistical tail excluding
    /// failures and stragglers).
    ///
    /// Returns `1.0` when the tier has no samples (no evidence of benefit).
    pub fn speedup(&self, v: usize, u: usize) -> f64 {
        assert!(u < v, "tier index out of range");
        self.speedup_with_edges(&self.tier_edges(v), u)
    }

    /// [`speedup`](Self::speedup) against precomputed
    /// [`tier_edges`](Self::tier_edges) — lets one decision share a single
    /// score sort.
    ///
    /// # Panics
    ///
    /// Panics if `u + 1` is not a valid edge index.
    pub fn speedup_with_edges(&self, edges: &[f64], u: usize) -> f64 {
        Self::speedup_over_edges(&self.responses, &mut Vec::new(), edges, u)
    }

    /// The one speed-up computation both the public [`speedup_with_edges`]
    /// and the scratch-backed decision path run.
    ///
    /// [`speedup_with_edges`]: Self::speedup_with_edges
    fn speedup_over_edges(
        responses: &[(f64, f64)],
        scratch: &mut Vec<f64>,
        edges: &[f64],
        u: usize,
    ) -> f64 {
        assert!(u + 1 < edges.len(), "tier index out of range");
        let overall = match Self::p95_into(scratch, responses.iter().map(|r| r.1)) {
            Some(t0) if t0 > 0.0 => t0,
            _ => return 1.0,
        };
        let (lo, hi) = (edges[u], edges[u + 1]);
        let tier = Self::p95_into(
            scratch,
            responses
                .iter()
                .filter(|(s, _)| *s >= lo && *s < hi)
                .map(|r| r.1),
        );
        match tier {
            Some(t) => t / overall,
            None => 1.0,
        }
    }

    /// Fills the reused edge buffer with the same content
    /// [`tier_edges`](Self::tier_edges) returns, allocation-free.
    fn tier_edges_scratch(&mut self, v: usize) {
        Self::fill_tier_edges(
            &mut self.edges_scratch,
            &mut self.sort_scratch,
            &self.scores,
            v,
        );
    }

    /// [`speedup_with_edges`](Self::speedup_with_edges) against the edge
    /// buffer [`tier_edges_scratch`](Self::tier_edges_scratch) filled,
    /// allocation-free.
    fn speedup_from_scratch_edges(&mut self, u: usize) -> f64 {
        Self::speedup_over_edges(
            &self.responses,
            &mut self.sort_scratch,
            &self.edges_scratch,
            u,
        )
    }

    /// The job's cost ratio `c = t_response / t_schedule` from profiled p95
    /// response time and mean scheduling delay; `None` without history.
    /// Takes `&mut self` for the reused percentile sort buffer.
    pub fn cost_ratio(&mut self) -> Option<f64> {
        let resp = Self::p95_into(&mut self.sort_scratch, self.responses.iter().map(|r| r.1))?;
        if self.sched_delays.is_empty() {
            return None;
        }
        let sched = self.sched_delays.iter().sum::<f64>() / self.sched_delays.len() as f64;
        // A job that has never waited still pays at least one scheduling
        // quantum; floor the denominator so c stays finite.
        Some(resp / sched.max(1.0))
    }
}

/// The snapshot carries the sample rings and their cursors — the learned
/// profile and its exact overwrite schedule — and restores the scratch
/// buffers empty (they are filled from scratch by every decision).
impl Snapshot for TierProfiler {
    fn encode(&self, w: &mut SnapWriter) {
        w.seq(&self.scores, |w, &s| w.f64(s));
        w.seq(&self.responses, |w, &(s, t)| {
            w.f64(s);
            w.f64(t);
        });
        w.seq(&self.sched_delays, |w, &d| w.f64(d));
        w.usize(self.cap);
        w.usize(self.cursor_scores);
        w.usize(self.cursor_resp);
        w.usize(self.cursor_delay);
    }

    fn decode(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let scores = r.seq(|r| r.f64())?;
        let responses = r.seq(|r| Ok((r.f64()?, r.f64()?)))?;
        let sched_delays = r.seq(|r| r.f64())?;
        let cap = r.usize()?;
        if cap == 0 {
            return Err(SnapError::Corrupt("zero profiler capacity".into()));
        }
        if scores.len() > cap || responses.len() > cap || sched_delays.len() > cap {
            return Err(SnapError::Corrupt("profiler ring exceeds capacity".into()));
        }
        let mut p = TierProfiler::with_capacity(cap);
        p.scores = scores;
        p.responses = responses;
        p.sched_delays = sched_delays;
        p.cursor_scores = r.usize()?;
        p.cursor_resp = r.usize()?;
        p.cursor_delay = r.usize()?;
        if p.cursor_scores >= cap || p.cursor_resp >= cap || p.cursor_delay >= cap {
            return Err(SnapError::Corrupt("profiler cursor out of range".into()));
        }
        Ok(p)
    }
}

/// A tier restriction: the half-open capacity-score range `[lo, hi)` a
/// served job will accept devices from.
pub type TierRange = (f64, f64);

/// Runs Algorithm 2's trigger for job with profile `profile`, `v` tiers, and
/// rotating tier pick `u` (caller supplies the randomness).
///
/// Returns the tier's score range when tier-based matching is projected to
/// reduce JCT (`V + g_u·c < 1 + c`), otherwise `None` (the job accepts any
/// eligible device).
///
/// # Panics
///
/// Panics if `v == 0` or `u >= v`.
pub fn decide_tier(
    profile: &mut TierProfiler,
    v: usize,
    u: usize,
    min_samples: usize,
) -> Option<TierRange> {
    assert!(v > 0, "tier count must be positive");
    assert!(u < v, "tier index out of range");
    if v == 1 || !profile.is_ready(min_samples) {
        return None;
    }
    let c = profile.cost_ratio()?;
    // One edge computation (one score sort) serves both the speed-up
    // estimate and the returned range; all of it runs in the profiler's
    // reused scratch, so a ready-profile decision allocates nothing.
    profile.tier_edges_scratch(v);
    let g = profile.speedup_from_scratch_edges(u);
    if (v as f64) + g * c < 1.0 + c {
        Some((profile.edges_scratch[u], profile.edges_scratch[u + 1]))
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds a profile where high-score devices respond 10× faster and
    /// scheduling is cheap relative to response time.
    fn fast_high_tier_profile() -> TierProfiler {
        let mut p = TierProfiler::new();
        for i in 0..100 {
            let score = i as f64 / 100.0;
            let resp = if score >= 0.5 { 1_000 } else { 60_000 };
            p.record_participant(score);
            p.record_response(score, resp);
        }
        p.record_sched_delay(1_000);
        p
    }

    #[test]
    fn edges_are_monotone_and_cover() {
        let p = fast_high_tier_profile();
        let edges = p.tier_edges(4);
        assert_eq!(edges.len(), 5);
        assert!(edges.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(edges[0], f64::NEG_INFINITY);
        assert_eq!(edges[4], f64::INFINITY);
    }

    #[test]
    fn top_tier_has_large_speedup() {
        let p = fast_high_tier_profile();
        let g_top = p.speedup(2, 1);
        let g_bottom = p.speedup(2, 0);
        assert!(g_top < 0.1, "top tier p95 should be ~1s vs 60s: {g_top}");
        assert!((g_bottom - 1.0).abs() < 0.2, "bottom tier ~= overall");
    }

    #[test]
    fn trigger_fires_when_response_dominates() {
        let mut p = fast_high_tier_profile();
        // c = 60_000 / 1_000 = 60. Top tier: g ~ 1/60. 2 + 1 < 1 + 60 → tier.
        let range = decide_tier(&mut p, 2, 1, 10).expect("should tier");
        assert!(range.0 > 0.0);
        assert_eq!(range.1, f64::INFINITY);
    }

    #[test]
    fn trigger_declines_when_scheduling_dominates() {
        let mut p = fast_high_tier_profile();
        p.record_sched_delay(10_000_000); // scheduling hugely dominant → c ~ 0
                                          // Many delays so the mean is dominated by the big one.
        let range = decide_tier(&mut p, 4, 3, 10);
        assert!(range.is_none(), "V=4 cannot pay off when c≈0");
    }

    #[test]
    fn bottom_tier_never_helps() {
        let mut p = fast_high_tier_profile();
        // Bottom tier has g≈1: V + c·g ≥ 1 + c for V>1.
        assert!(decide_tier(&mut p, 2, 0, 10).is_none());
    }

    #[test]
    fn single_tier_never_triggers() {
        let mut p = fast_high_tier_profile();
        assert!(decide_tier(&mut p, 1, 0, 10).is_none());
    }

    #[test]
    fn unready_profile_never_triggers() {
        let mut p = TierProfiler::new();
        p.record_response(0.5, 100);
        assert!(!p.is_ready(10));
        assert!(decide_tier(&mut p, 4, 3, 10).is_none());
    }

    #[test]
    fn cost_ratio_is_resp_over_sched() {
        let mut p = TierProfiler::new();
        for _ in 0..20 {
            p.record_response(0.5, 30_000);
        }
        p.record_sched_delay(10_000);
        let c = p.cost_ratio().unwrap();
        assert!((c - 3.0).abs() < 1e-9);
    }

    #[test]
    fn buffers_are_bounded() {
        let mut p = TierProfiler::with_capacity(8);
        for i in 0..100 {
            p.record_participant(i as f64);
            p.record_response(i as f64, i);
            p.record_sched_delay(i);
        }
        assert_eq!(p.response_count(), 8);
        // Old entries overwritten: all remaining scores are recent.
        assert!(p.tier_edges(2)[1] >= 90.0);
    }

    #[test]
    fn speedup_without_samples_is_one() {
        let p = TierProfiler::new();
        assert_eq!(p.speedup(4, 2), 1.0);
    }

    #[test]
    #[should_panic(expected = "tier count must be positive")]
    fn zero_tiers_panics() {
        TierProfiler::new().tier_edges(0);
    }
}
