//! Per-round resource requests submitted by CL jobs.

use crate::{JobId, ResourceSpec};

/// One round's resource request from a CL job (paper §3, step 0).
///
/// A request names the job, its device requirement, the number of devices
/// needed this round, and — for schedulers that use it (SRSF, intra-group
/// ordering) — the job's total remaining work in device-rounds.
///
/// This is a passive data record; fields are public by design.
///
/// # Examples
///
/// ```
/// use venn_core::{JobId, Request, ResourceSpec};
///
/// let r = Request::new(JobId::new(1), ResourceSpec::new(0.5, 0.0), 100, 5_000);
/// assert_eq!(r.demand, 100);
/// assert_eq!(r.total_remaining, 5_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Request {
    /// The requesting job.
    pub job: JobId,
    /// Device requirement shared by every device this job can use.
    pub spec: ResourceSpec,
    /// Number of devices needed for the current round.
    pub demand: u32,
    /// Total remaining work across all upcoming rounds, in device-rounds.
    ///
    /// Used by SRSF and available to Venn's intra-group ordering when jobs
    /// disclose it (paper §4.2.1).
    pub total_remaining: u64,
}

impl Request {
    /// Creates a request.
    ///
    /// # Panics
    ///
    /// Panics if `demand` is zero — a zero-demand request is meaningless and
    /// almost certainly a caller bug.
    pub fn new(job: JobId, spec: ResourceSpec, demand: u32, total_remaining: u64) -> Self {
        assert!(demand > 0, "request demand must be positive");
        Request {
            job,
            spec,
            demand,
            total_remaining,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructor_stores_fields() {
        let r = Request::new(JobId::new(2), ResourceSpec::any(), 3, 12);
        assert_eq!(r.job, JobId::new(2));
        assert_eq!(r.spec, ResourceSpec::any());
        assert_eq!(r.demand, 3);
        assert_eq!(r.total_remaining, 12);
    }

    #[test]
    #[should_panic(expected = "demand must be positive")]
    fn zero_demand_panics() {
        Request::new(JobId::new(1), ResourceSpec::any(), 0, 0);
    }
}
