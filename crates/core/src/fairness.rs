//! Starvation prevention — the paper's fairness knob ε (§4.4).
//!
//! Smallest-remaining-demand-first ordering can starve large jobs. Venn
//! guarantees each job a *fair-share JCT* `T_i = M · sd_i`, where `M` is the
//! number of simultaneous jobs and `sd_i` the job's JCT without contention.
//! It then scales each job's scheduling weight by how much of that fair
//! share the job has already used:
//!
//! * within a group, the effective demand becomes
//!   `d'_i = d_i · (t_i / T_i)^ε` — a job that has received little service
//!   relative to its fair share shrinks its demand and rises in the
//!   smallest-first order;
//! * across groups, the queue length becomes
//!   `q'_j = q_j · (Σ T_i / Σ t_i)^ε` — groups whose jobs are behind their
//!   fair share weigh more in the IRS steal ratio.
//!
//! `ε = 0` disables the knob (pure §4.2 behaviour); `ε → ∞` makes fairness
//! dominate.

/// Fairness control knob.
///
/// # Examples
///
/// ```
/// use venn_core::fairness::FairnessKnob;
///
/// let knob = FairnessKnob::new(1.0);
/// // A job at half of its fair share halves its effective demand.
/// let d = knob.adjusted_demand(100.0, 50.0, 100.0);
/// assert!((d - 50.0).abs() < 1e-9);
/// // ε = 0 is the identity.
/// assert_eq!(FairnessKnob::disabled().adjusted_demand(100.0, 50.0, 100.0), 100.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FairnessKnob {
    epsilon: f64,
}

/// Ratios are clamped to this band so a brand-new job (zero usage) or a
/// degenerate target cannot produce infinite priority swings. The band is
/// deliberately narrow: the knob should *re-rank* jobs, not erase the
/// demand signal entirely even at large ε.
const RATIO_MIN: f64 = 0.05;
const RATIO_MAX: f64 = 20.0;

impl FairnessKnob {
    /// Creates a knob with the given ε.
    ///
    /// # Panics
    ///
    /// Panics if `epsilon` is negative or non-finite.
    pub fn new(epsilon: f64) -> Self {
        assert!(
            epsilon.is_finite() && epsilon >= 0.0,
            "epsilon must be finite and non-negative"
        );
        FairnessKnob { epsilon }
    }

    /// The ε = 0 knob (identical to §4.2 scheduling).
    pub fn disabled() -> Self {
        FairnessKnob { epsilon: 0.0 }
    }

    /// The ε value.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// Whether the knob changes anything.
    pub fn is_enabled(&self) -> bool {
        self.epsilon > 0.0
    }

    fn clamped_pow(&self, ratio: f64) -> f64 {
        ratio.clamp(RATIO_MIN, RATIO_MAX).powf(self.epsilon)
    }

    /// Adjusted per-job demand `d'_i = d_i · (t_i / T_i)^ε`.
    ///
    /// `usage_ms` is the service time the job has received so far and
    /// `fair_target_ms` its fair-share JCT `T_i`. Degenerate inputs
    /// (zero/negative target) fall back to the unadjusted demand.
    pub fn adjusted_demand(&self, demand: f64, usage_ms: f64, fair_target_ms: f64) -> f64 {
        if !self.is_enabled() || fair_target_ms <= 0.0 {
            return demand;
        }
        demand * self.clamped_pow(usage_ms.max(0.0) / fair_target_ms)
    }

    /// Adjusted group queue length `q'_j = q_j · (Σ T_i / Σ t_i)^ε`.
    ///
    /// Degenerate inputs (zero totals) fall back to the unadjusted length.
    pub fn adjusted_queue_len(
        &self,
        queue_len: f64,
        sum_targets_ms: f64,
        sum_usage_ms: f64,
    ) -> f64 {
        if !self.is_enabled() || sum_targets_ms <= 0.0 || sum_usage_ms <= 0.0 {
            return queue_len;
        }
        queue_len * self.clamped_pow(sum_targets_ms / sum_usage_ms)
    }
}

impl Default for FairnessKnob {
    fn default() -> Self {
        FairnessKnob::disabled()
    }
}

/// Fair-share JCT `T_i = M · sd_i` for a job whose uncontended JCT is
/// `uncontended_jct_ms` when `concurrent_jobs` jobs share the pool.
pub fn fair_target_ms(concurrent_jobs: usize, uncontended_jct_ms: f64) -> f64 {
    concurrent_jobs.max(1) as f64 * uncontended_jct_ms.max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epsilon_zero_is_identity() {
        let k = FairnessKnob::disabled();
        assert!(!k.is_enabled());
        assert_eq!(k.adjusted_demand(10.0, 5.0, 1.0), 10.0);
        assert_eq!(k.adjusted_queue_len(4.0, 100.0, 1.0), 4.0);
    }

    #[test]
    fn underserved_job_gains_priority() {
        let k = FairnessKnob::new(2.0);
        // Job received 10% of fair share → demand shrinks by 100×.
        let d = k.adjusted_demand(100.0, 10.0, 100.0);
        assert!((d - 1.0).abs() < 1e-9);
    }

    #[test]
    fn overserved_job_loses_priority() {
        let k = FairnessKnob::new(1.0);
        let d = k.adjusted_demand(100.0, 200.0, 100.0);
        assert!((d - 200.0).abs() < 1e-9);
    }

    #[test]
    fn higher_epsilon_is_stronger() {
        let weak = FairnessKnob::new(0.5);
        let strong = FairnessKnob::new(4.0);
        let ratio_weak = weak.adjusted_demand(1.0, 10.0, 100.0);
        let ratio_strong = strong.adjusted_demand(1.0, 10.0, 100.0);
        assert!(ratio_strong < ratio_weak);
    }

    #[test]
    fn group_behind_fair_share_weighs_more() {
        let k = FairnessKnob::new(1.0);
        // Targets total 100, usage only 20 → queue ×5.
        let q = k.adjusted_queue_len(3.0, 100.0, 20.0);
        assert!((q - 15.0).abs() < 1e-9);
    }

    #[test]
    fn ratios_are_clamped() {
        let k = FairnessKnob::new(1.0);
        // Zero usage would be ratio 0 → clamped at the band floor.
        let d = k.adjusted_demand(1.0, 0.0, 100.0);
        assert!((d - 0.05).abs() < 1e-12);
        let q = k.adjusted_queue_len(1.0, 1e12, 1.0);
        assert!((q - 20.0).abs() < 1e-9);
    }

    #[test]
    fn degenerate_targets_fall_back() {
        let k = FairnessKnob::new(1.0);
        assert_eq!(k.adjusted_demand(7.0, 10.0, 0.0), 7.0);
        assert_eq!(k.adjusted_queue_len(7.0, 0.0, 10.0), 7.0);
        assert_eq!(k.adjusted_queue_len(7.0, 10.0, 0.0), 7.0);
    }

    #[test]
    fn fair_target_scales_with_job_count() {
        assert_eq!(fair_target_ms(4, 100.0), 400.0);
        assert_eq!(fair_target_ms(0, 100.0), 100.0); // M floors at 1
        assert_eq!(fair_target_ms(2, -5.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn negative_epsilon_panics() {
        FairnessKnob::new(-1.0);
    }
}
