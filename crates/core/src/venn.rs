//! The Venn scheduler: IRS job ordering + tier-based device matching.

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::fairness::{fair_target_ms, FairnessKnob};
use crate::irs::{self, AllocationPlan, GroupSummary};
use crate::matching::{decide_tier, TierProfiler, TierRange};
use crate::{
    DeviceInfo, JobId, Request, ResourceSpec, Scheduler, SimTime, SupplyEstimator, VennConfig,
};

/// Fallback per-round response estimate (ms) used for the uncontended-JCT
/// guess before any profiling data exists.
const DEFAULT_RESPONSE_EST_MS: f64 = 120_000.0;

/// Fallback supply rate (devices/ms) when the estimator has seen nothing
/// eligible yet; keeps uncontended-JCT estimates finite.
const MIN_RATE: f64 = 1e-9;

#[derive(Debug)]
struct JobEntry {
    group: usize,
    /// Unassigned demand of the current request.
    pending: u32,
    /// Demand of the current request as submitted.
    demand: u32,
    /// Total remaining work in device-rounds (from the latest request).
    total_remaining: u64,
    active: bool,
    submit_time: SimTime,
    /// Requests that reached full allocation — the job's served rounds.
    allocs_done: u32,
    /// Estimated total number of rounds (from the first request).
    rounds_est: f64,
    /// Estimated JCT without contention (fairness `sd_i`).
    uncontended_jct_ms: f64,
    profiler: TierProfiler,
    tier: Option<TierRange>,
}

#[derive(Debug)]
struct GroupRecord {
    spec: ResourceSpec,
}

/// The Venn collaborative-learning resource manager (paper §4).
///
/// Composes the [`irs`] allocation plan (which job group owns each atomic
/// region of the eligibility diagram, refreshed on every request arrival
/// and completion) with per-job [tier-based matching](crate::matching) and
/// the [fairness knob](crate::fairness).
///
/// # Examples
///
/// ```
/// use venn_core::{
///     Capacity, DeviceId, DeviceInfo, JobId, Request, ResourceSpec, Scheduler,
///     VennConfig, VennScheduler,
/// };
///
/// let mut venn = VennScheduler::new(VennConfig::default());
/// venn.submit(Request::new(JobId::new(1), ResourceSpec::new(0.5, 0.5), 1, 1), 0);
/// venn.submit(Request::new(JobId::new(2), ResourceSpec::any(), 1, 1), 0);
///
/// // A high-end device goes to the scarce-spec job, not the general one.
/// let strong = DeviceInfo::new(DeviceId::new(1), Capacity::new(0.9, 0.9));
/// venn.on_check_in(&strong, 10);
/// assert_eq!(venn.assign(&strong, 10), Some(JobId::new(1)));
/// ```
#[derive(Debug)]
pub struct VennScheduler {
    config: VennConfig,
    knob: FairnessKnob,
    supply: SupplyEstimator,
    jobs: HashMap<JobId, JobEntry>,
    groups: Vec<GroupRecord>,
    spec_to_group: HashMap<ResourceSpec, usize>,
    plan: AllocationPlan,
    /// Per-group job order (ascending fairness-adjusted remaining demand).
    group_order: Vec<Vec<JobId>>,
    /// FIFO order over active jobs, used when `use_irs` is off.
    fifo_order: Vec<JobId>,
    last_rebuild: SimTime,
    rng: StdRng,
    name: String,
    stats: MatchingStats,
}

/// Counters describing how often tier-based matching engaged — useful for
/// calibration and the Fig. 13 tier sweep.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct MatchingStats {
    /// Requests for which a tier decision was evaluated.
    pub considered: u64,
    /// Requests that were tier-restricted.
    pub fired: u64,
    /// Requests whose profile was not yet ready.
    pub not_ready: u64,
    /// Sum of observed cost ratios `c` (over ready decisions).
    pub cost_ratio_sum: f64,
}

impl MatchingStats {
    /// Mean observed cost ratio `c = t_response / t_schedule`.
    pub fn mean_cost_ratio(&self) -> f64 {
        let ready = self.considered - self.not_ready;
        if ready == 0 {
            0.0
        } else {
            self.cost_ratio_sum / ready as f64
        }
    }
}

impl VennScheduler {
    /// Creates a scheduler from `config`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see [`VennConfig::validate`]).
    pub fn new(config: VennConfig) -> Self {
        config.validate();
        let name = match (config.use_irs, config.use_matching) {
            (true, true) => "venn",
            (true, false) => "venn-wo-match",
            (false, true) => "venn-wo-sched",
            (false, false) => "venn-disabled",
        };
        VennScheduler {
            knob: FairnessKnob::new(config.epsilon),
            supply: SupplyEstimator::new(config.supply_window_ms),
            jobs: HashMap::new(),
            groups: Vec::new(),
            spec_to_group: HashMap::new(),
            plan: AllocationPlan::default(),
            group_order: Vec::new(),
            fifo_order: Vec::new(),
            last_rebuild: 0,
            rng: StdRng::seed_from_u64(config.seed),
            name: name.to_string(),
            stats: MatchingStats::default(),
            config,
        }
    }

    /// Counters describing tier-matching engagement so far.
    pub fn matching_stats(&self) -> MatchingStats {
        self.stats
    }

    /// The scheduler configuration.
    pub fn config(&self) -> &VennConfig {
        &self.config
    }

    /// Number of resource-homogeneous job groups seen so far.
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    /// Number of jobs with an active request.
    pub fn active_jobs(&self) -> usize {
        self.jobs.values().filter(|j| j.active).count()
    }

    /// Estimated fair-share JCT `T_i = M · sd_i` for `job`, if known.
    ///
    /// Exposed for the Fig. 14 fairness experiments.
    pub fn fair_target_of(&self, job: JobId) -> Option<f64> {
        let entry = self.jobs.get(&job)?;
        let m = self.active_jobs().max(1);
        Some(fair_target_ms(m, entry.uncontended_jct_ms))
    }

    fn group_index(&mut self, spec: ResourceSpec) -> usize {
        if let Some(&g) = self.spec_to_group.get(&spec) {
            return g;
        }
        let g = self.groups.len();
        assert!(g < 128, "at most 128 distinct resource specs supported");
        self.groups.push(GroupRecord { spec });
        self.spec_to_group.insert(spec, g);
        self.group_order.push(Vec::new());
        g
    }

    /// Recomputes the allocation plan and job orders (Algorithm 1).
    ///
    /// Invoked on request arrival and completion — exactly the paper's
    /// triggers — plus a periodic refresh so the plan tracks supply drift.
    pub fn rebuild_now(&mut self, now: SimTime) {
        self.last_rebuild = now;
        let specs: Vec<ResourceSpec> = self.groups.iter().map(|g| g.spec).collect();

        // Per-group eligible supply |S_j|.
        let rates: Vec<f64> = specs.iter().map(|s| self.supply.rate(now, s)).collect();

        // Fairness inputs and intra-group ordering.
        let m_total = self.jobs.values().filter(|j| j.active).count().max(1);
        let mut summaries: Vec<GroupSummary> = Vec::new();
        for (g, order) in self.group_order.iter_mut().enumerate() {
            order.clear();
            let mut members: Vec<(f64, SimTime, JobId)> = Vec::new();
            let mut sum_targets = 0.0;
            let mut sum_usage = 0.0;
            for (&id, entry) in self.jobs.iter() {
                if !entry.active || entry.group != g {
                    continue;
                }
                let target = fair_target_ms(m_total, entry.uncontended_jct_ms);
                // Fairness time-usage t_i: the share of the job's
                // uncontended JCT it has already been served
                // (progress × sd_i). A starved job has low usage relative
                // to its fair target and rises in priority.
                let progress = (entry.allocs_done as f64 / entry.rounds_est).min(1.0);
                let usage = progress * entry.uncontended_jct_ms;
                // Remaining demand: the paper orders by the current request
                // by default but prefers total remaining demand when jobs
                // disclose it (§4.2.1) — ours do, via `Request`.
                let remaining = (entry.total_remaining as f64).max(entry.pending as f64);
                let adjusted = self.knob.adjusted_demand(remaining, usage, target);
                sum_targets += target;
                sum_usage += usage.max(1.0);
                members.push((adjusted, entry.submit_time, id));
            }
            if members.is_empty() {
                continue;
            }
            // Smallest adjusted remaining demand first (§4.2.1); ties by
            // arrival then id for determinism.
            members.sort_by(|a, b| {
                a.0.partial_cmp(&b.0)
                    .expect("non-finite adjusted demand")
                    .then(a.1.cmp(&b.1))
                    .then(a.2.cmp(&b.2))
            });
            let queue_len =
                self.knob
                    .adjusted_queue_len(members.len() as f64, sum_targets, sum_usage);
            *order = members.into_iter().map(|(_, _, id)| id).collect();
            summaries.push(GroupSummary {
                index: g,
                eligible_supply: rates[g],
                queue_len,
            });
        }

        // FIFO order for the no-IRS ablation arm.
        let mut fifo: Vec<(SimTime, JobId)> = self
            .jobs
            .iter()
            .filter(|(_, e)| e.active)
            .map(|(&id, e)| (e.submit_time, id))
            .collect();
        fifo.sort();
        self.fifo_order = fifo.into_iter().map(|(_, id)| id).collect();

        if self.config.use_irs {
            let regions = self.supply.region_supplies(now, &specs);
            self.plan = irs::allocate_with(&summaries, &regions, self.config.use_steal);
        }
    }

    fn try_assign_job(jobs: &mut HashMap<JobId, JobEntry>, id: JobId, device: &DeviceInfo) -> bool {
        let Some(entry) = jobs.get_mut(&id) else {
            return false;
        };
        if !entry.active || entry.pending == 0 {
            return false;
        }
        if let Some((lo, hi)) = entry.tier {
            let s = device.score();
            if s < lo || s >= hi {
                return false;
            }
        }
        entry.pending -= 1;
        entry.profiler.record_participant(device.score());
        true
    }
}

impl Scheduler for VennScheduler {
    fn name(&self) -> &str {
        &self.name
    }

    fn submit(&mut self, request: Request, now: SimTime) {
        let group = self.group_index(request.spec);
        let rate = self.supply.rate(now, &request.spec).max(MIN_RATE);
        let rounds_est = (request.total_remaining as f64 / request.demand as f64).max(1.0);
        let uncontended = rounds_est * (request.demand as f64 / rate + DEFAULT_RESPONSE_EST_MS);

        let tiers = self.config.tiers;
        let use_matching = self.config.use_matching;
        let min_samples = self.config.min_profile_samples;
        let u = if tiers > 1 {
            self.rng.gen_range(0..tiers)
        } else {
            0
        };

        let entry = self.jobs.entry(request.job).or_insert_with(|| JobEntry {
            group,
            pending: 0,
            demand: 0,
            total_remaining: 0,
            active: false,
            submit_time: now,
            allocs_done: 0,
            rounds_est: rounds_est.max(1.0),
            uncontended_jct_ms: uncontended,
            profiler: TierProfiler::new(),
            tier: None,
        });
        entry.group = group;
        entry.pending = request.demand;
        entry.demand = request.demand;
        entry.total_remaining = request.total_remaining;
        entry.active = true;
        entry.submit_time = now;
        entry.tier = if use_matching && tiers > 1 {
            self.stats.considered += 1;
            if entry.profiler.is_ready(min_samples) {
                self.stats.cost_ratio_sum += entry.profiler.cost_ratio().unwrap_or(0.0);
            } else {
                self.stats.not_ready += 1;
            }
            let tier = decide_tier(&entry.profiler, tiers, u, min_samples);
            if tier.is_some() {
                self.stats.fired += 1;
            }
            tier
        } else {
            None
        };

        self.rebuild_now(now);
    }

    fn withdraw(&mut self, job: JobId, now: SimTime) {
        if let Some(entry) = self.jobs.get_mut(&job) {
            if entry.active {
                entry.active = false;
                entry.pending = 0;
                entry.tier = None;
            }
        }
        self.rebuild_now(now);
    }

    fn add_demand(&mut self, job: JobId, count: u32, _now: SimTime) {
        if let Some(entry) = self.jobs.get_mut(&job) {
            if entry.active {
                entry.pending = entry.pending.saturating_add(count);
            }
        }
    }

    fn on_check_in(&mut self, device: &DeviceInfo, now: SimTime) {
        self.supply.record(now, device.capacity());
    }

    fn assign(&mut self, device: &DeviceInfo, now: SimTime) -> Option<JobId> {
        if now.saturating_sub(self.last_rebuild) > self.config.rebuild_interval_ms {
            self.rebuild_now(now);
        }
        if self.config.use_irs {
            let specs: Vec<ResourceSpec> = self.groups.iter().map(|g| g.spec).collect();
            let mask = SupplyEstimator::mask_of(device.capacity(), &specs);
            if mask == 0 {
                return None;
            }
            let order: Vec<usize> = self.plan.offer_order(mask).collect();
            for g in order {
                // `offer_order` may name a group whose bit is unset when the
                // plan is stale; re-check eligibility.
                if mask & (1u128 << g) == 0 {
                    continue;
                }
                let candidates = self.group_order[g].clone();
                for id in candidates {
                    if Self::try_assign_job(&mut self.jobs, id, device) {
                        return Some(id);
                    }
                }
            }
            None
        } else {
            let order = self.fifo_order.clone();
            for id in order {
                let eligible = self
                    .jobs
                    .get(&id)
                    .map(|e| self.groups[e.group].spec.is_eligible(device.capacity()))
                    .unwrap_or(false);
                if eligible && Self::try_assign_job(&mut self.jobs, id, device) {
                    return Some(id);
                }
            }
            None
        }
    }

    fn on_response(&mut self, job: JobId, device: &DeviceInfo, response_ms: u64, _now: SimTime) {
        if let Some(entry) = self.jobs.get_mut(&job) {
            entry.profiler.record_response(device.score(), response_ms);
        }
    }

    fn on_alloc_complete(&mut self, job: JobId, delay_ms: u64, _now: SimTime) {
        if let Some(entry) = self.jobs.get_mut(&job) {
            entry.profiler.record_sched_delay(delay_ms);
            entry.allocs_done += 1;
        }
    }

    fn pending_demand(&self, job: JobId) -> Option<u32> {
        self.jobs.get(&job).filter(|e| e.active).map(|e| e.pending)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Capacity, DeviceId};

    fn dev(id: u64, cpu: f64, mem: f64) -> DeviceInfo {
        DeviceInfo::new(DeviceId::new(id), Capacity::new(cpu, mem))
    }

    fn feed_supply(s: &mut VennScheduler, now: SimTime) {
        // Mixed population: 3 low-end for each high-end device.
        for i in 0..40 {
            let (cpu, mem) = if i % 4 == 0 { (0.9, 0.9) } else { (0.2, 0.2) };
            s.on_check_in(&dev(1000 + i, cpu, mem), now);
        }
    }

    #[test]
    fn assigns_eligible_job_only() {
        let mut s = VennScheduler::new(VennConfig::default());
        s.submit(
            Request::new(JobId::new(1), ResourceSpec::new(0.5, 0.5), 2, 2),
            0,
        );
        let weak = dev(1, 0.1, 0.1);
        assert_eq!(s.assign(&weak, 1), None);
        let strong = dev(2, 0.9, 0.9);
        assert_eq!(s.assign(&strong, 1), Some(JobId::new(1)));
        assert_eq!(s.pending_demand(JobId::new(1)), Some(1));
    }

    #[test]
    fn scarce_spec_job_wins_contended_device() {
        let mut s = VennScheduler::new(VennConfig::default());
        feed_supply(&mut s, 0);
        s.submit(Request::new(JobId::new(1), ResourceSpec::any(), 5, 5), 1);
        s.submit(
            Request::new(JobId::new(2), ResourceSpec::new(0.5, 0.5), 5, 5),
            1,
        );
        // High-end device is claimed by the high-perf job...
        assert_eq!(s.assign(&dev(1, 0.9, 0.9), 2), Some(JobId::new(2)));
        // ...while a low-end device can only serve the general job.
        assert_eq!(s.assign(&dev(2, 0.1, 0.1), 2), Some(JobId::new(1)));
    }

    #[test]
    fn smaller_demand_served_first_within_group() {
        let mut s = VennScheduler::new(VennConfig::default());
        feed_supply(&mut s, 0);
        s.submit(Request::new(JobId::new(1), ResourceSpec::any(), 10, 10), 0);
        s.submit(Request::new(JobId::new(2), ResourceSpec::any(), 2, 2), 0);
        // Job 2 (smaller remaining demand) gets devices first.
        assert_eq!(s.assign(&dev(1, 0.5, 0.5), 1), Some(JobId::new(2)));
        assert_eq!(s.assign(&dev(2, 0.5, 0.5), 1), Some(JobId::new(2)));
        assert_eq!(s.assign(&dev(3, 0.5, 0.5), 1), Some(JobId::new(1)));
    }

    #[test]
    fn fallback_serves_other_groups_when_owner_idle() {
        let mut s = VennScheduler::new(VennConfig::default());
        feed_supply(&mut s, 0);
        // Only a general job is active; high-end devices must still be used.
        s.submit(Request::new(JobId::new(1), ResourceSpec::any(), 2, 2), 0);
        s.submit(
            Request::new(JobId::new(2), ResourceSpec::new(0.5, 0.5), 1, 1),
            0,
        );
        s.withdraw(JobId::new(2), 1); // high-perf group now empty
        assert_eq!(s.assign(&dev(1, 0.9, 0.9), 2), Some(JobId::new(1)));
    }

    #[test]
    fn withdraw_stops_assignment() {
        let mut s = VennScheduler::new(VennConfig::default());
        s.submit(Request::new(JobId::new(1), ResourceSpec::any(), 5, 5), 0);
        s.withdraw(JobId::new(1), 10);
        assert_eq!(s.assign(&dev(1, 0.5, 0.5), 11), None);
        assert_eq!(s.pending_demand(JobId::new(1)), None);
    }

    #[test]
    fn add_demand_restores_capacity() {
        let mut s = VennScheduler::new(VennConfig::default());
        s.submit(Request::new(JobId::new(1), ResourceSpec::any(), 1, 1), 0);
        assert_eq!(s.assign(&dev(1, 0.5, 0.5), 1), Some(JobId::new(1)));
        assert_eq!(s.assign(&dev(2, 0.5, 0.5), 1), None);
        s.add_demand(JobId::new(1), 1, 2);
        assert_eq!(s.assign(&dev(3, 0.5, 0.5), 2), Some(JobId::new(1)));
    }

    #[test]
    fn fifo_mode_serves_in_arrival_order() {
        let mut s = VennScheduler::new(VennConfig::matching_only());
        s.submit(Request::new(JobId::new(1), ResourceSpec::any(), 10, 10), 0);
        s.submit(Request::new(JobId::new(2), ResourceSpec::any(), 1, 1), 5);
        // FIFO ignores remaining demand: job 1 first.
        assert_eq!(s.assign(&dev(1, 0.5, 0.5), 6), Some(JobId::new(1)));
    }

    #[test]
    fn unknown_job_operations_are_harmless() {
        let mut s = VennScheduler::new(VennConfig::default());
        s.withdraw(JobId::new(99), 0);
        s.add_demand(JobId::new(99), 3, 0);
        s.on_response(JobId::new(99), &dev(1, 0.5, 0.5), 100, 100);
        assert_eq!(s.pending_demand(JobId::new(99)), None);
    }

    #[test]
    fn resubmission_reuses_job_entry() {
        let mut s = VennScheduler::new(VennConfig::default());
        s.submit(Request::new(JobId::new(1), ResourceSpec::any(), 2, 4), 0);
        s.withdraw(JobId::new(1), 100);
        s.submit(Request::new(JobId::new(1), ResourceSpec::any(), 2, 2), 100);
        assert_eq!(s.pending_demand(JobId::new(1)), Some(2));
        assert_eq!(s.active_jobs(), 1);
    }

    #[test]
    fn fairness_promotes_underserved_large_job() {
        let mut cfg = VennConfig::with_fairness(2.0);
        cfg.use_matching = false;
        let mut s = VennScheduler::new(cfg);
        feed_supply(&mut s, 0);
        // Large job that has received no service vs small job that has
        // already consumed far beyond its fair share.
        s.submit(Request::new(JobId::new(1), ResourceSpec::any(), 50, 50), 0);
        s.submit(Request::new(JobId::new(2), ResourceSpec::any(), 2, 2), 0);
        // Simulate job 2 having already been served a full round while the
        // large job received nothing.
        s.on_alloc_complete(JobId::new(2), 1_000, 50_000);
        s.withdraw(JobId::new(2), 50_000);
        s.submit(
            Request::new(JobId::new(2), ResourceSpec::any(), 2, 2),
            50_000,
        );
        // Under SRJF job 2 would win; with ε=2 and its fair share consumed
        // it must yield to the untouched large job.
        assert_eq!(s.assign(&dev(1, 0.5, 0.5), 50_001), Some(JobId::new(1)));
    }

    #[test]
    fn name_reflects_ablation() {
        assert_eq!(VennScheduler::new(VennConfig::default()).name(), "venn");
        assert_eq!(
            VennScheduler::new(VennConfig::scheduling_only()).name(),
            "venn-wo-match"
        );
        assert_eq!(
            VennScheduler::new(VennConfig::matching_only()).name(),
            "venn-wo-sched"
        );
    }

    #[test]
    fn group_count_tracks_distinct_specs() {
        let mut s = VennScheduler::new(VennConfig::default());
        s.submit(Request::new(JobId::new(1), ResourceSpec::any(), 1, 1), 0);
        s.submit(Request::new(JobId::new(2), ResourceSpec::any(), 1, 1), 0);
        s.submit(
            Request::new(JobId::new(3), ResourceSpec::new(0.5, 0.0), 1, 1),
            0,
        );
        assert_eq!(s.group_count(), 2);
        assert_eq!(s.active_jobs(), 3);
    }
}
