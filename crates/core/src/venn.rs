//! The Venn scheduler: IRS job ordering + tier-based device matching.
//!
//! ## Incremental maintenance
//!
//! The scheduler's hot path is [`assign`](Scheduler::assign) — it runs on
//! every device check-in, millions of times per simulated day — while its
//! *inputs* (the per-group job order and the IRS allocation plan) only
//! change on request arrival/completion and on supply drift. The
//! implementation therefore maintains that state by deltas:
//!
//! * **Dirty-flag per job group** — each group's serving order is re-sorted
//!   only when a member's sort key actually changed (membership, remaining
//!   demand crossing the current request's pending count, fairness usage),
//!   not on every trigger.
//! * **Persistent candidate index** — `assign` walks the group orders and
//!   FIFO order in place; no per-check-in clones or allocations.
//! * **O(regions) supply snapshots** — the IRS plan is refreshed from
//!   [`SupplyEstimator`]'s incremental mask index instead of a full
//!   capacity-grid walk.
//!
//! ## Dense data plane
//!
//! All of that state is *slot-indexed*, never hash-addressed. A job's
//! [`ResourceSpec`] is interned into a dense [`GroupId`] at submit time
//! ([`SpecInterner`]); job state lives in a generation-checked
//! [`SlotMap`], and `members`/`group_order`/`fifo_order` hold
//! [`JobSlot`]s, so every candidate probe in `assign` is one array access.
//! The external [`JobId`] space crosses into slots through a direct-indexed
//! [`JobIdIndex`] at the trait boundary, and the IRS plan's owner table is
//! a sorted mask table searched by binary search — no `HashMap` anywhere on
//! the check-in/submit/assign path, and no steady-state allocation (pinned
//! by the counting-allocator test in `tests/no_alloc_steady_state.rs`).
//!
//! The triggers are unchanged from the paper (request arrival, request
//! completion, and a periodic refresh for supply drift), so incremental and
//! full-rebuild modes ([`VennConfig::incremental`]) produce byte-identical
//! assignment streams — pinned by `tests/venn_incremental_parity.rs`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::fairness::{fair_target_ms, FairnessKnob};
use crate::intern::SpecInterner;
use crate::irs::{self, AllocationPlan, GroupSummary, IrsScratch};
use crate::matching::{decide_tier, TierProfiler, TierRange};
use crate::slotmap::{JobIdIndex, JobSlot, SlotMap};
use crate::snapshot::{SnapError, SnapReader, SnapWriter, Snapshot};
use crate::supply::RegionSupply;
use crate::{
    CheckInRecord, DeviceInfo, GroupId, JobId, Request, ResourceSpec, Scheduler, SimTime,
    SupplyEstimator, VennConfig,
};

/// Fallback per-round response estimate (ms) used for the uncontended-JCT
/// guess before any profiling data exists.
const DEFAULT_RESPONSE_EST_MS: f64 = 120_000.0;

/// Fallback supply rate (devices/ms) when the estimator has seen nothing
/// eligible yet; keeps uncontended-JCT estimates finite.
const MIN_RATE: f64 = 1e-9;

#[derive(Debug)]
struct JobEntry {
    /// External identity, carried so slot-addressed walks can answer in
    /// `JobId` terms without a reverse lookup.
    job: JobId,
    group: GroupId,
    /// Unassigned demand of the current request.
    pending: u32,
    /// Demand of the current request as submitted.
    demand: u32,
    /// Total remaining work in device-rounds (from the latest request).
    total_remaining: u64,
    active: bool,
    submit_time: SimTime,
    /// Requests that reached full allocation — the job's served rounds.
    allocs_done: u32,
    /// Estimated total number of rounds (from the first request).
    rounds_est: f64,
    /// Estimated JCT without contention (fairness `sd_i`).
    uncontended_jct_ms: f64,
    profiler: TierProfiler,
    tier: Option<TierRange>,
}

impl JobEntry {
    /// The remaining-demand component of the intra-group sort key:
    /// `max(total_remaining, pending)` (§4.2.1 — total remaining demand
    /// when disclosed, floored by the current request). Pending only moves
    /// the key while it exceeds the disclosed total (over-committed final
    /// rounds), which is what lets most assignments skip re-sorting.
    fn remaining_key(&self) -> u64 {
        self.total_remaining.max(self.pending as u64)
    }
}

impl Snapshot for JobEntry {
    fn encode(&self, w: &mut SnapWriter) {
        w.u64(self.job.as_u64());
        w.u64(self.group.as_u64());
        w.u32(self.pending);
        w.u32(self.demand);
        w.u64(self.total_remaining);
        w.bool(self.active);
        w.u64(self.submit_time);
        w.u32(self.allocs_done);
        w.f64(self.rounds_est);
        w.f64(self.uncontended_jct_ms);
        self.profiler.encode(w);
        w.option(&self.tier, |w, &(lo, hi)| {
            w.f64(lo);
            w.f64(hi);
        });
    }

    fn decode(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(JobEntry {
            job: JobId::new(r.u64()?),
            group: GroupId::new(r.u64()?),
            pending: r.u32()?,
            demand: r.u32()?,
            total_remaining: r.u64()?,
            active: r.bool()?,
            submit_time: r.u64()?,
            allocs_done: r.u32()?,
            rounds_est: r.f64()?,
            uncontended_jct_ms: r.f64()?,
            profiler: TierProfiler::decode(r)?,
            tier: r.option(|r| Ok((r.f64()?, r.f64()?)))?,
        })
    }
}

/// The Venn collaborative-learning resource manager (paper §4).
///
/// Composes the [`irs`] allocation plan (which job group owns each atomic
/// region of the eligibility diagram, refreshed on every request arrival
/// and completion) with per-job [tier-based matching](crate::matching) and
/// the [fairness knob](crate::fairness).
///
/// # Examples
///
/// ```
/// use venn_core::{
///     Capacity, DeviceId, DeviceInfo, JobId, Request, ResourceSpec, Scheduler,
///     VennConfig, VennScheduler,
/// };
///
/// let mut venn = VennScheduler::new(VennConfig::default());
/// venn.submit(Request::new(JobId::new(1), ResourceSpec::new(0.5, 0.5), 1, 1), 0);
/// venn.submit(Request::new(JobId::new(2), ResourceSpec::any(), 1, 1), 0);
///
/// // A high-end device goes to the scarce-spec job, not the general one.
/// let strong = DeviceInfo::new(DeviceId::new(1), Capacity::new(0.9, 0.9));
/// venn.on_check_in(&strong, 10);
/// assert_eq!(venn.assign(&strong, 10), Some(JobId::new(1)));
/// ```
#[derive(Debug)]
pub struct VennScheduler {
    config: VennConfig,
    knob: FairnessKnob,
    supply: SupplyEstimator,
    /// Per-job state, slot-addressed. Entries persist across withdrawals
    /// (the tier profiler survives resubmission), so a job's slot is
    /// stable for the scheduler's lifetime.
    jobs: SlotMap<JobEntry>,
    /// `JobId` → slot translation at the trait boundary (direct-indexed).
    job_slots: JobIdIndex,
    /// `ResourceSpec` → dense `GroupId`, fixed at first submission.
    interner: SpecInterner,
    plan: AllocationPlan,
    /// Active members of each group in insertion order — the stable input
    /// every order rebuild sorts from, identical across incremental and
    /// full-rebuild modes.
    members: Vec<Vec<JobSlot>>,
    /// Per-group job order (ascending fairness-adjusted remaining demand).
    /// Persistent: `assign` iterates it in place, no per-check-in clone.
    group_order: Vec<Vec<JobSlot>>,
    /// Fairness-adjusted queue length per group, cached from the group's
    /// last order rebuild (valid while the group is clean).
    queue_len: Vec<f64>,
    /// Dirty flag per group: set when a member's sort key, the membership,
    /// or (with fairness on) its usage sums may have changed since the
    /// group's order was last rebuilt.
    dirty: Vec<bool>,
    /// FIFO order over active jobs, used when `use_irs` is off. Maintained
    /// incrementally sorted by `(submit_time, id)` — and only in that
    /// ablation arm; the IRS arms never touch it.
    fifo_order: Vec<JobSlot>,
    /// Number of jobs with an active request (the fairness `M`).
    active_count: usize,
    last_rebuild: SimTime,
    rng: StdRng,
    name: String,
    stats: MatchingStats,
    /// Scratch buffers reused across plan refreshes and order rebuilds.
    rates_scratch: Vec<f64>,
    regions_scratch: Vec<RegionSupply>,
    summaries_scratch: Vec<GroupSummary>,
    irs_scratch: IrsScratch,
    scored_scratch: Vec<(f64, SimTime, JobId, JobSlot)>,
    fifo_scratch: Vec<(SimTime, JobId, JobSlot)>,
}

/// Counters describing how often tier-based matching engaged — useful for
/// calibration and the Fig. 13 tier sweep.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct MatchingStats {
    /// Requests for which a tier decision was evaluated.
    pub considered: u64,
    /// Requests that were tier-restricted.
    pub fired: u64,
    /// Requests whose profile was not yet ready.
    pub not_ready: u64,
    /// Sum of observed cost ratios `c` (over ready decisions).
    pub cost_ratio_sum: f64,
}

impl MatchingStats {
    /// Mean observed cost ratio `c = t_response / t_schedule`.
    pub fn mean_cost_ratio(&self) -> f64 {
        let ready = self.considered - self.not_ready;
        if ready == 0 {
            0.0
        } else {
            self.cost_ratio_sum / ready as f64
        }
    }
}

impl VennScheduler {
    /// Creates a scheduler from `config`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see [`VennConfig::validate`]).
    pub fn new(config: VennConfig) -> Self {
        config.validate();
        let mut name = match (config.use_irs, config.use_matching) {
            (true, true) => "venn",
            (true, false) => "venn-wo-match",
            (false, true) => "venn-wo-sched",
            (false, false) => "venn-disabled",
        }
        .to_string();
        if !config.incremental {
            name.push_str("-full");
        }
        VennScheduler {
            knob: FairnessKnob::new(config.epsilon),
            supply: SupplyEstimator::new(config.supply_window_ms),
            jobs: SlotMap::new(),
            job_slots: JobIdIndex::new(),
            interner: SpecInterner::new(),
            plan: AllocationPlan::default(),
            members: Vec::new(),
            group_order: Vec::new(),
            queue_len: Vec::new(),
            dirty: Vec::new(),
            fifo_order: Vec::new(),
            active_count: 0,
            last_rebuild: 0,
            rng: StdRng::seed_from_u64(config.seed),
            name,
            stats: MatchingStats::default(),
            rates_scratch: Vec::new(),
            regions_scratch: Vec::new(),
            summaries_scratch: Vec::new(),
            irs_scratch: IrsScratch::default(),
            scored_scratch: Vec::new(),
            fifo_scratch: Vec::new(),
            config,
        }
    }

    /// Counters describing tier-matching engagement so far.
    pub fn matching_stats(&self) -> MatchingStats {
        self.stats
    }

    /// The scheduler configuration.
    pub fn config(&self) -> &VennConfig {
        &self.config
    }

    /// Number of resource-homogeneous job groups seen so far.
    pub fn group_count(&self) -> usize {
        self.members.len()
    }

    /// Number of jobs with an active request.
    pub fn active_jobs(&self) -> usize {
        debug_assert_eq!(
            self.active_count,
            self.jobs.values().filter(|j| j.active).count()
        );
        self.active_count
    }

    /// Estimated fair-share JCT `T_i = M · sd_i` for `job`, if known.
    ///
    /// Exposed for the Fig. 14 fairness experiments.
    pub fn fair_target_of(&self, job: JobId) -> Option<f64> {
        let entry = self.jobs.get(self.job_slots.get(job)?)?;
        let m = self.active_jobs().max(1);
        Some(fair_target_ms(m, entry.uncontended_jct_ms))
    }

    /// Interns `spec`, growing the per-group state on first sight.
    fn group_index(&mut self, spec: ResourceSpec) -> GroupId {
        let (g, is_new) = self.interner.intern(spec);
        if is_new {
            assert!(
                g.index() < 128,
                "at most 128 distinct resource specs supported"
            );
            let registered = self.supply.register_spec(spec);
            debug_assert_eq!(registered, g.index(), "supply bit must equal group index");
            self.members.push(Vec::new());
            self.group_order.push(Vec::new());
            self.queue_len.push(0.0);
            self.dirty.push(false);
        }
        g
    }

    /// Recomputes the allocation plan and all job orders from scratch
    /// (Algorithm 1), ignoring dirty flags — the full-rebuild reference.
    ///
    /// The scheduler normally refreshes itself on request arrival and
    /// completion — exactly the paper's triggers — plus a periodic refresh
    /// so the plan tracks supply drift; this entry point exists for
    /// benchmarks and external callers that invalidated supply wholesale.
    pub fn rebuild_now(&mut self, now: SimTime) {
        self.mark_all_dirty();
        self.refresh(now);
    }

    /// Brings job orders (dirty groups only) and the IRS plan up to date.
    ///
    /// Runs at every trigger the paper names: request arrival (`submit`),
    /// request completion (`withdraw`), and the periodic supply-drift
    /// refresh in `assign`. In full-rebuild mode every group is dirtied
    /// first, so both modes sort the same keys at the same trigger points
    /// and produce identical orders and plans.
    fn refresh(&mut self, now: SimTime) {
        self.last_rebuild = now;
        if !self.config.incremental {
            self.mark_all_dirty();
        }
        if !self.config.use_irs {
            // FIFO arm: group orders and the plan are never consulted.
            if !self.config.incremental {
                // Genuine reference for the parity harness: recompute the
                // FIFO order from the job table, as a full rebuild would,
                // instead of trusting the incremental insertions.
                self.fifo_scratch.clear();
                for (slot, e) in self.jobs.iter() {
                    if e.active {
                        self.fifo_scratch.push((e.submit_time, e.job, slot));
                    }
                }
                self.fifo_scratch.sort_unstable();
                self.fifo_order.clear();
                self.fifo_order
                    .extend(self.fifo_scratch.iter().map(|&(_, _, slot)| slot));
            }
            for d in &mut self.dirty {
                *d = false;
            }
            return;
        }
        let m_total = self.active_count.max(1);
        for g in 0..self.members.len() {
            if std::mem::take(&mut self.dirty[g]) {
                self.rebuild_group_order(g, m_total);
            }
        }

        // Refresh the plan against current supply: per-group rates |S_j|
        // and atomic-region supplies from the estimator's mask index.
        self.supply.registered_rates(now, &mut self.rates_scratch);
        self.supply
            .registered_regions(now, &mut self.regions_scratch);
        self.summaries_scratch.clear();
        for g in 0..self.members.len() {
            if self.group_order[g].is_empty() {
                continue;
            }
            self.summaries_scratch.push(GroupSummary {
                index: g,
                eligible_supply: self.rates_scratch[g],
                queue_len: self.queue_len[g],
            });
        }
        irs::allocate_into(
            &mut self.plan,
            &self.summaries_scratch,
            &self.regions_scratch,
            self.config.use_steal,
            &mut self.irs_scratch,
        );
    }

    /// Re-sorts one group's serving order and recomputes its queue length.
    fn rebuild_group_order(&mut self, g: usize, m_total: usize) {
        self.scored_scratch.clear();
        let mut sum_targets = 0.0;
        let mut sum_usage = 0.0;
        for &slot in &self.members[g] {
            let entry = self.jobs.get(slot).expect("group member slot is live");
            debug_assert!(entry.active && entry.group.index() == g);
            let target = fair_target_ms(m_total, entry.uncontended_jct_ms);
            // Fairness time-usage t_i: the share of the job's
            // uncontended JCT it has already been served
            // (progress × sd_i). A starved job has low usage relative
            // to its fair target and rises in priority.
            let progress = (entry.allocs_done as f64 / entry.rounds_est).min(1.0);
            let usage = progress * entry.uncontended_jct_ms;
            // Remaining demand: the paper orders by the current request
            // by default but prefers total remaining demand when jobs
            // disclose it (§4.2.1) — ours do, via `Request`.
            let adjusted = self
                .knob
                .adjusted_demand(entry.remaining_key() as f64, usage, target);
            sum_targets += target;
            sum_usage += usage.max(1.0);
            self.scored_scratch
                .push((adjusted, entry.submit_time, entry.job, slot));
        }
        // Smallest adjusted remaining demand first (§4.2.1); ties by
        // arrival then id for determinism. The key is total (ids are
        // unique), so the unstable sort is deterministic.
        self.scored_scratch.sort_unstable_by(|a, b| {
            a.0.partial_cmp(&b.0)
                .expect("non-finite adjusted demand")
                .then(a.1.cmp(&b.1))
                .then(a.2.cmp(&b.2))
        });
        self.queue_len[g] =
            self.knob
                .adjusted_queue_len(self.scored_scratch.len() as f64, sum_targets, sum_usage);
        self.group_order[g].clear();
        self.group_order[g].extend(self.scored_scratch.iter().map(|&(_, _, _, slot)| slot));
    }

    /// Marks every group dirty — used when a change affects all sort keys
    /// (the fairness knob couples them through `M` and the usage sums).
    fn mark_all_dirty(&mut self) {
        for d in &mut self.dirty {
            *d = true;
        }
    }

    fn fifo_remove(&mut self, slot: JobSlot) {
        if let Some(pos) = self.fifo_order.iter().position(|&s| s == slot) {
            self.fifo_order.remove(pos);
        }
    }

    /// Inserts the job at its sorted `(submit_time, id)` position. Callers
    /// must have updated the job's entry (and removed any stale position)
    /// first.
    fn fifo_insert(&mut self, slot: JobSlot, job: JobId, submit_time: SimTime) {
        let jobs = &self.jobs;
        let pos = self.fifo_order.partition_point(|&s| {
            let e = jobs.get(s).expect("fifo slot is live");
            (e.submit_time, e.job) < (submit_time, job)
        });
        self.fifo_order.insert(pos, slot);
    }

    /// Offers `device` to `g`'s members in serving order. On success the
    /// group is re-flagged dirty only if the winner's sort key moved
    /// (pending dropped below the disclosed total remaining).
    fn assign_from_group(&mut self, g: usize, device: &DeviceInfo) -> Option<JobId> {
        for i in 0..self.group_order[g].len() {
            let slot = self.group_order[g][i];
            if let Some((job, key_changed)) = Self::try_assign_job(&mut self.jobs, slot, device) {
                if key_changed {
                    self.dirty[g] = true;
                }
                return Some(job);
            }
        }
        None
    }

    /// Attempts the assignment; `Some((job, key_changed))` on success,
    /// where `key_changed` reports whether the job's intra-group sort key
    /// moved.
    fn try_assign_job(
        jobs: &mut SlotMap<JobEntry>,
        slot: JobSlot,
        device: &DeviceInfo,
    ) -> Option<(JobId, bool)> {
        let entry = jobs.get_mut(slot)?;
        if !entry.active || entry.pending == 0 {
            return None;
        }
        if let Some((lo, hi)) = entry.tier {
            let s = device.score();
            if s < lo || s >= hi {
                return None;
            }
        }
        let key_before = entry.remaining_key();
        entry.pending -= 1;
        entry.profiler.record_participant(device.score());
        Some((entry.job, entry.remaining_key() != key_before))
    }
}

impl Scheduler for VennScheduler {
    fn name(&self) -> &str {
        &self.name
    }

    fn submit(&mut self, request: Request, now: SimTime) {
        let group = self.group_index(request.spec);
        let rate = self
            .supply
            .registered_rate(now, group.index())
            .max(MIN_RATE);
        let rounds_est = (request.total_remaining as f64 / request.demand as f64).max(1.0);
        let uncontended = rounds_est * (request.demand as f64 / rate + DEFAULT_RESPONSE_EST_MS);

        let tiers = self.config.tiers;
        let use_matching = self.config.use_matching;
        let min_samples = self.config.min_profile_samples;
        let u = if tiers > 1 {
            self.rng.gen_range(0..tiers)
        } else {
            0
        };

        let slot = match self.job_slots.get(request.job) {
            Some(slot) => slot,
            None => {
                let slot = self.jobs.insert(JobEntry {
                    job: request.job,
                    group,
                    pending: 0,
                    demand: 0,
                    total_remaining: 0,
                    active: false,
                    submit_time: now,
                    allocs_done: 0,
                    rounds_est: rounds_est.max(1.0),
                    uncontended_jct_ms: uncontended,
                    profiler: TierProfiler::new(),
                    tier: None,
                });
                self.job_slots.set(request.job, slot);
                slot
            }
        };
        let entry = self.jobs.get_mut(slot).expect("slot just resolved");
        let was_active = entry.active;
        let old_group = entry.group;
        entry.group = group;
        entry.pending = request.demand;
        entry.demand = request.demand;
        entry.total_remaining = request.total_remaining;
        entry.active = true;
        entry.submit_time = now;
        entry.tier = if use_matching && tiers > 1 {
            self.stats.considered += 1;
            if entry.profiler.is_ready(min_samples) {
                self.stats.cost_ratio_sum += entry.profiler.cost_ratio().unwrap_or(0.0);
            } else {
                self.stats.not_ready += 1;
            }
            let tier = decide_tier(&mut entry.profiler, tiers, u, min_samples);
            if tier.is_some() {
                self.stats.fired += 1;
            }
            tier
        } else {
            None
        };

        // Delta maintenance: membership, dirty flags, FIFO position.
        if !was_active {
            self.active_count += 1;
            self.members[group.index()].push(slot);
        } else if old_group != group {
            self.members[old_group.index()].retain(|&s| s != slot);
            self.members[group.index()].push(slot);
            self.dirty[old_group.index()] = true;
        }
        self.dirty[group.index()] = true;
        if self.knob.is_enabled() {
            // M and the usage sums feed every group's keys and queue length.
            self.mark_all_dirty();
        }
        if !self.config.use_irs && self.config.incremental {
            // Only the FIFO ablation arm ever reads `fifo_order`; the
            // full-rebuild reference recomputes it in `refresh` instead.
            self.fifo_remove(slot);
            self.fifo_insert(slot, request.job, now);
        }

        self.refresh(now);
    }

    fn withdraw(&mut self, job: JobId, now: SimTime) {
        let mut deactivated = None;
        if let Some(slot) = self.job_slots.get(job) {
            if let Some(entry) = self.jobs.get_mut(slot) {
                if entry.active {
                    entry.active = false;
                    entry.pending = 0;
                    entry.tier = None;
                    deactivated = Some((slot, entry.group.index()));
                }
            }
        }
        if let Some((slot, g)) = deactivated {
            self.active_count -= 1;
            self.members[g].retain(|&s| s != slot);
            self.dirty[g] = true;
            if self.knob.is_enabled() {
                self.mark_all_dirty();
            }
            if !self.config.use_irs && self.config.incremental {
                self.fifo_remove(slot);
            }
        }
        // Unconditional, matching the paper's completion trigger: even a
        // no-op withdrawal refreshes the plan against current supply.
        self.refresh(now);
    }

    fn add_demand(&mut self, job: JobId, count: u32, _now: SimTime) {
        let Some(slot) = self.job_slots.get(job) else {
            return;
        };
        if let Some(entry) = self.jobs.get_mut(slot) {
            if entry.active {
                let key_before = entry.remaining_key();
                entry.pending = entry.pending.saturating_add(count);
                if entry.remaining_key() != key_before {
                    self.dirty[entry.group.index()] = true;
                }
            }
        }
    }

    fn on_check_in(&mut self, device: &DeviceInfo, now: SimTime) {
        self.supply.record(now, device.capacity());
    }

    fn assign(&mut self, device: &DeviceInfo, now: SimTime) -> Option<JobId> {
        if now.saturating_sub(self.last_rebuild) > self.config.rebuild_interval_ms {
            self.refresh(now);
        }
        if self.config.use_irs {
            let mask = SupplyEstimator::mask_of(device.capacity(), self.interner.specs());
            if mask == 0 {
                return None;
            }
            // Owner first, then remaining eligible groups scarcest-first —
            // `offer_order`, walked in place. The owner's bit is re-checked:
            // a stale plan may name a group the device is ineligible for.
            let owner = self.plan.owner_of(mask);
            if let Some(g) = owner {
                if mask & (1u128 << g) != 0 {
                    if let Some(id) = self.assign_from_group(g, device) {
                        return Some(id);
                    }
                }
            }
            for i in 0..self.plan.fallback_order.len() {
                let g = self.plan.fallback_order[i];
                if Some(g) == owner || mask & (1u128 << g) == 0 {
                    continue;
                }
                if let Some(id) = self.assign_from_group(g, device) {
                    return Some(id);
                }
            }
            None
        } else {
            for i in 0..self.fifo_order.len() {
                let slot = self.fifo_order[i];
                let eligible = self
                    .jobs
                    .get(slot)
                    .map(|e| self.interner.specs()[e.group.index()].is_eligible(device.capacity()))
                    .unwrap_or(false);
                if !eligible {
                    continue;
                }
                if let Some((job, _)) = Self::try_assign_job(&mut self.jobs, slot, device) {
                    return Some(job);
                }
            }
            None
        }
    }

    fn on_response(&mut self, job: JobId, device: &DeviceInfo, response_ms: u64, _now: SimTime) {
        let Some(slot) = self.job_slots.get(job) else {
            return;
        };
        if let Some(entry) = self.jobs.get_mut(slot) {
            entry.profiler.record_response(device.score(), response_ms);
        }
    }

    fn on_alloc_complete(&mut self, job: JobId, delay_ms: u64, _now: SimTime) {
        let Some(slot) = self.job_slots.get(job) else {
            return;
        };
        if let Some(entry) = self.jobs.get_mut(slot) {
            entry.profiler.record_sched_delay(delay_ms);
            entry.allocs_done += 1;
            if self.knob.is_enabled() {
                // Progress moves the job's fairness usage, which shifts its
                // adjusted demand and the group's queue length.
                self.dirty[entry.group.index()] = true;
            }
        }
    }

    fn pending_demand(&self, job: JobId) -> Option<u32> {
        self.jobs
            .get(self.job_slots.get(job)?)
            .filter(|e| e.active)
            .map(|e| e.pending)
    }

    fn has_open_demand(&self) -> bool {
        self.active_count > 0
    }

    fn observes_check_ins(&self) -> bool {
        // Check-ins feed the supply estimator; gated check-ins must be
        // replayed or the IRS plan's rates (and thus assignments) drift.
        true
    }

    fn replay_check_ins(&mut self, batch: &[CheckInRecord]) {
        // Same state transition as `on_check_in` per record, minus the
        // per-record virtual dispatch: suppressed check-ins only touch the
        // supply estimator, so a whole gated window folds into one tight
        // loop over the ring.
        for r in batch {
            self.supply.record(r.time, r.device.capacity());
        }
    }

    fn save_state(&self, w: &mut SnapWriter) -> Result<(), SnapError> {
        // The name doubles as an arm fingerprint: it encodes
        // (use_irs, use_matching, incremental), so a snapshot loaded into a
        // differently-ablated scheduler fails cleanly instead of drifting.
        w.str(&self.name);
        self.supply.encode(w);
        self.jobs.encode(w);
        self.job_slots.encode(w);
        w.seq(self.interner.specs(), |w, s| s.encode(w));
        self.plan.encode(w);
        w.seq(&self.members, |w, group| {
            w.seq(group, |w, s| s.encode(w));
        });
        w.seq(&self.group_order, |w, group| {
            w.seq(group, |w, s| s.encode(w));
        });
        w.seq(&self.queue_len, |w, &q| w.f64(q));
        w.seq(&self.dirty, |w, &d| w.bool(d));
        w.seq(&self.fifo_order, |w, s| s.encode(w));
        w.usize(self.active_count);
        w.u64(self.last_rebuild);
        self.rng.encode(w);
        w.u64(self.stats.considered);
        w.u64(self.stats.fired);
        w.u64(self.stats.not_ready);
        w.f64(self.stats.cost_ratio_sum);
        Ok(())
    }

    fn load_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        let name = r.str()?;
        if name != self.name {
            return Err(SnapError::Corrupt(format!(
                "scheduler mismatch: snapshot is {name:?}, this scheduler is {:?}",
                self.name
            )));
        }
        self.supply = SupplyEstimator::decode(r)?;
        self.jobs = SlotMap::decode(r)?;
        self.job_slots = JobIdIndex::decode(r)?;
        let specs = r.seq(ResourceSpec::decode)?;
        // Re-intern in recorded order so every GroupId resolves to the same
        // spec; the supply estimator's registered bits were restored above.
        self.interner = SpecInterner::new();
        for spec in &specs {
            self.interner.intern(*spec);
        }
        self.plan = AllocationPlan::decode(r)?;
        self.members = r.seq(|r| r.seq(JobSlot::decode))?;
        self.group_order = r.seq(|r| r.seq(JobSlot::decode))?;
        self.queue_len = r.seq(|r| r.f64())?;
        self.dirty = r.seq(|r| r.bool())?;
        if self.members.len() != specs.len()
            || self.group_order.len() != specs.len()
            || self.queue_len.len() != specs.len()
            || self.dirty.len() != specs.len()
        {
            return Err(SnapError::Corrupt("per-group table size mismatch".into()));
        }
        self.fifo_order = r.seq(JobSlot::decode)?;
        self.active_count = r.usize()?;
        self.last_rebuild = r.u64()?;
        self.rng = StdRng::decode(r)?;
        self.stats = MatchingStats {
            considered: r.u64()?,
            fired: r.u64()?,
            not_ready: r.u64()?,
            cost_ratio_sum: r.f64()?,
        };
        Ok(())
    }
}
#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Capacity, DeviceId};

    fn dev(id: u64, cpu: f64, mem: f64) -> DeviceInfo {
        DeviceInfo::new(DeviceId::new(id), Capacity::new(cpu, mem))
    }

    fn feed_supply(s: &mut VennScheduler, now: SimTime) {
        // Mixed population: 3 low-end for each high-end device.
        for i in 0..40 {
            let (cpu, mem) = if i % 4 == 0 { (0.9, 0.9) } else { (0.2, 0.2) };
            s.on_check_in(&dev(1000 + i, cpu, mem), now);
        }
    }

    #[test]
    fn assigns_eligible_job_only() {
        let mut s = VennScheduler::new(VennConfig::default());
        s.submit(
            Request::new(JobId::new(1), ResourceSpec::new(0.5, 0.5), 2, 2),
            0,
        );
        let weak = dev(1, 0.1, 0.1);
        assert_eq!(s.assign(&weak, 1), None);
        let strong = dev(2, 0.9, 0.9);
        assert_eq!(s.assign(&strong, 1), Some(JobId::new(1)));
        assert_eq!(s.pending_demand(JobId::new(1)), Some(1));
    }

    #[test]
    fn scarce_spec_job_wins_contended_device() {
        let mut s = VennScheduler::new(VennConfig::default());
        feed_supply(&mut s, 0);
        s.submit(Request::new(JobId::new(1), ResourceSpec::any(), 5, 5), 1);
        s.submit(
            Request::new(JobId::new(2), ResourceSpec::new(0.5, 0.5), 5, 5),
            1,
        );
        // High-end device is claimed by the high-perf job...
        assert_eq!(s.assign(&dev(1, 0.9, 0.9), 2), Some(JobId::new(2)));
        // ...while a low-end device can only serve the general job.
        assert_eq!(s.assign(&dev(2, 0.1, 0.1), 2), Some(JobId::new(1)));
    }

    #[test]
    fn smaller_demand_served_first_within_group() {
        let mut s = VennScheduler::new(VennConfig::default());
        feed_supply(&mut s, 0);
        s.submit(Request::new(JobId::new(1), ResourceSpec::any(), 10, 10), 0);
        s.submit(Request::new(JobId::new(2), ResourceSpec::any(), 2, 2), 0);
        // Job 2 (smaller remaining demand) gets devices first.
        assert_eq!(s.assign(&dev(1, 0.5, 0.5), 1), Some(JobId::new(2)));
        assert_eq!(s.assign(&dev(2, 0.5, 0.5), 1), Some(JobId::new(2)));
        assert_eq!(s.assign(&dev(3, 0.5, 0.5), 1), Some(JobId::new(1)));
    }

    #[test]
    fn fallback_serves_other_groups_when_owner_idle() {
        let mut s = VennScheduler::new(VennConfig::default());
        feed_supply(&mut s, 0);
        // Only a general job is active; high-end devices must still be used.
        s.submit(Request::new(JobId::new(1), ResourceSpec::any(), 2, 2), 0);
        s.submit(
            Request::new(JobId::new(2), ResourceSpec::new(0.5, 0.5), 1, 1),
            0,
        );
        s.withdraw(JobId::new(2), 1); // high-perf group now empty
        assert_eq!(s.assign(&dev(1, 0.9, 0.9), 2), Some(JobId::new(1)));
    }

    #[test]
    fn withdraw_stops_assignment() {
        let mut s = VennScheduler::new(VennConfig::default());
        s.submit(Request::new(JobId::new(1), ResourceSpec::any(), 5, 5), 0);
        s.withdraw(JobId::new(1), 10);
        assert_eq!(s.assign(&dev(1, 0.5, 0.5), 11), None);
        assert_eq!(s.pending_demand(JobId::new(1)), None);
    }

    #[test]
    fn add_demand_restores_capacity() {
        let mut s = VennScheduler::new(VennConfig::default());
        s.submit(Request::new(JobId::new(1), ResourceSpec::any(), 1, 1), 0);
        assert_eq!(s.assign(&dev(1, 0.5, 0.5), 1), Some(JobId::new(1)));
        assert_eq!(s.assign(&dev(2, 0.5, 0.5), 1), None);
        s.add_demand(JobId::new(1), 1, 2);
        assert_eq!(s.assign(&dev(3, 0.5, 0.5), 2), Some(JobId::new(1)));
    }

    #[test]
    fn fifo_mode_serves_in_arrival_order() {
        let mut s = VennScheduler::new(VennConfig::matching_only());
        s.submit(Request::new(JobId::new(1), ResourceSpec::any(), 10, 10), 0);
        s.submit(Request::new(JobId::new(2), ResourceSpec::any(), 1, 1), 5);
        // FIFO ignores remaining demand: job 1 first.
        assert_eq!(s.assign(&dev(1, 0.5, 0.5), 6), Some(JobId::new(1)));
    }

    #[test]
    fn unknown_job_operations_are_harmless() {
        let mut s = VennScheduler::new(VennConfig::default());
        s.withdraw(JobId::new(99), 0);
        s.add_demand(JobId::new(99), 3, 0);
        s.on_response(JobId::new(99), &dev(1, 0.5, 0.5), 100, 100);
        assert_eq!(s.pending_demand(JobId::new(99)), None);
    }

    #[test]
    fn resubmission_reuses_job_entry() {
        let mut s = VennScheduler::new(VennConfig::default());
        s.submit(Request::new(JobId::new(1), ResourceSpec::any(), 2, 4), 0);
        s.withdraw(JobId::new(1), 100);
        s.submit(Request::new(JobId::new(1), ResourceSpec::any(), 2, 2), 100);
        assert_eq!(s.pending_demand(JobId::new(1)), Some(2));
        assert_eq!(s.active_jobs(), 1);
    }

    #[test]
    fn fairness_promotes_underserved_large_job() {
        let mut cfg = VennConfig::with_fairness(2.0);
        cfg.use_matching = false;
        let mut s = VennScheduler::new(cfg);
        feed_supply(&mut s, 0);
        // Large job that has received no service vs small job that has
        // already consumed far beyond its fair share.
        s.submit(Request::new(JobId::new(1), ResourceSpec::any(), 50, 50), 0);
        s.submit(Request::new(JobId::new(2), ResourceSpec::any(), 2, 2), 0);
        // Simulate job 2 having already been served a full round while the
        // large job received nothing.
        s.on_alloc_complete(JobId::new(2), 1_000, 50_000);
        s.withdraw(JobId::new(2), 50_000);
        s.submit(
            Request::new(JobId::new(2), ResourceSpec::any(), 2, 2),
            50_000,
        );
        // Under SRJF job 2 would win; with ε=2 and its fair share consumed
        // it must yield to the untouched large job.
        assert_eq!(s.assign(&dev(1, 0.5, 0.5), 50_001), Some(JobId::new(1)));
    }

    #[test]
    fn name_reflects_ablation() {
        assert_eq!(VennScheduler::new(VennConfig::default()).name(), "venn");
        assert_eq!(
            VennScheduler::new(VennConfig::scheduling_only()).name(),
            "venn-wo-match"
        );
        assert_eq!(
            VennScheduler::new(VennConfig::matching_only()).name(),
            "venn-wo-sched"
        );
    }

    #[test]
    fn full_rebuild_mode_gets_name_suffix() {
        assert_eq!(
            VennScheduler::new(VennConfig::full_rebuild()).name(),
            "venn-full"
        );
    }

    #[test]
    fn fifo_order_repositions_on_resubmission() {
        let mut s = VennScheduler::new(VennConfig::matching_only());
        s.submit(Request::new(JobId::new(1), ResourceSpec::any(), 3, 3), 0);
        s.submit(Request::new(JobId::new(2), ResourceSpec::any(), 3, 3), 5);
        s.withdraw(JobId::new(1), 10);
        s.submit(Request::new(JobId::new(1), ResourceSpec::any(), 3, 3), 10);
        // Job 1 re-arrived after job 2: FIFO now serves job 2 first.
        assert_eq!(s.assign(&dev(1, 0.5, 0.5), 11), Some(JobId::new(2)));
    }

    /// Drives identical churn (submissions, check-ins, assignments, demand
    /// returns, completions, withdrawals, timer refreshes) through an
    /// incremental and a full-rebuild scheduler and asserts every single
    /// assignment decision matches.
    fn assert_churn_parity(base: VennConfig) {
        let mut inc = VennScheduler::new(VennConfig {
            incremental: true,
            ..base
        });
        let mut full = VennScheduler::new(VennConfig {
            incremental: false,
            ..base
        });
        let spec_of = |j: u64| match j % 3 {
            0 => ResourceSpec::any(),
            1 => ResourceSpec::new(0.5, 0.5),
            _ => ResourceSpec::new(0.5, 0.0),
        };
        let mut t = 0u64;
        for round in 0..4u64 {
            feed_supply(&mut inc, t);
            feed_supply(&mut full, t);
            for j in 0..8u64 {
                let make = || Request::new(JobId::new(j), spec_of(j), 2 + (j % 3) as u32, 4 + j);
                inc.submit(make(), t);
                full.submit(make(), t);
            }
            for i in 0..150u64 {
                // 7-second steps cross the 60 s periodic-refresh interval
                // many times per round.
                t += 7_000;
                let cpu = ((i * 13) % 10) as f64 / 10.0;
                let mem = ((i * 7) % 10) as f64 / 10.0;
                let d = dev(10_000 + i, cpu, mem);
                inc.on_check_in(&d, t);
                full.on_check_in(&d, t);
                let a = inc.assign(&d, t);
                let b = full.assign(&d, t);
                assert_eq!(a, b, "round {round} step {i} diverged");
                if let Some(job) = a {
                    if i % 3 == 0 {
                        inc.add_demand(job, 1, t);
                        full.add_demand(job, 1, t);
                    }
                    if i % 5 == 0 {
                        inc.on_response(job, &d, 1_000 + i, t);
                        full.on_response(job, &d, 1_000 + i, t);
                    }
                    if i % 11 == 0 {
                        inc.on_alloc_complete(job, i, t);
                        full.on_alloc_complete(job, i, t);
                    }
                }
            }
            for j in 0..8u64 {
                if j % 2 == round % 2 {
                    inc.withdraw(JobId::new(j), t);
                    full.withdraw(JobId::new(j), t);
                }
            }
        }
        assert_eq!(inc.active_jobs(), full.active_jobs());
        assert_eq!(inc.matching_stats(), full.matching_stats());
    }

    #[test]
    fn incremental_matches_full_rebuild_default() {
        assert_churn_parity(VennConfig::default());
    }

    #[test]
    fn incremental_matches_full_rebuild_with_fairness() {
        assert_churn_parity(VennConfig::with_fairness(2.0));
    }

    #[test]
    fn incremental_matches_full_rebuild_fifo_arm() {
        assert_churn_parity(VennConfig::matching_only());
    }

    #[test]
    fn incremental_matches_full_rebuild_irs_only_arm() {
        assert_churn_parity(VennConfig::scheduling_only());
    }

    #[test]
    fn incremental_matches_full_rebuild_without_steal() {
        assert_churn_parity(VennConfig {
            use_steal: false,
            ..VennConfig::default()
        });
    }

    #[test]
    fn snapshot_round_trip_continues_bit_identically() {
        for base in [
            VennConfig::default(),
            VennConfig::with_fairness(2.0),
            VennConfig::matching_only(),
        ] {
            let mut s = VennScheduler::new(base);
            feed_supply(&mut s, 0);
            for j in 0..6u64 {
                let spec = if j % 2 == 0 {
                    ResourceSpec::any()
                } else {
                    ResourceSpec::new(0.5, 0.5)
                };
                s.submit(Request::new(JobId::new(j), spec, 2, 6), j * 100);
            }
            for i in 0..40u64 {
                let d = dev(
                    100 + i,
                    (i % 10) as f64 / 10.0,
                    ((i * 3) % 10) as f64 / 10.0,
                );
                s.on_check_in(&d, 1_000 + i * 500);
                if let Some(job) = s.assign(&d, 1_000 + i * 500) {
                    s.on_response(job, &d, 2_000, 1_000 + i * 500);
                }
            }

            let mut w = SnapWriter::new();
            s.save_state(&mut w).unwrap();
            let bytes = w.into_bytes();
            let mut restored = VennScheduler::new(base);
            let mut r = SnapReader::new(&bytes);
            restored.load_state(&mut r).unwrap();
            r.finish().unwrap();

            // Identical continuation: every decision matches from here on.
            for i in 0..80u64 {
                let t = 30_000 + i * 700;
                let d = dev(
                    500 + i,
                    ((i * 7) % 10) as f64 / 10.0,
                    (i % 10) as f64 / 10.0,
                );
                s.on_check_in(&d, t);
                restored.on_check_in(&d, t);
                assert_eq!(s.assign(&d, t), restored.assign(&d, t), "step {i}");
                if i % 9 == 0 {
                    let j = JobId::new(i % 6);
                    s.withdraw(j, t);
                    restored.withdraw(j, t);
                    s.submit(Request::new(j, ResourceSpec::any(), 2, 4), t);
                    restored.submit(Request::new(j, ResourceSpec::any(), 2, 4), t);
                }
            }
            assert_eq!(s.matching_stats(), restored.matching_stats());
        }
    }

    #[test]
    fn snapshot_rejects_wrong_scheduler_arm() {
        let s = VennScheduler::new(VennConfig::default());
        let mut w = SnapWriter::new();
        s.save_state(&mut w).unwrap();
        let bytes = w.into_bytes();
        let mut other = VennScheduler::new(VennConfig::matching_only());
        let mut r = SnapReader::new(&bytes);
        assert!(matches!(
            other.load_state(&mut r),
            Err(SnapError::Corrupt(_))
        ));
    }

    #[test]
    fn group_count_tracks_distinct_specs() {
        let mut s = VennScheduler::new(VennConfig::default());
        s.submit(Request::new(JobId::new(1), ResourceSpec::any(), 1, 1), 0);
        s.submit(Request::new(JobId::new(2), ResourceSpec::any(), 1, 1), 0);
        s.submit(
            Request::new(JobId::new(3), ResourceSpec::new(0.5, 0.0), 1, 1),
            0,
        );
        assert_eq!(s.group_count(), 2);
        assert_eq!(s.active_jobs(), 3);
    }
}
