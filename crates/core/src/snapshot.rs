//! Hand-rolled, versioned, checksummed binary snapshot encoding.
//!
//! The workspace vendors all dependencies and ships no serde, so durable
//! world snapshots are encoded by hand: a [`SnapWriter`] appends
//! fixed-width little-endian primitives and length-prefixed sequences to
//! a byte buffer, and a [`SnapReader`] consumes them back in the same
//! order. Every complete snapshot is wrapped by [`seal`] in a framed
//! container — magic, format version, body length, FNV-1a checksum —
//! that [`unseal`] verifies before a single body byte is interpreted, so
//! truncated or bit-flipped checkpoints are *detected*, never silently
//! decoded into wrong results.
//!
//! Two traits anchor the subsystem:
//!
//! * [`Snapshot`] — value types that round-trip without external
//!   context (RNG stream positions, slot maps, profilers, plans...).
//!   Most simulation state is instead *restored by reconstruction*: the
//!   immutable majority of a world (compiled environment tables, device
//!   profiles, session traces) is re-derived from `(config, workload,
//!   seed)` and only the mutable minority is decoded over it — which
//!   keeps snapshots small and the format honest about what actually
//!   evolves at runtime.
//! * [`Scheduler::save_state`](crate::Scheduler::save_state) /
//!   [`load_state`](crate::Scheduler::load_state) — the object-safe
//!   per-scheduler hooks (every shipped scheduler implements them; the
//!   provided defaults report "unsupported" so downstream trait impls
//!   keep compiling).
//!
//! Versioning policy: [`SNAP_FORMAT_VERSION`] is bumped on *any* layout
//! change, and old versions are rejected with a clean error — a
//! simulator whose product is bit-identical replay has nothing
//! trustworthy to say about a snapshot written by different encode
//! logic.

use std::fmt;

use rand::rngs::StdRng;

/// Leading magic of a sealed snapshot container (`b"VSNP"`).
pub const SNAP_MAGIC: [u8; 4] = *b"VSNP";

/// Current snapshot format version. Bumped on any layout change; other
/// versions are rejected, never reinterpreted.
pub const SNAP_FORMAT_VERSION: u32 = 1;

/// FNV-1a offset basis (64-bit).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime (64-bit).
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a checksum over `bytes` — the integrity check of sealed
/// snapshots. Not cryptographic; it detects the failure modes durable
/// checkpoints actually meet (truncation, torn writes, bit rot).
pub fn checksum(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Why a snapshot could not be decoded (or is not available).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapError {
    /// The buffer ended before the value being read.
    Truncated {
        /// Bytes the read needed.
        needed: usize,
        /// Bytes that were left.
        remaining: usize,
    },
    /// The container does not start with [`SNAP_MAGIC`].
    BadMagic,
    /// The container's format version is not [`SNAP_FORMAT_VERSION`].
    UnsupportedVersion(u32),
    /// The body checksum does not match the sealed one.
    ChecksumMismatch {
        /// Checksum stored in the container.
        stored: u64,
        /// Checksum computed over the body.
        computed: u64,
    },
    /// A decoded value is structurally impossible (bad discriminant,
    /// mismatched arm, inconsistent length...). The message names the
    /// field.
    Corrupt(String),
    /// The component does not support snapshots at all.
    Unsupported(&'static str),
}

impl fmt::Display for SnapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapError::Truncated { needed, remaining } => write!(
                f,
                "snapshot truncated: needed {needed} more bytes, {remaining} remain"
            ),
            SnapError::BadMagic => write!(f, "not a snapshot (bad magic)"),
            SnapError::UnsupportedVersion(v) => write!(
                f,
                "unsupported snapshot format version {v} (this build reads {SNAP_FORMAT_VERSION})"
            ),
            SnapError::ChecksumMismatch { stored, computed } => write!(
                f,
                "snapshot checksum mismatch (stored {stored:#018x}, computed {computed:#018x})"
            ),
            SnapError::Corrupt(what) => write!(f, "corrupt snapshot: {what}"),
            SnapError::Unsupported(who) => write!(f, "{who} does not support snapshots"),
        }
    }
}

impl std::error::Error for SnapError {}

/// Appends snapshot primitives to a growing byte buffer.
///
/// All integers are fixed-width little-endian; floats are IEEE-754 bit
/// patterns (so `-0.0`, subnormals, and NaN payloads round-trip
/// exactly); sequences are `u64` length-prefixed.
#[derive(Debug, Default)]
pub struct SnapWriter {
    buf: Vec<u8>,
}

impl SnapWriter {
    /// An empty writer.
    pub fn new() -> Self {
        SnapWriter::default()
    }

    /// The encoded bytes so far.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Writes one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `u128`.
    pub fn u128(&mut self, v: u128) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `usize` as a `u64`.
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Writes an `f64` as its exact bit pattern.
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Writes a `bool` as one byte.
    pub fn bool(&mut self, v: bool) {
        self.u8(v as u8);
    }

    /// Writes a sequence length prefix.
    pub fn len_prefix(&mut self, len: usize) {
        self.u64(len as u64);
    }

    /// Writes a length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.len_prefix(s.len());
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Writes an `Option` as a presence byte plus the value.
    pub fn option<T>(&mut self, v: &Option<T>, mut f: impl FnMut(&mut Self, &T)) {
        match v {
            Some(x) => {
                self.bool(true);
                f(self, x);
            }
            None => self.bool(false),
        }
    }

    /// Writes a length-prefixed sequence.
    pub fn seq<T>(&mut self, items: &[T], mut f: impl FnMut(&mut Self, &T)) {
        self.len_prefix(items.len());
        for item in items {
            f(self, item);
        }
    }
}

/// Consumes snapshot primitives from a byte buffer, in write order.
#[derive(Debug)]
pub struct SnapReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> SnapReader<'a> {
    /// A reader over `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        SnapReader { buf: bytes, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapError> {
        if self.remaining() < n {
            return Err(SnapError::Truncated {
                needed: n,
                remaining: self.remaining(),
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, SnapError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a `u32`.
    pub fn u32(&mut self) -> Result<u32, SnapError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a `u64`.
    pub fn u64(&mut self) -> Result<u64, SnapError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a `u128`.
    pub fn u128(&mut self) -> Result<u128, SnapError> {
        Ok(u128::from_le_bytes(self.take(16)?.try_into().unwrap()))
    }

    /// Reads a `usize` (stored as `u64`).
    pub fn usize(&mut self) -> Result<usize, SnapError> {
        Ok(self.u64()? as usize)
    }

    /// Reads an `f64` bit pattern.
    pub fn f64(&mut self) -> Result<f64, SnapError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a `bool`, rejecting anything but 0/1.
    pub fn bool(&mut self) -> Result<bool, SnapError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(SnapError::Corrupt(format!("bool byte {other}"))),
        }
    }

    /// Reads a sequence length prefix, bounded by the bytes that could
    /// plausibly back it (each element is at least one byte) so a
    /// corrupt length cannot drive a huge allocation.
    pub fn len_prefix(&mut self) -> Result<usize, SnapError> {
        let len = self.u64()?;
        if len > self.remaining() as u64 {
            return Err(SnapError::Corrupt(format!(
                "sequence length {len} exceeds {} remaining bytes",
                self.remaining()
            )));
        }
        Ok(len as usize)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, SnapError> {
        let len = self.len_prefix()?;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| SnapError::Corrupt("non-UTF-8 string".into()))
    }

    /// Reads an `Option` written by [`SnapWriter::option`].
    pub fn option<T>(
        &mut self,
        mut f: impl FnMut(&mut Self) -> Result<T, SnapError>,
    ) -> Result<Option<T>, SnapError> {
        if self.bool()? {
            Ok(Some(f(self)?))
        } else {
            Ok(None)
        }
    }

    /// Reads a length-prefixed sequence written by [`SnapWriter::seq`].
    pub fn seq<T>(
        &mut self,
        mut f: impl FnMut(&mut Self) -> Result<T, SnapError>,
    ) -> Result<Vec<T>, SnapError> {
        let len = self.len_prefix()?;
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(f(self)?);
        }
        Ok(out)
    }

    /// Asserts the reader consumed every byte — trailing garbage means
    /// the encode and decode paths disagree about the layout.
    pub fn finish(self) -> Result<(), SnapError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(SnapError::Corrupt(format!(
                "{} unconsumed trailing bytes",
                self.remaining()
            )))
        }
    }
}

/// Wraps an encoded body in the framed container: magic, format
/// version, body length, FNV-1a body checksum, body.
pub fn seal(body: Vec<u8>) -> Vec<u8> {
    let mut out = Vec::with_capacity(body.len() + 24);
    out.extend_from_slice(&SNAP_MAGIC);
    out.extend_from_slice(&SNAP_FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&(body.len() as u64).to_le_bytes());
    out.extend_from_slice(&checksum(&body).to_le_bytes());
    out.extend_from_slice(&body);
    out
}

/// Verifies a sealed container and returns its body. Magic, version,
/// length, and checksum are all checked before any body byte is
/// interpreted — truncation and bit flips surface here as clean errors.
pub fn unseal(bytes: &[u8]) -> Result<&[u8], SnapError> {
    let mut r = SnapReader::new(bytes);
    let magic = r.take(4)?;
    if magic != SNAP_MAGIC {
        return Err(SnapError::BadMagic);
    }
    let version = r.u32()?;
    if version != SNAP_FORMAT_VERSION {
        return Err(SnapError::UnsupportedVersion(version));
    }
    let len = r.u64()? as usize;
    let stored = r.u64()?;
    if r.remaining() != len {
        return Err(SnapError::Truncated {
            needed: len,
            remaining: r.remaining().min(len),
        });
    }
    let body = r.take(len)?;
    let computed = checksum(body);
    if stored != computed {
        return Err(SnapError::ChecksumMismatch { stored, computed });
    }
    Ok(body)
}

/// Value types that encode and decode without external context.
///
/// Implemented by the self-contained pieces of scheduler and kernel
/// state (RNG streams, slot maps, supply rings, profilers, plans).
/// State that is cheaper to re-derive from `(config, workload, seed)`
/// deliberately does *not* implement this — it is reconstructed, not
/// decoded.
pub trait Snapshot: Sized {
    /// Appends this value's encoding to `w`.
    fn encode(&self, w: &mut SnapWriter);

    /// Decodes one value from `r`, in [`encode`](Snapshot::encode)
    /// order.
    fn decode(r: &mut SnapReader<'_>) -> Result<Self, SnapError>;
}

impl Snapshot for StdRng {
    fn encode(&self, w: &mut SnapWriter) {
        for word in self.state() {
            w.u64(word);
        }
    }

    fn decode(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(StdRng::from_state([r.u64()?, r.u64()?, r.u64()?, r.u64()?]))
    }
}

impl Snapshot for crate::ResourceSpec {
    fn encode(&self, w: &mut SnapWriter) {
        w.f64(self.min_cpu());
        w.f64(self.min_mem());
    }

    fn decode(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let (cpu, mem) = (r.f64()?, r.f64()?);
        if !(cpu.is_finite() && mem.is_finite() && cpu >= 0.0 && mem >= 0.0) {
            return Err(SnapError::Corrupt(format!(
                "resource spec thresholds ({cpu}, {mem})"
            )));
        }
        Ok(crate::ResourceSpec::new(cpu, mem))
    }
}

impl Snapshot for crate::Capacity {
    fn encode(&self, w: &mut SnapWriter) {
        w.f64(self.cpu());
        w.f64(self.mem());
    }

    fn decode(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let (cpu, mem) = (r.f64()?, r.f64()?);
        if !(cpu.is_finite() && mem.is_finite() && cpu >= 0.0 && mem >= 0.0) {
            return Err(SnapError::Corrupt(format!(
                "capacity scores ({cpu}, {mem})"
            )));
        }
        Ok(crate::Capacity::new(cpu, mem))
    }
}

impl Snapshot for crate::Request {
    fn encode(&self, w: &mut SnapWriter) {
        w.u64(self.job.as_u64());
        self.spec.encode(w);
        w.u32(self.demand);
        w.u64(self.total_remaining);
    }

    fn decode(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let job = crate::JobId::new(r.u64()?);
        let spec = crate::ResourceSpec::decode(r)?;
        let demand = r.u32()?;
        let total_remaining = r.u64()?;
        if demand == 0 {
            return Err(SnapError::Corrupt("zero-demand request".into()));
        }
        Ok(crate::Request {
            job,
            spec,
            demand,
            total_remaining,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    #[test]
    fn primitives_round_trip() {
        let mut w = SnapWriter::new();
        w.u8(7);
        w.u32(0xDEAD_BEEF);
        w.u64(u64::MAX - 3);
        w.u128(1u128 << 100);
        w.usize(42);
        w.f64(-0.0);
        w.f64(f64::NAN);
        w.bool(true);
        w.str("venn");
        w.option(&Some(9u64), |w, v| w.u64(*v));
        w.option(&None::<u64>, |w, v| w.u64(*v));
        w.seq(&[1u32, 2, 3], |w, v| w.u32(*v));
        let bytes = w.into_bytes();

        let mut r = SnapReader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX - 3);
        assert_eq!(r.u128().unwrap(), 1u128 << 100);
        assert_eq!(r.usize().unwrap(), 42);
        assert_eq!(r.f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert!(r.f64().unwrap().is_nan());
        assert!(r.bool().unwrap());
        assert_eq!(r.str().unwrap(), "venn");
        assert_eq!(r.option(|r| r.u64()).unwrap(), Some(9));
        assert_eq!(r.option(|r| r.u64()).unwrap(), None);
        assert_eq!(r.seq(|r| r.u32()).unwrap(), vec![1, 2, 3]);
        r.finish().unwrap();
    }

    #[test]
    fn truncation_is_detected() {
        let mut w = SnapWriter::new();
        w.u64(5);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes[..5]);
        assert!(matches!(r.u64(), Err(SnapError::Truncated { .. })));
    }

    #[test]
    fn seal_unseal_round_trips() {
        let body = vec![1u8, 2, 3, 4, 5];
        let sealed = seal(body.clone());
        assert_eq!(unseal(&sealed).unwrap(), &body[..]);
    }

    #[test]
    fn unseal_rejects_every_tampering_mode() {
        let sealed = seal(vec![10u8; 64]);
        // Bad magic.
        let mut bad = sealed.clone();
        bad[0] ^= 0xFF;
        assert_eq!(unseal(&bad), Err(SnapError::BadMagic));
        // Unsupported version.
        let mut bad = sealed.clone();
        bad[4] = 0xEE;
        assert!(matches!(
            unseal(&bad),
            Err(SnapError::UnsupportedVersion(_))
        ));
        // Truncated body.
        assert!(matches!(
            unseal(&sealed[..sealed.len() - 3]),
            Err(SnapError::Truncated { .. })
        ));
        // Flipped body bit.
        let mut bad = sealed.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0x01;
        assert!(matches!(
            unseal(&bad),
            Err(SnapError::ChecksumMismatch { .. })
        ));
        // Flipped checksum bit.
        let mut bad = sealed;
        bad[20] ^= 0x01;
        assert!(matches!(
            unseal(&bad),
            Err(SnapError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn corrupt_length_prefix_cannot_overallocate() {
        let mut w = SnapWriter::new();
        w.u64(u64::MAX); // absurd sequence length
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        assert!(matches!(r.seq(|r| r.u8()), Err(SnapError::Corrupt(_))));
    }

    #[test]
    fn stdrng_snapshot_resumes_exact_stream() {
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..57 {
            rng.gen::<u64>();
        }
        let mut w = SnapWriter::new();
        rng.encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        let mut restored = StdRng::decode(&mut r).unwrap();
        r.finish().unwrap();
        for _ in 0..100 {
            assert_eq!(rng.gen::<u64>(), restored.gen::<u64>());
        }
    }

    #[test]
    fn spec_and_request_round_trip() {
        let spec = crate::ResourceSpec::new(0.5, 0.25);
        let req = crate::Request::new(crate::JobId::new(3), spec, 7, 99);
        let mut w = SnapWriter::new();
        spec.encode(&mut w);
        req.encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        assert_eq!(crate::ResourceSpec::decode(&mut r).unwrap(), spec);
        assert_eq!(crate::Request::decode(&mut r).unwrap(), req);
        r.finish().unwrap();
    }
}
