//! Interning of [`ResourceSpec`]s into dense [`GroupId`]s.
//!
//! Jobs with equal device requirements form one *resource-homogeneous job
//! group* (paper §4.2). The scheduler used to discover that grouping with a
//! `HashMap<ResourceSpec, usize>`; the interner replaces it with a plain
//! append-only table — specs are capped at 128 (the region-mask width), so
//! a linear scan over two bit-compared `f64` pairs beats hashing and keeps
//! the submit path allocation-free once the group exists. The returned
//! [`GroupId`] doubles as the spec's bit position in every eligibility mask
//! and as the index into the scheduler's per-group vectors.

use crate::{GroupId, ResourceSpec};

/// Append-only [`ResourceSpec`] → [`GroupId`] interner.
///
/// Equal specs (bit-identical thresholds, the same equivalence
/// `ResourceSpec::eq` uses) always intern to the same id; `resolve` is the
/// exact inverse.
///
/// # Examples
///
/// ```
/// use venn_core::{intern::SpecInterner, ResourceSpec};
///
/// let mut interner = SpecInterner::new();
/// let (a, new_a) = interner.intern(ResourceSpec::new(0.5, 0.5));
/// let (b, new_b) = interner.intern(ResourceSpec::new(0.5, 0.5));
/// assert_eq!(a, b);
/// assert!(new_a && !new_b);
/// assert_eq!(interner.resolve(a), ResourceSpec::new(0.5, 0.5));
/// ```
#[derive(Debug, Clone, Default)]
pub struct SpecInterner {
    specs: Vec<ResourceSpec>,
}

impl SpecInterner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        SpecInterner::default()
    }

    /// Interns `spec`, returning its group id and whether the group is new.
    pub fn intern(&mut self, spec: ResourceSpec) -> (GroupId, bool) {
        if let Some(g) = self.lookup(spec) {
            return (g, false);
        }
        let g = GroupId::new(self.specs.len() as u64);
        self.specs.push(spec);
        (g, true)
    }

    /// The id `spec` would intern to, if it already has one.
    pub fn lookup(&self, spec: ResourceSpec) -> Option<GroupId> {
        self.specs
            .iter()
            .position(|s| *s == spec)
            .map(|i| GroupId::new(i as u64))
    }

    /// The spec `group` was interned from.
    ///
    /// # Panics
    ///
    /// Panics if `group` was not issued by this interner.
    pub fn resolve(&self, group: GroupId) -> ResourceSpec {
        self.specs[group.index()]
    }

    /// Number of distinct specs interned.
    pub fn len(&self) -> usize {
        self.specs.len()
    }

    /// Whether nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// All interned specs, in [`GroupId`] order (bit order of the masks).
    pub fn specs(&self) -> &[ResourceSpec] {
        &self.specs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_specs_share_an_id() {
        let mut i = SpecInterner::new();
        let (a, _) = i.intern(ResourceSpec::new(0.5, 0.0));
        let (b, _) = i.intern(ResourceSpec::new(0.25, 0.75));
        let (a2, new) = i.intern(ResourceSpec::new(0.5, 0.0));
        assert_eq!(a, a2);
        assert!(!new);
        assert_ne!(a, b);
        assert_eq!(i.len(), 2);
    }

    #[test]
    fn resolve_inverts_intern() {
        let mut i = SpecInterner::new();
        let specs = [
            ResourceSpec::any(),
            ResourceSpec::new(0.5, 0.0),
            ResourceSpec::new(0.0, 0.5),
        ];
        for s in specs {
            let (g, _) = i.intern(s);
            assert_eq!(i.resolve(g), s);
            assert_eq!(i.lookup(s), Some(g));
        }
        assert_eq!(i.specs(), &specs);
    }

    #[test]
    fn ids_are_dense_in_first_seen_order() {
        let mut i = SpecInterner::new();
        assert!(i.is_empty());
        let (g0, _) = i.intern(ResourceSpec::new(0.9, 0.9));
        let (g1, _) = i.intern(ResourceSpec::any());
        assert_eq!(g0.index(), 0);
        assert_eq!(g1.index(), 1);
    }

    #[test]
    fn negative_zero_interns_like_zero() {
        // ResourceSpec::new normalizes -0.0, so the interner never splits a
        // group on the sign of zero.
        let mut i = SpecInterner::new();
        let (a, _) = i.intern(ResourceSpec::new(0.5, 0.0));
        let (b, fresh) = i.intern(ResourceSpec::new(0.5, -0.0_f64 + 0.0));
        assert_eq!(a, b);
        assert!(!fresh);
    }

    #[test]
    fn unknown_spec_lookup_is_none() {
        let i = SpecInterner::new();
        assert_eq!(i.lookup(ResourceSpec::any()), None);
    }
}
