//! Identifier newtypes for jobs, devices, and job groups.

use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
        pub struct $name(u64);

        impl $name {
            /// Creates an identifier from a raw integer.
            pub fn new(raw: u64) -> Self {
                $name(raw)
            }

            /// Returns the raw integer value.
            pub fn as_u64(&self) -> u64 {
                self.0
            }

            /// The id as a dense array index.
            pub fn index(&self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<u64> for $name {
            fn from(raw: u64) -> Self {
                $name(raw)
            }
        }

        impl From<$name> for u64 {
            fn from(id: $name) -> u64 {
                id.0
            }
        }
    };
}

id_type!(
    /// Identifier of one collaborative-learning job.
    JobId,
    "job-"
);
id_type!(
    /// Identifier of one edge device.
    DeviceId,
    "dev-"
);
id_type!(
    /// Identifier of one resource-homogeneous job group.
    GroupId,
    "grp-"
);

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn roundtrip_through_u64() {
        let id = JobId::new(42);
        assert_eq!(id.as_u64(), 42);
        assert_eq!(u64::from(id), 42);
        assert_eq!(JobId::from(42u64), id);
    }

    #[test]
    fn display_has_prefix() {
        assert_eq!(JobId::new(3).to_string(), "job-3");
        assert_eq!(DeviceId::new(7).to_string(), "dev-7");
        assert_eq!(GroupId::new(1).to_string(), "grp-1");
    }

    #[test]
    fn ids_are_hashable_and_ordered() {
        let mut set = HashSet::new();
        set.insert(DeviceId::new(1));
        set.insert(DeviceId::new(1));
        set.insert(DeviceId::new(2));
        assert_eq!(set.len(), 2);
        assert!(JobId::new(1) < JobId::new(2));
    }

    #[test]
    fn distinct_id_types_are_distinct() {
        // This is a compile-time property; the test documents intent.
        fn takes_job(_: JobId) {}
        takes_job(JobId::new(1));
    }
}
