//! Diurnal supply forecasting — the "time-series database" of §4.4.
//!
//! The paper records every device check-in in a time-series store and
//! queries eligibility distributions over past windows so the scheduler is
//! "farsighted and robust" against the diurnal swing of Fig. 2a.
//! [`DiurnalProfile`] is that store: per-(hour-of-day, capacity-bucket)
//! counters over a rolling multi-day history, answering
//!
//! * "what is the expected eligible check-in rate at hour `h`?" and
//! * "how many eligible devices will arrive over the next `k` hours?"
//!
//! The second query lets callers decide, e.g., whether a request is worth
//! tier-restricting before the overnight charging peak arrives.

use crate::{Capacity, ResourceSpec, SimTime, DAY_MS, HOUR_MS};

/// Capacity buckets per axis for the profile (coarser than the live
/// [`SupplyEstimator`](crate::SupplyEstimator) grid; profiles aggregate
/// days of data, so coarse buckets are plenty).
const BUCKETS: usize = 16;

/// Rolling per-hour-of-day supply profile.
///
/// # Examples
///
/// ```
/// use venn_core::forecast::DiurnalProfile;
/// use venn_core::{Capacity, ResourceSpec, HOUR_MS};
///
/// let mut p = DiurnalProfile::new();
/// // Devices check in at hour 22 on two consecutive days.
/// for day in 0..2u64 {
///     let t = day * 24 * HOUR_MS + 22 * HOUR_MS;
///     p.record(t, &Capacity::new(0.8, 0.8));
/// }
/// let rate = p.hourly_rate(22, &ResourceSpec::new(0.5, 0.5));
/// assert!(rate > 0.0);
/// assert_eq!(p.hourly_rate(3, &ResourceSpec::any()), 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct DiurnalProfile {
    /// counts[hour][cpu_bucket * BUCKETS + mem_bucket]
    counts: Vec<Vec<u32>>,
    /// Number of *distinct days* observed per hour bucket (for averaging).
    days_seen: Vec<u32>,
    last_day_per_hour: Vec<Option<u64>>,
    total: u64,
}

impl Default for DiurnalProfile {
    fn default() -> Self {
        DiurnalProfile::new()
    }
}

impl DiurnalProfile {
    /// Creates an empty profile.
    pub fn new() -> Self {
        DiurnalProfile {
            counts: vec![vec![0; BUCKETS * BUCKETS]; 24],
            days_seen: vec![0; 24],
            last_day_per_hour: vec![None; 24],
            total: 0,
        }
    }

    fn bucket(capacity: &Capacity) -> usize {
        let clamp = |v: f64| (v * BUCKETS as f64).min((BUCKETS - 1) as f64).max(0.0) as usize;
        clamp(capacity.cpu()) * BUCKETS + clamp(capacity.mem())
    }

    /// Records one check-in.
    pub fn record(&mut self, now: SimTime, capacity: &Capacity) {
        let hour = ((now % DAY_MS) / HOUR_MS) as usize;
        let day = now / DAY_MS;
        if self.last_day_per_hour[hour] != Some(day) {
            self.last_day_per_hour[hour] = Some(day);
            self.days_seen[hour] += 1;
        }
        self.counts[hour][Self::bucket(capacity)] += 1;
        self.total += 1;
    }

    /// Total check-ins recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Expected eligible check-ins per hour at hour-of-day `hour`,
    /// averaged over the observed days. Zero before any observation.
    ///
    /// # Panics
    ///
    /// Panics if `hour >= 24`.
    pub fn hourly_rate(&self, hour: usize, spec: &ResourceSpec) -> f64 {
        assert!(hour < 24, "hour of day out of range");
        let days = self.days_seen[hour];
        if days == 0 {
            return 0.0;
        }
        let mut count = 0u64;
        for cpu_b in 0..BUCKETS {
            for mem_b in 0..BUCKETS {
                let cap =
                    Capacity::new(cpu_b as f64 / BUCKETS as f64, mem_b as f64 / BUCKETS as f64);
                if spec.is_eligible(&cap) {
                    count += self.counts[hour][cpu_b * BUCKETS + mem_b] as u64;
                }
            }
        }
        count as f64 / days as f64
    }

    /// Forecast: expected number of eligible check-ins between `now` and
    /// `now + horizon_hours` hours, walking the diurnal profile forward.
    pub fn forecast(&self, now: SimTime, horizon_hours: usize, spec: &ResourceSpec) -> f64 {
        let start_hour = ((now % DAY_MS) / HOUR_MS) as usize;
        (0..horizon_hours)
            .map(|k| self.hourly_rate((start_hour + k) % 24, spec))
            .sum()
    }

    /// The hour of day with the highest expected eligible supply, or
    /// `None` before any observation — "wait for the overnight peak".
    pub fn peak_hour(&self, spec: &ResourceSpec) -> Option<usize> {
        let rates: Vec<f64> = (0..24).map(|h| self.hourly_rate(h, spec)).collect();
        let (hour, &best) = rates
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite rates"))?;
        (best > 0.0).then_some(hour)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cap(c: f64, m: f64) -> Capacity {
        Capacity::new(c, m)
    }

    #[test]
    fn empty_profile_is_zero() {
        let p = DiurnalProfile::new();
        assert_eq!(p.hourly_rate(0, &ResourceSpec::any()), 0.0);
        assert_eq!(p.forecast(0, 24, &ResourceSpec::any()), 0.0);
        assert_eq!(p.peak_hour(&ResourceSpec::any()), None);
        assert_eq!(p.total(), 0);
    }

    #[test]
    fn rates_average_over_days() {
        let mut p = DiurnalProfile::new();
        // Hour 5: 4 check-ins on day 0, 2 on day 1 → expected 3/h.
        for _ in 0..4 {
            p.record(5 * HOUR_MS + 10, &cap(0.5, 0.5));
        }
        for _ in 0..2 {
            p.record(DAY_MS + 5 * HOUR_MS + 10, &cap(0.5, 0.5));
        }
        assert!((p.hourly_rate(5, &ResourceSpec::any()) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn eligibility_filters_rates() {
        let mut p = DiurnalProfile::new();
        p.record(HOUR_MS, &cap(0.9, 0.9));
        p.record(HOUR_MS, &cap(0.1, 0.1));
        let any = p.hourly_rate(1, &ResourceSpec::any());
        let high = p.hourly_rate(1, &ResourceSpec::new(0.5, 0.5));
        assert_eq!(any, 2.0);
        assert_eq!(high, 1.0);
    }

    #[test]
    fn forecast_wraps_around_midnight() {
        let mut p = DiurnalProfile::new();
        p.record(23 * HOUR_MS, &cap(0.5, 0.5)); // hour 23
        p.record(0, &cap(0.5, 0.5)); // hour 0
                                     // Forecast from hour 23, two hours ahead: covers hours 23 and 0.
        let f = p.forecast(23 * HOUR_MS + 5, 2, &ResourceSpec::any());
        assert_eq!(f, 2.0);
    }

    #[test]
    fn peak_hour_finds_the_charging_peak() {
        let mut p = DiurnalProfile::new();
        for _ in 0..10 {
            p.record(22 * HOUR_MS, &cap(0.5, 0.5));
        }
        p.record(9 * HOUR_MS, &cap(0.5, 0.5));
        assert_eq!(p.peak_hour(&ResourceSpec::any()), Some(22));
        // A spec nothing satisfies has no peak.
        assert_eq!(p.peak_hour(&ResourceSpec::new(0.99, 0.99)), None);
    }

    #[test]
    #[should_panic(expected = "hour of day")]
    fn out_of_range_hour_panics() {
        DiurnalProfile::new().hourly_rate(24, &ResourceSpec::any());
    }
}
