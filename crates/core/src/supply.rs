//! Sliding-window estimation of eligible device supply.
//!
//! IRS needs, for every job group `G_j`, the size of its eligible resource
//! pool `|S_j|` — and for every *atomic region* of the eligibility Venn
//! diagram, how much supply falls in it. The paper (§4.4, "dynamic resource
//! supply") records device check-ins in a time-series store and averages
//! eligibility over a 24-hour window so the diurnal pattern does not whipsaw
//! the scheduler.
//!
//! [`SupplyEstimator`] implements that store as a fixed grid over the
//! normalized (cpu, mem) capacity square plus an expiry queue: check-ins are
//! O(1), spec-rate queries are O(grid), and region queries are
//! O(grid × groups).

use std::collections::VecDeque;

use crate::snapshot::{SnapError, SnapReader, SnapWriter, Snapshot};
use crate::{Capacity, ResourceSpec, SimTime, DAY_MS};

/// Number of grid cells per axis. 64×64 keeps quantization error below the
/// noise floor of the traces while making queries effectively free.
const GRID: usize = 64;

/// Supply observed in one atomic region of the eligibility diagram.
///
/// The region is identified by its eligibility mask: bit `j` is set iff
/// devices in this region satisfy group `j`'s spec. Regions with equal
/// masks are interchangeable to the scheduler and therefore merged.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RegionSupply {
    /// Eligibility bitmask over the queried group specs.
    pub mask: u128,
    /// Estimated check-in rate in devices per millisecond.
    pub rate: f64,
}

/// Sliding-window device check-in recorder over the capacity grid.
///
/// Beyond the on-demand queries ([`rate`](Self::rate) /
/// [`region_supplies`](Self::region_supplies), which walk the grid), the
/// estimator keeps a *mask index* over specs registered with
/// [`register_spec`](Self::register_spec): every grid cell is mapped to a
/// slot for its eligibility mask, and per-slot live counts are maintained
/// incrementally on [`record`](Self::record)/expiry. Registered queries
/// ([`registered_rates`](Self::registered_rates) /
/// [`registered_regions`](Self::registered_regions)) then cost
/// O(regions) instead of O(grid × specs) — the delta API the incremental
/// Venn scheduler rebuilds its allocation plan from. Both paths count the
/// same integer cells, so their rates are bit-identical.
///
/// # Examples
///
/// ```
/// use venn_core::{Capacity, ResourceSpec, SupplyEstimator};
///
/// let mut s = SupplyEstimator::new(1_000); // 1-second window
/// s.record(0, &Capacity::new(0.8, 0.8));
/// s.record(0, &Capacity::new(0.2, 0.2));
/// assert_eq!(s.window_count(0), 2);
/// let high = ResourceSpec::new(0.5, 0.5);
/// assert!(s.rate(0, &high) > 0.0);
/// assert!(s.rate(0, &high) < s.rate(0, &ResourceSpec::any()));
///
/// // The incremental mask index returns the exact same rates.
/// let g = s.register_spec(high);
/// let mut rates = Vec::new();
/// s.registered_rates(0, &mut rates);
/// assert_eq!(rates[g], s.rate(0, &high));
/// ```
#[derive(Debug, Clone)]
pub struct SupplyEstimator {
    window_ms: SimTime,
    /// Per-cell in-window counts, maintained *lazily*: the check-in hot
    /// path only touches the queue and the slot counts; the grid queries
    /// that need per-cell resolution ([`rate`](Self::rate),
    /// [`region_supplies`](Self::region_supplies),
    /// [`register_spec`](Self::register_spec)) rebuild this table from the
    /// queue when stale.
    counts: Vec<u32>,
    /// Whether `counts` reflects the current queue contents.
    counts_fresh: bool,
    /// In-window check-ins as packed `(time << CELL_BITS) | cell` words —
    /// half the footprint of a `(u64, u16)` pair, which matters: at
    /// 24-hour windows this ring holds millions of entries and `record`
    /// runs once per device check-in.
    queue: VecDeque<u64>,
    /// Specs registered for the incremental mask index; bit `j` of every
    /// mask refers to `specs[j]`.
    specs: Vec<ResourceSpec>,
    /// Slot of each grid cell's eligibility mask (index into the two
    /// parallel slot vectors below).
    cell_slot: Vec<u32>,
    /// Distinct cell masks, ascending — so region output needs no sort.
    slot_masks: Vec<u128>,
    /// Live in-window check-in count per slot.
    slot_counts: Vec<u64>,
}

/// Bits of a packed queue word holding the grid cell.
const CELL_BITS: u32 = 16;

/// Packs a check-in into one queue word. Times are bounded to 48 bits
/// (about 8,900 simulated years) by the packing.
fn pack(now: SimTime, cell: u16) -> u64 {
    debug_assert!(now < 1 << (64 - CELL_BITS), "sim time exceeds 48 bits");
    (now << CELL_BITS) | cell as u64
}

/// Unpacks a queue word into `(time, cell)`.
fn unpack(word: u64) -> (SimTime, u16) {
    (word >> CELL_BITS, word as u16)
}

impl SupplyEstimator {
    /// Creates an estimator with the given sliding window length.
    ///
    /// # Panics
    ///
    /// Panics if the window is zero.
    pub fn new(window_ms: SimTime) -> Self {
        assert!(window_ms > 0, "supply window must be positive");
        SupplyEstimator {
            window_ms,
            counts: vec![0; GRID * GRID],
            counts_fresh: true,
            queue: VecDeque::new(),
            specs: Vec::new(),
            cell_slot: vec![0; GRID * GRID],
            slot_masks: vec![0],
            slot_counts: vec![0],
        }
    }

    /// Creates an estimator with the paper's default 24-hour window.
    pub fn with_default_window() -> Self {
        SupplyEstimator::new(DAY_MS)
    }

    /// Window length in milliseconds.
    pub fn window_ms(&self) -> SimTime {
        self.window_ms
    }

    fn cell_of(capacity: &Capacity) -> u16 {
        let clamp = |v: f64| (v * GRID as f64).min((GRID - 1) as f64).max(0.0) as usize;
        (clamp(capacity.cpu()) * GRID + clamp(capacity.mem())) as u16
    }

    fn prune(&mut self, now: SimTime) {
        let cutoff = now.saturating_sub(self.window_ms);
        if cutoff == 0 {
            return;
        }
        let cutoff_word = cutoff << CELL_BITS;
        while let Some(&word) = self.queue.front() {
            // Packed words order by time first, so one integer compare
            // replaces the unpack (the cell bits only break exact ties,
            // and any word below `cutoff << CELL_BITS` has time < cutoff).
            if word >= cutoff_word {
                break;
            }
            self.queue.pop_front();
            let cell = unpack(word).1 as usize;
            self.slot_counts[self.cell_slot[cell] as usize] -= 1;
            self.counts_fresh = false;
        }
    }

    /// Records one device check-in.
    ///
    /// The hot path does no expiry: pushes keep the queue time-ordered
    /// regardless, the slot counts are only *read* through the query
    /// methods, and every query prunes first — so expiry batches up there
    /// (same total work, amortized off the per-check-in path) and a
    /// record is three array touches plus a ring push.
    pub fn record(&mut self, now: SimTime, capacity: &Capacity) {
        let cell = Self::cell_of(capacity);
        self.slot_counts[self.cell_slot[cell as usize] as usize] += 1;
        self.queue.push_back(pack(now, cell));
        self.counts_fresh = false;
    }

    /// Rebuilds the per-cell count table from the queue — the cold-path
    /// complement of the hot path's slot-count-only maintenance.
    fn refresh_counts(&mut self) {
        if self.counts_fresh {
            return;
        }
        self.counts.iter_mut().for_each(|c| *c = 0);
        for &word in &self.queue {
            self.counts[unpack(word).1 as usize] += 1;
        }
        self.counts_fresh = true;
    }

    /// Registers a spec with the incremental mask index and returns its bit
    /// position.
    ///
    /// The slot table is maintained *incrementally*: the new spec's bit is
    /// the most significant bit used so far, so each existing slot at most
    /// splits in two — the cells eligible for the new spec (mask `m | bit`,
    /// which sorts after every old mask) and the rest (mask `m`, unchanged).
    /// Splitting therefore preserves the ascending mask order with no mask
    /// array, no sort, and no per-cell `u128` buffer — two grid walks and a
    /// handful of per-slot scratch rows, instead of the old
    /// collect-clone-sort-dedup rebuild.
    ///
    /// # Panics
    ///
    /// Panics past 128 registered specs (mask width).
    pub fn register_spec(&mut self, spec: ResourceSpec) -> usize {
        let j = self.specs.len();
        assert!(j < 128, "at most 128 registered specs (mask width)");
        self.refresh_counts();
        self.specs.push(spec);
        let bit = 1u128 << j;
        // Threshold specs are separable over the grid: eligibility of cell
        // (cpu, mem) is row-eligible AND column-eligible.
        let mut cpu_ok = [false; GRID];
        let mut mem_ok = [false; GRID];
        for i in 0..GRID {
            cpu_ok[i] = cell_low(i) >= spec.min_cpu();
            mem_ok[i] = cell_low(i) >= spec.min_mem();
        }
        // First walk: which old slots split, and how much in-window supply
        // moves to each slot's eligible half.
        let old_slots = self.slot_masks.len();
        let mut with_cells = vec![false; old_slots];
        let mut without_cells = vec![false; old_slots];
        let mut with_counts = vec![0u64; old_slots];
        for (cpu_cell, &cok) in cpu_ok.iter().enumerate() {
            for (mem_cell, &mok) in mem_ok.iter().enumerate() {
                let cell = cpu_cell * GRID + mem_cell;
                let s = self.cell_slot[cell] as usize;
                if cok && mok {
                    with_cells[s] = true;
                    with_counts[s] += self.counts[cell] as u64;
                } else {
                    without_cells[s] = true;
                }
            }
        }
        // New table: surviving old masks first (ascending), then the split
        // halves `m | bit` (ascending, and all greater than any old mask).
        let mut map_without = vec![u32::MAX; old_slots];
        let mut map_with = vec![u32::MAX; old_slots];
        let mut new_masks = Vec::with_capacity(2 * old_slots);
        let mut new_counts = Vec::with_capacity(2 * old_slots);
        for (s, &mask) in self.slot_masks.iter().enumerate() {
            if without_cells[s] {
                map_without[s] = new_masks.len() as u32;
                new_masks.push(mask);
                new_counts.push(self.slot_counts[s] - with_counts[s]);
            }
        }
        for (s, &mask) in self.slot_masks.iter().enumerate() {
            if with_cells[s] {
                map_with[s] = new_masks.len() as u32;
                new_masks.push(mask | bit);
                new_counts.push(with_counts[s]);
            }
        }
        // Second walk: retarget every cell at its half of the split.
        for (cpu_cell, &cok) in cpu_ok.iter().enumerate() {
            for (mem_cell, &mok) in mem_ok.iter().enumerate() {
                let cell = cpu_cell * GRID + mem_cell;
                let s = self.cell_slot[cell] as usize;
                self.cell_slot[cell] = if cok && mok {
                    map_with[s]
                } else {
                    map_without[s]
                };
            }
        }
        self.slot_masks = new_masks;
        self.slot_counts = new_counts;
        j
    }

    /// The specs registered so far, in bit order.
    pub fn registered_specs(&self) -> &[ResourceSpec] {
        &self.specs
    }

    /// Check-in rate of devices satisfying registered spec `j` — the same
    /// number [`rate`](Self::rate) returns for that spec, read from the
    /// mask index in O(regions).
    ///
    /// # Panics
    ///
    /// Panics if `j` was never registered.
    pub fn registered_rate(&mut self, now: SimTime, j: usize) -> f64 {
        assert!(j < self.specs.len(), "spec {j} not registered");
        self.prune(now);
        let bit = 1u128 << j;
        let count: u64 = self
            .slot_masks
            .iter()
            .zip(&self.slot_counts)
            .filter(|(&mask, _)| mask & bit != 0)
            .map(|(_, &c)| c)
            .sum();
        count as f64 / self.span_ms(now)
    }

    /// Rates of all registered specs at once, written into `out` (reused
    /// buffer, no allocation). Entry `j` equals `rate(now, &specs[j])` bit
    /// for bit: both sum the same integer cell counts before one division
    /// (the in-window count is far below 2^53, so the f64 partial sums
    /// stay exact integers).
    pub fn registered_rates(&mut self, now: SimTime, out: &mut Vec<f64>) {
        self.prune(now);
        let span = self.span_ms(now);
        out.clear();
        out.resize(self.specs.len(), 0.0);
        for (&mask, &count) in self.slot_masks.iter().zip(&self.slot_counts) {
            if count == 0 {
                continue;
            }
            // Iterate only the set bits (ascending, like a spec loop would):
            // popcount(mask) additions per slot, the promised O(regions).
            let mut m = mask;
            while m != 0 {
                let j = m.trailing_zeros() as usize;
                debug_assert!(j < out.len(), "mask bit without a registered spec");
                out[j] += count as f64;
                m &= m - 1;
            }
        }
        for a in out.iter_mut() {
            *a /= span;
        }
    }

    /// Atomic-region supplies over the registered specs, written into
    /// `out` (reused buffer). Identical content and order to
    /// [`region_supplies`](Self::region_supplies) called with the
    /// registered spec slice, at O(regions) instead of O(grid × specs).
    pub fn registered_regions(&mut self, now: SimTime, out: &mut Vec<RegionSupply>) {
        self.prune(now);
        let span = self.span_ms(now);
        out.clear();
        for (&mask, &count) in self.slot_masks.iter().zip(&self.slot_counts) {
            if mask != 0 && count > 0 {
                out.push(RegionSupply {
                    mask,
                    rate: count as f64 / span,
                });
            }
        }
    }

    /// Number of check-ins currently inside the window.
    pub fn window_count(&mut self, now: SimTime) -> usize {
        self.prune(now);
        self.queue.len()
    }

    /// Effective averaging span: the full window once enough history has
    /// accumulated, otherwise the elapsed time (so early-run rates are not
    /// underestimated).
    fn span_ms(&self, now: SimTime) -> f64 {
        self.window_ms.min(now.max(1)) as f64
    }

    /// Estimated check-in rate (devices/ms) of devices satisfying `spec`.
    pub fn rate(&mut self, now: SimTime, spec: &ResourceSpec) -> f64 {
        self.prune(now);
        self.refresh_counts();
        let span = self.span_ms(now);
        let mut count = 0u64;
        for cpu_cell in 0..GRID {
            let cpu = cell_low(cpu_cell);
            if cell_upper(cpu_cell) <= spec.min_cpu() && spec.min_cpu() > 0.0 {
                continue;
            }
            for mem_cell in 0..GRID {
                let cap = Capacity::new(cpu, cell_low(mem_cell));
                if spec.is_eligible(&cap) {
                    count += self.counts[cpu_cell * GRID + mem_cell] as u64;
                }
            }
        }
        count as f64 / span
    }

    /// Supply rates of the atomic regions induced by `specs`.
    ///
    /// Bit `j` of a region's mask is set iff `specs[j]` is satisfied by
    /// devices in that region. Cells whose mask is zero (eligible for no
    /// group) are omitted.
    ///
    /// # Panics
    ///
    /// Panics if more than 128 specs are given (mask width).
    pub fn region_supplies(&mut self, now: SimTime, specs: &[ResourceSpec]) -> Vec<RegionSupply> {
        assert!(specs.len() <= 128, "at most 128 concurrent job groups");
        self.prune(now);
        self.refresh_counts();
        let span = self.span_ms(now);
        // Occupied cells' (mask, count) pairs, merged by sorting — regions
        // number at most a few dozen, so a sort of the occupied cells beats
        // a hash map and the output needs no second sort.
        let mut pairs: Vec<(u128, u64)> = Vec::new();
        for cpu_cell in 0..GRID {
            for mem_cell in 0..GRID {
                let count = self.counts[cpu_cell * GRID + mem_cell];
                if count == 0 {
                    continue;
                }
                let cap = Capacity::new(cell_low(cpu_cell), cell_low(mem_cell));
                let mut mask = 0u128;
                for (j, spec) in specs.iter().enumerate() {
                    if spec.is_eligible(&cap) {
                        mask |= 1 << j;
                    }
                }
                if mask != 0 {
                    pairs.push((mask, count as u64));
                }
            }
        }
        pairs.sort_unstable_by_key(|&(mask, _)| mask);
        let mut out: Vec<RegionSupply> = Vec::new();
        for (mask, count) in pairs {
            match out.last_mut() {
                Some(last) if last.mask == mask => last.rate += count as f64,
                _ => out.push(RegionSupply {
                    mask,
                    rate: count as f64,
                }),
            }
        }
        for r in &mut out {
            r.rate /= span;
        }
        out
    }

    /// The eligibility mask of a single device against `specs` (same bit
    /// layout as [`region_supplies`](Self::region_supplies)).
    pub fn mask_of(capacity: &Capacity, specs: &[ResourceSpec]) -> u128 {
        assert!(specs.len() <= 128, "at most 128 concurrent job groups");
        let mut mask = 0u128;
        for (j, spec) in specs.iter().enumerate() {
            if spec.is_eligible(capacity) {
                mask |= 1 << j;
            }
        }
        mask
    }
}

/// The snapshot dumps every field verbatim — including the lazily
/// maintained count table and its freshness flag — so a restored
/// estimator continues pruning, refreshing, and splitting regions on
/// exactly the schedule the snapshotted one would have.
impl Snapshot for SupplyEstimator {
    fn encode(&self, w: &mut SnapWriter) {
        w.u64(self.window_ms);
        w.seq(&self.counts, |w, &c| w.u32(c));
        w.bool(self.counts_fresh);
        w.len_prefix(self.queue.len());
        for &word in &self.queue {
            w.u64(word);
        }
        w.seq(&self.specs, |w, s| s.encode(w));
        w.seq(&self.cell_slot, |w, &s| w.u32(s));
        w.seq(&self.slot_masks, |w, &m| w.u128(m));
        w.seq(&self.slot_counts, |w, &c| w.u64(c));
    }

    fn decode(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let window_ms = r.u64()?;
        if window_ms == 0 {
            return Err(SnapError::Corrupt("zero supply window".into()));
        }
        let counts = r.seq(|r| r.u32())?;
        let counts_fresh = r.bool()?;
        let queue: VecDeque<u64> = r.seq(|r| r.u64())?.into();
        let specs = r.seq(ResourceSpec::decode)?;
        let cell_slot = r.seq(|r| r.u32())?;
        let slot_masks = r.seq(|r| r.u128())?;
        let slot_counts = r.seq(|r| r.u64())?;
        if counts.len() != GRID * GRID || cell_slot.len() != GRID * GRID {
            return Err(SnapError::Corrupt("supply grid size mismatch".into()));
        }
        if slot_masks.len() != slot_counts.len() {
            return Err(SnapError::Corrupt("supply slot table mismatch".into()));
        }
        if cell_slot.iter().any(|&s| s as usize >= slot_masks.len()) {
            return Err(SnapError::Corrupt("supply cell slot out of range".into()));
        }
        Ok(SupplyEstimator {
            window_ms,
            counts,
            counts_fresh,
            queue,
            specs,
            cell_slot,
            slot_masks,
            slot_counts,
        })
    }
}

/// Low edge of grid cell `i` — the value devices in the cell are *at least*.
fn cell_low(i: usize) -> f64 {
    i as f64 / GRID as f64
}

/// High edge of grid cell `i`.
fn cell_upper(i: usize) -> f64 {
    (i + 1) as f64 / GRID as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_scale_with_counts() {
        let mut s = SupplyEstimator::new(1_000);
        for _ in 0..10 {
            s.record(500, &Capacity::new(0.9, 0.9));
        }
        for _ in 0..30 {
            s.record(500, &Capacity::new(0.1, 0.1));
        }
        let any = s.rate(500, &ResourceSpec::any());
        let high = s.rate(500, &ResourceSpec::new(0.5, 0.5));
        assert!((any / high - 4.0).abs() < 1e-9, "any={any} high={high}");
    }

    #[test]
    fn old_events_expire() {
        let mut s = SupplyEstimator::new(1_000);
        s.record(0, &Capacity::new(0.5, 0.5));
        assert_eq!(s.window_count(500), 1);
        assert_eq!(s.window_count(2_000), 0);
        assert_eq!(s.rate(2_000, &ResourceSpec::any()), 0.0);
    }

    #[test]
    fn early_run_rates_use_elapsed_time() {
        let mut s = SupplyEstimator::new(DAY_MS);
        s.record(1_000, &Capacity::new(0.5, 0.5));
        // One event in 1 second of elapsed time, not in 24 h.
        let r = s.rate(1_000, &ResourceSpec::any());
        assert!((r - 1.0 / 1_000.0).abs() < 1e-12);
    }

    #[test]
    fn region_masks_partition_supply() {
        let mut s = SupplyEstimator::new(10_000);
        // One device in each of the four canonical regions.
        s.record(0, &Capacity::new(0.1, 0.1)); // general only
        s.record(0, &Capacity::new(0.9, 0.1)); // compute
        s.record(0, &Capacity::new(0.1, 0.9)); // memory
        s.record(0, &Capacity::new(0.9, 0.9)); // high-perf
        let specs = [
            ResourceSpec::any(),         // bit 0
            ResourceSpec::new(0.5, 0.0), // bit 1
            ResourceSpec::new(0.0, 0.5), // bit 2
            ResourceSpec::new(0.5, 0.5), // bit 3
        ];
        let regions = s.region_supplies(100, &specs);
        let masks: Vec<u128> = regions.iter().map(|r| r.mask).collect();
        assert_eq!(masks, vec![0b0001, 0b0011, 0b0101, 0b1111]);
        // Supply is conserved across regions.
        let total: f64 = regions.iter().map(|r| r.rate).sum();
        assert!((total - s.rate(100, &ResourceSpec::any())).abs() < 1e-12);
    }

    #[test]
    fn mask_of_matches_eligibility() {
        let specs = [ResourceSpec::any(), ResourceSpec::new(0.5, 0.5)];
        let m = SupplyEstimator::mask_of(&Capacity::new(0.6, 0.6), &specs);
        assert_eq!(m, 0b11);
        let m = SupplyEstimator::mask_of(&Capacity::new(0.6, 0.4), &specs);
        assert_eq!(m, 0b01);
    }

    #[test]
    fn grid_threshold_alignment_is_conservative() {
        // A device exactly at a non-grid-aligned threshold is still counted
        // consistently between `rate` and `mask_of`.
        let spec = ResourceSpec::new(0.505, 0.0);
        let mut s = SupplyEstimator::new(1_000);
        s.record(0, &Capacity::new(0.51, 0.5));
        let r = s.rate(100, &spec);
        // Cell low edge 0.5 < 0.505 so grid may or may not count it; we only
        // require non-negative and bounded by the total rate.
        assert!(r >= 0.0);
        assert!(r <= s.rate(100, &ResourceSpec::any()) + 1e-12);
    }

    #[test]
    fn cell_edges_cover_unit_square() {
        assert_eq!(cell_low(0), 0.0);
        assert!((cell_upper(GRID - 1) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn zero_window_panics() {
        SupplyEstimator::new(0);
    }

    // --- incremental mask index -------------------------------------------

    fn four_region_specs() -> [ResourceSpec; 4] {
        [
            ResourceSpec::any(),
            ResourceSpec::new(0.5, 0.0),
            ResourceSpec::new(0.0, 0.5),
            ResourceSpec::new(0.5, 0.5),
        ]
    }

    #[test]
    fn registered_rates_match_grid_rates_bit_for_bit() {
        let mut s = SupplyEstimator::new(10_000);
        let specs = four_region_specs();
        for (j, spec) in specs.iter().enumerate() {
            assert_eq!(s.register_spec(*spec), j);
        }
        for i in 0..200u64 {
            let v = (i % 17) as f64 / 17.0;
            let w = (i % 11) as f64 / 11.0;
            s.record(i * 7, &Capacity::new(v, w));
        }
        let mut rates = Vec::new();
        s.registered_rates(1_500, &mut rates);
        for (j, spec) in specs.iter().enumerate() {
            assert_eq!(rates[j], s.rate(1_500, spec), "spec {j}");
            assert_eq!(s.registered_rate(1_500, j), rates[j], "spec {j}");
        }
    }

    #[test]
    fn registered_regions_match_grid_regions() {
        let mut s = SupplyEstimator::new(10_000);
        let specs = four_region_specs();
        for spec in &specs {
            s.register_spec(*spec);
        }
        s.record(0, &Capacity::new(0.1, 0.1));
        s.record(0, &Capacity::new(0.9, 0.1));
        s.record(0, &Capacity::new(0.1, 0.9));
        s.record(0, &Capacity::new(0.9, 0.9));
        let mut fast = Vec::new();
        s.registered_regions(100, &mut fast);
        let slow = s.region_supplies(100, &specs);
        assert_eq!(fast, slow);
    }

    #[test]
    fn registration_after_records_rebuilds_counts() {
        let mut s = SupplyEstimator::new(10_000);
        // Check-ins land before any spec exists...
        s.record(0, &Capacity::new(0.9, 0.9));
        s.record(0, &Capacity::new(0.2, 0.2));
        // ...and are still counted once the index is built.
        let g = s.register_spec(ResourceSpec::new(0.5, 0.5));
        assert_eq!(
            s.registered_rate(100, g),
            s.rate(100, &ResourceSpec::new(0.5, 0.5))
        );
        // Late registration of a second spec keeps both consistent.
        let any = s.register_spec(ResourceSpec::any());
        assert_eq!(
            s.registered_rate(100, any),
            s.rate(100, &ResourceSpec::any())
        );
    }

    #[test]
    fn registered_index_expires_old_events() {
        let mut s = SupplyEstimator::new(1_000);
        let g = s.register_spec(ResourceSpec::any());
        s.record(0, &Capacity::new(0.5, 0.5));
        assert!(s.registered_rate(500, g) > 0.0);
        assert_eq!(s.registered_rate(2_000, g), 0.0);
        let mut regions = Vec::new();
        s.registered_regions(2_000, &mut regions);
        assert!(regions.is_empty());
    }

    #[test]
    #[should_panic(expected = "not registered")]
    fn unregistered_rate_panics() {
        let mut s = SupplyEstimator::new(1_000);
        s.registered_rate(0, 0);
    }
}
