//! Dense, generation-checked storage for per-job scheduler state.
//!
//! The scheduler data plane is index-addressed, not hash-addressed: job
//! state lives in a [`SlotMap`] (a `Vec` with a free list), internal
//! references are [`JobSlot`]s (array index + generation), and the only
//! translation from the external [`JobId`] space happens at the trait
//! boundary through a [`JobIdIndex`] — a direct-indexed table, so even that
//! translation never hashes. Every lookup on the check-in/assign hot path
//! is therefore one bounds-checked array access plus a generation compare.
//!
//! Generations make stale references safe: removing an entry bumps its
//! slot's generation, so a [`JobSlot`] captured before the removal misses
//! on every subsequent access instead of silently aliasing whatever job
//! reused the slot (pinned by the slot-reuse property tests).

use std::fmt;

use crate::snapshot::{SnapError, SnapReader, SnapWriter, Snapshot};
use crate::JobId;

/// Reference to one live entry of a [`SlotMap`]: array index + generation.
///
/// A slot is only as valid as its generation: once the entry is removed,
/// the generation advances and the old slot dangles harmlessly (`get`
/// returns `None`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct JobSlot {
    index: u32,
    generation: u32,
}

impl JobSlot {
    /// Sentinel for "no slot" — never returned by [`SlotMap::insert`].
    pub const NULL: JobSlot = JobSlot {
        index: u32::MAX,
        generation: u32::MAX,
    };

    /// Raw array index (meaningful only together with the generation).
    pub fn index(&self) -> usize {
        self.index as usize
    }

    /// Generation the slot was issued at.
    pub fn generation(&self) -> u32 {
        self.generation
    }

    /// Whether this is the [`NULL`](Self::NULL) sentinel.
    pub fn is_null(&self) -> bool {
        *self == JobSlot::NULL
    }
}

impl Default for JobSlot {
    fn default() -> Self {
        JobSlot::NULL
    }
}

impl fmt::Display for JobSlot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "slot-{}@{}", self.index, self.generation)
    }
}

#[derive(Debug, Clone)]
enum Entry<T> {
    /// Live entry.
    Occupied(T),
    /// Free entry; holds the next free index (`u32::MAX` terminates).
    Vacant(u32),
}

/// A dense map keyed by [`JobSlot`]s: `Vec` storage, free-list reuse,
/// generation-checked access.
///
/// # Examples
///
/// ```
/// use venn_core::slotmap::SlotMap;
///
/// let mut m = SlotMap::new();
/// let a = m.insert("a");
/// assert_eq!(m.get(a), Some(&"a"));
/// m.remove(a);
/// let b = m.insert("b"); // reuses the slot...
/// assert_eq!(b.index(), a.index());
/// assert_eq!(m.get(a), None); // ...but the stale handle is rejected
/// assert_eq!(m.get(b), Some(&"b"));
/// ```
#[derive(Debug, Clone)]
pub struct SlotMap<T> {
    entries: Vec<Entry<T>>,
    generations: Vec<u32>,
    free_head: u32,
    len: usize,
}

impl<T> Default for SlotMap<T> {
    fn default() -> Self {
        SlotMap::new()
    }
}

impl<T> SlotMap<T> {
    /// Creates an empty map.
    pub fn new() -> Self {
        SlotMap {
            entries: Vec::new(),
            generations: Vec::new(),
            free_head: u32::MAX,
            len: 0,
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no entry is live.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts `value`, reusing a freed slot when one exists.
    ///
    /// # Panics
    ///
    /// Panics past `u32::MAX - 1` simultaneous entries.
    pub fn insert(&mut self, value: T) -> JobSlot {
        self.len += 1;
        if self.free_head != u32::MAX {
            let index = self.free_head;
            match self.entries[index as usize] {
                Entry::Vacant(next) => self.free_head = next,
                Entry::Occupied(_) => unreachable!("free list points at a live entry"),
            }
            self.entries[index as usize] = Entry::Occupied(value);
            return JobSlot {
                index,
                generation: self.generations[index as usize],
            };
        }
        let index = u32::try_from(self.entries.len()).expect("slot map exceeds u32 indices");
        assert!(index != u32::MAX, "slot map exceeds u32 indices");
        self.entries.push(Entry::Occupied(value));
        self.generations.push(0);
        JobSlot {
            index,
            generation: 0,
        }
    }

    /// Removes the entry at `slot`, returning it; `None` if the slot is
    /// stale or vacant. The slot's generation advances so outstanding
    /// copies of `slot` are rejected from now on.
    pub fn remove(&mut self, slot: JobSlot) -> Option<T> {
        let i = slot.index as usize;
        if i >= self.entries.len()
            || self.generations[i] != slot.generation
            || matches!(self.entries[i], Entry::Vacant(_))
        {
            return None;
        }
        let entry = std::mem::replace(&mut self.entries[i], Entry::Vacant(self.free_head));
        self.free_head = slot.index;
        self.generations[i] = self.generations[i].wrapping_add(1);
        self.len -= 1;
        match entry {
            Entry::Occupied(v) => Some(v),
            Entry::Vacant(_) => unreachable!("vacancy checked above"),
        }
    }

    /// Read access; `None` when the slot is stale or vacant.
    pub fn get(&self, slot: JobSlot) -> Option<&T> {
        match self.entries.get(slot.index as usize) {
            Some(Entry::Occupied(v))
                if self.generations[slot.index as usize] == slot.generation =>
            {
                Some(v)
            }
            _ => None,
        }
    }

    /// Write access; `None` when the slot is stale or vacant.
    pub fn get_mut(&mut self, slot: JobSlot) -> Option<&mut T> {
        match self.entries.get_mut(slot.index as usize) {
            Some(Entry::Occupied(v))
                if self.generations[slot.index as usize] == slot.generation =>
            {
                Some(v)
            }
            _ => None,
        }
    }

    /// Whether `slot` refers to a live entry.
    pub fn contains(&self, slot: JobSlot) -> bool {
        self.get(slot).is_some()
    }

    /// Live entries in slot-index order.
    pub fn iter(&self) -> impl Iterator<Item = (JobSlot, &T)> {
        self.entries
            .iter()
            .enumerate()
            .filter_map(move |(i, e)| match e {
                Entry::Occupied(v) => Some((
                    JobSlot {
                        index: i as u32,
                        generation: self.generations[i],
                    },
                    v,
                )),
                Entry::Vacant(_) => None,
            })
    }

    /// Live values in slot-index order.
    pub fn values(&self) -> impl Iterator<Item = &T> {
        self.entries.iter().filter_map(|e| match e {
            Entry::Occupied(v) => Some(v),
            Entry::Vacant(_) => None,
        })
    }
}

/// Direct-indexed translation table from the external dense [`JobId`]
/// space to [`JobSlot`]s — the hash-free boundary between the `Scheduler`
/// trait (keyed by `JobId`) and the slot-addressed data plane.
///
/// The table grows to the largest raw id seen, so it assumes ids are
/// *dense* (the simulator numbers jobs `0..n`); a guard rejects ids that
/// would make the table degenerate.
#[derive(Debug, Clone, Default)]
pub struct JobIdIndex {
    slots: Vec<JobSlot>,
}

/// Largest raw [`JobId`] the dense index accepts. Ids are table offsets, so
/// an id far outside the workload's range is a caller bug, not sparse data.
const MAX_DENSE_JOB_ID: u64 = 1 << 32;

impl JobIdIndex {
    /// Creates an empty index.
    pub fn new() -> Self {
        JobIdIndex::default()
    }

    /// The slot registered for `job`, if any.
    pub fn get(&self, job: JobId) -> Option<JobSlot> {
        match self.slots.get(job.as_u64() as usize) {
            Some(&slot) if !slot.is_null() => Some(slot),
            _ => None,
        }
    }

    /// Registers `slot` for `job`, growing the table as needed.
    ///
    /// # Panics
    ///
    /// Panics if the raw id exceeds the dense-id bound.
    pub fn set(&mut self, job: JobId, slot: JobSlot) {
        let raw = job.as_u64();
        assert!(
            raw < MAX_DENSE_JOB_ID,
            "job id {raw} outside the dense id space"
        );
        let i = raw as usize;
        if i >= self.slots.len() {
            self.slots.resize(i + 1, JobSlot::NULL);
        }
        self.slots[i] = slot;
    }

    /// Unregisters `job` (no-op if absent).
    pub fn clear(&mut self, job: JobId) {
        if let Some(s) = self.slots.get_mut(job.as_u64() as usize) {
            *s = JobSlot::NULL;
        }
    }
}

impl Snapshot for JobSlot {
    fn encode(&self, w: &mut SnapWriter) {
        w.u32(self.index);
        w.u32(self.generation);
    }

    fn decode(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(JobSlot {
            index: r.u32()?,
            generation: r.u32()?,
        })
    }
}

/// The snapshot preserves the *exact* internal layout — entry order,
/// free-list chain, generations — not just the live values, because
/// outstanding [`JobSlot`] handles elsewhere in a snapshot are raw
/// `(index, generation)` pairs and must keep resolving identically, and
/// future `insert`s must reuse slots in the same LIFO order.
impl<T: Snapshot> Snapshot for SlotMap<T> {
    fn encode(&self, w: &mut SnapWriter) {
        w.len_prefix(self.entries.len());
        for e in &self.entries {
            match e {
                Entry::Occupied(v) => {
                    w.u8(1);
                    v.encode(w);
                }
                Entry::Vacant(next) => {
                    w.u8(0);
                    w.u32(*next);
                }
            }
        }
        w.seq(&self.generations, |w, &g| w.u32(g));
        w.u32(self.free_head);
        w.usize(self.len);
    }

    fn decode(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let n = r.len_prefix()?;
        let mut entries = Vec::with_capacity(n);
        for _ in 0..n {
            entries.push(match r.u8()? {
                1 => Entry::Occupied(T::decode(r)?),
                0 => Entry::Vacant(r.u32()?),
                tag => return Err(SnapError::Corrupt(format!("slot entry tag {tag}"))),
            });
        }
        let generations = r.seq(|r| r.u32())?;
        if generations.len() != entries.len() {
            return Err(SnapError::Corrupt(
                "slot map generations/entries length mismatch".into(),
            ));
        }
        let free_head = r.u32()?;
        let len = r.usize()?;
        if len > entries.len() {
            return Err(SnapError::Corrupt("slot map live count too large".into()));
        }
        Ok(SlotMap {
            entries,
            generations,
            free_head,
            len,
        })
    }
}

impl Snapshot for JobIdIndex {
    fn encode(&self, w: &mut SnapWriter) {
        w.seq(&self.slots, |w, s| s.encode(w));
    }

    fn decode(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(JobIdIndex {
            slots: r.seq(JobSlot::decode)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut m = SlotMap::new();
        let a = m.insert(10);
        let b = m.insert(20);
        assert_eq!(m.len(), 2);
        assert_eq!(m.get(a), Some(&10));
        assert_eq!(m.get(b), Some(&20));
        assert_eq!(m.remove(a), Some(10));
        assert_eq!(m.len(), 1);
        assert_eq!(m.get(a), None);
        assert_eq!(m.remove(a), None, "double remove rejected");
    }

    #[test]
    fn freed_slots_are_reused_with_fresh_generation() {
        let mut m = SlotMap::new();
        let a = m.insert("a");
        let b = m.insert("b");
        m.remove(a);
        m.remove(b);
        // LIFO free list: b's index comes back first.
        let c = m.insert("c");
        assert_eq!(c.index(), b.index());
        assert_ne!(c.generation(), b.generation());
        let d = m.insert("d");
        assert_eq!(d.index(), a.index());
        assert_eq!(m.entries.len(), 2, "no new storage grown");
        // Stale handles miss; fresh ones hit.
        assert_eq!(m.get(a), None);
        assert_eq!(m.get(b), None);
        assert!(m.get_mut(a).is_none());
        assert_eq!(m.get(c), Some(&"c"));
        assert_eq!(m.get(d), Some(&"d"));
    }

    #[test]
    fn iter_walks_live_entries_in_index_order() {
        let mut m = SlotMap::new();
        let a = m.insert(1);
        let b = m.insert(2);
        let c = m.insert(3);
        m.remove(b);
        let got: Vec<(usize, i32)> = m.iter().map(|(s, &v)| (s.index(), v)).collect();
        assert_eq!(got, vec![(a.index(), 1), (c.index(), 3)]);
        assert_eq!(m.values().copied().collect::<Vec<_>>(), vec![1, 3]);
        assert!(m.contains(a) && !m.contains(b) && m.contains(c));
    }

    #[test]
    fn null_slot_never_resolves() {
        let mut m = SlotMap::<i32>::new();
        m.insert(1);
        assert_eq!(m.get(JobSlot::NULL), None);
        assert!(JobSlot::NULL.is_null());
        assert_eq!(JobSlot::default(), JobSlot::NULL);
    }

    #[test]
    fn job_index_translates_and_clears() {
        let mut m = SlotMap::new();
        let mut idx = JobIdIndex::new();
        let s = m.insert(7);
        idx.set(JobId::new(3), s);
        assert_eq!(idx.get(JobId::new(3)), Some(s));
        assert_eq!(idx.get(JobId::new(4)), None, "unset id");
        assert_eq!(idx.get(JobId::new(1_000)), None, "beyond table");
        idx.clear(JobId::new(3));
        assert_eq!(idx.get(JobId::new(3)), None);
        idx.clear(JobId::new(99)); // no-op beyond table
    }

    #[test]
    #[should_panic(expected = "dense id space")]
    fn absurd_job_id_rejected() {
        let mut idx = JobIdIndex::new();
        idx.set(JobId::new(u64::MAX), JobSlot::NULL);
    }

    #[test]
    fn display_shows_index_and_generation() {
        let mut m = SlotMap::new();
        let a = m.insert(());
        assert_eq!(a.to_string(), "slot-0@0");
    }
}
