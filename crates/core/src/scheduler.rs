//! The scheduler interface shared by Venn and every baseline.

use crate::snapshot::{SnapError, SnapReader, SnapWriter};
use crate::{DeviceInfo, JobId, Request, SimTime};

/// One suppressed check-in replayed in batch: the device view the
/// scheduler would have observed, at the simulated time it would have
/// observed it.
///
/// Produced by the simulator's demand-gating machinery (and its sharded
/// execution mode) when parked poll chains elapse between dispatched
/// events — see [`Scheduler::replay_check_ins`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CheckInRecord {
    /// When the suppressed check-in would have fired.
    pub time: SimTime,
    /// The device view at that instant.
    pub device: DeviceInfo,
}

/// A CL resource manager: decides which job each checked-in device serves.
///
/// The event-driven simulator (`venn-sim`) drives implementations through
/// this trait, so Venn, Random, FIFO, and SRSF are interchangeable. The
/// lifecycle per round of a job is:
///
/// 1. [`submit`](Scheduler::submit) — the job asks for `demand` devices.
/// 2. Devices check in over time; each check-in triggers
///    [`on_check_in`](Scheduler::on_check_in) (supply observation) and
///    [`assign`](Scheduler::assign) (the allocation decision, paper step 2).
/// 3. Assignment failures return capacity via
///    [`add_demand`](Scheduler::add_demand).
/// 4. [`on_alloc_complete`](Scheduler::on_alloc_complete) and
///    [`on_response`](Scheduler::on_response) feed profiling (Venn's tier
///    matching learns from them; baselines ignore them).
/// 5. [`withdraw`](Scheduler::withdraw) — the round reached quorum or
///    aborted; the request leaves the queue.
///
/// Implementations must tolerate `withdraw`/`add_demand` for unknown jobs
/// (the simulator may race a deadline against the last response).
///
/// # Examples
///
/// One full round, in the exact order the simulator drives the trait:
///
/// ```
/// use venn_core::{
///     Capacity, DeviceId, DeviceInfo, JobId, Request, ResourceSpec, Scheduler,
///     VennConfig, VennScheduler,
/// };
///
/// let mut sched: Box<dyn Scheduler> = Box::new(VennScheduler::new(VennConfig::default()));
/// let job = JobId::new(1);
///
/// // 1. The job requests 2 devices for its round.
/// sched.submit(Request::new(job, ResourceSpec::any(), 2, 10), 0);
/// assert_eq!(sched.pending_demand(job), Some(2));
///
/// // 2. Devices check in; each check-in is a supply observation followed
/// //    by an allocation decision that decrements pending demand.
/// let d1 = DeviceInfo::new(DeviceId::new(7), Capacity::new(0.9, 0.9));
/// sched.on_check_in(&d1, 1_000);
/// assert_eq!(sched.assign(&d1, 1_000), Some(job));
///
/// // 3. A held device departed before computing: its demand is returned.
/// sched.add_demand(job, 1, 2_000);
/// assert_eq!(sched.pending_demand(job), Some(2));
///
/// let d2 = DeviceInfo::new(DeviceId::new(8), Capacity::new(0.4, 0.4));
/// sched.on_check_in(&d2, 3_000);
/// assert_eq!(sched.assign(&d2, 3_000), Some(job));
/// assert_eq!(sched.assign(&d2, 3_000), Some(job)); // last unit
/// assert_eq!(sched.assign(&d2, 3_000), None); // demand exhausted
///
/// // 4. The round runs: allocation completed, responses stream back.
/// sched.on_alloc_complete(job, 3_000, 3_000);
/// sched.withdraw(job, 3_000); // request leaves the queue at round start
/// sched.on_response(job, &d1, 60_000, 63_000);
/// assert_eq!(sched.pending_demand(job), None);
/// ```
pub trait Scheduler {
    /// Human-readable scheduler name used in experiment tables.
    fn name(&self) -> &str;

    /// Enqueues a round request.
    fn submit(&mut self, request: Request, now: SimTime);

    /// Removes the job's current request (round quorum reached or aborted).
    fn withdraw(&mut self, job: JobId, now: SimTime);

    /// Returns `count` units of demand to the job's current request after
    /// assignment failures (device departed before responding).
    fn add_demand(&mut self, job: JobId, count: u32, now: SimTime);

    /// Observes a device check-in (supply signal). Default: ignored.
    fn on_check_in(&mut self, _device: &DeviceInfo, _now: SimTime) {}

    /// Chooses a job for the checked-in device, or `None` to leave it idle.
    ///
    /// On `Some(job)`, the scheduler must decrement that job's pending
    /// demand so subsequent devices are not over-assigned.
    fn assign(&mut self, device: &DeviceInfo, now: SimTime) -> Option<JobId>;

    /// Observes a successful response from a device serving `job`.
    /// Default: ignored.
    fn on_response(&mut self, _job: JobId, _device: &DeviceInfo, _response_ms: u64, _now: SimTime) {
    }

    /// Observes that `job`'s current request became fully allocated after
    /// `delay_ms` of scheduling delay. Default: ignored.
    fn on_alloc_complete(&mut self, _job: JobId, _delay_ms: u64, _now: SimTime) {}

    /// Remaining unassigned demand of the job's current request, or `None`
    /// if the job has no active request.
    fn pending_demand(&self, job: JobId) -> Option<u32>;

    /// Whether any job currently has an active (non-withdrawn) request —
    /// the *demand-open signal* behind the simulator's check-in gating.
    ///
    /// While this returns `false`, [`assign`](Scheduler::assign) is
    /// guaranteed to return `None` for every device, and that can only
    /// change at the next [`submit`](Scheduler::submit) — so the simulator
    /// may park idle pollers instead of re-polling them, and wake them
    /// when a request arrives. The default (`true`, "demand may be open")
    /// conservatively disables that optimization for implementations that
    /// do not override this.
    fn has_open_demand(&self) -> bool {
        true
    }

    /// Whether [`on_check_in`](Scheduler::on_check_in) observations feed
    /// scheduler state (supply estimation).
    ///
    /// When `false` (schedulers that leave `on_check_in` as the default
    /// no-op), the simulator's demand gating skips replaying suppressed
    /// check-ins entirely. The default (`true`) is the safe choice for
    /// implementations that override `on_check_in`.
    fn observes_check_ins(&self) -> bool {
        true
    }

    /// Replays a batch of suppressed check-ins in `(time, seq)` stream
    /// order — the bulk equivalent of calling
    /// [`on_check_in`](Scheduler::on_check_in) once per record.
    ///
    /// The simulator's demand gating elapses parked poll chains lazily:
    /// whole windows of suppressed check-ins are resolved at once, right
    /// before the next dispatched event. Batching them into a single call
    /// lets implementations skip the per-record virtual dispatch and feed
    /// their supply estimator directly. The default forwards each record
    /// to `on_check_in`, so overriding is purely an optimization — it must
    /// leave scheduler state exactly as the per-record calls would.
    fn replay_check_ins(&mut self, batch: &[CheckInRecord]) {
        for r in batch {
            self.on_check_in(&r.device, r.time);
        }
    }

    /// Appends the scheduler's full mutable state to `w` so a checkpoint
    /// can resume it mid-run. A restored scheduler must continue the run
    /// bit-identically — RNG stream positions, queue orders, and learned
    /// profiles included.
    ///
    /// The default reports [`SnapError::Unsupported`]; every shipped
    /// scheduler overrides it.
    fn save_state(&self, _w: &mut SnapWriter) -> Result<(), SnapError> {
        Err(SnapError::Unsupported("this scheduler"))
    }

    /// Restores state written by [`save_state`](Scheduler::save_state)
    /// into a freshly constructed scheduler of the same configuration.
    ///
    /// The default reports [`SnapError::Unsupported`]; every shipped
    /// scheduler overrides it.
    fn load_state(&mut self, _r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        Err(SnapError::Unsupported("this scheduler"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Capacity, DeviceId, ResourceSpec};

    /// A minimal scheduler proving the trait is object-safe and the default
    /// methods compile.
    #[derive(Debug, Default)]
    struct Greedy {
        queue: Vec<Request>,
    }

    impl Scheduler for Greedy {
        fn name(&self) -> &str {
            "greedy"
        }
        fn submit(&mut self, request: Request, _now: SimTime) {
            self.queue.push(request);
        }
        fn withdraw(&mut self, job: JobId, _now: SimTime) {
            self.queue.retain(|r| r.job != job);
        }
        fn add_demand(&mut self, job: JobId, count: u32, _now: SimTime) {
            if let Some(r) = self.queue.iter_mut().find(|r| r.job == job) {
                r.demand += count;
            }
        }
        fn assign(&mut self, device: &DeviceInfo, _now: SimTime) -> Option<JobId> {
            let r = self
                .queue
                .iter_mut()
                .find(|r| r.demand > 0 && r.spec.is_eligible(device.capacity()))?;
            r.demand -= 1;
            Some(r.job)
        }
        fn pending_demand(&self, job: JobId) -> Option<u32> {
            self.queue.iter().find(|r| r.job == job).map(|r| r.demand)
        }
    }

    #[test]
    fn replay_check_ins_defaults_to_per_record_dispatch() {
        #[derive(Default)]
        struct Recorder(Vec<(u64, SimTime)>);
        impl Scheduler for Recorder {
            fn name(&self) -> &str {
                "recorder"
            }
            fn submit(&mut self, _request: Request, _now: SimTime) {}
            fn withdraw(&mut self, _job: JobId, _now: SimTime) {}
            fn add_demand(&mut self, _job: JobId, _count: u32, _now: SimTime) {}
            fn on_check_in(&mut self, device: &DeviceInfo, now: SimTime) {
                self.0.push((device.id().as_u64(), now));
            }
            fn assign(&mut self, _device: &DeviceInfo, _now: SimTime) -> Option<JobId> {
                None
            }
            fn pending_demand(&self, _job: JobId) -> Option<u32> {
                None
            }
        }

        let batch = [
            CheckInRecord {
                time: 100,
                device: DeviceInfo::new(DeviceId::new(3), Capacity::new(0.5, 0.5)),
            },
            CheckInRecord {
                time: 250,
                device: DeviceInfo::new(DeviceId::new(9), Capacity::new(0.8, 0.2)),
            },
        ];
        let mut s = Recorder::default();
        // Through the object-safe trait surface, as the simulator calls it.
        (&mut s as &mut dyn Scheduler).replay_check_ins(&batch);
        assert_eq!(s.0, vec![(3, 100), (9, 250)]);
    }

    #[test]
    fn trait_is_object_safe() {
        let mut s: Box<dyn Scheduler> = Box::<Greedy>::default();
        s.submit(Request::new(JobId::new(1), ResourceSpec::any(), 1, 1), 0);
        let d = DeviceInfo::new(DeviceId::new(1), Capacity::new(0.5, 0.5));
        s.on_check_in(&d, 0);
        assert_eq!(s.assign(&d, 0), Some(JobId::new(1)));
        assert_eq!(s.pending_demand(JobId::new(1)), Some(0));
        s.on_response(JobId::new(1), &d, 100, 100);
        s.on_alloc_complete(JobId::new(1), 0, 0);
        s.withdraw(JobId::new(1), 0);
        assert_eq!(s.pending_demand(JobId::new(1)), None);
    }
}
