//! Intersection Resource Scheduling (IRS) — the paper's Algorithm 1.
//!
//! Given job groups whose eligible device pools overlap, contain, or nest
//! within one another, IRS produces a *resource allocation plan*: which
//! job group owns each atomic region of the eligibility Venn diagram, so
//! that every checked-in device can be routed to the first eligible job in
//! a fixed order. The heuristic has two steps:
//!
//! 1. **Intra-group** (§4.2.1): within a group, jobs are served smallest
//!    remaining demand first (computed by the caller; see
//!    [`crate::fairness`] for the starvation-adjusted demand).
//! 2. **Inter-group** (§4.2.2): groups are seeded scarcest-first with their
//!    still-unclaimed regions, then — walking groups from most to least
//!    abundant — a group greedily *steals* intersected regions from scarcer
//!    groups whenever its queue-pressure ratio `m'_j / |S'_j|` exceeds the
//!    victim's `m'_k / |S'_k|` (Algorithm 1, line 15).
//!
//! The whole computation is `O(m log m + n² · R)` for `m` jobs, `n` groups
//! and `R` distinct regions; with threshold specs `R ≤ n + 1` in practice.
//!
//! The plan's owner table is a *sorted mask table* — region masks ascending
//! with a parallel owner column — so the per-check-in owner lookup is a
//! branch-predictable binary search over at most a few dozen `u128`s
//! instead of a SipHash probe, and rebuilding the plan on every request
//! arrival/completion ([`allocate_into`] with an [`IrsScratch`]) allocates
//! nothing in steady state.

use crate::snapshot::{SnapError, SnapReader, SnapWriter, Snapshot};
use crate::supply::RegionSupply;

/// Scheduling-relevant summary of one resource-homogeneous job group.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GroupSummary {
    /// Caller-side index identifying the group (bit position in region
    /// masks).
    pub index: usize,
    /// Total eligible supply rate `|S_j|` (devices/ms over the window).
    pub eligible_supply: f64,
    /// Queue length `m_j` — number of jobs waiting in the group, optionally
    /// fairness-scaled (§4.4).
    pub queue_len: f64,
}

/// The output of Algorithm 1: region ownership plus a fallback order.
///
/// A device with eligibility mask `m` is offered first to
/// [`owner_of(m)`](Self::owner_of), then to the remaining eligible groups
/// in `fallback_order` (scarcest first), which maximizes utilization when
/// the owner has no pending demand.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AllocationPlan {
    /// Owned atomic-region masks, ascending — the search column of the
    /// owner table.
    region_masks: Vec<u128>,
    /// Owner group index of `region_masks[i]` — the payload column.
    region_owners: Vec<u32>,
    /// All group indices ordered by ascending eligible supply (scarcest
    /// first), used to break ties and to place devices the owner declines.
    pub fallback_order: Vec<usize>,
}

impl AllocationPlan {
    /// Owner group of the atomic region `mask`, if the region is owned —
    /// a binary search over the sorted mask table, no hashing.
    pub fn owner_of(&self, mask: u128) -> Option<usize> {
        self.region_masks
            .binary_search(&mask)
            .ok()
            .map(|i| self.region_owners[i] as usize)
    }

    /// Number of owned regions in the table.
    pub fn owned_region_count(&self) -> usize {
        self.region_masks.len()
    }

    /// The `(mask, owner)` table rows, masks ascending.
    pub fn owned_regions(&self) -> impl Iterator<Item = (u128, usize)> + '_ {
        self.region_masks
            .iter()
            .zip(&self.region_owners)
            .map(|(&mask, &owner)| (mask, owner as usize))
    }

    /// Iterator over group indices in the order a device with eligibility
    /// mask `mask` should be offered: owner first, then scarcity order.
    pub fn offer_order(&self, mask: u128) -> impl Iterator<Item = usize> + '_ {
        let owner = self.owner_of(mask);
        owner.into_iter().chain(
            self.fallback_order
                .iter()
                .copied()
                .filter(move |&g| mask & (1u128 << g) != 0 && Some(g) != owner),
        )
    }
}

impl Snapshot for AllocationPlan {
    fn encode(&self, w: &mut SnapWriter) {
        w.seq(&self.region_masks, |w, &m| w.u128(m));
        w.seq(&self.region_owners, |w, &o| w.u32(o));
        w.seq(&self.fallback_order, |w, &g| w.usize(g));
    }

    fn decode(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let region_masks = r.seq(|r| r.u128())?;
        let region_owners = r.seq(|r| r.u32())?;
        let fallback_order = r.seq(|r| r.usize())?;
        if region_masks.len() != region_owners.len() {
            return Err(SnapError::Corrupt("plan owner table mismatch".into()));
        }
        Ok(AllocationPlan {
            region_masks,
            region_owners,
            fallback_order,
        })
    }
}

/// Reusable working memory for [`allocate_into`].
///
/// Every buffer Algorithm 1 needs lives here and is cleared — capacity
/// retained — per invocation, so a scheduler that replans on every request
/// arrival/completion pays zero allocations once warm.
#[derive(Debug, Clone, Default)]
pub struct IrsScratch {
    /// Positions into the caller's `groups` slice, scarcity order.
    asc: Vec<u32>,
    /// Region indices owned per group index.
    owned_regions: Vec<Vec<u32>>,
    /// Allocated supply `|S'_j|` per group index.
    alloc_supply: Vec<f64>,
    /// Affected queue length `m'_j` per group index.
    queue: Vec<f64>,
    /// Per-region claimed flag for the scarcest-first seeding.
    claimed: Vec<bool>,
    /// Regions moved by the current steal.
    moved: Vec<u32>,
    /// `(mask, push sequence, owner)` rows awaiting the final sort.
    pairs: Vec<(u128, u32, u32)>,
}

/// Runs the inter-group step of Algorithm 1.
///
/// `groups` summarizes each active job group; `regions` is the atomic-region
/// supply decomposition from
/// [`SupplyEstimator::region_supplies`](crate::SupplyEstimator::region_supplies)
/// (bit `j` of a mask refers to `groups[j']` with `groups[j'].index == j`).
///
/// # Panics
///
/// Panics if any group index is ≥ 128 (mask width).
pub fn allocate(groups: &[GroupSummary], regions: &[RegionSupply]) -> AllocationPlan {
    allocate_with(groups, regions, true)
}

/// [`allocate`] with the greedy cross-group reallocation (Algorithm 1 lines
/// 10–23) optionally disabled — the "scarcity-only" design ablation: groups
/// keep exactly their initial scarcest-first seeding.
pub fn allocate_with(
    groups: &[GroupSummary],
    regions: &[RegionSupply],
    steal: bool,
) -> AllocationPlan {
    let mut plan = AllocationPlan::default();
    let mut scratch = IrsScratch::default();
    allocate_into(&mut plan, groups, regions, steal, &mut scratch);
    plan
}

/// [`allocate_with`] writing into an existing plan through reusable
/// working memory — the delta-friendly entry point: callers that rebuild
/// the plan on every request arrival and completion (the incremental
/// [`VennScheduler`](crate::VennScheduler)) reuse the plan's and scratch's
/// allocations instead of rebuilding maps each time.
pub fn allocate_into(
    plan: &mut AllocationPlan,
    groups: &[GroupSummary],
    regions: &[RegionSupply],
    steal: bool,
    scratch: &mut IrsScratch,
) {
    for g in groups {
        assert!(g.index < 128, "group index exceeds mask width");
    }
    plan.region_masks.clear();
    plan.region_owners.clear();
    plan.fallback_order.clear();
    if groups.is_empty() {
        return;
    }

    // Scarcity order: ascending |S_j|, stable on index for determinism.
    scratch.asc.clear();
    scratch.asc.extend(0..groups.len() as u32);
    scratch.asc.sort_unstable_by(|&a, &b| {
        let (ga, gb) = (&groups[a as usize], &groups[b as usize]);
        ga.eligible_supply
            .partial_cmp(&gb.eligible_supply)
            .expect("non-finite supply")
            .then(ga.index.cmp(&gb.index))
            .then(a.cmp(&b))
    });
    plan.fallback_order
        .extend(scratch.asc.iter().map(|&p| groups[p as usize].index));

    // Per-group state, indexed directly by group index (< 128).
    let slots = groups.iter().map(|g| g.index).max().unwrap_or(0) + 1;
    if scratch.owned_regions.len() < slots {
        scratch.owned_regions.resize_with(slots, Vec::new);
    }
    for owned in &mut scratch.owned_regions[..slots] {
        owned.clear();
    }
    scratch.alloc_supply.clear();
    scratch.alloc_supply.resize(slots, 0.0);
    scratch.queue.clear();
    scratch.queue.resize(slots, 0.0);
    for g in groups {
        scratch.queue[g.index] = g.queue_len;
    }

    // --- Initial allocation (Algorithm 1, lines 5-9): walk groups from the
    // scarcest and give each all still-unclaimed regions it is eligible for.
    scratch.claimed.clear();
    scratch.claimed.resize(regions.len(), false);
    for &p in &scratch.asc {
        let g = &groups[p as usize];
        let bit = 1u128 << g.index;
        for (ri, region) in regions.iter().enumerate() {
            if !scratch.claimed[ri] && region.mask & bit != 0 {
                scratch.claimed[ri] = true;
                scratch.owned_regions[g.index].push(ri as u32);
                scratch.alloc_supply[g.index] += region.rate;
            }
        }
    }

    // --- Greedy reallocation (lines 10-23): from the most abundant group,
    // steal intersected regions from scarcer groups while the queue-pressure
    // ratio favours it. (`asc` walked back to front is the descending order.)
    let n = scratch.asc.len();
    for dj in 0..if steal { n } else { 0 } {
        let gj = &groups[scratch.asc[n - 1 - dj] as usize];
        let j = gj.index;
        if scratch.alloc_supply[j] <= 0.0 {
            continue; // nothing was left for this group; it cannot anchor a steal
        }
        // Victims: strictly scarcer groups whose eligible set intersects
        // G_j's, visited from the most abundant of them downwards.
        for dk in dj + 1..n {
            let gk = &groups[scratch.asc[n - 1 - dk] as usize];
            let k = gk.index;
            if gk.eligible_supply >= gj.eligible_supply {
                continue;
            }
            let bit_j = 1u128 << j;
            let intersects = regions
                .iter()
                .any(|r| r.mask & bit_j != 0 && r.mask & (1u128 << k) != 0);
            if !intersects {
                continue;
            }
            let sj = scratch.alloc_supply[j];
            let sk = scratch.alloc_supply[k];
            let ratio_j = if sj > 0.0 {
                scratch.queue[j] / sj
            } else {
                f64::INFINITY
            };
            let ratio_k = if sk > 0.0 {
                scratch.queue[k] / sk
            } else {
                f64::INFINITY
            };
            if ratio_j > ratio_k && ratio_k.is_finite() {
                // Move the regions of S'_k that G_j is eligible for —
                // in place: survivors keep their order, movers append to
                // G_j in theirs (what a partition would produce).
                let mut victim = std::mem::take(&mut scratch.owned_regions[k]);
                scratch.moved.clear();
                let mut moved_rate = 0.0;
                victim.retain(|&ri| {
                    if regions[ri as usize].mask & bit_j != 0 {
                        scratch.moved.push(ri);
                        moved_rate += regions[ri as usize].rate;
                        false
                    } else {
                        true
                    }
                });
                scratch.owned_regions[k] = victim;
                scratch.owned_regions[j].extend_from_slice(&scratch.moved);
                scratch.alloc_supply[j] += moved_rate;
                scratch.alloc_supply[k] -= moved_rate;
                // The deprioritized group's jobs now queue behind G_j's.
                scratch.queue[j] += scratch.queue[k];
            } else {
                // G_j should first look to groups more abundant than G_k.
                break;
            }
        }
    }

    // --- Owner table: rows pushed in group-then-region order (the order
    // the hash map used to be written in), sorted by (mask, sequence) so
    // duplicate-mask regions resolve to the *last* write, then compacted.
    scratch.pairs.clear();
    let mut seq = 0u32;
    for (g, owned) in scratch.owned_regions[..slots].iter().enumerate() {
        for &ri in owned {
            scratch
                .pairs
                .push((regions[ri as usize].mask, seq, g as u32));
            seq += 1;
        }
    }
    scratch
        .pairs
        .sort_unstable_by_key(|&(mask, s, _)| (mask, s));
    for &(mask, _, owner) in &scratch.pairs {
        if plan.region_masks.last() == Some(&mask) {
            *plan.region_owners.last_mut().expect("parallel columns") = owner;
        } else {
            plan.region_masks.push(mask);
            plan.region_owners.push(owner);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn region(mask: u128, rate: f64) -> RegionSupply {
        RegionSupply { mask, rate }
    }

    fn group(index: usize, supply: f64, queue: f64) -> GroupSummary {
        GroupSummary {
            index,
            eligible_supply: supply,
            queue_len: queue,
        }
    }

    /// Two groups, nested pools (the Lemma 2 setting): group 1 (scarce,
    /// needs >=2GB analog) owns the scarce region; group 0 owns the rest.
    #[test]
    fn nested_pools_seed_scarcest_first() {
        // Region 0b01: only general eligible; 0b11: both.
        let regions = [region(0b01, 0.7), region(0b11, 0.3)];
        let groups = [group(0, 1.0, 1.0), group(1, 0.3, 1.0)];
        let plan = allocate(&groups, &regions);
        assert_eq!(plan.owner_of(0b11), Some(1));
        assert_eq!(plan.owner_of(0b01), Some(0));
        assert_eq!(plan.fallback_order, vec![1, 0]);
    }

    /// When the abundant group's queue pressure dominates, it steals the
    /// intersection (Algorithm 1 line 15-17).
    #[test]
    fn abundant_group_steals_under_queue_pressure() {
        let regions = [region(0b01, 0.7), region(0b11, 0.3)];
        // Group 0: huge queue on abundant pool; group 1: single job on the
        // scarce pool. m0/s0 = 20/0.7 > m1/s1 = 1/0.3.
        let groups = [group(0, 1.0, 20.0), group(1, 0.3, 1.0)];
        let plan = allocate(&groups, &regions);
        assert_eq!(
            plan.owner_of(0b11),
            Some(0),
            "intersection stolen by group 0"
        );
        assert_eq!(plan.owner_of(0b01), Some(0));
    }

    #[test]
    fn no_steal_when_scarce_queue_dominates() {
        let regions = [region(0b01, 0.7), region(0b11, 0.3)];
        // m0/s0 = 1/0.7 < m1/s1 = 10/0.3.
        let groups = [group(0, 1.0, 1.0), group(1, 0.3, 10.0)];
        let plan = allocate(&groups, &regions);
        assert_eq!(plan.owner_of(0b11), Some(1));
    }

    /// Fig. 3 toy shape: Keyboard (all devices) vs two Emoji jobs (half the
    /// devices). Emoji group must own the emoji region.
    #[test]
    fn toy_example_reserves_scarce_devices() {
        let regions = [region(0b01, 0.5), region(0b11, 0.5)];
        let keyboard = group(0, 1.0, 1.0);
        let emoji = group(1, 0.5, 2.0);
        let plan = allocate(&[keyboard, emoji], &regions);
        assert_eq!(plan.owner_of(0b11), Some(1));
        assert_eq!(plan.owner_of(0b01), Some(0));
    }

    #[test]
    fn empty_inputs_yield_empty_plan() {
        let plan = allocate(&[], &[]);
        assert_eq!(plan.owned_region_count(), 0);
        assert!(plan.fallback_order.is_empty());
        assert_eq!(plan.owner_of(0b1), None);
    }

    #[test]
    fn every_region_with_an_eligible_group_is_owned() {
        let regions = [
            region(0b001, 0.2),
            region(0b011, 0.2),
            region(0b101, 0.2),
            region(0b111, 0.2),
        ];
        let groups = [group(0, 0.8, 3.0), group(1, 0.4, 1.0), group(2, 0.4, 2.0)];
        let plan = allocate(&groups, &regions);
        for r in &regions {
            let owner = plan.owner_of(r.mask).expect("region owned");
            assert!(r.mask & (1 << owner) != 0, "owner must be eligible");
        }
    }

    #[test]
    fn offer_order_starts_with_owner_then_scarcity() {
        let regions = [region(0b01, 0.7), region(0b11, 0.3)];
        let groups = [group(0, 1.0, 1.0), group(1, 0.3, 1.0)];
        let plan = allocate(&groups, &regions);
        let order: Vec<usize> = plan.offer_order(0b11).collect();
        assert_eq!(order, vec![1, 0]);
        let order: Vec<usize> = plan.offer_order(0b01).collect();
        assert_eq!(order, vec![0]);
    }

    #[test]
    fn disjoint_groups_never_steal() {
        // Two disjoint pools: no region carries both bits.
        let regions = [region(0b01, 0.5), region(0b10, 0.1)];
        let groups = [group(0, 0.5, 100.0), group(1, 0.1, 1.0)];
        let plan = allocate(&groups, &regions);
        assert_eq!(plan.owner_of(0b10), Some(1));
        assert_eq!(plan.owner_of(0b01), Some(0));
    }

    #[test]
    fn three_level_nesting_respects_scarcity_without_pressure() {
        // general ⊃ compute ⊃ high-perf, equal queues.
        let regions = [region(0b001, 0.5), region(0b011, 0.3), region(0b111, 0.2)];
        let groups = [group(0, 1.0, 1.0), group(1, 0.5, 1.0), group(2, 0.2, 1.0)];
        let plan = allocate(&groups, &regions);
        assert_eq!(plan.owner_of(0b111), Some(2));
        assert_eq!(plan.owner_of(0b011), Some(1));
        assert_eq!(plan.owner_of(0b001), Some(0));
    }

    #[test]
    fn steal_ablation_keeps_initial_seeding() {
        let regions = [region(0b01, 0.7), region(0b11, 0.3)];
        // Queue pressure that *would* trigger a steal...
        let groups = [group(0, 1.0, 20.0), group(1, 0.3, 1.0)];
        let no_steal = allocate_with(&groups, &regions, false);
        // ...is ignored: the scarce group keeps its region.
        assert_eq!(no_steal.owner_of(0b11), Some(1));
        let with_steal = allocate_with(&groups, &regions, true);
        assert_eq!(with_steal.owner_of(0b11), Some(0));
    }

    #[test]
    fn allocate_into_reuses_plan_and_matches_allocate() {
        let regions = [region(0b01, 0.7), region(0b11, 0.3)];
        let groups = [group(0, 1.0, 20.0), group(1, 0.3, 1.0)];
        let mut plan = AllocationPlan::default();
        let mut scratch = IrsScratch::default();
        // Pre-populate with unrelated state that must be fully replaced.
        allocate_into(
            &mut plan,
            &[group(5, 1.0, 1.0)],
            &[region(0b100000, 1.0)],
            true,
            &mut scratch,
        );
        allocate_into(&mut plan, &groups, &regions, true, &mut scratch);
        assert_eq!(plan, allocate(&groups, &regions));
        allocate_into(&mut plan, &[], &[], true, &mut scratch);
        assert_eq!(plan, AllocationPlan::default());
    }

    #[test]
    fn zero_supply_group_does_not_anchor_steals() {
        let regions = [region(0b01, 1.0)]; // nothing eligible for group 1
        let groups = [group(0, 1.0, 1.0), group(1, 0.0, 50.0)];
        let plan = allocate(&groups, &regions);
        assert_eq!(plan.owner_of(0b01), Some(0));
    }

    #[test]
    fn duplicate_region_masks_resolve_to_the_last_writer() {
        // Two regions with the same mask can end up owned by different
        // groups; the owner table keeps whichever was written last in
        // group-then-region order — exactly what the old hash-map insert
        // loop produced.
        let regions = [region(0b11, 0.4), region(0b11, 0.4), region(0b01, 0.2)];
        let groups = [group(0, 1.0, 1.0), group(1, 0.8, 1.0)];
        let plan = allocate(&groups, &regions);
        assert_eq!(plan.owned_region_count(), 2);
        let rows: Vec<(u128, usize)> = plan.owned_regions().collect();
        assert_eq!(rows[0].0, 0b01);
        assert_eq!(rows[1].0, 0b11);
        // And the table stays mask-sorted for the binary search.
        assert!(rows.windows(2).all(|w| w[0].0 < w[1].0));
    }
}
