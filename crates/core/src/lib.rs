//! Core of the Venn collaborative-learning (CL) resource manager.
//!
//! Venn (MLSys 2025) schedules ephemeral, heterogeneous edge devices among
//! many concurrent CL jobs to minimize the average job completion time
//! (JCT). This crate implements the paper's two contributions from scratch:
//!
//! * **Intersection Resource Scheduling (IRS)** — [`irs`] implements
//!   Algorithm 1: jobs are grouped into *resource-homogeneous job groups*
//!   (same device requirement), ordered within a group by smallest remaining
//!   demand, and the groups' overlapping eligible-device sets are allocated
//!   by a scarcity-first pass followed by a greedy queue-ratio reallocation.
//! * **Resource-aware device matching** — [`matching`] implements
//!   Algorithm 2: a served job's eligible devices are partitioned into `V`
//!   capacity tiers and the job is restricted to one randomly rotating tier
//!   whenever the projected JCT improves (`1 + c > V + c·g_u`).
//!
//! The two pieces are composed by [`VennScheduler`], which implements the
//! same [`Scheduler`] trait as the baselines (Random / FIFO / SRSF in the
//! `venn-baselines` crate), so the event-driven simulator in `venn-sim` can
//! drive any of them interchangeably.
//!
//! # Examples
//!
//! ```
//! use venn_core::{
//!     Capacity, DeviceInfo, DeviceId, JobId, Request, ResourceSpec, Scheduler,
//!     VennConfig, VennScheduler,
//! };
//!
//! let mut sched = VennScheduler::new(VennConfig::default());
//! sched.submit(
//!     Request::new(JobId::new(1), ResourceSpec::any(), 2, 10),
//!     0,
//! );
//! let device = DeviceInfo::new(DeviceId::new(7), Capacity::new(0.9, 0.9));
//! sched.on_check_in(&device, 5);
//! assert_eq!(sched.assign(&device, 5), Some(JobId::new(1)));
//! ```

pub mod config;
pub mod device;
pub mod fairness;
pub mod faultio;
pub mod forecast;
pub mod ids;
pub mod intern;
pub mod irs;
pub mod matching;
pub mod request;
pub mod resource;
pub mod scheduler;
pub mod slotmap;
pub mod snapshot;
pub mod supply;
pub mod venn;

pub use config::VennConfig;
pub use device::DeviceInfo;
pub use faultio::{Fault, FaultFs, FaultRule, FioError, FioOp, MemFs, RealFs, SimFs};
pub use ids::{DeviceId, GroupId, JobId};
pub use intern::SpecInterner;
pub use request::Request;
pub use resource::{Capacity, CategoryThresholds, ResourceSpec, SpecCategory};
pub use scheduler::{CheckInRecord, Scheduler};
pub use slotmap::{JobIdIndex, JobSlot, SlotMap};
pub use snapshot::{SnapError, SnapReader, SnapWriter, Snapshot};
pub use supply::SupplyEstimator;
pub use venn::VennScheduler;

/// Simulated time in milliseconds since the start of a run.
///
/// Integer milliseconds keep event ordering total and runs reproducible.
pub type SimTime = u64;

/// One simulated day in milliseconds.
pub const DAY_MS: SimTime = 24 * 60 * 60 * 1000;

/// One simulated hour in milliseconds.
pub const HOUR_MS: SimTime = 60 * 60 * 1000;

/// One simulated minute in milliseconds.
pub const MINUTE_MS: SimTime = 60 * 1000;
