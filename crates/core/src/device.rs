//! The device view handed to schedulers at check-in time.

use crate::{Capacity, DeviceId};

/// What a resource manager learns about a device when it checks in.
///
/// Deliberately excludes anything the platform cannot observe up front
/// (actual execution speed, future availability): schedulers must make do
/// with the advertised hardware capacity, exactly as in the paper.
///
/// # Examples
///
/// ```
/// use venn_core::{Capacity, DeviceId, DeviceInfo, ResourceSpec};
///
/// let d = DeviceInfo::new(DeviceId::new(3), Capacity::new(0.7, 0.6));
/// assert!(ResourceSpec::new(0.5, 0.5).is_eligible(d.capacity()));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeviceInfo {
    id: DeviceId,
    capacity: Capacity,
}

impl DeviceInfo {
    /// Creates a device view.
    pub fn new(id: DeviceId, capacity: Capacity) -> Self {
        DeviceInfo { id, capacity }
    }

    /// Device identifier.
    pub fn id(&self) -> DeviceId {
        self.id
    }

    /// Advertised hardware capacity.
    pub fn capacity(&self) -> &Capacity {
        &self.capacity
    }

    /// Scalar hardware score (see [`Capacity::score`]).
    pub fn score(&self) -> f64 {
        self.capacity.score()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_roundtrip() {
        let d = DeviceInfo::new(DeviceId::new(9), Capacity::new(0.4, 0.6));
        assert_eq!(d.id(), DeviceId::new(9));
        assert_eq!(d.capacity().cpu(), 0.4);
        assert_eq!(d.score(), 0.5);
    }
}
