//! Device capacities, job resource specifications, and the eligibility
//! lattice between them.
//!
//! The paper stratifies devices by normalized CPU and memory scores
//! (Fig. 2b / Fig. 8a) and expresses each job's device requirement as
//! minimum thresholds on those scores. Requirements of this shape form
//! upper-right quadrants of the capacity square, so eligible device sets
//! naturally *nest, overlap, or contain* one another — the structure the
//! Intersection Resource Scheduling problem is about.

use std::fmt;
use std::hash::{Hash, Hasher};

/// Normalized hardware capacity of one device.
///
/// Scores are non-negative and typically in `[0, 1]`, following the
/// AI-Benchmark normalization used by the paper.
///
/// # Examples
///
/// ```
/// use venn_core::{Capacity, ResourceSpec};
///
/// let dev = Capacity::new(0.8, 0.3);
/// assert!(ResourceSpec::new(0.5, 0.0).is_eligible(&dev)); // compute-rich
/// assert!(!ResourceSpec::new(0.0, 0.5).is_eligible(&dev)); // memory-rich
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Capacity {
    cpu: f64,
    mem: f64,
}

impl Capacity {
    /// Creates a capacity from normalized CPU and memory scores.
    ///
    /// # Panics
    ///
    /// Panics if either score is negative or non-finite.
    pub fn new(cpu: f64, mem: f64) -> Self {
        assert!(
            cpu.is_finite() && mem.is_finite() && cpu >= 0.0 && mem >= 0.0,
            "capacity scores must be finite and non-negative (got cpu={cpu}, mem={mem})"
        );
        Capacity { cpu, mem }
    }

    /// Normalized CPU score.
    pub fn cpu(&self) -> f64 {
        self.cpu
    }

    /// Normalized memory score.
    pub fn mem(&self) -> f64 {
        self.mem
    }

    /// Scalar hardware score used for tier partitioning (Algorithm 2):
    /// the mean of the CPU and memory scores.
    pub fn score(&self) -> f64 {
        (self.cpu + self.mem) / 2.0
    }
}

impl fmt::Display for Capacity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(cpu={:.2}, mem={:.2})", self.cpu, self.mem)
    }
}

/// A job's device requirement: minimum CPU and memory scores.
///
/// Specs are compared, hashed, and grouped — two jobs with equal specs land
/// in the same resource-homogeneous job group.
#[derive(Debug, Clone, Copy)]
pub struct ResourceSpec {
    min_cpu: f64,
    min_mem: f64,
}

impl ResourceSpec {
    /// Creates a requirement with the given minimum scores.
    ///
    /// # Panics
    ///
    /// Panics if either threshold is negative or non-finite.
    pub fn new(min_cpu: f64, min_mem: f64) -> Self {
        assert!(
            min_cpu.is_finite() && min_mem.is_finite() && min_cpu >= 0.0 && min_mem >= 0.0,
            "spec thresholds must be finite and non-negative"
        );
        // Normalize -0.0 so Eq/Hash treat it as 0.0.
        ResourceSpec {
            min_cpu: min_cpu + 0.0,
            min_mem: min_mem + 0.0,
        }
    }

    /// The requirement every device satisfies (the paper's "General"
    /// resources).
    pub fn any() -> Self {
        ResourceSpec::new(0.0, 0.0)
    }

    /// Minimum CPU score.
    pub fn min_cpu(&self) -> f64 {
        self.min_cpu
    }

    /// Minimum memory score.
    pub fn min_mem(&self) -> f64 {
        self.min_mem
    }

    /// Whether `device` satisfies this requirement.
    pub fn is_eligible(&self, device: &Capacity) -> bool {
        device.cpu >= self.min_cpu && device.mem >= self.min_mem
    }

    /// Whether this spec's eligible set contains `other`'s eligible set
    /// (i.e. this spec is *weaker*: lower or equal thresholds on both axes).
    pub fn contains(&self, other: &ResourceSpec) -> bool {
        self.min_cpu <= other.min_cpu && self.min_mem <= other.min_mem
    }

    /// The spec whose eligible set is the intersection of the two
    /// (component-wise maximum of the thresholds).
    ///
    /// For threshold ("quadrant") requirements the intersection is itself a
    /// threshold requirement, which is what makes IRS's region bookkeeping
    /// exact.
    pub fn intersection(&self, other: &ResourceSpec) -> ResourceSpec {
        ResourceSpec::new(
            self.min_cpu.max(other.min_cpu),
            self.min_mem.max(other.min_mem),
        )
    }
}

impl Default for ResourceSpec {
    fn default() -> Self {
        ResourceSpec::any()
    }
}

impl PartialEq for ResourceSpec {
    fn eq(&self, other: &Self) -> bool {
        self.min_cpu.to_bits() == other.min_cpu.to_bits()
            && self.min_mem.to_bits() == other.min_mem.to_bits()
    }
}

impl Eq for ResourceSpec {}

impl Hash for ResourceSpec {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.min_cpu.to_bits().hash(state);
        self.min_mem.to_bits().hash(state);
    }
}

impl fmt::Display for ResourceSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "spec(cpu>={:.2}, mem>={:.2})",
            self.min_cpu, self.min_mem
        )
    }
}

/// Threshold pair defining the paper's four eligibility regions (Fig. 8a).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CategoryThresholds {
    /// CPU score at or above which a device counts as compute-rich.
    pub cpu: f64,
    /// Memory score at or above which a device counts as memory-rich.
    pub mem: f64,
}

impl Default for CategoryThresholds {
    fn default() -> Self {
        CategoryThresholds { cpu: 0.5, mem: 0.5 }
    }
}

/// The paper's four device-requirement categories (Fig. 8a).
///
/// `HighPerf ⊂ ComputeRich ⊂ General` and `HighPerf ⊂ MemoryRich ⊂ General`;
/// `ComputeRich ∩ MemoryRich = HighPerf` — the canonical intersection
/// pattern the evaluation stresses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SpecCategory {
    /// Any device qualifies.
    General,
    /// Devices with a high CPU score.
    ComputeRich,
    /// Devices with a high memory score.
    MemoryRich,
    /// Devices high on both axes.
    HighPerf,
}

impl SpecCategory {
    /// All four categories in a fixed order.
    pub const ALL: [SpecCategory; 4] = [
        SpecCategory::General,
        SpecCategory::ComputeRich,
        SpecCategory::MemoryRich,
        SpecCategory::HighPerf,
    ];

    /// The [`ResourceSpec`] this category denotes under `thresholds`.
    pub fn spec(&self, thresholds: CategoryThresholds) -> ResourceSpec {
        match self {
            SpecCategory::General => ResourceSpec::any(),
            SpecCategory::ComputeRich => ResourceSpec::new(thresholds.cpu, 0.0),
            SpecCategory::MemoryRich => ResourceSpec::new(0.0, thresholds.mem),
            SpecCategory::HighPerf => ResourceSpec::new(thresholds.cpu, thresholds.mem),
        }
    }

    /// The category a device falls into under `thresholds` — the *finest*
    /// region it belongs to.
    pub fn of_device(device: &Capacity, thresholds: CategoryThresholds) -> SpecCategory {
        match (
            device.cpu() >= thresholds.cpu,
            device.mem() >= thresholds.mem,
        ) {
            (true, true) => SpecCategory::HighPerf,
            (true, false) => SpecCategory::ComputeRich,
            (false, true) => SpecCategory::MemoryRich,
            (false, false) => SpecCategory::General,
        }
    }

    /// Short label used in experiment tables.
    pub fn label(&self) -> &'static str {
        match self {
            SpecCategory::General => "General",
            SpecCategory::ComputeRich => "Compute-Rich",
            SpecCategory::MemoryRich => "Memory-Rich",
            SpecCategory::HighPerf => "High-Perf",
        }
    }
}

impl fmt::Display for SpecCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn eligibility_is_componentwise() {
        let spec = ResourceSpec::new(0.5, 0.3);
        assert!(spec.is_eligible(&Capacity::new(0.5, 0.3)));
        assert!(spec.is_eligible(&Capacity::new(0.9, 0.9)));
        assert!(!spec.is_eligible(&Capacity::new(0.4, 0.9)));
        assert!(!spec.is_eligible(&Capacity::new(0.9, 0.2)));
    }

    #[test]
    fn any_spec_accepts_everything() {
        let any = ResourceSpec::any();
        assert!(any.is_eligible(&Capacity::new(0.0, 0.0)));
        assert!(any.is_eligible(&Capacity::new(1.0, 1.0)));
    }

    #[test]
    fn containment_matches_set_semantics() {
        let general = ResourceSpec::any();
        let compute = ResourceSpec::new(0.5, 0.0);
        let high = ResourceSpec::new(0.5, 0.5);
        assert!(general.contains(&compute));
        assert!(compute.contains(&high));
        assert!(general.contains(&high));
        assert!(!high.contains(&compute));
        // Overlapping but not nested:
        let memory = ResourceSpec::new(0.0, 0.5);
        assert!(!compute.contains(&memory));
        assert!(!memory.contains(&compute));
    }

    #[test]
    fn intersection_is_componentwise_max() {
        let compute = ResourceSpec::new(0.5, 0.0);
        let memory = ResourceSpec::new(0.0, 0.5);
        let both = compute.intersection(&memory);
        assert_eq!(both, ResourceSpec::new(0.5, 0.5));
    }

    #[test]
    fn specs_hash_and_group() {
        let mut groups: HashMap<ResourceSpec, u32> = HashMap::new();
        *groups.entry(ResourceSpec::new(0.5, 0.0)).or_default() += 1;
        *groups.entry(ResourceSpec::new(0.5, 0.0)).or_default() += 1;
        *groups
            .entry(ResourceSpec::new(0.5, -0.0_f64.abs()))
            .or_default() += 1;
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[&ResourceSpec::new(0.5, 0.0)], 3);
    }

    #[test]
    fn score_is_mean_of_axes() {
        assert_eq!(Capacity::new(0.2, 0.8).score(), 0.5);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn negative_capacity_panics() {
        Capacity::new(-0.1, 0.5);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn nan_spec_panics() {
        ResourceSpec::new(f64::NAN, 0.0);
    }

    #[test]
    fn categories_form_the_paper_lattice() {
        let th = CategoryThresholds::default();
        let general = SpecCategory::General.spec(th);
        let compute = SpecCategory::ComputeRich.spec(th);
        let memory = SpecCategory::MemoryRich.spec(th);
        let high = SpecCategory::HighPerf.spec(th);
        assert!(general.contains(&compute) && general.contains(&memory));
        assert!(compute.contains(&high) && memory.contains(&high));
        assert_eq!(compute.intersection(&memory), high);
    }

    #[test]
    fn device_category_is_finest_region() {
        let th = CategoryThresholds::default();
        assert_eq!(
            SpecCategory::of_device(&Capacity::new(0.9, 0.9), th),
            SpecCategory::HighPerf
        );
        assert_eq!(
            SpecCategory::of_device(&Capacity::new(0.9, 0.1), th),
            SpecCategory::ComputeRich
        );
        assert_eq!(
            SpecCategory::of_device(&Capacity::new(0.1, 0.9), th),
            SpecCategory::MemoryRich
        );
        assert_eq!(
            SpecCategory::of_device(&Capacity::new(0.1, 0.1), th),
            SpecCategory::General
        );
    }

    #[test]
    fn display_formats() {
        assert_eq!(
            ResourceSpec::new(0.5, 0.25).to_string(),
            "spec(cpu>=0.50, mem>=0.25)"
        );
        assert_eq!(Capacity::new(0.5, 0.25).to_string(), "(cpu=0.50, mem=0.25)");
        assert_eq!(SpecCategory::HighPerf.to_string(), "High-Perf");
    }
}
