//! Machine-checkable version of the paper's Lemma 2 (Appendix D).
//!
//! Lemma 2: *given two job groups with arbitrary resource contention
//! patterns, Venn's Algorithm 1 minimizes the average scheduling delay (if
//! the future resource allocation plan is set).* The proof compares, for
//! the head job of the abundant group (size `l`), the queuing-delay change
//! of prioritizing it over the scarce group:
//!
//! ```text
//! Δt = l · m'_B − (l / (1 − x) − l) · m'_A
//! ```
//!
//! where `x` is the scarce fraction of the supply and `m'_A`, `m'_B` the
//! affected queue lengths. Prioritize iff `Δt < 0 ⇔ m'_A / (1 − x) >
//! m'_B / x` — the line-15 ratio test of Algorithm 1.
//!
//! This module exposes both sides so tests (and the `venn-bench` property
//! suite) can exhaustively check the equivalence and compare against the
//! exact solver on enumerated two-group instances.

/// The Lemma 2 instance: two nested job groups sharing a device stream.
///
/// Group A asks for the *general* resource (all devices); group B asks for
/// the *scarce* resource (a fraction `x` of devices). Each group holds a
/// queue of equal-demand jobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TwoGroupInstance {
    /// Scarce fraction of the device stream eligible for group B, in (0,1).
    pub x: f64,
    /// Jobs queued in the general group A.
    pub m_a: u32,
    /// Jobs queued in the scarce group B.
    pub m_b: u32,
    /// Demand of the head job of group A.
    pub head_demand: u32,
}

impl TwoGroupInstance {
    /// Creates an instance.
    ///
    /// # Panics
    ///
    /// Panics if `x` is outside `(0, 1)`.
    pub fn new(x: f64, m_a: u32, m_b: u32, head_demand: u32) -> Self {
        assert!(x > 0.0 && x < 1.0, "scarce fraction must be in (0,1)");
        TwoGroupInstance {
            x,
            m_a,
            m_b,
            head_demand,
        }
    }

    /// Queuing-delay change `Δt` from prioritizing group A's head job over
    /// group B on the intersected (scarce) resource — Appendix D.
    pub fn delta_t(&self) -> f64 {
        let l = self.head_demand as f64;
        l * self.m_b as f64 - (l / (1.0 - self.x) - l) * self.m_a as f64
    }

    /// Algorithm 1's line-15 ratio test in the two-group setting:
    /// prioritize A iff `m'_A / (1 − x) > m'_B / x`.
    pub fn ratio_test_prioritizes_a(&self) -> bool {
        self.m_a as f64 / (1.0 - self.x) > self.m_b as f64 / self.x
    }

    /// The Δt rule: prioritize A iff `Δt < 0`.
    pub fn delta_rule_prioritizes_a(&self) -> bool {
        self.delta_t() < 0.0
    }
}

/// Checks the Lemma 2 equivalence (`Δt < 0 ⇔ ratio test`) on one instance.
///
/// The two predicates agree except exactly on the boundary
/// (`Δt == 0`), where either choice yields the same average delay.
pub fn lemma2_holds(inst: &TwoGroupInstance) -> bool {
    let boundary = inst.delta_t().abs() < 1e-9;
    boundary || (inst.delta_rule_prioritizes_a() == inst.ratio_test_prioritizes_a())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equivalence_on_a_grid() {
        for xi in 1..20 {
            let x = xi as f64 / 20.0;
            for m_a in 1..12u32 {
                for m_b in 1..12u32 {
                    for l in [1u32, 3, 10] {
                        let inst = TwoGroupInstance::new(x, m_a, m_b, l);
                        assert!(
                            lemma2_holds(&inst),
                            "lemma 2 violated at x={x} m_a={m_a} m_b={m_b} l={l}: \
                             dt={} ratio_a={}",
                            inst.delta_t(),
                            inst.ratio_test_prioritizes_a()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn huge_general_queue_prioritizes_general() {
        // Many general jobs waiting, one scarce job: the general group's
        // queue pressure wins the intersected resource.
        let inst = TwoGroupInstance::new(0.5, 20, 1, 4);
        assert!(inst.delta_rule_prioritizes_a());
        assert!(inst.ratio_test_prioritizes_a());
    }

    #[test]
    fn scarce_queue_keeps_its_resource() {
        // Symmetric queues on a half-scarce stream: prioritizing the
        // general head delays group B more than it saves.
        let inst = TwoGroupInstance::new(0.2, 1, 5, 4);
        assert!(!inst.delta_rule_prioritizes_a());
        assert!(!inst.ratio_test_prioritizes_a());
    }

    #[test]
    fn head_demand_does_not_affect_the_decision() {
        // Δt scales linearly in l, so the sign (the decision) is
        // l-invariant — exactly why Algorithm 1 can decide per group.
        for l in [1u32, 2, 8, 100] {
            let inst = TwoGroupInstance::new(0.3, 4, 3, l);
            assert_eq!(
                inst.delta_rule_prioritizes_a(),
                TwoGroupInstance::new(0.3, 4, 3, 1).delta_rule_prioritizes_a(),
                "l={l}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "scarce fraction")]
    fn degenerate_fraction_panics() {
        TwoGroupInstance::new(1.0, 1, 1, 1);
    }
}
