//! Exact solver for small Intersection Resource Scheduling instances.
//!
//! The paper formulates IRS as an integer program (Appendix B): devices
//! arrive at known times, each device may serve at most one eligible job,
//! each job `j` needs `D_j` devices, and the objective is the average of
//! the jobs' *completion times* (the arrival time of the last device each
//! job receives).
//!
//! [`solve`] computes the exact optimum by dynamic programming over the
//! vector of remaining demands — exponential in the number of jobs but
//! instant for the toy-scale instances used to validate Venn's heuristic
//! (Fig. 3) and in property tests.
//!
//! # Examples
//!
//! The paper's Fig. 3 toy: a Keyboard job (3 devices, anything works) and
//! two Emoji jobs (4 devices each, only alternating devices qualify) with
//! one device arriving per time unit. The optimum averages 9.33 time units:
//!
//! ```
//! use venn_opt::{Arrival, Instance};
//!
//! let arrivals: Vec<Arrival> = (1..=18)
//!     .map(|t| Arrival {
//!         time: t,
//!         eligible: if t % 2 == 1 { 0b111 } else { 0b001 },
//!     })
//!     .collect();
//! let inst = Instance::new(vec![3, 4, 4], arrivals);
//! let sol = venn_opt::solve(&inst).expect("feasible");
//! assert!((sol.avg_completion() - 28.0 / 3.0).abs() < 1e-9);
//! ```

pub mod lemma2;

use std::collections::HashMap;

/// One device arrival: when it checks in and which jobs it may serve
/// (bit `j` set ⇔ job `j` eligible).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Arrival {
    /// Check-in time.
    pub time: u64,
    /// Eligibility bitmask over jobs.
    pub eligible: u64,
}

/// A small IRS instance: per-job demands plus the device arrival sequence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Instance {
    demands: Vec<u32>,
    arrivals: Vec<Arrival>,
}

impl Instance {
    /// Creates an instance.
    ///
    /// # Panics
    ///
    /// Panics if there are more than 16 jobs or any demand exceeds 15
    /// (the exact solver packs remaining demands into a `u64` state) or
    /// arrivals are not sorted by time.
    pub fn new(demands: Vec<u32>, arrivals: Vec<Arrival>) -> Self {
        assert!(demands.len() <= 16, "exact solver supports at most 16 jobs");
        assert!(
            demands.iter().all(|&d| d <= 15),
            "exact solver supports demands up to 15"
        );
        assert!(
            arrivals.windows(2).all(|w| w[0].time <= w[1].time),
            "arrivals must be sorted by time"
        );
        Instance { demands, arrivals }
    }

    /// Per-job demands.
    pub fn demands(&self) -> &[u32] {
        &self.demands
    }

    /// Device arrival sequence.
    pub fn arrivals(&self) -> &[Arrival] {
        &self.arrivals
    }

    fn pack(state: &[u32]) -> u64 {
        state
            .iter()
            .enumerate()
            .fold(0u64, |acc, (i, &d)| acc | ((d as u64) << (4 * i)))
    }
}

/// An optimal solution: total completion time and per-device assignment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Solution {
    total_completion: u64,
    jobs: usize,
    /// `assignment[i]` is the job device `i` serves, or `None` if idle.
    pub assignment: Vec<Option<usize>>,
}

impl Solution {
    /// Sum of job completion times.
    pub fn total_completion(&self) -> u64 {
        self.total_completion
    }

    /// Average job completion time — the Appendix B objective.
    pub fn avg_completion(&self) -> f64 {
        self.total_completion as f64 / self.jobs.max(1) as f64
    }
}

/// Evaluates a *given* assignment against an instance, returning the total
/// completion time, or `None` if it is infeasible (ineligible device, more
/// devices than demanded, or unmet demand).
pub fn evaluate(inst: &Instance, assignment: &[Option<usize>]) -> Option<u64> {
    if assignment.len() != inst.arrivals.len() {
        return None;
    }
    let mut remaining = inst.demands.clone();
    let mut completion = vec![0u64; inst.demands.len()];
    for (arrival, choice) in inst.arrivals.iter().zip(assignment) {
        if let Some(j) = *choice {
            if j >= inst.demands.len() || arrival.eligible & (1 << j) == 0 || remaining[j] == 0 {
                return None;
            }
            remaining[j] -= 1;
            if remaining[j] == 0 {
                completion[j] = arrival.time;
            }
        }
    }
    if remaining.iter().any(|&r| r > 0) {
        return None;
    }
    Some(completion.iter().sum())
}

/// Computes the exact minimum total completion time.
///
/// Returns `None` when the instance is infeasible (not enough eligible
/// devices for some job).
pub fn solve(inst: &Instance) -> Option<Solution> {
    let n = inst.demands.len();
    if n == 0 {
        return Some(Solution {
            total_completion: 0,
            jobs: 0,
            assignment: vec![None; inst.arrivals.len()],
        });
    }
    // memo: (arrival index, packed remaining demands) -> best cost from here
    // (u64::MAX = infeasible), plus the best choice for reconstruction.
    let mut memo: HashMap<(usize, u64), (u64, Option<usize>)> = HashMap::new();

    fn best(
        inst: &Instance,
        i: usize,
        state: &mut Vec<u32>,
        memo: &mut HashMap<(usize, u64), (u64, Option<usize>)>,
    ) -> u64 {
        if state.iter().all(|&d| d == 0) {
            return 0;
        }
        if i == inst.arrivals.len() {
            return u64::MAX; // some job never finishes
        }
        let key = (i, Instance::pack(state));
        if let Some(&(cost, _)) = memo.get(&key) {
            return cost;
        }
        // Option 1: leave the device idle.
        let mut best_cost = best(inst, i + 1, state, memo);
        let mut best_choice: Option<usize> = None;
        // Option 2: assign to each eligible job with remaining demand.
        let arrival = inst.arrivals[i];
        for j in 0..state.len() {
            if arrival.eligible & (1 << j) == 0 || state[j] == 0 {
                continue;
            }
            state[j] -= 1;
            let tail = best(inst, i + 1, state, memo);
            state[j] += 1;
            if tail == u64::MAX {
                continue;
            }
            // Completing job j here contributes its completion time.
            let contrib = if state[j] == 1 { arrival.time } else { 0 };
            let cost = tail.saturating_add(contrib);
            if cost < best_cost {
                best_cost = cost;
                best_choice = Some(j);
            }
        }
        memo.insert(key, (best_cost, best_choice));
        best_cost
    }

    let mut state = inst.demands.clone();
    let total = best(inst, 0, &mut state, &mut memo);
    if total == u64::MAX {
        return None;
    }

    // Reconstruct the assignment by replaying the memoized choices.
    let mut assignment = vec![None; inst.arrivals.len()];
    let mut state = inst.demands.clone();
    let mut i = 0;
    while i < inst.arrivals.len() && state.iter().any(|&d| d > 0) {
        let key = (i, Instance::pack(&state));
        let choice = memo.get(&key).and_then(|&(_, c)| c);
        if let Some(j) = choice {
            // Verify the memoized choice is still the best from this state
            // (it is, by construction of the DP).
            assignment[i] = Some(j);
            state[j] -= 1;
        }
        i += 1;
    }

    let solution = Solution {
        total_completion: total,
        jobs: n,
        assignment,
    };
    debug_assert_eq!(evaluate(inst, &solution.assignment), Some(total));
    Some(solution)
}

/// Total completion time of serving jobs in a *fixed priority order*
/// (first eligible job in `order` takes each device) — the schedule shape
/// all the heuristics produce. Useful for comparing a heuristic order
/// against [`solve`].
pub fn fixed_order_cost(inst: &Instance, order: &[usize]) -> Option<u64> {
    let mut remaining = inst.demands.clone();
    let mut total = 0u64;
    for arrival in &inst.arrivals {
        for &j in order {
            if remaining[j] > 0 && arrival.eligible & (1 << j) != 0 {
                remaining[j] -= 1;
                if remaining[j] == 0 {
                    total += arrival.time;
                }
                break;
            }
        }
    }
    remaining.iter().all(|&r| r == 0).then_some(total)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform_arrivals(n: u64, eligible: impl Fn(u64) -> u64) -> Vec<Arrival> {
        (1..=n)
            .map(|t| Arrival {
                time: t,
                eligible: eligible(t),
            })
            .collect()
    }

    #[test]
    fn single_job_takes_earliest_devices() {
        let inst = Instance::new(vec![3], uniform_arrivals(10, |_| 1));
        let sol = solve(&inst).unwrap();
        assert_eq!(sol.total_completion(), 3);
        assert_eq!(sol.assignment[..3], [Some(0), Some(0), Some(0)]);
    }

    #[test]
    fn infeasible_returns_none() {
        let inst = Instance::new(vec![5], uniform_arrivals(3, |_| 1));
        assert!(solve(&inst).is_none());
    }

    #[test]
    fn srpt_order_for_identical_eligibility() {
        // Two jobs on the same pool: serving the smaller first is optimal.
        let inst = Instance::new(vec![4, 2], uniform_arrivals(10, |_| 0b11));
        let sol = solve(&inst).unwrap();
        // Small job done at t=2, large at t=6. Total 8.
        assert_eq!(sol.total_completion(), 8);
    }

    #[test]
    fn fig3_toy_optimal_is_9_33() {
        // Job 0 = Keyboard (3, all devices), jobs 1,2 = Emoji (4 each, odd
        // devices only).
        let arrivals = uniform_arrivals(18, |t| if t % 2 == 1 { 0b111 } else { 0b001 });
        let inst = Instance::new(vec![3, 4, 4], arrivals);
        let sol = solve(&inst).unwrap();
        assert_eq!(sol.total_completion(), 28); // 6 + 7 + 15
        assert!((sol.avg_completion() - 9.333333).abs() < 1e-5);
    }

    #[test]
    fn fig3_srsf_is_11() {
        // SRSF order: keyboard (demand 3) first, then the two emoji jobs.
        // Keyboard takes t=1,2,3 (done 3) — wasting the scarce emoji-capable
        // devices at t=1,3; emoji job 1 takes odd 5,7,9,11 (done 11); emoji
        // job 2 takes 13,15,17,19 (done 19). Average (3+11+19)/3 = 11, the
        // paper's Fig. 3c value.
        let arrivals = uniform_arrivals(20, |t| if t % 2 == 1 { 0b111 } else { 0b001 });
        let inst = Instance::new(vec![3, 4, 4], arrivals);
        let cost = fixed_order_cost(&inst, &[0, 1, 2]).unwrap();
        assert_eq!(cost, 33);
        // And the optimum on the same horizon is still 28 (avg 9.33).
        assert_eq!(solve(&inst).unwrap().total_completion(), 28);
    }

    #[test]
    fn evaluate_rejects_ineligible_assignment() {
        let inst = Instance::new(
            vec![1],
            vec![Arrival {
                time: 1,
                eligible: 0,
            }],
        );
        assert_eq!(evaluate(&inst, &[Some(0)]), None);
    }

    #[test]
    fn evaluate_accepts_solver_output() {
        let inst = Instance::new(
            vec![2, 1],
            uniform_arrivals(6, |t| if t <= 3 { 0b11 } else { 0b01 }),
        );
        let sol = solve(&inst).unwrap();
        assert_eq!(
            evaluate(&inst, &sol.assignment),
            Some(sol.total_completion())
        );
    }

    #[test]
    fn empty_instance_trivially_optimal() {
        let inst = Instance::new(vec![], uniform_arrivals(3, |_| 0));
        let sol = solve(&inst).unwrap();
        assert_eq!(sol.total_completion(), 0);
        assert_eq!(sol.avg_completion(), 0.0);
    }

    #[test]
    fn fixed_order_matches_manual_trace() {
        let inst = Instance::new(vec![2, 2], uniform_arrivals(4, |_| 0b11));
        // Order [1, 0]: job1 gets t=1,2 (done 2); job0 t=3,4 (done 4).
        assert_eq!(fixed_order_cost(&inst, &[1, 0]), Some(6));
        assert_eq!(fixed_order_cost(&inst, &[0, 1]), Some(6));
    }

    #[test]
    fn fixed_order_infeasible_when_demand_unmet() {
        let inst = Instance::new(vec![3], uniform_arrivals(2, |_| 1));
        assert_eq!(fixed_order_cost(&inst, &[0]), None);
    }

    #[test]
    #[should_panic(expected = "sorted by time")]
    fn unsorted_arrivals_panic() {
        Instance::new(
            vec![1],
            vec![
                Arrival {
                    time: 5,
                    eligible: 1,
                },
                Arrival {
                    time: 1,
                    eligible: 1,
                },
            ],
        );
    }

    #[test]
    fn optimal_beats_or_ties_every_fixed_order() {
        let arrivals = uniform_arrivals(12, |t| match t % 3 {
            0 => 0b001,
            1 => 0b011,
            _ => 0b111,
        });
        let inst = Instance::new(vec![2, 2, 2], arrivals);
        let opt = solve(&inst).unwrap().total_completion();
        let orders: [[usize; 3]; 6] = [
            [0, 1, 2],
            [0, 2, 1],
            [1, 0, 2],
            [1, 2, 0],
            [2, 0, 1],
            [2, 1, 0],
        ];
        for order in orders {
            if let Some(cost) = fixed_order_cost(&inst, &order) {
                assert!(opt <= cost, "opt {opt} > order {order:?} cost {cost}");
            }
        }
    }
}
