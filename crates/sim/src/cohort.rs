//! Cohort-compressed session streaming for the split population modes.
//!
//! The eager arm materializes the full session trace up front; at a
//! million devices that is tens of millions of `Session` values and an
//! event queue holding every one of them. The split arms instead keep one
//! *stream cursor* per device — `(day, index-within-day)` into the
//! device's own per-`(device, day)` RNG stream
//! ([`AvailabilityModel::device_day_sessions`]) — and hold exactly **one
//! upcoming session per device** in a per-cohort min-heap. Devices are
//! grouped into fixed cohorts of [`COHORT_SIZE`] consecutive indices, and
//! the [`World`](crate::world::World) keeps exactly **one pending
//! `CohortWake` event per non-empty cohort**, armed at the cohort's
//! earliest upcoming start. On wake, every due device's session begins
//! (materializing it on the lazy arm), its cursor advances to its next
//! session, and the wake re-arms at the new minimum.
//!
//! The result: the event queue holds O(cohorts) session machinery instead
//! of O(total sessions), and the per-device resident cost is one heap
//! entry plus one cursor (~32 bytes) — the irreducible "when does this
//! device next appear" streaming state — rather than a full
//! `DeviceState`.
//!
//! Why touch order cannot affect draws: a device's sessions come from an
//! RNG keyed by `(seed, device, day)` only. Popping device A before
//! device B, or never popping B at all, replays the exact same per-key
//! streams — purity is pinned by `split_day_sessions_are_pure_and_sorted`
//! in `venn-traces` and end-to-end by `tests/lazy_parity.rs`.
//!
//! Ordering note: within one wake timestamp, due devices pop in `(start,
//! device)` order — the same tie order the eager trace's global `(start,
//! device)` sort yields. Environment churn clips (`clip_session`) map
//! `start` to `max(start, window_lo)`, a monotone function, so clipping
//! preserves each device's start monotonicity and the stream stays a
//! valid merge.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use venn_core::{SimTime, SnapError, SnapReader, SnapWriter};
use venn_env::EnvRuntime;
use venn_traces::AvailabilityModel;

/// Devices per cohort. 1024 keeps the per-cohort heaps cache-friendly
/// while bounding pending `CohortWake` events at population/1024.
pub const COHORT_SIZE: usize = 1024;

/// A device's position in its own session stream: the next `(day, idx)`
/// pair to consume from `device_day_sessions(seed, device, day)`.
#[derive(Debug, Clone, Copy, Default)]
struct Cursor {
    day: u32,
    idx: u8,
}

/// One upcoming session, heap-ordered by `(start, device)`; `end` rides
/// along (already horizon-clamped).
type Entry = Reverse<(SimTime, u32, SimTime)>;

/// The streamed session source of every device, cohort by cohort.
#[derive(Debug)]
pub struct CohortSet {
    availability: AvailabilityModel,
    seed: u64,
    days: u32,
    horizon: SimTime,
    cohort_size: usize,
    cursors: Vec<Cursor>,
    heaps: Vec<BinaryHeap<Entry>>,
    /// Reusable day-block scratch buffer for session regeneration.
    scratch: Vec<venn_traces::Session>,
}

impl CohortSet {
    /// Builds the stream state for `population` devices: every device's
    /// cursor advances to its first live (env-clipped, pre-horizon)
    /// session, filling the per-cohort heaps.
    pub fn new(
        availability: AvailabilityModel,
        seed: u64,
        days: u32,
        horizon: SimTime,
        population: usize,
        env: Option<&EnvRuntime>,
    ) -> Self {
        Self::with_cohort_size(
            availability,
            seed,
            days,
            horizon,
            population,
            env,
            COHORT_SIZE,
        )
    }

    /// [`CohortSet::new`] with an explicit cohort size (tests only).
    pub fn with_cohort_size(
        availability: AvailabilityModel,
        seed: u64,
        days: u32,
        horizon: SimTime,
        population: usize,
        env: Option<&EnvRuntime>,
        cohort_size: usize,
    ) -> Self {
        assert!(cohort_size > 0, "cohort size must be positive");
        let cohorts = population.div_ceil(cohort_size);
        let mut set = CohortSet {
            availability,
            seed,
            days,
            horizon,
            cohort_size,
            cursors: vec![Cursor::default(); population],
            heaps: (0..cohorts).map(|_| BinaryHeap::new()).collect(),
            scratch: Vec::new(),
        };
        for device in 0..population {
            set.advance(device, env);
        }
        set
    }

    /// Number of cohorts.
    pub fn cohort_count(&self) -> usize {
        self.heaps.len()
    }

    /// The cohort a device belongs to.
    pub fn cohort_of(&self, device: usize) -> usize {
        device / self.cohort_size
    }

    /// The cohort's earliest upcoming session start (`None` when the
    /// cohort's devices are all exhausted) — the time its one pending
    /// `CohortWake` should be armed at.
    pub fn next_wake(&self, cohort: usize) -> Option<SimTime> {
        self.heaps[cohort]
            .peek()
            .map(|Reverse((start, _, _))| *start)
    }

    /// Pops the cohort's earliest session iff it starts exactly at `now`,
    /// returning `(device, session_end)`. The world drains a wake by
    /// calling this until it returns `None`, beginning each popped
    /// device's session and [`advance`](Self::advance)-ing it in between
    /// — replacement entries at the same `now` are picked up by the same
    /// drain.
    pub fn pop_due(&mut self, cohort: usize, now: SimTime) -> Option<(usize, SimTime)> {
        let Reverse((start, device, end)) = *self.heaps[cohort].peek()?;
        if start != now {
            debug_assert!(start > now, "cohort wake missed a session start");
            return None;
        }
        self.heaps[cohort].pop();
        Some((device as usize, end))
    }

    /// Advances `device`'s cursor to its next live session and pushes it
    /// into the device's cohort heap: regenerates day blocks from the
    /// device's split stream, applies the environment churn clip (a
    /// clipped-away session is skipped; on the eager trace it is likewise
    /// never enqueued), skips post-horizon starts, and clamps ends to the
    /// horizon — mirroring exactly what `World::new` does to the eager
    /// trace. No push when the device is exhausted.
    pub fn advance(&mut self, device: usize, env: Option<&EnvRuntime>) {
        loop {
            let cursor = self.cursors[device];
            if cursor.day >= self.days {
                return; // stream exhausted
            }
            self.scratch.clear();
            self.availability.device_day_sessions(
                self.seed,
                device,
                cursor.day as u64,
                &mut self.scratch,
            );
            if usize::from(cursor.idx) >= self.scratch.len() {
                self.cursors[device] = Cursor {
                    day: cursor.day + 1,
                    idx: 0,
                };
                continue;
            }
            let s = self.scratch[usize::from(cursor.idx)];
            self.cursors[device] = Cursor {
                day: cursor.day,
                idx: cursor.idx + 1,
            };
            let (start, end) = match env {
                Some(e) => match e.clip_session(s.device, s.start, s.end) {
                    Some(w) => w,
                    None => continue,
                },
                None => (s.start, s.end),
            };
            if start >= self.horizon {
                continue;
            }
            let cohort = self.cohort_of(device);
            self.heaps[cohort].push(Reverse((start, device as u32, end.min(self.horizon))));
            return;
        }
    }

    /// Encodes the mutable stream state: every device's cursor and every
    /// cohort heap's pending entries (sorted — the heap's internal layout
    /// is an implementation detail; only the multiset matters). The
    /// model, seed, days, horizon, and cohort size are re-derived by
    /// world reconstruction.
    pub fn encode_state(&self, w: &mut SnapWriter) {
        w.len_prefix(self.cursors.len());
        for c in &self.cursors {
            w.u32(c.day);
            w.u8(c.idx);
        }
        w.len_prefix(self.heaps.len());
        for heap in &self.heaps {
            let mut entries: Vec<(SimTime, u32, SimTime)> =
                heap.iter().map(|&Reverse(e)| e).collect();
            entries.sort_unstable();
            w.len_prefix(entries.len());
            for (start, device, end) in &entries {
                w.u64(*start);
                w.u32(*device);
                w.u64(*end);
            }
        }
    }

    /// Restores cursors and heaps into a freshly constructed set of the
    /// same population and cohort size.
    pub fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        let n = r.len_prefix()?;
        if n != self.cursors.len() {
            return Err(SnapError::Corrupt(format!(
                "cohort cursors {} != snapshot {n}",
                self.cursors.len()
            )));
        }
        for c in self.cursors.iter_mut() {
            c.day = r.u32()?;
            c.idx = r.u8()?;
        }
        let cohorts = r.len_prefix()?;
        if cohorts != self.heaps.len() {
            return Err(SnapError::Corrupt(format!(
                "cohort count {} != snapshot {cohorts}",
                self.heaps.len()
            )));
        }
        for heap in self.heaps.iter_mut() {
            heap.clear();
            let entries = r.len_prefix()?;
            for _ in 0..entries {
                let start = r.u64()?;
                let device = r.u32()?;
                let end = r.u64()?;
                heap.push(Reverse((start, device, end)));
            }
        }
        self.scratch.clear();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use venn_core::DAY_MS;

    fn model() -> AvailabilityModel {
        AvailabilityModel::default()
    }

    /// Drains the whole set into a flat, globally-merged session list.
    fn drain_all(set: &mut CohortSet) -> Vec<(SimTime, usize, SimTime)> {
        let mut out = Vec::new();
        loop {
            // Earliest wake across cohorts; ties drain in cohort order
            // (deterministic either way — each device is in one cohort).
            let Some((cohort, now)) = (0..set.cohort_count())
                .filter_map(|c| set.next_wake(c).map(|t| (c, t)))
                .min_by_key(|&(c, t)| (t, c))
            else {
                return out;
            };
            while let Some((device, end)) = set.pop_due(cohort, now) {
                out.push((now, device, end));
                set.advance(device, None);
            }
        }
    }

    #[test]
    fn streams_the_exact_split_trace_in_merge_order() {
        let (days, pop, seed) = (2u32, 300usize, 42u64);
        let horizon = days as SimTime * DAY_MS;
        let mut set = CohortSet::with_cohort_size(model(), seed, days, horizon, pop, None, 64);
        let streamed = drain_all(&mut set);

        // Reference: regenerate every (device, day) block directly.
        let mut expect = Vec::new();
        for device in 0..pop {
            for day in 0..days as u64 {
                model().device_day_sessions(seed, device, day, &mut expect);
            }
        }
        let mut expect: Vec<(SimTime, usize, SimTime)> = expect
            .into_iter()
            .filter(|s| s.start < horizon)
            .map(|s| (s.start, s.device, s.end.min(horizon)))
            .collect();
        expect.sort_by_key(|&(start, device, _)| (start, device));
        assert_eq!(streamed, expect);
    }

    #[test]
    fn one_pending_entry_per_device() {
        let days = 3u32;
        let horizon = days as SimTime * DAY_MS;
        let set = CohortSet::with_cohort_size(model(), 7, days, horizon, 500, None, 128);
        let pending: usize = (0..set.cohort_count()).map(|c| set.heaps[c].len()).sum();
        assert!(pending <= 500, "at most one entry per device: {pending}");
        assert!(pending > 300, "most devices have day-0..2 sessions");
    }

    #[test]
    fn pop_due_only_pops_exact_matches() {
        let days = 2u32;
        let horizon = days as SimTime * DAY_MS;
        let mut set = CohortSet::with_cohort_size(model(), 11, days, horizon, 64, None, 64);
        let t = set.next_wake(0).expect("some session exists");
        assert!(set.pop_due(0, t.saturating_sub(1)).is_none());
        let (device, end) = set.pop_due(0, t).expect("due at its own wake time");
        assert!(end > t && end <= horizon);
        assert!(device < 64);
    }

    #[test]
    fn exhausted_devices_stop_producing() {
        let days = 1u32;
        let horizon = days as SimTime * DAY_MS;
        let mut set = CohortSet::with_cohort_size(model(), 3, days, horizon, 32, None, 32);
        let n = drain_all(&mut set).len();
        assert!(n > 0);
        assert!(set.next_wake(0).is_none(), "drained set stays drained");
        // Advancing an exhausted device is a no-op.
        set.advance(5, None);
        assert!(set.next_wake(0).is_none());
    }
}
