//! The device population: availability sessions, busy flags, and the
//! one-task-per-day realism cap.

use venn_core::{DeviceId, DeviceInfo, SimTime, DAY_MS};
use venn_traces::DeviceProfile;

/// Per-device simulation state.
#[derive(Debug)]
pub struct DeviceState {
    /// Static capacity/speed profile sampled at world construction.
    pub profile: DeviceProfile,
    /// End of the current availability session (0 = offline).
    pub session_end: SimTime,
    /// Held by a job or computing.
    pub busy: bool,
    /// Day index of the device's last computation (one-task-per-day cap).
    pub last_task_day: Option<u64>,
    /// While held by a job: the device's slot in that job's hold list,
    /// making hold release O(1). Meaningless when not held.
    pub held_slot: usize,
    /// Whether `busy` means *held* (allocated, idle) rather than
    /// *computing* — environment faults treat the two differently.
    pub held: bool,
    /// While held: the holding job's workload index. Meaningless when
    /// not held.
    pub held_job: usize,
    /// Hold-generation counter, bumped on every [`DevicePool::mark_held`].
    /// A pending `HoldExpire` only releases when its recorded generation
    /// still matches — environment faults can release holds early, which
    /// would otherwise let the stale expiry free a *new* hold.
    pub hold_seq: u64,
    /// Set when an environment fault forced the device offline while it
    /// was computing: its in-flight response must be counted as a
    /// failure when it arrives. Never set on the env-off arm.
    pub failed_task: bool,
}

/// All devices of one simulated world, indexed by population index.
///
/// The pool owns session bookkeeping and the busy/daily-cap flags; the
/// [`World`](crate::world::World) event handlers mutate it exclusively
/// through these named operations, which keeps every lifecycle rule
/// (sessions only extend, a busy device never checks in, one task per
/// day) in one place.
#[derive(Debug)]
pub struct DevicePool {
    devices: Vec<DeviceState>,
    /// Scheduler-facing views, built once — check-ins are the kernel's
    /// hottest path and must not reconstruct a `DeviceInfo` per poll.
    infos: Vec<DeviceInfo>,
}

impl DevicePool {
    /// Builds the pool from sampled capacity profiles; all devices start
    /// offline and idle.
    pub fn new(profiles: Vec<DeviceProfile>) -> Self {
        let infos = profiles
            .iter()
            .enumerate()
            .map(|(i, p)| DeviceInfo::new(DeviceId::new(i as u64), p.capacity))
            .collect();
        DevicePool {
            devices: profiles
                .into_iter()
                .map(|profile| DeviceState {
                    profile,
                    session_end: 0,
                    busy: false,
                    last_task_day: None,
                    held_slot: 0,
                    held: false,
                    held_job: 0,
                    hold_seq: 0,
                    failed_task: false,
                })
                .collect(),
            infos,
        }
    }

    /// Number of devices in the population.
    pub fn len(&self) -> usize {
        self.devices.len()
    }

    /// Whether the population is empty.
    pub fn is_empty(&self) -> bool {
        self.devices.is_empty()
    }

    /// Read access to one device.
    pub fn get(&self, device: usize) -> &DeviceState {
        &self.devices[device]
    }

    /// The scheduler-facing identity/capacity view of a device (cached at
    /// construction — no per-check-in rebuild).
    pub fn info(&self, device: usize) -> &DeviceInfo {
        &self.infos[device]
    }

    /// An availability session begins (or overlaps): the session end only
    /// ever extends, never shrinks.
    pub fn begin_session(&mut self, device: usize, session_end: SimTime) {
        let d = &mut self.devices[device];
        d.session_end = d.session_end.max(session_end);
    }

    /// End of the device's current session.
    pub fn session_end(&self, device: usize) -> SimTime {
        self.devices[device].session_end
    }

    /// Whether the device may poll the resource manager at `now`: online,
    /// idle, and (if the cap is enforced) not already used today.
    pub fn can_check_in(&self, device: usize, now: SimTime, one_task_per_day: bool) -> bool {
        let d = &self.devices[device];
        if d.busy || now >= d.session_end {
            return false;
        }
        !(one_task_per_day && d.last_task_day == Some(now / DAY_MS))
    }

    /// Marks the device computing (async-mode assignment — no holding
    /// phase).
    pub fn mark_busy(&mut self, device: usize) {
        let d = &mut self.devices[device];
        d.busy = true;
        d.held = false;
    }

    /// Marks the device held by `job`, remembering its slot in the job's
    /// hold list so a later release is O(1), and returns the new hold
    /// generation (carried by the matching `HoldExpire` event).
    pub fn mark_held(&mut self, device: usize, job: usize, held_slot: usize) -> u64 {
        let d = &mut self.devices[device];
        d.busy = true;
        d.held = true;
        d.held_job = job;
        d.held_slot = held_slot;
        d.hold_seq += 1;
        d.hold_seq
    }

    /// The device's slot in the holding job's hold list (set by
    /// [`mark_held`](Self::mark_held)).
    pub fn held_slot(&self, device: usize) -> usize {
        self.devices[device].held_slot
    }

    /// Whether the device is still in the hold instance identified by
    /// `hold_seq` (the guard a `HoldExpire` must pass before releasing).
    pub fn hold_is_current(&self, device: usize, hold_seq: u64) -> bool {
        let d = &self.devices[device];
        d.busy && d.held && d.hold_seq == hold_seq
    }

    /// The device leaves its holding phase and starts computing (round
    /// start): still busy, no longer *held*.
    pub fn begin_compute(&mut self, device: usize) {
        self.devices[device].held = false;
    }

    /// Returns the device to the idle pool (response, failure, or hold
    /// release).
    pub fn release(&mut self, device: usize) {
        let d = &mut self.devices[device];
        d.busy = false;
        d.held = false;
    }

    /// Forces the device offline *now* (environment fault): the session
    /// end shrinks to `now` — the one place the sessions-only-extend
    /// rule is deliberately broken, which is why parked check-ins
    /// re-validate their session before replaying.
    pub fn force_offline(&mut self, device: usize, now: SimTime) {
        let d = &mut self.devices[device];
        d.session_end = d.session_end.min(now);
    }

    /// Flags an in-flight computation as failed (the device was forced
    /// offline while computing); its response must not count.
    pub fn mark_failed_task(&mut self, device: usize) {
        self.devices[device].failed_task = true;
    }

    /// Consumes the failed-task flag, returning whether it was set.
    pub fn take_failed_task(&mut self, device: usize) -> bool {
        std::mem::take(&mut self.devices[device].failed_task)
    }

    /// Records that the device computed a task today (daily-cap
    /// bookkeeping).
    pub fn note_task(&mut self, device: usize, now: SimTime) {
        self.devices[device].last_task_day = Some(now / DAY_MS);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use venn_core::Capacity;

    fn pool(n: usize) -> DevicePool {
        DevicePool::new(
            (0..n)
                .map(|_| DeviceProfile {
                    capacity: Capacity::new(0.5, 0.5),
                    speed: 1.0,
                })
                .collect(),
        )
    }

    #[test]
    fn sessions_only_extend() {
        let mut p = pool(2);
        p.begin_session(0, 1_000);
        p.begin_session(0, 500);
        assert_eq!(p.session_end(0), 1_000);
        p.begin_session(0, 2_000);
        assert_eq!(p.session_end(0), 2_000);
    }

    #[test]
    fn check_in_requires_online_and_idle() {
        let mut p = pool(1);
        assert!(!p.can_check_in(0, 0, true), "offline device cannot poll");
        p.begin_session(0, 10_000);
        assert!(p.can_check_in(0, 5_000, true));
        assert!(!p.can_check_in(0, 10_000, true), "session over");
        p.mark_busy(0);
        assert!(!p.can_check_in(0, 5_000, true), "busy device cannot poll");
        p.release(0);
        assert!(p.can_check_in(0, 5_000, true));
    }

    #[test]
    fn daily_cap_blocks_second_task() {
        let mut p = pool(1);
        p.begin_session(0, 2 * DAY_MS);
        p.note_task(0, 1_000);
        assert!(!p.can_check_in(0, 2_000, true), "cap applies same day");
        assert!(p.can_check_in(0, 2_000, false), "cap can be disabled");
        assert!(p.can_check_in(0, DAY_MS + 1, true), "next day resets cap");
    }

    #[test]
    fn hold_generations_guard_stale_expiries() {
        let mut p = pool(1);
        p.begin_session(0, 10_000);
        let g1 = p.mark_held(0, 3, 0);
        assert!(p.hold_is_current(0, g1));
        p.release(0);
        assert!(!p.hold_is_current(0, g1), "released hold is stale");
        let g2 = p.mark_held(0, 3, 1);
        assert_ne!(g1, g2);
        assert!(!p.hold_is_current(0, g1), "old generation must not match");
        assert!(p.hold_is_current(0, g2));
        p.begin_compute(0);
        assert!(!p.hold_is_current(0, g2), "computing devices are not held");
    }

    #[test]
    fn force_offline_shrinks_session_and_flags_tasks() {
        let mut p = pool(1);
        p.begin_session(0, 10_000);
        p.force_offline(0, 4_000);
        assert_eq!(p.session_end(0), 4_000);
        assert!(!p.can_check_in(0, 5_000, true), "forced offline at 4000");
        // A later session start extends again (only-extend vs the new end).
        p.begin_session(0, 8_000);
        assert_eq!(p.session_end(0), 8_000);
        p.mark_failed_task(0);
        assert!(p.take_failed_task(0));
        assert!(!p.take_failed_task(0), "flag is consumed");
    }

    #[test]
    fn info_exposes_identity_and_capacity() {
        let p = pool(3);
        let info = p.info(2);
        assert_eq!(info.id().as_u64(), 2);
        assert_eq!(*info.capacity(), p.get(2).profile.capacity);
    }
}
