//! The device population: availability sessions, busy flags, and the
//! one-task-per-day realism cap.
//!
//! Two storage arms back the pool:
//!
//! * **Dense** — one `DeviceState` per population index, fully
//!   materialized at construction. Used by
//!   [`PopMode::Eager`](crate::config::PopMode::Eager) and
//!   [`PopMode::SplitEager`](crate::config::PopMode::SplitEager).
//! * **Lazy** — a slot table of `Option<Box<DeviceState>>` plus a small
//!   durable overlay. A device materializes (profile drawn from its own
//!   split RNG stream, a pure function of `(seed, device)`) the first
//!   time a session begins, and *retires* — its slot freed, its durable
//!   facts (daily-cap day, hold generation) parked in the overlay — once
//!   it is idle past its session end. Live state is O(active ∪ assigned);
//!   the per-device fixed cost is one pointer-sized slot.
//!
//! Retirement is driven by *retire notes*: every code path that ends a
//! device's activity (a poll chain dying, a release, a hold expiry)
//! drops a `(session_end, device)` note into a min-heap, and the world
//! sweeps due notes once per event. Notes are hints, not commands — the
//! sweep re-validates (still present, idle, session really over) before
//! retiring, so stale notes from extended sessions are simply dropped.
//! Retiring only ever removes state that is *scheduler-invisible* (an
//! offline idle device can neither poll nor be drawn as a disturbance
//! victim), which is why the lazy arm stays byte-identical to the dense
//! split arm.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

use venn_core::{
    Capacity, DeviceId, DeviceInfo, SimTime, SnapError, SnapReader, SnapWriter, DAY_MS,
};
use venn_traces::{CapacityModel, DeviceProfile};

/// Per-device simulation state.
#[derive(Debug)]
pub struct DeviceState {
    /// Static capacity/speed profile (sampled at world construction on
    /// the dense arms, from the device's split stream at materialization
    /// on the lazy arm).
    pub profile: DeviceProfile,
    /// Scheduler-facing identity/capacity view, derived from `profile`
    /// once per materialization — check-ins are the kernel's hottest path
    /// and must not reconstruct a `DeviceInfo` per poll.
    pub info: DeviceInfo,
    /// End of the current availability session (0 = offline).
    pub session_end: SimTime,
    /// Held by a job or computing.
    pub busy: bool,
    /// Day index of the device's last computation (one-task-per-day cap).
    pub last_task_day: Option<u64>,
    /// While held by a job: the device's slot in that job's hold list,
    /// making hold release O(1). Meaningless when not held.
    pub held_slot: usize,
    /// Whether `busy` means *held* (allocated, idle) rather than
    /// *computing* — environment faults treat the two differently.
    pub held: bool,
    /// While held: the holding job's workload index. Meaningless when
    /// not held.
    pub held_job: usize,
    /// Hold-generation counter, bumped on every [`DevicePool::mark_held`].
    /// A pending `HoldExpire` only releases when its recorded generation
    /// still matches — environment faults can release holds early, which
    /// would otherwise let the stale expiry free a *new* hold. Survives
    /// retirement via the durable overlay: a re-materialized device must
    /// not restart the counter under stale expiries still in flight.
    pub hold_seq: u64,
    /// Set when an environment fault forced the device offline while it
    /// was computing: its in-flight response must be counted as a
    /// failure when it arrives. Never set on the env-off arm.
    pub failed_task: bool,
}

impl DeviceState {
    fn fresh(device: usize, profile: DeviceProfile) -> Self {
        DeviceState {
            info: DeviceInfo::new(DeviceId::new(device as u64), profile.capacity),
            profile,
            session_end: 0,
            busy: false,
            last_task_day: None,
            held_slot: 0,
            held: false,
            held_job: 0,
            hold_seq: 0,
            failed_task: false,
        }
    }
}

/// The facts that must survive a device's retirement: the daily-cap day
/// (a re-materialized device must still refuse a second same-day task)
/// and the hold generation (stale `HoldExpire` events must keep failing
/// their guard). Everything else about a retired device is derivable
/// (profile, from its split stream) or definitionally reset (offline,
/// idle).
#[derive(Debug, Clone, Copy, Default)]
struct Durable {
    last_task_day: Option<u64>,
    hold_seq: u64,
}

/// The lazy (cohort-compressed) storage arm.
#[derive(Debug)]
struct LazyStore {
    /// One slot per population index; `None` = not materialized.
    slots: Vec<Option<Box<DeviceState>>>,
    /// Durable facts of retired devices (only devices that ever computed
    /// or held have an entry — the overlay stays O(assigned-ever)).
    durable: HashMap<u32, Durable>,
    /// Pending `(session_end, device)` retirement hints, swept per event.
    retire_notes: BinaryHeap<Reverse<(SimTime, u32)>>,
    capacity: CapacityModel,
    seed: u64,
    live: usize,
    peak_live: usize,
}

#[derive(Debug)]
enum Store {
    Dense(Vec<DeviceState>),
    Lazy(LazyStore),
}

/// All devices of one simulated world, indexed by population index.
///
/// The pool owns session bookkeeping and the busy/daily-cap flags; the
/// [`World`](crate::world::World) event handlers mutate it exclusively
/// through these named operations, which keeps every lifecycle rule
/// (sessions only extend, a busy device never checks in, one task per
/// day) in one place.
///
/// Absent (never-materialized or retired) devices on the lazy arm answer
/// read queries exactly like offline idle devices — `session_end` 0,
/// `can_check_in` false, `hold_is_current` false — which is precisely
/// the state a dense arm would report for them, so the event handlers
/// need no lazy-awareness.
#[derive(Debug)]
pub struct DevicePool {
    store: Store,
    population: usize,
}

impl DevicePool {
    /// Builds a dense pool from sampled capacity profiles; all devices
    /// start offline and idle.
    pub fn new(profiles: Vec<DeviceProfile>) -> Self {
        let population = profiles.len();
        DevicePool {
            store: Store::Dense(
                profiles
                    .into_iter()
                    .enumerate()
                    .map(|(i, profile)| DeviceState::fresh(i, profile))
                    .collect(),
            ),
            population,
        }
    }

    /// Builds a lazy pool: no device is materialized until its first
    /// session begins. Profiles come from per-device split RNG streams
    /// ([`CapacityModel::sample_device`]), so materialization order is
    /// irrelevant to the drawn state.
    pub fn lazy(capacity: CapacityModel, seed: u64, population: usize) -> Self {
        DevicePool {
            store: Store::Lazy(LazyStore {
                slots: (0..population).map(|_| None).collect(),
                durable: HashMap::new(),
                retire_notes: BinaryHeap::new(),
                capacity,
                seed,
                live: 0,
                peak_live: 0,
            }),
            population,
        }
    }

    /// Number of devices in the population (materialized or not).
    pub fn len(&self) -> usize {
        self.population
    }

    /// Whether the population is empty.
    pub fn is_empty(&self) -> bool {
        self.population == 0
    }

    /// Whether this pool uses the lazy storage arm.
    pub fn is_lazy(&self) -> bool {
        matches!(self.store, Store::Lazy(_))
    }

    /// Currently materialized devices (== population on the dense arms).
    pub fn live_devices(&self) -> usize {
        match &self.store {
            Store::Dense(v) => v.len(),
            Store::Lazy(l) => l.live,
        }
    }

    /// High-water mark of materialized devices (== population on the
    /// dense arms) — the "O(active)" the scale benchmark reports.
    pub fn peak_live_devices(&self) -> usize {
        match &self.store {
            Store::Dense(v) => v.len(),
            Store::Lazy(l) => l.peak_live,
        }
    }

    #[inline]
    fn state(&self, device: usize) -> Option<&DeviceState> {
        match &self.store {
            Store::Dense(v) => Some(&v[device]),
            Store::Lazy(l) => l.slots[device].as_deref(),
        }
    }

    #[inline]
    fn state_mut(&mut self, device: usize) -> Option<&mut DeviceState> {
        match &mut self.store {
            Store::Dense(v) => Some(&mut v[device]),
            Store::Lazy(l) => l.slots[device].as_deref_mut(),
        }
    }

    #[inline]
    fn expect_mut(&mut self, device: usize) -> &mut DeviceState {
        self.state_mut(device)
            .expect("operation on a device that is not materialized")
    }

    /// Read access to one device.
    ///
    /// # Panics
    ///
    /// Panics on the lazy arm if the device is not materialized — every
    /// caller reaches `get` through a guard (busy, or `session_end > now`)
    /// that implies materialization.
    pub fn get(&self, device: usize) -> &DeviceState {
        self.state(device)
            .expect("read of a device that is not materialized")
    }

    /// The scheduler-facing identity/capacity view of a device (cached at
    /// materialization — no per-check-in rebuild).
    pub fn info(&self, device: usize) -> &DeviceInfo {
        &self.get(device).info
    }

    /// An availability session begins (or overlaps): the session end only
    /// ever extends, never shrinks. On the lazy arm this is the
    /// materialization point — the device's profile is drawn from its
    /// split stream and its durable facts are restored.
    pub fn begin_session(&mut self, device: usize, session_end: SimTime) {
        let d = match &mut self.store {
            Store::Dense(v) => &mut v[device],
            Store::Lazy(l) => l.materialize(device),
        };
        d.session_end = d.session_end.max(session_end);
    }

    /// End of the device's current session (0 = offline or retired).
    pub fn session_end(&self, device: usize) -> SimTime {
        self.state(device).map_or(0, |d| d.session_end)
    }

    /// Whether the device may poll the resource manager at `now`: online,
    /// idle, and (if the cap is enforced) not already used today. Absent
    /// devices are offline, hence `false`.
    pub fn can_check_in(&self, device: usize, now: SimTime, one_task_per_day: bool) -> bool {
        let Some(d) = self.state(device) else {
            return false;
        };
        if d.busy || now >= d.session_end {
            return false;
        }
        !(one_task_per_day && d.last_task_day == Some(now / DAY_MS))
    }

    /// Marks the device computing (async-mode assignment — no holding
    /// phase).
    pub fn mark_busy(&mut self, device: usize) {
        let d = self.expect_mut(device);
        d.busy = true;
        d.held = false;
    }

    /// Marks the device held by `job`, remembering its slot in the job's
    /// hold list so a later release is O(1), and returns the new hold
    /// generation (carried by the matching `HoldExpire` event).
    pub fn mark_held(&mut self, device: usize, job: usize, held_slot: usize) -> u64 {
        let d = self.expect_mut(device);
        d.busy = true;
        d.held = true;
        d.held_job = job;
        d.held_slot = held_slot;
        d.hold_seq += 1;
        d.hold_seq
    }

    /// The device's slot in the holding job's hold list (set by
    /// [`mark_held`](Self::mark_held)).
    pub fn held_slot(&self, device: usize) -> usize {
        self.get(device).held_slot
    }

    /// Whether the device is still in the hold instance identified by
    /// `hold_seq` (the guard a `HoldExpire` must pass before releasing).
    /// Absent devices hold nothing.
    pub fn hold_is_current(&self, device: usize, hold_seq: u64) -> bool {
        self.state(device)
            .is_some_and(|d| d.busy && d.held && d.hold_seq == hold_seq)
    }

    /// The device leaves its holding phase and starts computing (round
    /// start): still busy, no longer *held*.
    pub fn begin_compute(&mut self, device: usize) {
        self.expect_mut(device).held = false;
    }

    /// Returns the device to the idle pool (response, failure, or hold
    /// release).
    pub fn release(&mut self, device: usize) {
        let d = self.expect_mut(device);
        d.busy = false;
        d.held = false;
    }

    /// Forces the device offline *now* (environment fault): the session
    /// end shrinks to `now` — the one place the sessions-only-extend
    /// rule is deliberately broken, which is why parked check-ins
    /// re-validate their session before replaying.
    pub fn force_offline(&mut self, device: usize, now: SimTime) {
        let d = self.expect_mut(device);
        d.session_end = d.session_end.min(now);
    }

    /// Flags an in-flight computation as failed (the device was forced
    /// offline while computing); its response must not count.
    pub fn mark_failed_task(&mut self, device: usize) {
        self.expect_mut(device).failed_task = true;
    }

    /// Consumes the failed-task flag, returning whether it was set.
    pub fn take_failed_task(&mut self, device: usize) -> bool {
        std::mem::take(&mut self.expect_mut(device).failed_task)
    }

    /// Records that the device computed a task today (daily-cap
    /// bookkeeping).
    pub fn note_task(&mut self, device: usize, now: SimTime) {
        self.expect_mut(device).last_task_day = Some(now / DAY_MS);
    }

    /// Hints that `device` may be retirable: if it is already idle past
    /// its session end it retires immediately, otherwise a note is filed
    /// for [`sweep_retire`](Self::sweep_retire) at its session end. The
    /// world calls this wherever a device's activity ends (poll-chain
    /// death, release, parked-poll death). No-op on the dense arms.
    pub fn note_possible_retire(&mut self, device: usize, now: SimTime) {
        let Store::Lazy(l) = &mut self.store else {
            return;
        };
        let Some(d) = l.slots[device].as_deref() else {
            return;
        };
        if !d.busy && d.session_end <= now {
            l.retire(device);
        } else {
            l.retire_notes.push(Reverse((d.session_end, device as u32)));
        }
    }

    /// Retires every noted device whose session end has passed and that
    /// is still present and idle. Stale notes (session extended since the
    /// note, device busy again, already retired) are dropped — the next
    /// activity end files a fresh note. O(due notes) per call with an
    /// O(1) peek when nothing is due; no-op on the dense arms.
    pub fn sweep_retire(&mut self, now: SimTime) {
        let Store::Lazy(l) = &mut self.store else {
            return;
        };
        while let Some(&Reverse((end, device))) = l.retire_notes.peek() {
            if end > now {
                break;
            }
            l.retire_notes.pop();
            let retire = l.slots[device as usize]
                .as_deref()
                .is_some_and(|d| !d.busy && d.session_end <= now);
            if retire {
                l.retire(device as usize);
            }
        }
    }

    /// The capacity the scheduler would see for `device`, if the device
    /// is materialized. Used when snapshotting parked polls (the poll
    /// carries no capacity of its own); absent lazy devices fall back to
    /// re-deriving the profile from the capacity model at the caller.
    pub fn snapshot_capacity(&self, device: usize) -> Option<Capacity> {
        self.state(device).map(|d| *d.info.capacity())
    }

    /// Encodes the pool's mutable state. Static facts — population size,
    /// per-device profiles on the dense arms, the lazy arm's capacity
    /// model and split seed — are re-derived by world reconstruction and
    /// deliberately not written; only what runtime events have changed is.
    pub fn encode_state(&self, w: &mut SnapWriter) {
        match &self.store {
            Store::Dense(v) => {
                w.u8(0);
                w.len_prefix(v.len());
                for d in v {
                    encode_mutable(d, w);
                }
            }
            Store::Lazy(l) => {
                w.u8(1);
                // Materialized devices, in index order (slot order).
                w.len_prefix(l.live);
                for (device, slot) in l.slots.iter().enumerate() {
                    if let Some(d) = slot.as_deref() {
                        w.u32(device as u32);
                        encode_mutable(d, w);
                    }
                }
                // Durable overlay, sorted by device for a canonical byte
                // stream (HashMap iteration order is not deterministic).
                let mut durable: Vec<(u32, Durable)> =
                    l.durable.iter().map(|(&k, &v)| (k, v)).collect();
                durable.sort_unstable_by_key(|&(k, _)| k);
                w.len_prefix(durable.len());
                for (device, d) in &durable {
                    w.u32(*device);
                    w.option(&d.last_task_day, |w, &day| w.u64(day));
                    w.u64(d.hold_seq);
                }
                // Pending retire notes, sorted (heap layout is an
                // implementation detail; only the multiset matters).
                let mut notes: Vec<(SimTime, u32)> =
                    l.retire_notes.iter().map(|&Reverse(n)| n).collect();
                notes.sort_unstable();
                w.len_prefix(notes.len());
                for (end, device) in &notes {
                    w.u64(*end);
                    w.u32(*device);
                }
                w.usize(l.peak_live);
            }
        }
    }

    /// Restores the pool's mutable state into a freshly constructed pool
    /// of the same arm and population (world reconstruction provides the
    /// static facts). Fails with [`SnapError::Corrupt`] on arm or
    /// population mismatch rather than producing a half-restored pool.
    pub fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        let tag = r.u8()?;
        let expected = if self.is_lazy() { 1 } else { 0 };
        if tag != expected {
            return Err(SnapError::Corrupt(format!(
                "device pool storage tag {tag}, expected {expected}"
            )));
        }
        let population = self.population;
        match &mut self.store {
            Store::Dense(v) => {
                let n = r.len_prefix()?;
                if n != v.len() {
                    return Err(SnapError::Corrupt(format!(
                        "dense pool population {} != snapshot {n}",
                        v.len()
                    )));
                }
                for d in v.iter_mut() {
                    decode_mutable(d, r)?;
                }
            }
            Store::Lazy(l) => {
                l.slots.iter_mut().for_each(|s| *s = None);
                l.durable.clear();
                l.retire_notes.clear();
                l.live = 0;
                l.peak_live = 0;
                let live = r.len_prefix()?;
                for _ in 0..live {
                    let device = r.u32()? as usize;
                    if device >= population {
                        return Err(SnapError::Corrupt(format!(
                            "materialized device {device} out of population {population}"
                        )));
                    }
                    if l.slots[device].is_some() {
                        return Err(SnapError::Corrupt(format!(
                            "device {device} materialized twice"
                        )));
                    }
                    let d = l.materialize(device);
                    decode_mutable(d, r)?;
                }
                let durable = r.len_prefix()?;
                for _ in 0..durable {
                    let device = r.u32()?;
                    if device as usize >= population {
                        return Err(SnapError::Corrupt(format!(
                            "durable device {device} out of population {population}"
                        )));
                    }
                    let last_task_day = r.option(|r| r.u64())?;
                    let hold_seq = r.u64()?;
                    l.durable.insert(
                        device,
                        Durable {
                            last_task_day,
                            hold_seq,
                        },
                    );
                }
                let notes = r.len_prefix()?;
                for _ in 0..notes {
                    let end = r.u64()?;
                    let device = r.u32()?;
                    l.retire_notes.push(Reverse((end, device)));
                }
                let peak = r.usize()?;
                if peak < l.live {
                    return Err(SnapError::Corrupt(format!(
                        "peak_live {peak} below live {}",
                        l.live
                    )));
                }
                l.peak_live = peak;
            }
        }
        Ok(())
    }
}

/// The eight per-device fields runtime events mutate (profile and info
/// are static per materialization and re-derived on restore).
fn encode_mutable(d: &DeviceState, w: &mut SnapWriter) {
    w.u64(d.session_end);
    w.bool(d.busy);
    w.option(&d.last_task_day, |w, &day| w.u64(day));
    w.usize(d.held_slot);
    w.bool(d.held);
    w.usize(d.held_job);
    w.u64(d.hold_seq);
    w.bool(d.failed_task);
}

fn decode_mutable(d: &mut DeviceState, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
    d.session_end = r.u64()?;
    d.busy = r.bool()?;
    d.last_task_day = r.option(|r| r.u64())?;
    d.held_slot = r.usize()?;
    d.held = r.bool()?;
    d.held_job = r.usize()?;
    d.hold_seq = r.u64()?;
    d.failed_task = r.bool()?;
    Ok(())
}

impl LazyStore {
    /// Materializes `device` if absent: profile from its split stream
    /// (touch-order independent by construction), durable facts restored
    /// from the overlay.
    fn materialize(&mut self, device: usize) -> &mut DeviceState {
        if self.slots[device].is_none() {
            let profile = self.capacity.sample_device(self.seed, device);
            let mut state = DeviceState::fresh(device, profile);
            if let Some(d) = self.durable.get(&(device as u32)) {
                state.last_task_day = d.last_task_day;
                state.hold_seq = d.hold_seq;
            }
            self.slots[device] = Some(Box::new(state));
            self.live += 1;
            self.peak_live = self.peak_live.max(self.live);
        }
        self.slots[device]
            .as_deref_mut()
            .expect("just materialized")
    }

    /// Frees the device's slot, parking its durable facts. Caller has
    /// verified the device is present, idle, and past its session end.
    fn retire(&mut self, device: usize) {
        let state = self.slots[device].take().expect("retire of absent device");
        self.live -= 1;
        if state.last_task_day.is_some() || state.hold_seq > 0 {
            self.durable.insert(
                device as u32,
                Durable {
                    last_task_day: state.last_task_day,
                    hold_seq: state.hold_seq,
                },
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use venn_core::Capacity;

    fn pool(n: usize) -> DevicePool {
        DevicePool::new(
            (0..n)
                .map(|_| DeviceProfile {
                    capacity: Capacity::new(0.5, 0.5),
                    speed: 1.0,
                })
                .collect(),
        )
    }

    fn lazy_pool(n: usize) -> DevicePool {
        DevicePool::lazy(CapacityModel::default(), 42, n)
    }

    #[test]
    fn sessions_only_extend() {
        let mut p = pool(2);
        p.begin_session(0, 1_000);
        p.begin_session(0, 500);
        assert_eq!(p.session_end(0), 1_000);
        p.begin_session(0, 2_000);
        assert_eq!(p.session_end(0), 2_000);
    }

    #[test]
    fn check_in_requires_online_and_idle() {
        let mut p = pool(1);
        assert!(!p.can_check_in(0, 0, true), "offline device cannot poll");
        p.begin_session(0, 10_000);
        assert!(p.can_check_in(0, 5_000, true));
        assert!(!p.can_check_in(0, 10_000, true), "session over");
        p.mark_busy(0);
        assert!(!p.can_check_in(0, 5_000, true), "busy device cannot poll");
        p.release(0);
        assert!(p.can_check_in(0, 5_000, true));
    }

    #[test]
    fn daily_cap_blocks_second_task() {
        let mut p = pool(1);
        p.begin_session(0, 2 * DAY_MS);
        p.note_task(0, 1_000);
        assert!(!p.can_check_in(0, 2_000, true), "cap applies same day");
        assert!(p.can_check_in(0, 2_000, false), "cap can be disabled");
        assert!(p.can_check_in(0, DAY_MS + 1, true), "next day resets cap");
    }

    #[test]
    fn hold_generations_guard_stale_expiries() {
        let mut p = pool(1);
        p.begin_session(0, 10_000);
        let g1 = p.mark_held(0, 3, 0);
        assert!(p.hold_is_current(0, g1));
        p.release(0);
        assert!(!p.hold_is_current(0, g1), "released hold is stale");
        let g2 = p.mark_held(0, 3, 1);
        assert_ne!(g1, g2);
        assert!(!p.hold_is_current(0, g1), "old generation must not match");
        assert!(p.hold_is_current(0, g2));
        p.begin_compute(0);
        assert!(!p.hold_is_current(0, g2), "computing devices are not held");
    }

    #[test]
    fn force_offline_shrinks_session_and_flags_tasks() {
        let mut p = pool(1);
        p.begin_session(0, 10_000);
        p.force_offline(0, 4_000);
        assert_eq!(p.session_end(0), 4_000);
        assert!(!p.can_check_in(0, 5_000, true), "forced offline at 4000");
        // A later session start extends again (only-extend vs the new end).
        p.begin_session(0, 8_000);
        assert_eq!(p.session_end(0), 8_000);
        p.mark_failed_task(0);
        assert!(p.take_failed_task(0));
        assert!(!p.take_failed_task(0), "flag is consumed");
    }

    #[test]
    fn info_exposes_identity_and_capacity() {
        let p = pool(3);
        let info = p.info(2);
        assert_eq!(info.id().as_u64(), 2);
        assert_eq!(*info.capacity(), p.get(2).profile.capacity);
    }

    #[test]
    fn lazy_pool_materializes_on_first_session() {
        let mut p = lazy_pool(100);
        assert_eq!(p.live_devices(), 0);
        assert_eq!(p.len(), 100);
        assert_eq!(p.session_end(7), 0, "absent device reads as offline");
        assert!(!p.can_check_in(7, 0, true));
        assert!(!p.hold_is_current(7, 1));
        p.begin_session(7, 10_000);
        assert_eq!(p.live_devices(), 1);
        assert!(p.can_check_in(7, 5_000, true));
        assert_eq!(p.info(7).id().as_u64(), 7);
    }

    #[test]
    fn lazy_profiles_are_touch_order_independent() {
        let mut a = lazy_pool(50);
        let mut b = lazy_pool(50);
        // Touch in opposite orders; profiles must match exactly.
        for d in 0..50 {
            a.begin_session(d, 1_000);
        }
        for d in (0..50).rev() {
            b.begin_session(d, 1_000);
        }
        for d in 0..50 {
            assert_eq!(a.get(d).profile, b.get(d).profile, "device {d}");
        }
        // And match the dense split arm.
        let dense = DevicePool::new(
            (0..50)
                .map(|d| CapacityModel::default().sample_device(42, d))
                .collect(),
        );
        for d in 0..50 {
            assert_eq!(a.get(d).profile, dense.get(d).profile, "device {d}");
        }
    }

    #[test]
    fn retire_frees_the_slot_and_preserves_durables() {
        let mut p = lazy_pool(10);
        p.begin_session(3, 5_000);
        p.note_task(3, 1_000);
        let g = p.mark_held(3, 0, 0);
        p.release(3);
        // Idle past session end: the note retires it immediately.
        p.note_possible_retire(3, 6_000);
        assert_eq!(p.live_devices(), 0);
        assert_eq!(p.session_end(3), 0);
        assert!(!p.hold_is_current(3, g), "retired devices hold nothing");
        // Re-materialize: durable facts survive.
        p.begin_session(3, 90_000_000);
        assert_eq!(p.get(3).last_task_day, Some(0), "daily cap survives");
        assert!(!p.can_check_in(3, 10_000, true), "cap still applies today");
        assert!(p.can_check_in(3, DAY_MS + 1, true), "next day resets");
        let g2 = p.mark_held(3, 0, 0);
        assert!(g2 > g, "hold generations never restart");
    }

    #[test]
    fn sweep_retires_only_dormant_past_end_devices() {
        let mut p = lazy_pool(10);
        p.begin_session(0, 5_000);
        p.begin_session(1, 5_000);
        p.note_possible_retire(0, 1_000); // files a note at end 5_000
        p.note_possible_retire(1, 1_000);
        p.begin_session(1, 20_000); // session 1 extends past the note
        p.sweep_retire(4_999);
        assert_eq!(p.live_devices(), 2, "nothing due yet");
        p.sweep_retire(5_000);
        assert_eq!(p.live_devices(), 1, "device 0 retired at its end");
        assert_eq!(p.session_end(1), 20_000, "extended session survives");
        // Busy devices never retire, even past their end.
        p.mark_busy(1);
        p.note_possible_retire(1, 30_000);
        p.sweep_retire(30_000);
        assert_eq!(p.live_devices(), 1);
        // Released after the end: immediate retirement.
        p.release(1);
        p.note_possible_retire(1, 30_000);
        assert_eq!(p.live_devices(), 0);
        assert_eq!(p.peak_live_devices(), 2);
    }
}
