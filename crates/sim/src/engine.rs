//! The simulation engine: wires traces, jobs, and a scheduler together.
//!
//! ## Round lifecycle (paper Fig. 1)
//!
//! 1. **Allocation / scheduling delay** — the job submits a request; each
//!    checked-in device the scheduler assigns is *held* (connected, idle).
//!    Held devices whose availability session ends are released and their
//!    demand returned. There is no deadline in this phase: time spent here
//!    *is* the scheduling delay the paper measures.
//! 2. **Round start** — when the full demand is held, the request leaves
//!    the scheduler, every held device starts computing, and the round
//!    deadline (5–15 min by demand) starts ticking.
//! 3. **Response collection** — the round succeeds when ≥ `quorum` of the
//!    participants report back before the deadline; otherwise it aborts,
//!    backs off briefly, and retries (devices consumed are not refunded —
//!    aborted work is wasted, as in production).

use rand::rngs::StdRng;
use rand::SeedableRng;

use venn_core::{Capacity, DeviceId, DeviceInfo, JobId, Request, Scheduler, SimTime, DAY_MS};
use venn_metrics::JctRecord;
use venn_traces::dist::LogNormal;
use venn_traces::{DeviceProfile, Workload};

use crate::config::SimConfig;
use crate::event::{EventKind, EventQueue};
use crate::result::{RoundLog, SimResult};

#[derive(Debug)]
struct DeviceState {
    profile: DeviceProfile,
    /// End of the current availability session (0 = offline).
    session_end: SimTime,
    /// Held by a job or computing.
    busy: bool,
    /// Day index of the device's last computation (one-task-per-day cap).
    last_task_day: Option<u64>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum JobPhase {
    /// Not yet arrived or between rounds.
    Idle,
    /// A round request is outstanding; devices are being held.
    Allocating,
    /// All participants are computing; the deadline is ticking.
    Running,
    /// All rounds done.
    Finished,
}

#[derive(Debug)]
struct JobRuntime {
    spec: venn_core::ResourceSpec,
    rounds_done: u32,
    phase: JobPhase,
    /// Request incarnation; bumped on round completion/abort so stale
    /// events are ignored.
    epoch: u32,
    request_start: SimTime,
    round_start: SimTime,
    assigned: u32,
    responses: u32,
    /// Devices currently held (population indices).
    held: Vec<usize>,
    /// Devices that responded this round.
    participants: Vec<usize>,
    record: JctRecord,
}

/// One simulation run. Construct with a config, then [`Simulation::run`].
#[derive(Debug)]
pub struct Simulation {
    config: SimConfig,
}

impl Simulation {
    /// Creates a simulation.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see [`SimConfig::validate`]).
    pub fn new(config: SimConfig) -> Self {
        config.validate();
        Simulation { config }
    }

    /// The configuration.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Runs `workload` under `scheduler` and returns the results.
    ///
    /// The run is deterministic given (`config.seed`, workload, scheduler
    /// state): the same inputs produce identical outputs.
    pub fn run(&self, workload: &Workload, scheduler: &mut dyn Scheduler) -> SimResult {
        let cfg = &self.config;
        let horizon = cfg.horizon_ms();
        let mut rng = StdRng::seed_from_u64(cfg.seed);

        let profiles = cfg.capacity.sample_population(cfg.population, &mut rng);
        let sessions = cfg.availability.generate(cfg.population, cfg.days, &mut rng);
        let mut devices: Vec<DeviceState> = profiles
            .into_iter()
            .map(|profile| DeviceState {
                profile,
                session_end: 0,
                busy: false,
                last_task_day: None,
            })
            .collect();
        let noise = LogNormal::from_mean_cv(1.0, cfg.response_noise_cv.max(1e-6));

        let mut jobs: Vec<JobRuntime> = workload
            .jobs
            .iter()
            .map(|plan| JobRuntime {
                spec: plan.spec(cfg.thresholds),
                rounds_done: 0,
                phase: JobPhase::Idle,
                epoch: 0,
                request_start: 0,
                round_start: 0,
                assigned: 0,
                responses: 0,
                held: Vec::new(),
                participants: Vec::new(),
                record: JctRecord::new(plan.arrival_ms),
            })
            .collect();

        let mut queue = EventQueue::new();
        for s in &sessions {
            if s.start < horizon {
                queue.push(
                    s.start,
                    EventKind::SessionStart {
                        device: s.device,
                        session_end: s.end.min(horizon),
                    },
                );
            }
        }
        for (idx, plan) in workload.jobs.iter().enumerate() {
            if plan.arrival_ms < horizon {
                queue.push(plan.arrival_ms, EventKind::JobArrival { job_idx: idx });
            }
        }

        let mut result = SimResult {
            scheduler_name: scheduler.name().to_string(),
            ..SimResult::default()
        };

        while let Some(event) = queue.pop() {
            let now = event.time;
            if now > horizon {
                break;
            }
            match event.kind {
                EventKind::JobArrival { job_idx } | EventKind::RoundStart { job_idx } => {
                    self.submit_round(job_idx, now, workload, &mut jobs, scheduler, &mut queue);
                }
                EventKind::SessionStart {
                    device,
                    session_end,
                } => {
                    let d = &mut devices[device];
                    d.session_end = d.session_end.max(session_end);
                    self.check_in(
                        device, now, workload, &mut devices, &mut jobs, scheduler, &mut queue,
                        &noise, &mut rng, &mut result,
                    );
                }
                EventKind::CheckIn { device } => {
                    self.check_in(
                        device, now, workload, &mut devices, &mut jobs, scheduler, &mut queue,
                        &noise, &mut rng, &mut result,
                    );
                }
                EventKind::HoldExpire { job, epoch, device } => {
                    let j = &mut jobs[job.as_u64() as usize];
                    if j.phase == JobPhase::Allocating && j.epoch == epoch {
                        // Device departed while held: release and re-demand.
                        devices[device].busy = false;
                        j.assigned = j.assigned.saturating_sub(1);
                        j.held.retain(|&d| d != device);
                        scheduler.add_demand(job, 1, now);
                    }
                }
                EventKind::Response {
                    job,
                    epoch,
                    device,
                    response_ms,
                } => {
                    devices[device].busy = false;
                    let job_idx = job.as_u64() as usize;
                    let j = &mut jobs[job_idx];
                    let counting_phase = if self.config.async_mode {
                        j.phase == JobPhase::Running || j.phase == JobPhase::Allocating
                    } else {
                        j.phase == JobPhase::Running
                    };
                    if !counting_phase || j.epoch != epoch {
                        continue; // stale response: round already over
                    }
                    j.responses += 1;
                    j.participants.push(device);
                    let dev_info = DeviceInfo::new(
                        DeviceId::new(device as u64),
                        devices[device].profile.capacity,
                    );
                    scheduler.on_response(job, &dev_info, response_ms, now);
                    let demand = workload.jobs[job_idx].demand;
                    if j.responses >= self.config.quorum_target(demand) {
                        self.complete_round(
                            job_idx, now, workload, &mut jobs, scheduler, &mut queue,
                            &mut result,
                        );
                    }
                }
                EventKind::AssignFailure { job, epoch, device } => {
                    // Departed mid-computation. Synchronously the deadline
                    // arbitrates the round's fate; in async mode the still-
                    // open request can replace the device.
                    devices[device].busy = false;
                    result.failures += 1;
                    if self.config.async_mode {
                        let j = &mut jobs[job.as_u64() as usize];
                        if j.phase == JobPhase::Allocating && j.epoch == epoch {
                            j.assigned = j.assigned.saturating_sub(1);
                            scheduler.add_demand(job, 1, now);
                        }
                    }
                }
                EventKind::RoundDeadline { job, epoch } => {
                    let job_idx = job.as_u64() as usize;
                    let j = &mut jobs[job_idx];
                    let armed = if self.config.async_mode {
                        j.phase == JobPhase::Running || j.phase == JobPhase::Allocating
                    } else {
                        j.phase == JobPhase::Running
                    };
                    if !armed || j.epoch != epoch {
                        continue;
                    }
                    // Quorum missed: abort and retry after a short backoff.
                    if j.phase == JobPhase::Allocating {
                        scheduler.withdraw(job, now);
                    }
                    result.aborted_rounds += 1;
                    j.record.rounds_aborted += 1;
                    j.phase = JobPhase::Idle;
                    j.epoch += 1;
                    queue.push(
                        now + self.config.abort_backoff_ms,
                        EventKind::RoundStart { job_idx },
                    );
                }
            }
        }

        result.records = jobs.into_iter().map(|j| j.record).collect();
        result
    }

    /// Submits the request for the job's next round (allocation phase).
    fn submit_round(
        &self,
        job_idx: usize,
        now: SimTime,
        workload: &Workload,
        jobs: &mut [JobRuntime],
        scheduler: &mut dyn Scheduler,
        _queue: &mut EventQueue,
    ) {
        let plan = &workload.jobs[job_idx];
        let j = &mut jobs[job_idx];
        if j.phase != JobPhase::Idle {
            return;
        }
        j.phase = JobPhase::Allocating;
        j.request_start = now;
        j.assigned = 0;
        j.responses = 0;
        j.held.clear();
        j.participants.clear();
        let remaining_rounds = plan.rounds - j.rounds_done;
        let requested = self.config.requested(plan.demand);
        scheduler.submit(
            Request::new(
                JobId::new(job_idx as u64),
                j.spec,
                requested,
                remaining_rounds as u64 * plan.demand as u64,
            ),
            now,
        );
        // Async rounds carry no deadline: like buffered-asynchronous FL,
        // the aggregation fires whenever the quorum of updates arrives, so
        // participants computed for a round are never wasted. (Sync rounds
        // arm their deadline at round start — see `start_round`.)
    }

    /// All participants held: start computing, arm the deadline.
    #[allow(clippy::too_many_arguments)]
    fn start_round(
        &self,
        job_idx: usize,
        now: SimTime,
        workload: &Workload,
        devices: &mut [DeviceState],
        jobs: &mut [JobRuntime],
        scheduler: &mut dyn Scheduler,
        queue: &mut EventQueue,
        noise: &LogNormal,
        rng: &mut StdRng,
    ) {
        let plan = &workload.jobs[job_idx];
        let job = JobId::new(job_idx as u64);
        let j = &mut jobs[job_idx];
        j.phase = JobPhase::Running;
        j.round_start = now;
        scheduler.on_alloc_complete(job, now - j.request_start, now);
        scheduler.withdraw(job, now);
        let today = now / DAY_MS;
        for &device in &j.held {
            let d = &mut devices[device];
            d.last_task_day = Some(today);
            let response_ms =
                (plan.task_ms as f64 / d.profile.speed * noise.sample(rng)).max(1_000.0) as u64;
            if now + response_ms <= d.session_end {
                queue.push(
                    now + response_ms,
                    EventKind::Response {
                        job,
                        epoch: j.epoch,
                        device,
                        response_ms,
                    },
                );
            } else {
                queue.push(
                    d.session_end,
                    EventKind::AssignFailure {
                        job,
                        epoch: j.epoch,
                        device,
                    },
                );
            }
        }
        queue.push(
            now + self.config.deadline_ms(plan.demand),
            EventKind::RoundDeadline {
                job,
                epoch: j.epoch,
            },
        );
    }

    #[allow(clippy::too_many_arguments)]
    fn complete_round(
        &self,
        job_idx: usize,
        now: SimTime,
        workload: &Workload,
        jobs: &mut [JobRuntime],
        scheduler: &mut dyn Scheduler,
        queue: &mut EventQueue,
        result: &mut SimResult,
    ) {
        let plan = &workload.jobs[job_idx];
        let j = &mut jobs[job_idx];
        if j.phase == JobPhase::Allocating {
            // Async quorum before full allocation: close the open request.
            scheduler.withdraw(JobId::new(job_idx as u64), now);
            j.round_start = now;
        }
        j.record.sched_delay_ms += j.round_start - j.request_start;
        j.record.response_ms += now - j.round_start;
        j.record.rounds_completed += 1;
        if self.config.record_rounds {
            result.rounds.push(RoundLog {
                job_idx,
                round: j.rounds_done,
                start_ms: j.request_start,
                end_ms: now,
                participants: j.participants.clone(),
            });
        }
        j.rounds_done += 1;
        j.epoch += 1;
        if j.rounds_done >= plan.rounds {
            j.phase = JobPhase::Finished;
            j.record.finish(now);
        } else {
            j.phase = JobPhase::Idle;
            queue.push(
                now + self.config.agg_delay_ms,
                EventKind::RoundStart { job_idx },
            );
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn check_in(
        &self,
        device: usize,
        now: SimTime,
        workload: &Workload,
        devices: &mut [DeviceState],
        jobs: &mut [JobRuntime],
        scheduler: &mut dyn Scheduler,
        queue: &mut EventQueue,
        noise: &LogNormal,
        rng: &mut StdRng,
        result: &mut SimResult,
    ) {
        let today = now / DAY_MS;
        {
            let d = &devices[device];
            if d.busy || now >= d.session_end {
                return;
            }
            if self.config.one_task_per_day && d.last_task_day == Some(today) {
                return; // exhausted its daily task; next session wakes it
            }
        }
        let capacity: Capacity = devices[device].profile.capacity;
        let info = DeviceInfo::new(DeviceId::new(device as u64), capacity);
        scheduler.on_check_in(&info, now);
        match scheduler.assign(&info, now) {
            Some(job) => {
                let job_idx = job.as_u64() as usize;
                assert!(job_idx < jobs.len(), "scheduler assigned unknown job");
                let j = &mut jobs[job_idx];
                assert!(
                    j.phase == JobPhase::Allocating,
                    "scheduler assigned to a job without an active request"
                );
                result.assignments += 1;
                j.assigned += 1;
                if self.config.async_mode {
                    // Async: compute immediately, no holding phase.
                    let d = &mut devices[device];
                    d.busy = true;
                    d.last_task_day = Some(today);
                    let task_ms = workload.jobs[job_idx].task_ms as f64;
                    let response_ms =
                        (task_ms / d.profile.speed * noise.sample(rng)).max(1_000.0) as u64;
                    let kind = if now + response_ms <= d.session_end {
                        EventKind::Response {
                            job,
                            epoch: j.epoch,
                            device,
                            response_ms,
                        }
                    } else {
                        EventKind::AssignFailure {
                            job,
                            epoch: j.epoch,
                            device,
                        }
                    };
                    let at = (now + response_ms).min(d.session_end);
                    queue.push(at, kind);
                    let requested = self.config.requested(workload.jobs[job_idx].demand);
                    if j.assigned >= requested && j.phase == JobPhase::Allocating {
                        // Request filled: stop queueing, record the delay.
                        j.phase = JobPhase::Running;
                        j.round_start = now;
                        scheduler.on_alloc_complete(job, now - j.request_start, now);
                        scheduler.withdraw(job, now);
                    }
                    return;
                }
                j.held.push(device);
                devices[device].busy = true;
                queue.push(
                    devices[device].session_end,
                    EventKind::HoldExpire {
                        job,
                        epoch: j.epoch,
                        device,
                    },
                );
                let requested = self.config.requested(workload.jobs[job_idx].demand);
                if j.assigned >= requested {
                    self.start_round(
                        job_idx, now, workload, devices, jobs, scheduler, queue, noise, rng,
                    );
                }
            }
            None => {
                // Stay online and poll again later.
                let next = now + self.config.repoll_ms;
                if next < devices[device].session_end {
                    queue.push(next, EventKind::CheckIn { device });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use venn_core::SpecCategory;
    use venn_traces::{JobDemandModel, JobPlan, Workload, WorkloadKind};

    fn tiny_workload(n: usize, demand: u32, rounds: u32) -> Workload {
        let jobs = (0..n)
            .map(|i| JobPlan {
                id: JobId::new(i as u64),
                arrival_ms: 1_000 * i as SimTime,
                category: SpecCategory::General,
                rounds,
                demand,
                task_ms: 30_000,
            })
            .collect();
        Workload { jobs }
    }

    fn run_fifo(workload: &Workload, config: SimConfig) -> SimResult {
        let mut sched = venn_baselines::BaselineScheduler::fifo();
        Simulation::new(config).run(workload, &mut sched)
    }

    #[test]
    fn small_jobs_finish() {
        let w = tiny_workload(3, 5, 2);
        let r = run_fifo(&w, SimConfig::small());
        assert_eq!(r.records.len(), 3);
        assert!(
            r.completion_rate() > 0.99,
            "tiny jobs must all finish: {:?}",
            r.records
        );
        for rec in &r.records {
            assert_eq!(rec.rounds_completed, 2);
            assert!(rec.jct_ms().unwrap() > 0);
        }
    }

    #[test]
    fn runs_are_deterministic() {
        let w = tiny_workload(4, 8, 3);
        let a = run_fifo(&w, SimConfig::small());
        let b = run_fifo(&w, SimConfig::small());
        assert_eq!(a.records, b.records);
        assert_eq!(a.assignments, b.assignments);
        assert_eq!(a.aborted_rounds, b.aborted_rounds);
    }

    #[test]
    fn different_seeds_differ() {
        let w = tiny_workload(4, 8, 3);
        let a = run_fifo(&w, SimConfig::small());
        let b = run_fifo(
            &w,
            SimConfig {
                seed: 1234,
                ..SimConfig::small()
            },
        );
        assert_ne!(
            a.records, b.records,
            "environment seed must affect outcomes"
        );
    }

    #[test]
    fn infeasible_demand_never_finishes() {
        // Demand larger than the whole population can never be fully held.
        let w = tiny_workload(1, 5_000, 1);
        let r = run_fifo(
            &w,
            SimConfig {
                population: 50,
                days: 1,
                ..SimConfig::small()
            },
        );
        assert_eq!(r.completion_rate(), 0.0);
        // With the Fig. 1 lifecycle the job waits in allocation (growing
        // scheduling delay) rather than abort-looping.
        assert_eq!(r.records[0].rounds_completed, 0);
    }

    #[test]
    fn sched_delay_and_response_are_recorded() {
        let w = tiny_workload(2, 10, 2);
        let r = run_fifo(&w, SimConfig::small());
        for rec in r.records.iter().filter(|r| r.is_finished()) {
            assert!(rec.response_ms > 0, "responses take time");
            let jct = rec.jct_ms().unwrap();
            assert!(rec.sched_delay_ms + rec.response_ms <= jct);
        }
    }

    #[test]
    fn round_logs_capture_participants() {
        let w = tiny_workload(1, 5, 2);
        let mut sched = venn_baselines::BaselineScheduler::fifo();
        let config = SimConfig {
            record_rounds: true,
            ..SimConfig::small()
        };
        let r = Simulation::new(config).run(&w, &mut sched);
        assert_eq!(r.rounds.len(), 2);
        for log in &r.rounds {
            assert!(log.participants.len() >= 4); // quorum of 5 = 4
            assert!(log.end_ms > log.start_ms);
        }
    }

    #[test]
    fn venn_scheduler_runs_end_to_end() {
        let w = tiny_workload(3, 5, 2);
        let mut sched = venn_core::VennScheduler::new(venn_core::VennConfig::default());
        let r = Simulation::new(SimConfig::small()).run(&w, &mut sched);
        assert!(r.completion_rate() > 0.99, "{:?}", r.records);
        assert_eq!(r.scheduler_name, "venn");
    }

    #[test]
    fn contended_workload_produces_scheduling_delay() {
        let mut rng = StdRng::seed_from_u64(5);
        let w = Workload::generate(
            WorkloadKind::Even,
            None,
            8,
            &JobDemandModel {
                demand_mean: 30.0,
                demand_max: 60,
                rounds_mean: 3.0,
                rounds_max: 5,
                ..JobDemandModel::default()
            },
            60_000.0, // rapid arrivals → contention
            &mut rng,
        );
        let r = run_fifo(
            &w,
            SimConfig {
                population: 800,
                days: 4,
                ..SimConfig::small()
            },
        );
        let b = r.breakdown();
        assert!(b.finished() > 0);
        assert!(
            b.avg_sched_delay_ms() > 0.0,
            "contention must show up as scheduling delay"
        );
    }

    #[test]
    fn async_mode_completes_rounds() {
        let w = tiny_workload(3, 8, 3);
        let r = run_fifo(
            &w,
            SimConfig {
                async_mode: true,
                ..SimConfig::small()
            },
        );
        assert!(r.completion_rate() > 0.99, "{:?}", r.records);
        for rec in &r.records {
            assert_eq!(rec.rounds_completed, 3);
        }
    }

    #[test]
    fn async_mode_is_never_slower_to_first_quorum() {
        // With the same environment, async rounds can complete on quorum
        // before full allocation, so per-round latency is at most sync's.
        let w = tiny_workload(2, 10, 2);
        let sync = run_fifo(&w, SimConfig::small());
        let asy = run_fifo(
            &w,
            SimConfig {
                async_mode: true,
                ..SimConfig::small()
            },
        );
        assert!(asy.completion_rate() > 0.99);
        assert!(sync.completion_rate() > 0.99);
        // Both complete; async JCT is typically smaller but at minimum the
        // run must be well-formed. Compare to within 2x to bound noise.
        let a = asy.avg_jct_ms();
        let s = sync.avg_jct_ms();
        assert!(a <= s * 2.0, "async {a} vs sync {s}");
    }

    #[test]
    fn overcommit_requests_extra_devices() {
        let w = tiny_workload(1, 10, 1);
        let base = run_fifo(&w, SimConfig::small());
        let over = run_fifo(
            &w,
            SimConfig {
                overcommit: 0.3,
                ..SimConfig::small()
            },
        );
        assert!(
            over.assignments > base.assignments,
            "overcommit must hold more devices: {} vs {}",
            over.assignments,
            base.assignments
        );
        assert!(over.completion_rate() > 0.99);
    }

    #[test]
    fn one_task_per_day_caps_assignments() {
        let w = tiny_workload(1, 5, 20);
        let capped = run_fifo(
            &w,
            SimConfig {
                population: 40,
                days: 2,
                ..SimConfig::small()
            },
        );
        let uncapped = run_fifo(
            &w,
            SimConfig {
                population: 40,
                days: 2,
                one_task_per_day: false,
                ..SimConfig::small()
            },
        );
        assert!(
            uncapped.records[0].rounds_completed >= capped.records[0].rounds_completed,
            "lifting the daily cap cannot slow progress"
        );
    }
}
