//! The simulation driver: wires traces, jobs, and a scheduler together.
//!
//! ## Round lifecycle (paper Fig. 1)
//!
//! 1. **Allocation / scheduling delay** — the job submits a request; each
//!    checked-in device the scheduler assigns is *held* (connected, idle).
//!    Held devices whose availability session ends are released and their
//!    demand returned. There is no deadline in this phase: time spent here
//!    *is* the scheduling delay the paper measures.
//! 2. **Round start** — when the full demand is held, the request leaves
//!    the scheduler, every held device starts computing, and the round
//!    deadline (5–15 min by demand) starts ticking.
//! 3. **Response collection** — the round succeeds when ≥ `quorum` of the
//!    participants report back before the deadline; otherwise it aborts,
//!    backs off briefly, and retries (devices consumed are not refunded —
//!    aborted work is wasted, as in production).
//!
//! The lifecycle itself is implemented by the [`World`] state machine
//! (`world.rs`), which owns the [`DevicePool`](crate::DevicePool),
//! [`JobTable`](crate::JobTable), and event queue and handles each
//! [`EventKind`](crate::event::EventKind) in a dedicated method.
//! [`Simulation`] is the thin front door: construct, validate, run —
//! optionally with [`SimObserver`]s attached.

use venn_core::Scheduler;
use venn_traces::Workload;

use crate::config::SimConfig;
use crate::observer::SimObserver;
use crate::result::SimResult;
use crate::world::World;

/// One simulation run. Construct with a config, then [`Simulation::run`].
#[derive(Debug)]
pub struct Simulation {
    config: SimConfig,
}

impl Simulation {
    /// Creates a simulation.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see [`SimConfig::validate`]).
    pub fn new(config: SimConfig) -> Self {
        config.validate();
        Simulation { config }
    }

    /// The configuration.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Runs `workload` under `scheduler` and returns the results.
    ///
    /// The run is deterministic given (`config.seed`, workload, scheduler
    /// state): the same inputs produce identical outputs.
    pub fn run(&self, workload: &Workload, scheduler: &mut dyn Scheduler) -> SimResult {
        self.run_observed(workload, scheduler, &mut [])
    }

    /// Like [`Simulation::run`], with [`SimObserver`]s hooked into the
    /// event loop. Observers see every lifecycle moment but cannot perturb
    /// the simulation: results are byte-identical with or without them.
    pub fn run_observed(
        &self,
        workload: &Workload,
        scheduler: &mut dyn Scheduler,
        observers: &mut [&mut dyn SimObserver],
    ) -> SimResult {
        World::new(self.config, workload, scheduler.name()).run(scheduler, observers)
    }

    /// Builds the initial [`World`] without running it — for callers that
    /// want to drive the event loop step by step.
    pub fn world(&self, workload: &Workload, scheduler_name: &str) -> World {
        World::new(self.config, workload, scheduler_name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use venn_core::{JobId, SimTime, SpecCategory};
    use venn_traces::{JobDemandModel, JobPlan, Workload, WorkloadKind};

    use crate::observer::{CompletionLog, EventTrace, RoundRecorder};

    fn tiny_workload(n: usize, demand: u32, rounds: u32) -> Workload {
        let jobs = (0..n)
            .map(|i| JobPlan {
                id: JobId::new(i as u64),
                arrival_ms: 1_000 * i as SimTime,
                category: SpecCategory::General,
                rounds,
                demand,
                task_ms: 30_000,
            })
            .collect();
        Workload { jobs }
    }

    fn run_fifo(workload: &Workload, config: SimConfig) -> SimResult {
        let mut sched = venn_baselines::BaselineScheduler::fifo();
        Simulation::new(config).run(workload, &mut sched)
    }

    #[test]
    fn small_jobs_finish() {
        let w = tiny_workload(3, 5, 2);
        let r = run_fifo(&w, SimConfig::small());
        assert_eq!(r.records.len(), 3);
        assert!(
            r.completion_rate() > 0.99,
            "tiny jobs must all finish: {:?}",
            r.records
        );
        for rec in &r.records {
            assert_eq!(rec.rounds_completed, 2);
            assert!(rec.jct_ms().unwrap() > 0);
        }
    }

    #[test]
    fn runs_are_deterministic() {
        let w = tiny_workload(4, 8, 3);
        let a = run_fifo(&w, SimConfig::small());
        let b = run_fifo(&w, SimConfig::small());
        assert_eq!(a.records, b.records);
        assert_eq!(a.assignments, b.assignments);
        assert_eq!(a.aborted_rounds, b.aborted_rounds);
        assert_eq!(a.events, b.events);
    }

    #[test]
    fn different_seeds_differ() {
        let w = tiny_workload(4, 8, 3);
        let a = run_fifo(&w, SimConfig::small());
        let b = run_fifo(
            &w,
            SimConfig {
                seed: 1234,
                ..SimConfig::small()
            },
        );
        assert_ne!(
            a.records, b.records,
            "environment seed must affect outcomes"
        );
    }

    #[test]
    fn infeasible_demand_never_finishes() {
        // Demand larger than the whole population can never be fully held.
        let w = tiny_workload(1, 5_000, 1);
        let r = run_fifo(
            &w,
            SimConfig {
                population: 50,
                days: 1,
                ..SimConfig::small()
            },
        );
        assert_eq!(r.completion_rate(), 0.0);
        // With the Fig. 1 lifecycle the job waits in allocation (growing
        // scheduling delay) rather than abort-looping.
        assert_eq!(r.records[0].rounds_completed, 0);
    }

    #[test]
    fn sched_delay_and_response_are_recorded() {
        let w = tiny_workload(2, 10, 2);
        let r = run_fifo(&w, SimConfig::small());
        for rec in r.records.iter().filter(|r| r.is_finished()) {
            assert!(rec.response_ms > 0, "responses take time");
            let jct = rec.jct_ms().unwrap();
            assert!(rec.sched_delay_ms + rec.response_ms <= jct);
        }
    }

    #[test]
    fn round_logs_capture_participants() {
        let w = tiny_workload(1, 5, 2);
        let mut sched = venn_baselines::BaselineScheduler::fifo();
        let config = SimConfig {
            record_rounds: true,
            ..SimConfig::small()
        };
        let r = Simulation::new(config).run(&w, &mut sched);
        assert_eq!(r.rounds.len(), 2);
        for log in &r.rounds {
            assert!(log.participants.len() >= 4); // quorum of 5 = 4
            assert!(log.end_ms > log.start_ms);
        }
    }

    #[test]
    fn venn_scheduler_runs_end_to_end() {
        let w = tiny_workload(3, 5, 2);
        let mut sched = venn_core::VennScheduler::new(venn_core::VennConfig::default());
        let r = Simulation::new(SimConfig::small()).run(&w, &mut sched);
        assert!(r.completion_rate() > 0.99, "{:?}", r.records);
        assert_eq!(r.scheduler_name, "venn");
    }

    #[test]
    fn contended_workload_produces_scheduling_delay() {
        let mut rng = StdRng::seed_from_u64(5);
        let w = Workload::generate(
            WorkloadKind::Even,
            None,
            8,
            &JobDemandModel {
                demand_mean: 30.0,
                demand_max: 60,
                rounds_mean: 3.0,
                rounds_max: 5,
                ..JobDemandModel::default()
            },
            60_000.0, // rapid arrivals → contention
            &mut rng,
        );
        let r = run_fifo(
            &w,
            SimConfig {
                population: 800,
                days: 4,
                ..SimConfig::small()
            },
        );
        let b = r.breakdown();
        assert!(b.finished() > 0);
        assert!(
            b.avg_sched_delay_ms() > 0.0,
            "contention must show up as scheduling delay"
        );
    }

    #[test]
    fn async_mode_completes_rounds() {
        let w = tiny_workload(3, 8, 3);
        let r = run_fifo(
            &w,
            SimConfig {
                async_mode: true,
                ..SimConfig::small()
            },
        );
        assert!(r.completion_rate() > 0.99, "{:?}", r.records);
        for rec in &r.records {
            assert_eq!(rec.rounds_completed, 3);
        }
    }

    #[test]
    fn async_mode_is_never_slower_to_first_quorum() {
        // With the same environment, async rounds can complete on quorum
        // before full allocation, so per-round latency is at most sync's.
        let w = tiny_workload(2, 10, 2);
        let sync = run_fifo(&w, SimConfig::small());
        let asy = run_fifo(
            &w,
            SimConfig {
                async_mode: true,
                ..SimConfig::small()
            },
        );
        assert!(asy.completion_rate() > 0.99);
        assert!(sync.completion_rate() > 0.99);
        // Both complete; async JCT is typically smaller but at minimum the
        // run must be well-formed. Compare to within 2x to bound noise.
        let a = asy.avg_jct_ms();
        let s = sync.avg_jct_ms();
        assert!(a <= s * 2.0, "async {a} vs sync {s}");
    }

    #[test]
    fn overcommit_requests_extra_devices() {
        let w = tiny_workload(1, 10, 1);
        let base = run_fifo(&w, SimConfig::small());
        let over = run_fifo(
            &w,
            SimConfig {
                overcommit: 0.3,
                ..SimConfig::small()
            },
        );
        assert!(
            over.assignments > base.assignments,
            "overcommit must hold more devices: {} vs {}",
            over.assignments,
            base.assignments
        );
        assert!(over.completion_rate() > 0.99);
    }

    #[test]
    fn one_task_per_day_caps_assignments() {
        let w = tiny_workload(1, 5, 20);
        let capped = run_fifo(
            &w,
            SimConfig {
                population: 40,
                days: 2,
                ..SimConfig::small()
            },
        );
        let uncapped = run_fifo(
            &w,
            SimConfig {
                population: 40,
                days: 2,
                one_task_per_day: false,
                ..SimConfig::small()
            },
        );
        assert!(
            uncapped.records[0].rounds_completed >= capped.records[0].rounds_completed,
            "lifting the daily cap cannot slow progress"
        );
    }

    #[test]
    fn demand_gating_prunes_idle_repolls_without_changing_outcomes() {
        // Few small jobs on a large population: most polls land while no
        // request is open, so gating must prune events massively — while
        // every scheduler-visible outcome stays bit-identical.
        let w = tiny_workload(3, 5, 2);
        let gated = run_fifo(&w, SimConfig::small());
        let ungated = run_fifo(
            &w,
            SimConfig {
                demand_gating: false,
                ..SimConfig::small()
            },
        );
        assert_eq!(gated.records, ungated.records, "JCT stats must not move");
        assert_eq!(gated.assignments, ungated.assignments);
        assert_eq!(gated.aborted_rounds, ungated.aborted_rounds);
        assert_eq!(gated.failures, ungated.failures);
        assert!(
            gated.events * 2 < ungated.events,
            "gating must prune the repoll flood: {} vs {}",
            gated.events,
            ungated.events
        );
    }

    #[test]
    fn queue_arms_dispatch_identical_event_streams() {
        let w = tiny_workload(4, 8, 3);
        let wheel = run_fifo(&w, SimConfig::small());
        let heap = run_fifo(
            &w,
            SimConfig {
                queue: crate::QueueKind::Heap,
                ..SimConfig::small()
            },
        );
        assert_eq!(wheel.records, heap.records);
        assert_eq!(wheel.assignments, heap.assignments);
        assert_eq!(wheel.events, heap.events);
        assert_eq!(wheel.aborted_rounds, heap.aborted_rounds);
    }

    #[test]
    fn straggler_env_stretches_responses_and_fills_tier_histograms() {
        let w = tiny_workload(3, 5, 2);
        let off = run_fifo(&w, SimConfig::small());
        let hard = run_fifo(
            &w,
            SimConfig {
                env: venn_env::EnvPreset::StragglerHeavy.config(),
                ..SimConfig::small()
            },
        );
        // The straggler preset has no churn, so the check-in stream is
        // unchanged; every response is stretched by its tier multiplier,
        // so cumulative response time can only grow.
        let total = |r: &SimResult| r.records.iter().map(|rec| rec.response_ms).sum::<u64>();
        assert!(
            total(&hard) >= total(&off),
            "stretched responses must not get faster: {} vs {}",
            total(&hard),
            total(&off)
        );
        assert_eq!(hard.env.tier_response_ms.len(), 4);
        let recorded: u64 = hard.env.tier_response_ms.iter().map(|h| h.total()).sum();
        assert!(
            recorded > 0,
            "counted responses must land in tier histograms"
        );
        assert!(off.env.is_empty(), "env-off runs carry no env telemetry");
    }

    #[test]
    fn mass_dropout_env_forces_devices_offline_deterministically() {
        let w = tiny_workload(4, 8, 3);
        let config = SimConfig {
            env: venn_env::EnvPreset::MassDropout.config(),
            ..SimConfig::small()
        };
        let a = run_fifo(&w, config);
        let b = run_fifo(&w, config);
        assert_eq!(a.records, b.records, "env runs must replay per seed");
        assert_eq!(a.env, b.env);
        assert!(
            a.env.forced_offline > 0,
            "two half-population offline waves must claim victims"
        );
        assert!(a.completion_rate() > 0.0, "{:?}", a.records);
    }

    #[test]
    fn scripted_device_fault_fails_the_in_flight_task() {
        // One job, one round: observe where the env-off round starts and
        // which devices compute it, then script faults that kill every
        // participant mid-round. The round must abort and retry.
        #[derive(Default)]
        struct RoundStarts(Vec<SimTime>);
        impl SimObserver for RoundStarts {
            fn on_round_start(&mut self, now: SimTime, _job_idx: usize, _round: u32) {
                self.0.push(now);
            }
        }
        let w = tiny_workload(1, 5, 1);
        let mut sched = venn_baselines::BaselineScheduler::fifo();
        let mut starts = RoundStarts::default();
        let mut assignments = crate::AssignmentLog::default();
        let off = Simulation::new(SimConfig::small()).run_observed(
            &w,
            &mut sched,
            &mut [&mut starts, &mut assignments],
        );
        assert_eq!(off.failures, 0, "baseline scenario has no departures");
        let t0 = starts.0[0];
        let faults: &'static [venn_env::DeviceFault] = Box::leak(
            assignments
                .assignments
                .iter()
                .map(|&(_, _, device)| venn_env::DeviceFault {
                    at_ms: t0 + 1_000,
                    device,
                })
                .collect::<Vec<_>>()
                .into_boxed_slice(),
        );
        let env = venn_env::EnvConfig {
            faults,
            ..venn_env::EnvConfig::neutral()
        };
        let failed = run_fifo(
            &w,
            SimConfig {
                env,
                ..SimConfig::small()
            },
        );
        assert_eq!(
            failed.env.forced_offline, 5,
            "all five computing participants must be struck"
        );
        assert!(
            failed.failures >= 5,
            "their responses must arrive as failures"
        );
        assert!(failed.aborted_rounds >= 1, "the round cannot reach quorum");
        assert!(
            failed.completion_rate() > 0.99,
            "the job must still finish on retried capacity: {:?}",
            failed.records
        );
    }

    #[test]
    fn hold_expiries_release_devices_without_perturbing_determinism() {
        // Tight population + multi-day horizon: sessions end while devices
        // are held, exercising the O(1) tombstone release path.
        let w = tiny_workload(2, 30, 3);
        let config = SimConfig {
            population: 120,
            days: 3,
            ..SimConfig::small()
        };
        let mut sched = venn_baselines::BaselineScheduler::fifo();
        let mut trace = EventTrace::default();
        let r = Simulation::new(config).run_observed(&w, &mut sched, &mut [&mut trace]);
        assert!(
            trace.hold_expires > 0,
            "scenario must exercise hold expiry: {trace:?}"
        );
        let mut sched2 = venn_baselines::BaselineScheduler::fifo();
        let r2 = Simulation::new(config).run(&w, &mut sched2);
        assert_eq!(r.records, r2.records);
        assert_eq!(r.assignments, r2.assignments);
    }

    // --- observer behavior -------------------------------------------------

    #[test]
    fn observers_do_not_perturb_the_run() {
        let w = tiny_workload(4, 8, 3);
        let config = SimConfig::small();
        let plain = run_fifo(&w, config);
        let mut sched = venn_baselines::BaselineScheduler::fifo();
        let mut trace = EventTrace::default();
        let mut rounds = RoundRecorder::default();
        let mut completions = CompletionLog::default();
        let observed = Simulation::new(config).run_observed(
            &w,
            &mut sched,
            &mut [&mut trace, &mut rounds, &mut completions],
        );
        assert_eq!(plain.records, observed.records);
        assert_eq!(plain.assignments, observed.assignments);
        assert_eq!(plain.aborted_rounds, observed.aborted_rounds);
        assert_eq!(plain.events, observed.events);
    }

    #[test]
    fn event_trace_counts_every_event() {
        let w = tiny_workload(2, 5, 2);
        let mut sched = venn_baselines::BaselineScheduler::fifo();
        let mut trace = EventTrace::default();
        let r = Simulation::new(SimConfig::small()).run_observed(&w, &mut sched, &mut [&mut trace]);
        assert_eq!(trace.total, r.events);
        let by_kind = trace.job_arrivals
            + trace.session_starts
            + trace.env_disturbances
            + trace.check_ins
            + trace.hold_expires
            + trace.responses
            + trace.assign_failures
            + trace.round_deadlines
            + trace.round_starts
            + trace.cohort_wakes;
        assert_eq!(by_kind, trace.total);
        assert!(trace.session_starts > 0);
        assert!(trace.responses > 0);
    }

    #[test]
    fn round_recorder_matches_builtin_round_logs() {
        let w = tiny_workload(2, 5, 3);
        let config = SimConfig {
            record_rounds: true,
            ..SimConfig::small()
        };
        let mut sched = venn_baselines::BaselineScheduler::fifo();
        let mut recorder = RoundRecorder::default();
        let r = Simulation::new(config).run_observed(&w, &mut sched, &mut [&mut recorder]);
        assert_eq!(recorder.rounds, r.rounds);
        assert_eq!(recorder.rounds.len(), 6);
    }

    #[test]
    fn completion_log_sees_every_finished_job() {
        let w = tiny_workload(3, 5, 2);
        let mut sched = venn_baselines::BaselineScheduler::fifo();
        let mut log = CompletionLog::default();
        let r = Simulation::new(SimConfig::small()).run_observed(&w, &mut sched, &mut [&mut log]);
        let finished = r.records.iter().filter(|rec| rec.is_finished()).count();
        assert_eq!(log.finished.len(), finished);
        // Completion order is chronological.
        for pair in log.finished.windows(2) {
            assert!(pair[0].0 <= pair[1].0);
        }
    }

    #[test]
    fn world_can_be_stepped_manually() {
        let w = tiny_workload(1, 5, 1);
        let sim = Simulation::new(SimConfig::small());
        let mut sched = venn_baselines::BaselineScheduler::fifo();
        let mut world = sim.world(&w, sched.name());
        let mut steps = 0u64;
        while world.step(&mut sched, &mut []) {
            steps += 1;
        }
        assert_eq!(steps, world.events_processed());
        let result = world.finish(&mut []);
        assert_eq!(result.events, steps);
        assert!(result.completion_rate() > 0.99);
    }
}
