//! The simulation kernel: a [`World`] state machine stepping an event
//! queue over named sub-state.
//!
//! `World` owns the [`DevicePool`] (sessions, busy flags, daily caps), the
//! [`JobTable`] (round phases, epochs, JCT accounting), and the
//! [`EventQueue`]; every [`EventKind`] is handled by a dedicated method.
//! The driver ([`Simulation::run`](crate::Simulation::run)) just
//! constructs a world and steps it, and [`SimObserver`]s hook lifecycle
//! moments without touching the loop — new device-behavior models,
//! metrics, or scenario logic extend the kernel instead of editing a
//! monolith.
//!
//! Determinism contract: all randomness flows through one seeded RNG in a
//! fixed draw order, events are totally ordered by `(time, seq)`, and
//! observers run strictly after state transitions — so identical
//! `(config, workload, scheduler)` inputs produce byte-identical
//! [`SimResult`]s, with or without observers attached.

use std::collections::VecDeque;

use rand::rngs::StdRng;
use rand::SeedableRng;

use venn_core::{JobId, Scheduler, SimTime, SnapError, SnapReader, SnapWriter, Snapshot};
use venn_env::{Disturbance, EnvRuntime};
use venn_metrics::{EnvStats, Histogram, JctRecord, MetricsFrame, Samples};
use venn_traces::dist::LogNormal;
use venn_traces::{JobPlan, Workload};

use crate::cohort::CohortSet;
use crate::config::{ExecMode, PopMode, SimConfig};
use crate::device_pool::DevicePool;
use crate::event::{Event, EventKind, EventQueue};
use crate::job_table::{JobPhase, JobRuntime, JobTable};
use crate::observer::SimObserver;
use crate::result::{RoundLog, SimResult};
use crate::shard::ShardPlane;

/// A check-in suppressed by demand gating: the poll this device *would*
/// have performed had it stayed in the event queue.
///
/// While no job has an open request, every poll provably assigns nothing,
/// so the device parks here instead of re-enqueueing a `CheckIn` event.
/// The entry keeps the would-be poll's exact `(time, seq)` identity — the
/// seq is reserved from the queue's counter at the same instant the
/// un-gated run would have consumed it — so a later wake-up re-enters the
/// event stream at precisely its original position, and same-millisecond
/// tie-breaks are unchanged. Parked polls that elapse before demand opens
/// are *advanced* instead: their supply observation (`on_check_in`) is
/// replayed in exact stream order, and the next grid poll is parked.
#[derive(Debug, Clone, Copy)]
struct ParkedPoll {
    /// When the suppressed check-in would have fired.
    time: SimTime,
    /// The insertion seq it would have carried (reserved, never reused).
    seq: u64,
    /// The polling device.
    device: usize,
}

/// One future `SessionStart`, streamed into the queue one at a time.
#[derive(Debug, Clone, Copy)]
struct StreamEntry {
    start: SimTime,
    /// Session end, already horizon-clamped.
    end: SimTime,
    device: u32,
    /// Reserved insertion seq (meaningful only on a reserved stream).
    seq: u64,
}

/// A sorted list of future session starts fed into the event queue
/// one entry at a time: the next entry is pushed when the previous one
/// dispatches, so the queue never holds more than one pending stream
/// session — `peak_queue_len` tracks live concurrency, not trace size.
///
/// Two uses. On the eager arm the stream carries *every* session
/// (base + environment extras) under seqs reserved in the exact legacy
/// push order, so the `(time, seq)` total order — and with it every
/// event, draw, and tie-break — is byte-identical to the historical
/// bulk-enqueue kernel; only the queue's high-water mark changes.
/// Feeding entries in `(start, seq)` order keeps every push legal (an
/// entry pushed at its predecessor's dispatch time never lands before
/// the queue's drain cursor, because no seq fits between consecutive
/// stream keys). On the split arms base sessions flow through the
/// cohort wheel instead and the stream carries only environment extras,
/// as plain pushes.
#[derive(Debug, Default)]
struct SessionStream {
    /// Entries sorted ascending by the order they must enter the queue.
    entries: Vec<StreamEntry>,
    cursor: usize,
    /// Whether entries carry pre-reserved seqs (eager arm).
    reserved: bool,
}

impl SessionStream {
    /// Pushes the next pending session, if any.
    fn push_next(&mut self, queue: &mut EventQueue) {
        if let Some(e) = self.entries.get(self.cursor).copied() {
            self.cursor += 1;
            let kind = EventKind::SessionStart {
                device: e.device as usize,
                session_end: e.end,
            };
            if self.reserved {
                queue.push_reserved(e.start, e.seq, kind);
            } else {
                queue.push(e.start, kind);
            }
        }
    }
}

/// One simulated world: all mutable state of a run plus its immutable
/// environment (config and workload).
///
/// The world *owns* its workload (job plans are tiny `Copy` records, so
/// the construction-time clone is negligible): an online driver may
/// append jobs mid-run with [`World::submit_job`], which grows the
/// workload and job table together — the workload is then no longer the
/// caller's immutable input but part of the run's identity, and
/// [`World::workload`] is what a snapshot fingerprint must be computed
/// against.
#[derive(Debug)]
pub struct World {
    config: SimConfig,
    workload: Workload,
    /// Device population state.
    pub devices: DevicePool,
    /// Per-job runtime state.
    pub jobs: JobTable,
    /// Pending events.
    pub queue: EventQueue,
    /// Check-ins suppressed by demand gating, ascending by `(time, seq)`.
    ///
    /// The ordering is maintained with plain `push_back`s: every entry is
    /// created `repoll_ms` after a stream position that is itself
    /// non-decreasing, so a new entry's key always trails the back's.
    ///
    /// Unused (always empty) under [`ExecMode::Sharded`], where the
    /// sharded poll plane below holds the parked set instead.
    parked: VecDeque<ParkedPoll>,
    /// The device-sharded poll plane (`None` on the sequential arm): the
    /// parked set split into per-device-range shards that elapse in
    /// lock-step between dispatched events and merge their effects by
    /// `(time, seq)` — bit-identical results, parallel-friendly windows.
    shard_plane: Option<Box<ShardPlane>>,
    /// Compiled environment dynamics (`None` on the env-off arm — the
    /// kernel then takes its pre-environment paths untouched). All
    /// environment randomness lives in the runtime's own split streams,
    /// never in `rng`, so enabling a scenario cannot shift the kernel's
    /// response-noise draws.
    env: Option<EnvRuntime>,
    /// Streamed session source of the split population modes (`None` on
    /// the eager arm): per-device cursors into the split availability
    /// streams, one upcoming session per device, one pending `CohortWake`
    /// per cohort. Boxed and `take()`n during wake handling so the drain
    /// loop can call back into `&mut self` handlers.
    cohorts: Option<Box<CohortSet>>,
    /// Future `SessionStart`s fed into the queue one at a time (all
    /// sessions on the eager arm; environment extras on the split arms).
    session_stream: SessionStream,
    rng: StdRng,
    noise: LogNormal,
    result: SimResult,
    horizon: SimTime,
    /// Timestamp of the most recently popped event — the kernel's wall
    /// clock, used by checkpointing drivers to pace snapshot cadence.
    now: SimTime,
}

impl World {
    /// Builds the initial world state: samples the device population,
    /// generates availability sessions, and seeds the queue with session
    /// starts and job arrivals.
    pub fn new(config: SimConfig, workload: &Workload, scheduler_name: &str) -> Self {
        let horizon = config.horizon_ms();
        let mut rng = StdRng::seed_from_u64(config.seed);
        let noise = LogNormal::from_mean_cv(1.0, config.response_noise_cv.max(1e-6));
        let env = config.env.compile(config.population, horizon, config.seed);

        let mut queue = EventQueue::with_kind(config.queue);
        let mut session_stream = SessionStream::default();
        let mut cohorts = None;
        let devices = match config.pop_mode {
            PopMode::Eager => {
                // The legacy sequential lineage: profiles then sessions
                // from the one run RNG, so every later noise draw matches
                // the historical kernel bit for bit.
                let profiles = config
                    .capacity
                    .sample_population(config.population, &mut rng);
                let sessions =
                    config
                        .availability
                        .generate(config.population, config.days, &mut rng);
                session_stream.reserved = true;
                for s in &sessions {
                    // Churn clips base sessions to each device's active
                    // window (late joiners, permanent leavers). Env-off
                    // passes through. A clipped-away or post-horizon
                    // session consumed no seq historically either (it was
                    // simply never pushed).
                    let (start, end) = match &env {
                        Some(e) => match e.clip_session(s.device, s.start, s.end) {
                            Some(w) => w,
                            None => continue,
                        },
                        None => (s.start, s.end),
                    };
                    if start < horizon {
                        session_stream.entries.push(StreamEntry {
                            start,
                            end: end.min(horizon),
                            device: s.device as u32,
                            seq: queue.reserve_seq(),
                        });
                    }
                }
                if let Some(e) = &env {
                    for s in e.extra_sessions() {
                        if s.start < horizon {
                            session_stream.entries.push(StreamEntry {
                                start: s.start,
                                end: s.end.min(horizon),
                                device: s.device as u32,
                                seq: queue.reserve_seq(),
                            });
                        }
                    }
                }
                // Queue pop order is `(time, seq)`; feeding entries in
                // that order keeps every streamed push ahead of the drain
                // cursor.
                session_stream.entries.sort_by_key(|e| (e.start, e.seq));
                DevicePool::new(profiles)
            }
            PopMode::SplitEager | PopMode::Lazy => {
                // Split lineage: per-device streams, base sessions through
                // the cohort wheel, `rng` untouched (it only feeds
                // response noise from here on) — so the two split arms
                // share one event stream by construction.
                let set = CohortSet::new(
                    config.availability,
                    config.seed,
                    config.days,
                    horizon,
                    config.population,
                    env.as_ref(),
                );
                for cohort in 0..set.cohort_count() {
                    if let Some(t) = set.next_wake(cohort) {
                        queue.push(t, EventKind::CohortWake { cohort });
                    }
                }
                cohorts = Some(Box::new(set));
                if let Some(e) = &env {
                    session_stream.entries = e
                        .extra_sessions()
                        .iter()
                        .filter(|s| s.start < horizon)
                        .map(|s| StreamEntry {
                            start: s.start,
                            end: s.end.min(horizon),
                            device: s.device as u32,
                            seq: 0,
                        })
                        .collect();
                    session_stream
                        .entries
                        .sort_by_key(|e| (e.start, e.device, e.end));
                }
                if config.pop_mode == PopMode::SplitEager {
                    DevicePool::new(
                        (0..config.population)
                            .map(|d| config.capacity.sample_device(config.seed, d))
                            .collect(),
                    )
                } else {
                    DevicePool::lazy(config.capacity, config.seed, config.population)
                }
            }
        };
        session_stream.push_next(&mut queue);
        for (idx, plan) in workload.jobs.iter().enumerate() {
            if plan.arrival_ms < horizon {
                queue.push(plan.arrival_ms, EventKind::JobArrival { job_idx: idx });
            }
        }
        if let Some(e) = &env {
            for (idx, (time, _)) in e.disturbances().iter().enumerate() {
                if *time <= horizon {
                    queue.push(*time, EventKind::EnvDisturbance { env_idx: idx });
                }
            }
        }

        let env_stats = match &env {
            Some(e) => EnvStats::with_tiers(e.tier_count()),
            None => EnvStats::default(),
        };
        let shard_plane = match config.exec {
            ExecMode::Sequential => None,
            ExecMode::Sharded { shards } => {
                Some(Box::new(ShardPlane::new(config.population, shards)))
            }
        };
        World {
            devices,
            jobs: JobTable::new(workload, config.thresholds),
            queue,
            parked: VecDeque::new(),
            shard_plane,
            env,
            cohorts,
            session_stream,
            rng,
            noise,
            result: SimResult {
                scheduler_name: scheduler_name.to_string(),
                env: env_stats,
                ..SimResult::default()
            },
            horizon,
            now: 0,
            config,
            workload: workload.clone(),
        }
    }

    /// The environment configuration.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// The workload under simulation — including any jobs appended
    /// mid-run by [`World::submit_job`].
    pub fn workload(&self) -> &Workload {
        &self.workload
    }

    /// Events dispatched so far.
    pub fn events_processed(&self) -> u64 {
        self.result.events
    }

    /// Timestamp of the most recently popped event (0 before the first
    /// step) — the simulated clock a checkpointing driver paces by.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The device pool — read-only telemetry access (e.g. live/peak
    /// materialized-device counts on the lazy storage arm).
    pub fn devices(&self) -> &DevicePool {
        &self.devices
    }

    /// Number of demand-gated polls currently parked, on whichever plane
    /// this run uses — telemetry for checkpoint tests picking crash
    /// points with parked state.
    pub fn parked_poll_count(&self) -> usize {
        match &self.shard_plane {
            Some(plane) => plane.len(),
            None => self.parked.len(),
        }
    }

    /// Pops and dispatches the next event. Returns `false` when the queue
    /// is exhausted or the horizon is passed.
    pub fn step(
        &mut self,
        scheduler: &mut dyn Scheduler,
        observers: &mut [&mut dyn SimObserver],
    ) -> bool {
        let Some(event) = self.queue.pop() else {
            return false;
        };
        self.now = event.time;
        if self.has_parked() {
            self.advance_polls(event.time, event.seq, scheduler);
        }
        // After parked polls up to this instant have been settled, retire
        // lazily-stored devices whose noted session ends have passed (any
        // earlier parked poll for such a device was just drained above;
        // later ones are dead in both storage arms). No-op on dense pools.
        self.devices.sweep_retire(event.time);
        if event.time > self.horizon {
            return false;
        }
        self.result.events += 1;
        for o in observers.iter_mut() {
            o.on_event(event.time, &event.kind);
        }
        self.dispatch(event, scheduler, observers);
        true
    }

    /// Runs the event loop to completion and returns the results.
    pub fn run(
        mut self,
        scheduler: &mut dyn Scheduler,
        observers: &mut [&mut dyn SimObserver],
    ) -> SimResult {
        while self.step(scheduler, observers) {}
        self.finish(observers)
    }

    /// Finalizes the run: folds job records into the result and notifies
    /// observers.
    pub fn finish(self, observers: &mut [&mut dyn SimObserver]) -> SimResult {
        let mut result = self.result;
        result.records = self.jobs.into_records();
        result.peak_queue_len = self.queue.peak_len() as u64;
        for o in observers.iter_mut() {
            o.on_run_end(&result);
        }
        result
    }

    // ------------------------------------------------------------------
    // Online control — the mid-run mutation and bounded-draining surface
    // behind `vennsim serve`. Batch runs never call these; their code
    // paths are byte-for-byte unchanged.
    // ------------------------------------------------------------------

    /// Dispatches every pending event with `time <= target` (clamped to
    /// the horizon), then advances the virtual clock to `target`. Returns
    /// the number of events dispatched.
    ///
    /// The queue is only ever *peeked* past the window boundary — the
    /// first out-of-window event stays exactly where it is, cursor and
    /// all — so interleaving `run_until` windows with mid-run mutations
    /// ([`submit_job`](Self::submit_job) /
    /// [`withdraw_job`](Self::withdraw_job)) at the window boundaries
    /// produces the same event stream as a batch run over the equivalent
    /// static workload: bounded draining is a pause, not a fork, of the
    /// simulation.
    pub fn run_until(
        &mut self,
        target: SimTime,
        scheduler: &mut dyn Scheduler,
        observers: &mut [&mut dyn SimObserver],
    ) -> u64 {
        let target = target.min(self.horizon);
        let before = self.result.events;
        while let Some((time, _)) = self.queue.peek_key() {
            if time > target || !self.step(scheduler, observers) {
                break;
            }
        }
        self.now = self.now.max(target);
        self.result.events - before
    }

    /// Admits one job mid-run: the plan joins the workload, its runtime
    /// state joins the job table, and its arrival event is queued —
    /// indistinguishable from a plan known at t=0 with the same arrival.
    ///
    /// The plan's `id` is reassigned to the job's table index. Returns
    /// that index, or a diagnostic for a plan the kernel cannot honor
    /// (zero rounds/demand/task cost, or an arrival before the current
    /// virtual time — the kernel never schedules into the past).
    pub fn submit_job(&mut self, mut plan: JobPlan) -> Result<usize, String> {
        if plan.rounds == 0 {
            return Err("job needs at least one round".into());
        }
        if plan.demand == 0 {
            return Err("job needs at least one participant per round".into());
        }
        if plan.task_ms == 0 {
            return Err("job task cost must be positive".into());
        }
        if plan.arrival_ms < self.now {
            return Err(format!(
                "arrival {} ms is in the past (virtual time is {} ms)",
                plan.arrival_ms, self.now
            ));
        }
        let job_idx = self.jobs.len();
        plan.id = JobId::new(job_idx as u64);
        self.jobs.push(&plan, self.config.thresholds);
        if plan.arrival_ms < self.horizon {
            self.queue
                .push(plan.arrival_ms, EventKind::JobArrival { job_idx });
        }
        self.workload.jobs.push(plan);
        Ok(job_idx)
    }

    /// Withdraws a job mid-run: its current request (if any) is torn down
    /// exactly as an abort would tear it down — scheduler `withdraw`,
    /// held devices released back into their poll loops — and the job
    /// moves to its terminal phase, epoch bumped so every in-flight event
    /// (responses, deadlines, hold expiries, queued round starts) retires
    /// through the existing staleness guards. Returns `false` for an
    /// unknown or already-terminal job.
    ///
    /// A withdrawn job's record stays unfinished: it reports as an
    /// aborted (JCT-less) job, not a completed one.
    pub fn withdraw_job(&mut self, job_idx: usize, scheduler: &mut dyn Scheduler) -> bool {
        if job_idx >= self.jobs.len() || self.jobs.get(job_idx).phase == JobPhase::Finished {
            return false;
        }
        let now = self.now;
        if self.jobs.get(job_idx).phase == JobPhase::Allocating {
            // Mirror `abort_round`'s open-request teardown (which see):
            // the held devices' pending expiries are retired by the
            // hold-generation guard, and each released device re-enters
            // its poll loop rather than idling invisibly until its next
            // session.
            scheduler.withdraw(JobId::new(job_idx as u64), now);
            let held: Vec<usize> = self.jobs.get(job_idx).held_devices().collect();
            for device in held {
                self.devices.release(device);
                let next = now + self.config.repoll_ms;
                if next < self.devices.session_end(device) {
                    self.queue.push(next, EventKind::CheckIn { device });
                } else {
                    self.devices.note_possible_retire(device, now);
                }
            }
        }
        let j = self.jobs.get_mut(job_idx);
        j.phase = JobPhase::Finished;
        j.epoch += 1;
        true
    }

    /// Captures a [`MetricsFrame`] of the run at the current virtual
    /// time — a deterministic function of run state, so a frame captured
    /// at the same instant of a journal replay is identical to the live
    /// one.
    pub fn metrics_frame(&self) -> MetricsFrame {
        let mut frame = MetricsFrame {
            vt_ms: self.now,
            events: self.result.events,
            assignments: self.result.assignments,
            failures: self.result.failures,
            aborted_rounds: self.result.aborted_rounds,
            jobs: self.jobs.len() as u64,
            live_devices: self.devices.live_devices() as u64,
            parked_polls: self.parked_poll_count() as u64,
            queue_len: self.queue.len() as u64,
            env_dropouts: self.result.env.dropouts,
            env_forced_offline: self.result.env.forced_offline,
            env_storm_aborts: self.result.env.storm_aborts,
            env_retries: self.result.env.retries,
            ..MetricsFrame::default()
        };
        let mut jcts = Samples::new();
        for idx in 0..self.jobs.len() {
            let j = self.jobs.get(idx);
            match j.phase {
                JobPhase::Running => frame.jobs_running += 1,
                JobPhase::Allocating => {
                    frame.jobs_allocating += 1;
                    frame.held_devices += j.held_devices().count() as u64;
                }
                JobPhase::Idle | JobPhase::Finished => {}
            }
            if let Some(jct) = j.record.jct_ms() {
                frame.jobs_finished += 1;
                jcts.push(jct as f64);
            }
        }
        if !jcts.is_empty() {
            frame.jct_p50_ms = Some(jcts.percentile(50.0) as u64);
            frame.jct_p90_ms = Some(jcts.percentile(90.0) as u64);
            frame.jct_p99_ms = Some(jcts.percentile(99.0) as u64);
        }
        frame
    }

    /// Re-registers every open allocation request with a *fresh*
    /// scheduler — the what-if `fork` path, where a restored world
    /// continues under a scheduler that never saw the original `submit`
    /// calls. Each Allocating job resubmits only its still-open demand
    /// (`requested − assigned`; held devices stay held), so the new
    /// scheduler's book matches what the old scheduler's book said at the
    /// snapshot instant.
    pub(crate) fn resubmit_open_requests(&mut self, scheduler: &mut dyn Scheduler) {
        for job_idx in 0..self.jobs.len() {
            let j = self.jobs.get(job_idx);
            if j.phase != JobPhase::Allocating {
                continue;
            }
            let plan = &self.workload.jobs[job_idx];
            let requested = self.config.requested(plan.demand);
            let open = requested.saturating_sub(j.assigned);
            if open == 0 {
                continue;
            }
            let remaining_rounds = plan.rounds - j.rounds_done;
            scheduler.submit(
                venn_core::Request::new(
                    JobId::new(job_idx as u64),
                    j.spec,
                    open,
                    remaining_rounds as u64 * plan.demand as u64,
                ),
                self.now,
            );
        }
        // Any open demand means the parked set is empty already (demand
        // gating wakes it on submit), but a fork taken at an instant with
        // no open requests must still leave the parked plane consistent.
        if self.has_parked() && scheduler.has_open_demand() {
            self.wake_polls();
        }
    }

    /// Elapses every parked poll that precedes the event about to be
    /// dispatched, in exact `(time, seq)` stream order.
    ///
    /// Each elapsed poll is what the un-gated run would have dispatched as
    /// a `CheckIn` returning `None`: its only scheduler-visible effect is
    /// the `on_check_in` supply observation, which is replayed here (for
    /// schedulers that observe check-ins) at the original timestamp; the
    /// `assign` call is skipped because with no open demand it provably
    /// returns `None` without touching scheduler state the next request
    /// trigger would not rebuild anyway. The continuation poll reserves
    /// the seq the un-gated run would have allocated at this very stream
    /// position, keeping all later tie-breaks aligned.
    fn advance_parked(&mut self, time: SimTime, seq: u64, scheduler: &mut dyn Scheduler) {
        let observes = scheduler.observes_check_ins();
        while let Some(front) = self.parked.front() {
            if (front.time, front.seq) >= (time, seq) || front.time > self.horizon {
                break;
            }
            let p = *front;
            self.parked.pop_front();
            if p.time >= self.devices.session_end(p.device) {
                // An environment fault forced the device offline after it
                // parked (the one way a session can shrink): the un-gated
                // arm's check-in at `p.time` would fail `can_check_in`
                // and observe nothing, so the poll chain dies here too.
                self.devices.note_possible_retire(p.device, p.time);
                continue;
            }
            if observes {
                scheduler.on_check_in(self.devices.info(p.device), p.time);
            }
            let next = p.time + self.config.repoll_ms;
            if next < self.devices.session_end(p.device) {
                let seq = self.queue.reserve_seq();
                self.parked.push_back(ParkedPoll {
                    time: next,
                    seq,
                    device: p.device,
                });
            } else {
                // Last grid poll of the session: the chain dies here.
                self.devices.note_possible_retire(p.device, p.time);
            }
        }
    }

    /// Demand just opened: every parked poll re-enters the event queue at
    /// its reserved `(time, seq)` position — the next instant of the
    /// device's own `repoll_ms` grid, with its original tie-break rank.
    fn wake_parked(&mut self) {
        while let Some(p) = self.parked.pop_front() {
            self.queue
                .push_reserved(p.time, p.seq, EventKind::CheckIn { device: p.device });
        }
    }

    /// Whether any poll is parked, on whichever plane this run uses.
    fn has_parked(&self) -> bool {
        match &self.shard_plane {
            Some(plane) => !plane.is_empty(),
            None => !self.parked.is_empty(),
        }
    }

    /// Elapses parked polls up to the `(time, seq)` barrier on the active
    /// plane. On the sharded plane the per-shard streams merge first and
    /// the batched supply observations are replayed into the scheduler in
    /// one call — same observations, same order, same timestamps as the
    /// sequential arm's per-poll `on_check_in` calls.
    fn advance_polls(&mut self, time: SimTime, seq: u64, scheduler: &mut dyn Scheduler) {
        if let Some(plane) = &mut self.shard_plane {
            plane.advance(
                time,
                seq,
                self.horizon,
                self.config.repoll_ms,
                &mut self.devices,
                &mut self.queue,
                scheduler.observes_check_ins(),
            );
            if !plane.observations().is_empty() {
                scheduler.replay_check_ins(plane.observations());
                plane.clear_observations();
            }
        } else {
            self.advance_parked(time, seq, scheduler);
        }
    }

    /// Wakes every parked poll on the active plane.
    fn wake_polls(&mut self) {
        match &mut self.shard_plane {
            Some(plane) => plane.wake(&mut self.queue),
            None => self.wake_parked(),
        }
    }

    /// Routes one event to its handler method.
    fn dispatch(
        &mut self,
        event: Event,
        scheduler: &mut dyn Scheduler,
        observers: &mut [&mut dyn SimObserver],
    ) {
        let now = event.time;
        match event.kind {
            EventKind::JobArrival { job_idx } | EventKind::RoundStart { job_idx } => {
                self.handle_round_submit(job_idx, now, scheduler)
            }
            EventKind::SessionStart {
                device,
                session_end,
            } => self.handle_session_start(device, session_end, now, scheduler, observers),
            EventKind::CheckIn { device } => {
                self.handle_check_in(device, now, scheduler, observers)
            }
            EventKind::EnvDisturbance { env_idx } => {
                self.handle_env_disturbance(env_idx, now, scheduler, observers)
            }
            EventKind::HoldExpire {
                job,
                epoch,
                device,
                hold_seq,
            } => self.handle_hold_expire(job, epoch, device, hold_seq, now, scheduler),
            EventKind::Response {
                job,
                epoch,
                device,
                response_ms,
            } => self.handle_response(job, epoch, device, response_ms, now, scheduler, observers),
            EventKind::AssignFailure { job, epoch, device } => {
                self.handle_assign_failure(job, epoch, device, now, scheduler)
            }
            EventKind::RoundDeadline { job, epoch } => {
                self.handle_round_deadline(job, epoch, now, scheduler, observers)
            }
            EventKind::CohortWake { cohort } => {
                self.handle_cohort_wake(cohort, now, scheduler, observers)
            }
        }
    }

    /// `CohortWake`: the earliest upcoming session of `cohort` is due.
    /// Drains every device whose session starts exactly now (in `(start,
    /// device)` order), begins each session — the lazy arm's
    /// materialization point — runs the device's immediate check-in, and
    /// advances its stream cursor; then re-arms the cohort's single wake
    /// at its new earliest start. Replacement sessions landing at the
    /// same instant are drained by this same wake.
    fn handle_cohort_wake(
        &mut self,
        cohort: usize,
        now: SimTime,
        scheduler: &mut dyn Scheduler,
        observers: &mut [&mut dyn SimObserver],
    ) {
        let mut cohorts = self.cohorts.take().expect("cohort wake without cohort set");
        while let Some((device, session_end)) = cohorts.pop_due(cohort, now) {
            self.devices.begin_session(device, session_end);
            self.handle_check_in(device, now, scheduler, observers);
            cohorts.advance(device, self.env.as_ref());
        }
        if let Some(t) = cohorts.next_wake(cohort) {
            self.queue.push(t, EventKind::CohortWake { cohort });
        }
        self.cohorts = Some(cohorts);
    }

    /// `JobArrival` / `RoundStart`: submits the request for the job's next
    /// round (allocation phase).
    fn handle_round_submit(&mut self, job_idx: usize, now: SimTime, scheduler: &mut dyn Scheduler) {
        let plan = &self.workload.jobs[job_idx];
        let j = self.jobs.get_mut(job_idx);
        if j.phase != JobPhase::Idle {
            return;
        }
        j.begin_request(now);
        let remaining_rounds = plan.rounds - j.rounds_done;
        let requested = self.config.requested(plan.demand);
        scheduler.submit(
            venn_core::Request::new(
                JobId::new(job_idx as u64),
                j.spec,
                requested,
                remaining_rounds as u64 * plan.demand as u64,
            ),
            now,
        );
        // Demand just opened: parked devices resume polling.
        if self.has_parked() {
            self.wake_polls();
        }
        // Async rounds carry no deadline: like buffered-asynchronous FL,
        // the aggregation fires whenever the quorum of updates arrives, so
        // participants computed for a round are never wasted. (Sync rounds
        // arm their deadline at round start — see `start_round`.)
    }

    /// `SessionStart`: the device comes online (sessions only extend) and
    /// immediately polls.
    fn handle_session_start(
        &mut self,
        device: usize,
        session_end: SimTime,
        now: SimTime,
        scheduler: &mut dyn Scheduler,
        observers: &mut [&mut dyn SimObserver],
    ) {
        // Stream discipline: this dispatch is what admits the *next*
        // pending session into the queue, keeping exactly one un-dispatched
        // stream entry queued until the stream is exhausted.
        self.session_stream.push_next(&mut self.queue);
        self.devices.begin_session(device, session_end);
        self.handle_check_in(device, now, scheduler, observers);
    }

    /// `CheckIn`: an online, idle device polls the resource manager and is
    /// assigned (or repolls later).
    ///
    /// This is the scheduler's hot path and the anchor of the
    /// [`Scheduler`] trait's call-ordering contract: every check-in is one
    /// `on_check_in` (supply observation) immediately followed by one
    /// `assign` (allocation decision) at the same timestamp — schedulers
    /// may therefore maintain supply state incrementally per check-in and
    /// defer plan recomputation to their own triggers. The other
    /// callbacks (`add_demand` on hold expiry, `on_alloc_complete` +
    /// `withdraw` at round start, `on_response` per response) fire from
    /// their respective event handlers below.
    fn handle_check_in(
        &mut self,
        device: usize,
        now: SimTime,
        scheduler: &mut dyn Scheduler,
        observers: &mut [&mut dyn SimObserver],
    ) {
        if !self
            .devices
            .can_check_in(device, now, self.config.one_task_per_day)
        {
            // A dead/capped/busy poll target may be this device's last
            // touchpoint — let the lazy store consider retiring it.
            self.devices.note_possible_retire(device, now);
            return;
        }
        let info = self.devices.info(device);
        scheduler.on_check_in(info, now);
        match scheduler.assign(info, now) {
            Some(job) => {
                let job_idx = job.as_u64() as usize;
                assert!(job_idx < self.jobs.len(), "scheduler assigned unknown job");
                assert!(
                    self.jobs.get(job_idx).phase == JobPhase::Allocating,
                    "scheduler assigned to a job without an active request"
                );
                self.result.assignments += 1;
                self.jobs.get_mut(job_idx).assigned += 1;
                for o in observers.iter_mut() {
                    o.on_assignment(now, job_idx, device);
                }
                if self.config.async_mode {
                    self.assign_async(job, job_idx, device, now, scheduler, observers);
                    return;
                }
                let slot = self.jobs.get_mut(job_idx).hold(device);
                let hold_seq = self.devices.mark_held(device, job_idx, slot);
                self.queue.push(
                    self.devices.session_end(device),
                    EventKind::HoldExpire {
                        job,
                        epoch: self.jobs.get(job_idx).epoch,
                        device,
                        hold_seq,
                    },
                );
                let requested = self.config.requested(self.workload.jobs[job_idx].demand);
                if self.jobs.get(job_idx).assigned >= requested {
                    self.start_round(job_idx, now, scheduler, observers);
                }
            }
            None => {
                // Stay online and poll again later. While no job has an
                // open request the next poll cannot assign either, so the
                // gated kernel parks the device instead of dispatching the
                // repoll flood — reserving the poll's seq so a wake-up
                // re-enters the stream at the exact un-gated position.
                let next = now + self.config.repoll_ms;
                let end = self.devices.session_end(device);
                if next < end {
                    if self.config.demand_gating && !scheduler.has_open_demand() {
                        let seq = self.queue.reserve_seq();
                        match &mut self.shard_plane {
                            Some(plane) => plane.park(device, next, seq, end, *info.capacity()),
                            None => self.parked.push_back(ParkedPoll {
                                time: next,
                                seq,
                                device,
                            }),
                        }
                    } else {
                        self.queue.push(next, EventKind::CheckIn { device });
                    }
                } else {
                    // Poll chain ends inside this session: nothing will
                    // touch the device again before its session end.
                    self.devices.note_possible_retire(device, now);
                }
            }
        }
    }

    /// Async-mode assignment: the device computes immediately, no holding
    /// phase; the request closes as soon as it is filled.
    fn assign_async(
        &mut self,
        job: JobId,
        job_idx: usize,
        device: usize,
        now: SimTime,
        scheduler: &mut dyn Scheduler,
        observers: &mut [&mut dyn SimObserver],
    ) {
        self.devices.mark_busy(device);
        self.devices.note_task(device, now);
        let d = self.devices.get(device);
        let task_ms = self.workload.jobs[job_idx].task_ms as f64;
        let response_ms =
            (task_ms / d.profile.speed * self.noise.sample(&mut self.rng)).max(1_000.0) as u64;
        let session_end = d.session_end;
        let epoch = self.jobs.get(job_idx).epoch;
        self.push_task_outcome(job, epoch, device, response_ms, now, session_end);
        let requested = self.config.requested(self.workload.jobs[job_idx].demand);
        let j = self.jobs.get_mut(job_idx);
        if j.assigned >= requested && j.phase == JobPhase::Allocating {
            // Request filled: stop queueing, record the delay.
            j.phase = JobPhase::Running;
            j.round_start = now;
            let round = j.rounds_done;
            let delay = now - j.request_start;
            scheduler.on_alloc_complete(job, delay, now);
            scheduler.withdraw(job, now);
            for o in observers.iter_mut() {
                o.on_round_start(now, job_idx, round);
            }
        }
    }

    /// All participants held: start computing, arm the deadline.
    fn start_round(
        &mut self,
        job_idx: usize,
        now: SimTime,
        scheduler: &mut dyn Scheduler,
        observers: &mut [&mut dyn SimObserver],
    ) {
        let job = JobId::new(job_idx as u64);
        let task_ms = self.workload.jobs[job_idx].task_ms as f64;
        let demand = self.workload.jobs[job_idx].demand;
        {
            let j = self.jobs.get_mut(job_idx);
            j.phase = JobPhase::Running;
            j.round_start = now;
        }
        let j = self.jobs.get(job_idx);
        scheduler.on_alloc_complete(job, now - j.request_start, now);
        scheduler.withdraw(job, now);
        let epoch = j.epoch;
        let round = j.rounds_done;
        // Walk the hold list in assignment order (the RNG draw order) by
        // index — no clone; re-borrowing per hold keeps the loop body free
        // to mutate devices and the queue. Tombstones are expired holds.
        let held_len = j.held.len();
        for i in 0..held_len {
            let device = self.jobs.get(job_idx).held[i];
            if device == crate::job_table::HELD_TOMBSTONE {
                continue;
            }
            self.devices.begin_compute(device);
            self.devices.note_task(device, now);
            let d = self.devices.get(device);
            let response_ms =
                (task_ms / d.profile.speed * self.noise.sample(&mut self.rng)).max(1_000.0) as u64;
            let session_end = d.session_end;
            self.push_task_outcome(job, epoch, device, response_ms, now, session_end);
        }
        self.queue.push(
            now + self.config.deadline_ms(demand),
            EventKind::RoundDeadline { job, epoch },
        );
        for o in observers.iter_mut() {
            o.on_round_start(now, job_idx, round);
        }
    }

    /// Schedules the in-flight task's outcome event: its response, an
    /// environment-injected mid-round dropout partway to that response,
    /// or the session-end departure failure. On the env-off arm the
    /// response time is untouched and no drop draw happens.
    fn push_task_outcome(
        &mut self,
        job: JobId,
        epoch: u32,
        device: usize,
        mut response_ms: u64,
        now: SimTime,
        session_end: SimTime,
    ) {
        if let Some(env) = &self.env {
            response_ms = env.stretch(device, response_ms);
        }
        if now + response_ms > session_end {
            self.queue
                .push(session_end, EventKind::AssignFailure { job, epoch, device });
            return;
        }
        let drop = match self.env.as_mut() {
            Some(env) => env.sample_drop(device),
            None => None,
        };
        match drop {
            Some(frac) => {
                // The participant's network tier drops it mid-round: an
                // `AssignFailure` lands partway to the would-be response,
                // and the existing quorum/abort machinery arbitrates.
                let lead = ((response_ms as f64 * frac) as u64)
                    .clamp(1, response_ms.saturating_sub(1).max(1));
                self.result.env.dropouts += 1;
                self.queue
                    .push(now + lead, EventKind::AssignFailure { job, epoch, device });
            }
            None => self.queue.push(
                now + response_ms,
                EventKind::Response {
                    job,
                    epoch,
                    device,
                    response_ms,
                },
            ),
        }
    }

    /// `HoldExpire`: a held (allocated but not yet computing) device's
    /// session ended — release it and return its demand.
    fn handle_hold_expire(
        &mut self,
        job: JobId,
        epoch: u32,
        device: usize,
        hold_seq: u64,
        now: SimTime,
        scheduler: &mut dyn Scheduler,
    ) {
        if !self.devices.hold_is_current(device, hold_seq) {
            // The hold this expiry belonged to is gone — released early
            // by an environment fault, or superseded by a newer hold.
            return;
        }
        let j = self.jobs.get(job.as_u64() as usize);
        if j.phase == JobPhase::Allocating && j.epoch_is(epoch) {
            self.release_hold(job.as_u64() as usize, device, now, scheduler);
        }
    }

    /// Releases one device held by `job_idx` and returns its demand unit
    /// — shared by the hold expiry and the early (environment-fault)
    /// release. O(1) via the held-slot index; the tombstone keeps later
    /// holds (and thus the round-start RNG draw order) in place.
    fn release_hold(
        &mut self,
        job_idx: usize,
        device: usize,
        now: SimTime,
        scheduler: &mut dyn Scheduler,
    ) {
        let slot = self.devices.held_slot(device);
        let j = self.jobs.get_mut(job_idx);
        debug_assert_eq!(
            j.phase,
            JobPhase::Allocating,
            "holds only exist during allocation"
        );
        j.assigned = j.assigned.saturating_sub(1);
        j.release_held(slot, device);
        self.devices.release(device);
        self.devices.note_possible_retire(device, now);
        scheduler.add_demand(JobId::new(job_idx as u64), 1, now);
    }

    /// `Response`: a device reports back; the round completes when the
    /// quorum is reached.
    #[allow(clippy::too_many_arguments)]
    fn handle_response(
        &mut self,
        job: JobId,
        epoch: u32,
        device: usize,
        response_ms: u64,
        now: SimTime,
        scheduler: &mut dyn Scheduler,
        observers: &mut [&mut dyn SimObserver],
    ) {
        if self.devices.take_failed_task(device) {
            // The device was forced offline mid-computation by an
            // environment fault: its report never arrives — account the
            // in-flight task as a failed assignment instead.
            self.handle_assign_failure(job, epoch, device, now, scheduler);
            return;
        }
        self.devices.release(device);
        let job_idx = job.as_u64() as usize;
        let async_mode = self.config.async_mode;
        let j = self.jobs.get_mut(job_idx);
        let counting_phase = if async_mode {
            j.phase == JobPhase::Running || j.phase == JobPhase::Allocating
        } else {
            j.phase == JobPhase::Running
        };
        if !counting_phase || !j.epoch_is(epoch) {
            self.devices.note_possible_retire(device, now);
            return; // stale response: round already over
        }
        j.responses += 1;
        j.participants.push(device);
        let responses = j.responses;
        if let Some(env) = &self.env {
            self.result
                .env
                .record_response(env.tier_of(device), response_ms);
        }
        scheduler.on_response(job, self.devices.info(device), response_ms, now);
        // After the last read of the reporting device's state: a response
        // arriving at its session's final instant can retire it here.
        self.devices.note_possible_retire(device, now);
        let demand = self.workload.jobs[job_idx].demand;
        if responses >= self.config.quorum_target(demand) {
            self.complete_round(job_idx, now, scheduler, observers);
        }
    }

    /// `AssignFailure`: a device departed mid-computation. Synchronously
    /// the deadline arbitrates the round's fate; in async mode the still-
    /// open request can replace the device.
    fn handle_assign_failure(
        &mut self,
        job: JobId,
        epoch: u32,
        device: usize,
        now: SimTime,
        scheduler: &mut dyn Scheduler,
    ) {
        // Clear any forced-offline flag so it cannot leak into the
        // device's next task (no-op on the env-off arm).
        self.devices.take_failed_task(device);
        self.devices.release(device);
        self.devices.note_possible_retire(device, now);
        self.result.failures += 1;
        if self.config.async_mode {
            let j = self.jobs.get_mut(job.as_u64() as usize);
            if j.phase == JobPhase::Allocating && j.epoch_is(epoch) {
                j.assigned = j.assigned.saturating_sub(1);
                scheduler.add_demand(job, 1, now);
            }
        }
    }

    /// `RoundDeadline`: quorum missed — abort and retry after a short
    /// backoff.
    fn handle_round_deadline(
        &mut self,
        job: JobId,
        epoch: u32,
        now: SimTime,
        scheduler: &mut dyn Scheduler,
        observers: &mut [&mut dyn SimObserver],
    ) {
        let job_idx = job.as_u64() as usize;
        if !self.round_abortable(job_idx, epoch) {
            return;
        }
        self.abort_round(job_idx, now, scheduler, observers);
    }

    /// Whether the deadline event is still armed: a computing round
    /// synchronously, a computing round or an open request
    /// asynchronously — for the round incarnation the event was armed
    /// for.
    fn round_abortable(&self, job_idx: usize, epoch: u32) -> bool {
        let j = self.jobs.get(job_idx);
        let armed = if self.config.async_mode {
            j.phase == JobPhase::Running || j.phase == JobPhase::Allocating
        } else {
            j.phase == JobPhase::Running
        };
        armed && j.epoch_is(epoch)
    }

    /// Whether an abort storm can strike the job right now: any round in
    /// flight — computing *or* still allocating (a storm models a
    /// coordinator-side abort, which can kill an open request; the
    /// deadline, by contrast, is only ever armed per
    /// [`round_abortable`](Self::round_abortable)).
    fn storm_abortable(&self, job_idx: usize) -> bool {
        matches!(
            self.jobs.get(job_idx).phase,
            JobPhase::Running | JobPhase::Allocating
        )
    }

    /// Aborts the job's current round and schedules its retry — the
    /// shared tail of a deadline miss and an abort-storm strike. The
    /// caller must have checked [`round_abortable`](Self::round_abortable)
    /// (or [`storm_abortable`](Self::storm_abortable)).
    fn abort_round(
        &mut self,
        job_idx: usize,
        now: SimTime,
        scheduler: &mut dyn Scheduler,
        observers: &mut [&mut dyn SimObserver],
    ) {
        let job = JobId::new(job_idx as u64);
        if self.jobs.get(job_idx).phase == JobPhase::Allocating {
            scheduler.withdraw(job, now);
            // Free devices still held by the aborted request — reachable
            // only via a sync-mode storm strike (deadline aborts never
            // find holds: sync deadlines arm at round start, async mode
            // holds nothing). The holds' pending expiries are retired by
            // the hold-generation guard. Assignment ended each device's
            // poll chain, so the release must also return it to the poll
            // loop — otherwise it would sit online, idle, and invisible
            // to every scheduler until its next session.
            let held: Vec<usize> = self.jobs.get(job_idx).held_devices().collect();
            for device in held {
                self.devices.release(device);
                let next = now + self.config.repoll_ms;
                if next < self.devices.session_end(device) {
                    self.queue.push(next, EventKind::CheckIn { device });
                } else {
                    self.devices.note_possible_retire(device, now);
                }
            }
        }
        self.result.aborted_rounds += 1;
        if self.env.is_some() {
            self.result.env.retries += 1;
        }
        let j = self.jobs.get_mut(job_idx);
        j.record.rounds_aborted += 1;
        j.phase = JobPhase::Idle;
        j.epoch += 1;
        let round = j.rounds_done;
        self.queue.push(
            now + self.config.abort_backoff_ms,
            EventKind::RoundStart { job_idx },
        );
        for o in observers.iter_mut() {
            o.on_round_abort(now, job_idx, round);
        }
    }

    /// `EnvDisturbance`: a scheduled environment disturbance fires.
    ///
    /// Victim draws come from the environment's own streams in fixed
    /// device/job index order, so disturbances are reproducible per seed
    /// and never touch the kernel's response-noise RNG.
    fn handle_env_disturbance(
        &mut self,
        env_idx: usize,
        now: SimTime,
        scheduler: &mut dyn Scheduler,
        observers: &mut [&mut dyn SimObserver],
    ) {
        let Some(disturbance) = self.env.as_ref().map(|e| e.disturbance(env_idx)) else {
            return;
        };
        match disturbance {
            Disturbance::MassOffline { frac } => {
                for device in 0..self.devices.len() {
                    if now >= self.devices.session_end(device) {
                        continue; // offline devices are not drawn for
                    }
                    if self
                        .env
                        .as_mut()
                        .expect("env present")
                        .mass_offline_hits(frac)
                    {
                        self.force_device_offline(device, now, scheduler);
                    }
                }
            }
            Disturbance::DeviceFail { device } => {
                if device < self.devices.len() && now < self.devices.session_end(device) {
                    self.force_device_offline(device, now, scheduler);
                }
            }
            Disturbance::AbortStorm { prob } => {
                for job_idx in 0..self.jobs.len() {
                    if !self.storm_abortable(job_idx) {
                        continue; // idle/finished jobs are not drawn for
                    }
                    if self.env.as_mut().expect("env present").storm_hits(prob) {
                        self.result.env.storm_aborts += 1;
                        self.abort_round(job_idx, now, scheduler, observers);
                    }
                }
            }
        }
    }

    /// Forces one online device offline (mass-offline victim or scripted
    /// fault): its session ends now; a held device is released back to
    /// its job's demand (exactly what its hold expiry would have done,
    /// just early — the hold-generation guard retires the stale expiry);
    /// a computing device's in-flight response is flagged to arrive as a
    /// failure.
    fn force_device_offline(&mut self, device: usize, now: SimTime, scheduler: &mut dyn Scheduler) {
        self.result.env.forced_offline += 1;
        let (was_held, was_computing, held_job) = {
            let d = self.devices.get(device);
            (d.busy && d.held, d.busy && !d.held, d.held_job)
        };
        self.devices.force_offline(device, now);
        // The one transition that can shrink a session: invalidate the
        // sharded plane's cached session ends.
        if let Some(plane) = &mut self.shard_plane {
            plane.bump_gen();
        }
        if was_held {
            self.release_hold(held_job, device, now, scheduler);
            // Demand reopened without a `submit`: wake parked pollers so
            // the gated arm keeps matching the un-gated reference.
            if self.has_parked() {
                self.wake_polls();
            }
        } else if was_computing {
            self.devices.mark_failed_task(device);
        }
    }

    /// Quorum reached: close the round, account its timing, and schedule
    /// the next one (or finish the job).
    fn complete_round(
        &mut self,
        job_idx: usize,
        now: SimTime,
        scheduler: &mut dyn Scheduler,
        observers: &mut [&mut dyn SimObserver],
    ) {
        let plan_rounds = self.workload.jobs[job_idx].rounds;
        let record_rounds = self.config.record_rounds;
        let agg_delay = self.config.agg_delay_ms;
        let j = self.jobs.get_mut(job_idx);
        if j.phase == JobPhase::Allocating {
            // Async quorum before full allocation: close the open request.
            scheduler.withdraw(JobId::new(job_idx as u64), now);
            j.round_start = now;
        }
        j.record.sched_delay_ms += j.round_start - j.request_start;
        j.record.response_ms += now - j.round_start;
        j.record.rounds_completed += 1;
        // When a log is wanted it *takes* the participant list (the next
        // request clears it anyway) — no per-round clone; and when neither
        // the config nor any observer wants it, nothing is built at all.
        let log = (record_rounds || !observers.is_empty()).then(|| RoundLog {
            job_idx,
            round: j.rounds_done,
            start_ms: j.request_start,
            end_ms: now,
            participants: std::mem::take(&mut j.participants),
        });
        j.rounds_done += 1;
        j.epoch += 1;
        let finished = j.rounds_done >= plan_rounds;
        if finished {
            j.phase = JobPhase::Finished;
            j.record.finish(now);
        } else {
            j.phase = JobPhase::Idle;
            self.queue
                .push(now + agg_delay, EventKind::RoundStart { job_idx });
        }
        if let Some(log) = log {
            for o in observers.iter_mut() {
                o.on_round_complete(now, &log);
            }
            if record_rounds {
                // Observers first, then move (not clone) the log into the
                // result — hook order within the moment is unchanged
                // because observers cannot see `result.rounds` mid-run.
                self.result.rounds.push(log);
            }
        }
        if finished {
            for o in observers.iter_mut() {
                o.on_job_finish(now, job_idx);
            }
        }
    }

    /// Encodes every piece of mutable run state into `w` — the world half
    /// of a checkpoint (the scheduler half rides alongside; see
    /// [`crate::snapshot`]).
    ///
    /// Immutable state (config, workload, compiled environment schedule,
    /// session stream entries, job specs, noise distribution, horizon) is
    /// *not* written: [`World::new`] re-derives it deterministically from
    /// `(config, workload)`, and the container fingerprint pins that the
    /// resuming process passes the same pair. Internal-layout-dependent
    /// structures (timing wheel, shard assignment) are written in
    /// canonical form — the sorted `(time, seq)` event/poll lists — so a
    /// snapshot restores bit-identically across queue kinds, exec modes,
    /// and shard counts.
    pub fn encode_state(&self, w: &mut SnapWriter) {
        w.u64(self.now);
        self.devices.encode_state(w);

        // Job table: mutable fields only; `spec` is re-derived from the
        // workload plan by the constructor.
        w.len_prefix(self.jobs.len());
        for idx in 0..self.jobs.len() {
            encode_job(self.jobs.get(idx), w);
        }

        // Event queue in canonical sorted form, plus the seq counter
        // (reserved-but-unscheduled seqs must never be reissued) and the
        // high-water mark (a reported statistic).
        w.u64(self.queue.next_seq());
        w.usize(self.queue.peak_len());
        let events = self.queue.snapshot_events();
        w.seq(&events, |w, e| e.encode(w));

        // Parked polls, merged across whichever plane holds them. Only
        // the `(time, seq, device)` identity is written: cached session
        // ends and capacities are pure caches of device-pool facts,
        // re-derived at re-park time.
        let polls: Vec<(SimTime, u64, u32)> = match &self.shard_plane {
            Some(plane) => plane.snapshot_polls(),
            None => self
                .parked
                .iter()
                .map(|p| (p.time, p.seq, p.device as u32))
                .collect(),
        };
        w.seq(&polls, |w, &(time, seq, device)| {
            w.u64(time);
            w.u64(seq);
            w.u32(device);
        });

        // Environment runtime: only the three disturbance RNG streams
        // advance at runtime; everything else recompiles from the config.
        let env_states = self.env.as_ref().map(|e| e.rng_states());
        w.option(&env_states, |w, &(churn, fault, drop)| {
            for stream in [churn, fault, drop] {
                for word in stream {
                    w.u64(word);
                }
            }
        });

        // Cohort wheel (split population arms only).
        match &self.cohorts {
            Some(c) => {
                w.bool(true);
                c.encode_state(w);
            }
            None => w.bool(false),
        }

        // Session stream: entries are re-derived; only the drain cursor
        // moves. The entry count doubles as a cheap consistency check.
        w.usize(self.session_stream.entries.len());
        w.usize(self.session_stream.cursor);

        // Kernel RNG (response noise).
        self.rng.encode(w);

        // Mid-run result accumulators. `records` is empty until
        // `finish()` and `peak_queue_len` is derived there from the
        // queue's own high-water mark, so neither is written.
        w.str(&self.result.scheduler_name);
        w.u64(self.result.events);
        w.u64(self.result.aborted_rounds);
        w.u64(self.result.assignments);
        w.u64(self.result.failures);
        w.u64(self.result.peak_bytes);
        encode_env_stats(&self.result.env, w);
        w.seq(&self.result.rounds, |w, log| encode_round_log(log, w));
    }

    /// Overwrites this world's mutable state from a snapshot written by
    /// [`encode_state`](Self::encode_state).
    ///
    /// Call on a world freshly built by [`World::new`] with the *same*
    /// `(config, workload, scheduler_name)` as the checkpointed run
    /// (cross-arm resumes — different queue kind, exec mode, or shard
    /// count — are fine: results are identical across those arms by
    /// construction). The constructor's initial queue contents are
    /// discarded wholesale; the snapshot's pending-event set is
    /// authoritative. Returns [`SnapError::Corrupt`] — never panics — on
    /// any internally inconsistent input that slips past the container
    /// checksum.
    pub fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.restore_state_impl(r, true)
    }

    /// [`restore_state`](Self::restore_state) with the scheduler-name
    /// check optional: the what-if `fork` path
    /// ([`crate::snapshot::fork_world`]) deliberately restores a world
    /// under a *different* scheduler, keeping the fresh world's own
    /// scheduler name for the child run's report.
    pub(crate) fn restore_state_impl(
        &mut self,
        r: &mut SnapReader<'_>,
        check_scheduler: bool,
    ) -> Result<(), SnapError> {
        self.now = r.u64()?;
        self.devices.restore_state(r)?;

        let job_count = r.len_prefix()?;
        if job_count != self.jobs.len() {
            return Err(SnapError::Corrupt(format!(
                "snapshot has {job_count} jobs, workload has {}",
                self.jobs.len()
            )));
        }
        for idx in 0..job_count {
            decode_job(self.jobs.get_mut(idx), r)?;
        }

        let next_seq = r.u64()?;
        let peak_len = r.usize()?;
        let events = r.seq(Event::decode)?;
        for pair in events.windows(2) {
            if (pair[0].time, pair[0].seq) >= (pair[1].time, pair[1].seq) {
                return Err(SnapError::Corrupt("event list not sorted".into()));
            }
        }
        if events.iter().any(|e| e.seq >= next_seq) {
            return Err(SnapError::Corrupt("event seq beyond queue counter".into()));
        }
        let polls = r.seq(|r| Ok((r.u64()?, r.u64()?, r.u32()?)))?;
        for pair in polls.windows(2) {
            if pair[0] >= pair[1] {
                return Err(SnapError::Corrupt("poll list not sorted".into()));
            }
        }
        for &(_, seq, device) in &polls {
            if seq >= next_seq {
                return Err(SnapError::Corrupt("poll seq beyond queue counter".into()));
            }
            if device as usize >= self.config.population {
                return Err(SnapError::Corrupt(format!(
                    "parked poll device {device} out of range"
                )));
            }
        }
        self.queue = EventQueue::restore(self.config.queue, &events, next_seq, peak_len);

        // Re-park under whichever plane *this* run uses, re-reading the
        // authoritative session end (and capacity) from the just-restored
        // device pool. A fresh plane starts at generation 0 with all
        // cached ends authoritative — behaviorally identical to the
        // checkpointed plane's cache state, which only ever
        // *under*-estimates session ends between generation bumps.
        self.parked.clear();
        if let ExecMode::Sharded { shards } = self.config.exec {
            let mut plane = Box::new(ShardPlane::new(self.config.population, shards));
            for &(time, seq, device) in &polls {
                let device = device as usize;
                let end = self.devices.session_end(device);
                let cap = self.devices.snapshot_capacity(device).unwrap_or_else(|| {
                    self.config
                        .capacity
                        .sample_device(self.config.seed, device)
                        .capacity
                });
                plane.park(device, time, seq, end, cap);
            }
            self.shard_plane = Some(plane);
        } else {
            self.shard_plane = None;
            for &(time, seq, device) in &polls {
                self.parked.push_back(ParkedPoll {
                    time,
                    seq,
                    device: device as usize,
                });
            }
        }

        let env_states = r.option(|r| {
            let mut streams = [[0u64; 4]; 3];
            for stream in &mut streams {
                for word in stream.iter_mut() {
                    *word = r.u64()?;
                }
            }
            Ok(streams)
        })?;
        match (&mut self.env, env_states) {
            (Some(e), Some(s)) => e.restore_rng_states(s[0], s[1], s[2]),
            (None, None) => {}
            (have, _) => {
                return Err(SnapError::Corrupt(format!(
                    "environment presence mismatch (config compiles env: {})",
                    have.is_some()
                )));
            }
        }

        let has_cohorts = r.bool()?;
        match (&mut self.cohorts, has_cohorts) {
            (Some(c), true) => c.restore_state(r)?,
            (None, false) => {}
            (have, _) => {
                return Err(SnapError::Corrupt(format!(
                    "cohort presence mismatch (config uses cohorts: {})",
                    have.is_some()
                )));
            }
        }

        let entry_count = r.usize()?;
        if entry_count != self.session_stream.entries.len() {
            return Err(SnapError::Corrupt(format!(
                "snapshot has {entry_count} stream sessions, rebuild has {}",
                self.session_stream.entries.len()
            )));
        }
        let cursor = r.usize()?;
        if cursor > entry_count {
            return Err(SnapError::Corrupt(format!(
                "stream cursor {cursor} beyond {entry_count} entries"
            )));
        }
        self.session_stream.cursor = cursor;

        self.rng = StdRng::decode(r)?;

        let name = r.str()?;
        if check_scheduler && name != self.result.scheduler_name {
            return Err(SnapError::Corrupt(format!(
                "snapshot taken under scheduler {name:?}, resuming {:?}",
                self.result.scheduler_name
            )));
        }
        self.result.events = r.u64()?;
        self.result.aborted_rounds = r.u64()?;
        self.result.assignments = r.u64()?;
        self.result.failures = r.u64()?;
        self.result.peak_bytes = r.u64()?;
        self.result.env = decode_env_stats(r)?;
        self.result.rounds = r.seq(decode_round_log)?;
        Ok(())
    }
}

fn encode_job(j: &JobRuntime, w: &mut SnapWriter) {
    w.u32(j.rounds_done);
    w.u8(match j.phase {
        JobPhase::Idle => 0,
        JobPhase::Allocating => 1,
        JobPhase::Running => 2,
        JobPhase::Finished => 3,
    });
    w.u32(j.epoch);
    w.u64(j.request_start);
    w.u64(j.round_start);
    w.u32(j.assigned);
    w.u32(j.responses);
    w.seq(&j.held, |w, &d| w.usize(d));
    w.seq(&j.participants, |w, &d| w.usize(d));
    encode_record(&j.record, w);
}

fn decode_job(j: &mut JobRuntime, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
    j.rounds_done = r.u32()?;
    j.phase = match r.u8()? {
        0 => JobPhase::Idle,
        1 => JobPhase::Allocating,
        2 => JobPhase::Running,
        3 => JobPhase::Finished,
        other => {
            return Err(SnapError::Corrupt(format!("job phase tag {other}")));
        }
    };
    j.epoch = r.u32()?;
    j.request_start = r.u64()?;
    j.round_start = r.u64()?;
    j.assigned = r.u32()?;
    j.responses = r.u32()?;
    j.held = r.seq(|r| r.usize())?;
    j.participants = r.seq(|r| r.usize())?;
    decode_record(&mut j.record, r)?;
    Ok(())
}

fn encode_record(rec: &JctRecord, w: &mut SnapWriter) {
    w.u64(rec.arrival_ms);
    w.option(&rec.finish_ms, |w, &t| w.u64(t));
    w.u64(rec.sched_delay_ms);
    w.u64(rec.response_ms);
    w.u32(rec.rounds_completed);
    w.u32(rec.rounds_aborted);
}

fn decode_record(rec: &mut JctRecord, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
    rec.arrival_ms = r.u64()?;
    rec.finish_ms = r.option(|r| r.u64())?;
    rec.sched_delay_ms = r.u64()?;
    rec.response_ms = r.u64()?;
    rec.rounds_completed = r.u32()?;
    rec.rounds_aborted = r.u32()?;
    Ok(())
}

fn encode_env_stats(s: &EnvStats, w: &mut SnapWriter) {
    w.u64(s.dropouts);
    w.u64(s.forced_offline);
    w.u64(s.storm_aborts);
    w.u64(s.retries);
    w.seq(&s.tier_response_ms, |w, h| {
        let (lo, hi) = h.bounds();
        w.f64(lo);
        w.f64(hi);
        w.seq(h.counts(), |w, &c| w.u64(c));
    });
}

fn decode_env_stats(r: &mut SnapReader<'_>) -> Result<EnvStats, SnapError> {
    Ok(EnvStats {
        dropouts: r.u64()?,
        forced_offline: r.u64()?,
        storm_aborts: r.u64()?,
        retries: r.u64()?,
        tier_response_ms: r.seq(|r| {
            let lo = r.f64()?;
            let hi = r.f64()?;
            let counts = r.seq(|r| r.u64())?;
            // `Histogram::from_parts` panics on an invalid shape; corrupt
            // input must surface as an error instead. NaN bounds are not
            // Greater, so they are rejected here too.
            let ordered = hi.partial_cmp(&lo) == Some(std::cmp::Ordering::Greater);
            if counts.is_empty() || !ordered {
                return Err(SnapError::Corrupt(format!(
                    "histogram shape lo={lo} hi={hi} bins={}",
                    counts.len()
                )));
            }
            Ok(Histogram::from_parts(lo, hi, counts))
        })?,
    })
}

fn encode_round_log(log: &RoundLog, w: &mut SnapWriter) {
    w.usize(log.job_idx);
    w.u32(log.round);
    w.u64(log.start_ms);
    w.u64(log.end_ms);
    w.seq(&log.participants, |w, &d| w.usize(d));
}

fn decode_round_log(r: &mut SnapReader<'_>) -> Result<RoundLog, SnapError> {
    Ok(RoundLog {
        job_idx: r.usize()?,
        round: r.u32()?,
        start_ms: r.u64()?,
        end_ms: r.u64()?,
        participants: r.seq(|r| r.usize())?,
    })
}
