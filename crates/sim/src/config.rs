//! Simulation parameters.

use venn_core::{CategoryThresholds, SimTime, MINUTE_MS};
use venn_env::EnvConfig;
use venn_traces::{AvailabilityModel, CapacityModel};

use crate::event::QueueKind;

/// How the device population is generated and stored.
///
/// The three arms trade determinism lineage against scale:
///
/// * [`PopMode::Eager`] (default) draws profiles and sessions from the
///   one sequential run RNG — byte-identical to every historical result.
///   Since the streaming refactor its session *enqueue* is incremental
///   (one pending `SessionStart` at a time under reserved seqs), so only
///   `peak_queue_len` differs from the original bulk-enqueue kernel;
///   every event, draw, and JCT field is unchanged.
/// * [`PopMode::SplitEager`] draws every device up front from per-device
///   split RNG streams ([`venn_traces::stream`]) and feeds session starts
///   through the cohort wheel. It exists as the dense, fully-materialized
///   parity reference for the lazy arm.
/// * [`PopMode::Lazy`] uses the same split streams but materializes a
///   `DeviceState` only when a device's session actually begins (or an
///   environment fault individually disturbs it), retiring it once the
///   device is idle past its session end — memory is O(active ∪ assigned)
///   instead of O(population). Byte-identical to `SplitEager` by
///   construction (pinned by `tests/lazy_parity.rs`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PopMode {
    /// Sequential draws, dense storage — the legacy-deterministic arm.
    #[default]
    Eager,
    /// Per-device split streams, dense storage — the lazy arm's parity
    /// reference.
    SplitEager,
    /// Per-device split streams, cohort-compressed lazy storage —
    /// O(active) memory, the million-device arm.
    Lazy,
}

/// How a single run is executed: the legacy sequential loop, or the
/// device-sharded lock-step loop.
///
/// Sharding partitions devices into `shards` contiguous id ranges. Each
/// shard owns its devices' parked poll chains (the demand-gating wheel
/// segment); between dispatched events the shards elapse their gated
/// windows and the per-shard effect streams are merged deterministically
/// by `(time, seq)` before the shared scheduler/JobTable runs. Because
/// parked wake times are quantized to the `now + k·repoll_ms` grid, the
/// next dispatched event is a free conservative lookahead bound — no
/// shard can produce an effect that lands before the barrier.
///
/// Every field of the result is bit-identical across execution modes and
/// shard counts (pinned by `tests/shard_parity.rs` and the merge
/// determinism property test); only wall-clock telemetry differs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecMode {
    /// The single-deque sequential loop — the reference arm with the
    /// historical byte lineage.
    #[default]
    Sequential,
    /// Device-sharded lock-step execution. `shards == 1` exercises the
    /// sharded machinery on a single partition (the parity anchor);
    /// higher counts split the poll plane `shards` ways.
    Sharded {
        /// Number of device shards (must be ≥ 1).
        shards: u32,
    },
}

impl ExecMode {
    /// Number of shards this mode runs with (`1` for sequential).
    pub fn shard_count(&self) -> u32 {
        match self {
            ExecMode::Sequential => 1,
            ExecMode::Sharded { shards } => *shards,
        }
    }
}

/// All knobs of one simulation run.
///
/// Defaults reproduce the paper's setup at a laptop-tractable scale (see
/// `DESIGN.md` for the scaling argument); [`SimConfig::small`] shrinks
/// everything further for unit tests.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimConfig {
    /// Number of devices in the population.
    pub population: usize,
    /// Simulated horizon in days.
    pub days: u32,
    /// RNG seed for the environment (availability, capacities, response
    /// noise). Scheduler seeds are separate, inside each scheduler.
    pub seed: u64,
    /// Fraction of a round's participants that must report for success
    /// (the paper uses 80 %).
    pub quorum: f64,
    /// How often an idle online device re-polls the resource manager.
    pub repoll_ms: SimTime,
    /// Round deadline = `deadline_base_ms + demand × deadline_per_demand_ms`
    /// clamped to `deadline_max_ms` (the paper: 5–15 min by demand).
    pub deadline_base_ms: SimTime,
    /// Per-participant deadline slack.
    pub deadline_per_demand_ms: SimTime,
    /// Deadline upper clamp.
    pub deadline_max_ms: SimTime,
    /// Coefficient of variation of the log-normal response-time noise.
    pub response_noise_cv: f64,
    /// Server-side aggregation delay between rounds.
    pub agg_delay_ms: SimTime,
    /// Pause before retrying an aborted round, so a failed round does not
    /// immediately burn the replenishing device pool again.
    pub abort_backoff_ms: SimTime,
    /// Eligibility-region thresholds.
    pub thresholds: CategoryThresholds,
    /// Device availability model.
    pub availability: AvailabilityModel,
    /// Device capacity model.
    pub capacity: CapacityModel,
    /// Enforce the paper's one-task-per-device-per-day realism cap.
    pub one_task_per_day: bool,
    /// Overcommit factor α: jobs request `ceil(demand × (1 + α))` devices
    /// so dropouts during the round do not sink the quorum (Appendix A
    /// delegates the amount of overcommit to jobs; this models a uniform
    /// policy). `0.0` disables overcommit.
    pub overcommit: f64,
    /// Asynchronous CL mode (§5.1): assigned devices start computing
    /// immediately instead of waiting for the full allocation, and a round
    /// completes as soon as the quorum of responses arrives. The round
    /// deadline runs from request submission.
    pub async_mode: bool,
    /// Record per-round participant logs (needed by the FL experiments;
    /// costs memory on big runs).
    pub record_rounds: bool,
    /// Event-queue implementation. The timing wheel (default) and the
    /// binary-heap reference arm pop byte-identical event sequences; the
    /// heap arm exists for equivalence testing and benchmarking.
    pub queue: QueueKind,
    /// Demand-gated check-ins (default on): while no job has an open
    /// request, idle devices are parked instead of re-polling every
    /// [`repoll_ms`](SimConfig::repoll_ms), and woken on the next request
    /// at exactly the poll-grid instants they would have used — dispatched
    /// events shrink, while schedules, RNG draws, and results stay
    /// byte-identical to the un-gated run (`false` is that reference arm).
    pub demand_gating: bool,
    /// Environment dynamics (`venn-env`): churn, flash crowds, network
    /// tiers, and fault plans, each on its own split RNG stream. The
    /// default ([`EnvConfig::off`]) injects nothing — that arm is
    /// bit-identical to the pre-environment kernel and parity-pinned
    /// against the committed benchmark baseline.
    pub env: EnvConfig,
    /// Population generation/storage mode (see [`PopMode`]). The default
    /// eager arm preserves the historical sequential RNG lineage; the
    /// split arms trade that lineage for per-device streams that scale to
    /// millions of devices.
    pub pop_mode: PopMode,
    /// Execution mode (see [`ExecMode`]): sequential reference loop or
    /// device-sharded lock-step execution. Results are bit-identical
    /// across modes; only wall-clock telemetry changes.
    pub exec: ExecMode,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            population: 5_000,
            days: 10,
            seed: 42,
            quorum: 0.8,
            repoll_ms: MINUTE_MS,
            deadline_base_ms: 5 * MINUTE_MS,
            deadline_per_demand_ms: 5_000,
            deadline_max_ms: 15 * MINUTE_MS,
            response_noise_cv: 0.35,
            agg_delay_ms: 2_000,
            abort_backoff_ms: MINUTE_MS,
            // 0.55/0.55 thresholds leave ~15 % of devices in the
            // High-Perf region — scarce enough that wasting them on
            // General jobs (what Random/SRSF do) visibly hurts, while
            // keeping the largest rounds feasible.
            thresholds: CategoryThresholds {
                cpu: 0.55,
                mem: 0.55,
            },
            availability: AvailabilityModel::default(),
            capacity: CapacityModel::default(),
            one_task_per_day: true,
            overcommit: 0.0,
            async_mode: false,
            record_rounds: false,
            queue: QueueKind::Wheel,
            demand_gating: true,
            env: EnvConfig::off(),
            pop_mode: PopMode::Eager,
            exec: ExecMode::Sequential,
        }
    }
}

impl SimConfig {
    /// A tiny configuration for fast unit/integration tests.
    pub fn small() -> Self {
        SimConfig {
            population: 600,
            days: 3,
            ..SimConfig::default()
        }
    }

    /// Deadline for a round of `demand` participants.
    pub fn deadline_ms(&self, demand: u32) -> SimTime {
        (self.deadline_base_ms + demand as SimTime * self.deadline_per_demand_ms)
            .min(self.deadline_max_ms)
    }

    /// Simulated horizon in milliseconds.
    pub fn horizon_ms(&self) -> SimTime {
        self.days as SimTime * venn_core::DAY_MS
    }

    /// Validates invariants.
    ///
    /// # Panics
    ///
    /// Panics on nonsensical parameters (empty population, zero horizon,
    /// quorum outside `(0, 1]`, zero repoll).
    pub fn validate(&self) {
        assert!(self.population > 0, "population must be positive");
        assert!(self.days > 0, "horizon must cover at least one day");
        assert!(
            self.quorum > 0.0 && self.quorum <= 1.0,
            "quorum must be in (0, 1]"
        );
        assert!(self.repoll_ms > 0, "repoll interval must be positive");
        assert!(
            self.response_noise_cv >= 0.0,
            "noise cv must be non-negative"
        );
        assert!(
            (0.0..1.0).contains(&self.overcommit),
            "overcommit must be in [0, 1)"
        );
        assert!(
            self.exec.shard_count() >= 1,
            "shard count must be at least 1"
        );
        self.env.validate();
    }

    /// Devices a job actually requests for a round of `demand`
    /// participants, including overcommit.
    pub fn requested(&self, demand: u32) -> u32 {
        ((demand as f64 * (1.0 + self.overcommit)).ceil() as u32).max(demand)
    }

    /// Quorum target for a round of `demand` participants (at least 1).
    pub fn quorum_target(&self, demand: u32) -> u32 {
        ((demand as f64 * self.quorum).ceil() as u32).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        SimConfig::default().validate();
        SimConfig::small().validate();
    }

    #[test]
    fn deadline_scales_and_clamps() {
        let c = SimConfig::default();
        assert_eq!(c.deadline_ms(0), 5 * MINUTE_MS);
        assert!(c.deadline_ms(50) > c.deadline_ms(10));
        assert_eq!(c.deadline_ms(10_000), 15 * MINUTE_MS);
    }

    #[test]
    fn quorum_target_rounds_up() {
        let c = SimConfig::default();
        assert_eq!(c.quorum_target(10), 8);
        assert_eq!(c.quorum_target(1), 1);
        assert_eq!(c.quorum_target(3), 3); // ceil(2.4)
    }

    #[test]
    fn horizon_is_days_in_ms() {
        let c = SimConfig::small();
        assert_eq!(c.horizon_ms(), 3 * venn_core::DAY_MS);
    }

    #[test]
    fn overcommit_scales_requests() {
        let c = SimConfig {
            overcommit: 0.25,
            ..SimConfig::default()
        };
        c.validate();
        assert_eq!(c.requested(8), 10);
        assert_eq!(c.requested(1), 2);
        assert_eq!(SimConfig::default().requested(8), 8);
    }

    #[test]
    #[should_panic(expected = "overcommit")]
    fn bad_overcommit_panics() {
        SimConfig {
            overcommit: 1.5,
            ..SimConfig::default()
        }
        .validate();
    }

    #[test]
    fn exec_mode_defaults_sequential_and_counts_shards() {
        assert_eq!(SimConfig::default().exec, ExecMode::Sequential);
        assert_eq!(ExecMode::Sequential.shard_count(), 1);
        assert_eq!(ExecMode::Sharded { shards: 4 }.shard_count(), 4);
        SimConfig {
            exec: ExecMode::Sharded { shards: 7 },
            ..SimConfig::small()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "shard count")]
    fn zero_shards_panics() {
        SimConfig {
            exec: ExecMode::Sharded { shards: 0 },
            ..SimConfig::default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "quorum")]
    fn bad_quorum_panics() {
        SimConfig {
            quorum: 1.5,
            ..SimConfig::default()
        }
        .validate();
    }
}
