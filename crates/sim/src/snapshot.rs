//! Whole-run checkpoints: a sealed container pairing a [`World`]
//! snapshot with the scheduler's saved state, pinned to the `(config,
//! workload)` pair that produced it.
//!
//! # Container layout
//!
//! The body inside the [`seal`]ed frame (magic, format version, length,
//! FNV-1a checksum — see [`venn_core::snapshot`]) is:
//!
//! 1. run fingerprint (`u64`) — see [`run_fingerprint`]
//! 2. [`World::encode_state`] — all mutable kernel state in canonical
//!    (layout-independent) form
//! 3. [`Scheduler::save_state`] — the scheduler's own arm-fingerprinted
//!    dump
//!
//! # What resume means
//!
//! [`resume_world`] rebuilds a fresh world with [`World::new`] — which
//! re-derives every immutable or deterministically-recomputable artifact
//! (device profiles, session streams, compiled environment schedule, job
//! specs) — then overwrites the mutable state from the snapshot. The
//! resumed run's remaining event stream, RNG draws, and final
//! [`SimResult`](crate::SimResult) are byte-identical to the
//! uninterrupted run's: the checkpoint captures the full `(time, seq)`
//! total order, every split RNG stream position, and all reserved seqs.
//!
//! The fingerprint deliberately *excludes* the queue kind, exec mode, and
//! shard count: results are identical across those arms by construction,
//! so a snapshot taken under `--shards 4` may resume sequentially (or
//! vice versa). Everything else about the run — population, seed,
//! environment preset, population mode, workload — must match, because
//! the snapshot stores only state those inputs cannot re-derive.

use venn_core::snapshot::{checksum, seal, unseal};
use venn_core::{Scheduler, SnapError, SnapReader, SnapWriter};
use venn_traces::Workload;

use crate::config::{ExecMode, SimConfig};
use crate::event::QueueKind;
use crate::world::World;

/// A collision-resistant-enough identity for "the same run": the FNV-1a
/// checksum of the config and workload debug renderings, with the
/// result-invariant arms (queue kind, exec mode) normalized away.
///
/// Debug renderings make every field — including ones future PRs add —
/// part of the identity by default; a field must be *explicitly*
/// normalized here to opt out. The population mode stays in: the split
/// and eager arms share results but not RNG stream lineage, so their
/// snapshots are not interchangeable.
pub fn run_fingerprint(config: &SimConfig, workload: &Workload) -> u64 {
    let mut canon = *config;
    canon.exec = ExecMode::Sequential;
    canon.queue = QueueKind::Wheel;
    checksum(format!("{canon:?}|{workload:?}").as_bytes())
}

/// Serializes a mid-run world and its scheduler into a sealed checkpoint.
///
/// Call between [`World::step`]s — snapshots are only well-defined at
/// event boundaries. Returns [`SnapError::Unsupported`] when the
/// scheduler does not implement state capture.
pub fn snapshot_world(world: &World, scheduler: &dyn Scheduler) -> Result<Vec<u8>, SnapError> {
    let mut w = SnapWriter::new();
    w.u64(run_fingerprint(world.config(), world.workload()));
    world.encode_state(&mut w);
    scheduler.save_state(&mut w)?;
    Ok(seal(w.into_bytes()))
}

/// Rebuilds a world (and overwrites `scheduler`'s state) from a sealed
/// checkpoint, ready to continue stepping exactly where the checkpointed
/// run left off.
///
/// `config` and `workload` must be the pair the snapshot was taken under
/// (queue kind, exec mode, and shard count excepted — see the module
/// docs); `scheduler` must be a fresh instance of the same scheduler
/// build. Every failure mode — truncation, bit flips, wrong format
/// version, mismatched run or scheduler — returns a [`SnapError`];
/// nothing in this path panics.
pub fn resume_world(
    bytes: &[u8],
    config: SimConfig,
    workload: &Workload,
    scheduler: &mut dyn Scheduler,
) -> Result<World, SnapError> {
    let body = unseal(bytes)?;
    let mut r = SnapReader::new(body);
    let stored = r.u64()?;
    let expected = run_fingerprint(&config, workload);
    if stored != expected {
        return Err(SnapError::Corrupt(format!(
            "snapshot fingerprint {stored:#018x} does not match this \
             (config, workload) pair {expected:#018x} — resume must use \
             the run's original parameters"
        )));
    }
    let mut world = World::new(config, workload, scheduler.name());
    world.restore_state(&mut r)?;
    scheduler.load_state(&mut r)?;
    r.finish()?;
    Ok(world)
}

/// Rebuilds a world from a sealed checkpoint under a *different*
/// scheduler — the what-if `fork`: the kernel state (devices, jobs,
/// pending events, RNG positions) continues exactly where the snapshot
/// left off, but scheduling decisions from here on are `scheduler`'s.
///
/// Where [`resume_world`] demands the original scheduler and overwrites
/// its state from the snapshot, a fork gives the new scheduler a *cold*
/// book and replays into it only what the kernel can prove it must know:
/// every still-open allocation request, resubmitted with its remaining
/// demand (`World::resubmit_open_requests`). The snapshot's trailing
/// scheduler-state bytes are deliberately ignored — they are the old
/// arm's private state and have no meaning to the new one. Supply
/// observations accumulate naturally as devices poll; schedulers start
/// every run with an empty supply book anyway.
///
/// The forked child's result reports `scheduler.name()`, not the parent
/// run's scheduler. `config` and `workload` must still be the snapshot's
/// pair — a fork changes the *policy*, never the world.
pub fn fork_world(
    bytes: &[u8],
    config: SimConfig,
    workload: &Workload,
    scheduler: &mut dyn Scheduler,
) -> Result<World, SnapError> {
    let body = unseal(bytes)?;
    let mut r = SnapReader::new(body);
    let stored = r.u64()?;
    let expected = run_fingerprint(&config, workload);
    if stored != expected {
        return Err(SnapError::Corrupt(format!(
            "snapshot fingerprint {stored:#018x} does not match this \
             (config, workload) pair {expected:#018x} — a fork changes \
             the scheduler, never the run's parameters"
        )));
    }
    let mut world = World::new(config, workload, scheduler.name());
    world.restore_state_impl(&mut r, false)?;
    world.resubmit_open_requests(scheduler);
    Ok(world)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PopMode;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use venn_baselines::BaselineScheduler;

    fn setup() -> (SimConfig, Workload) {
        let mut rng = StdRng::seed_from_u64(7);
        let workload = Workload::default_scenario(4, &mut rng);
        (SimConfig::small(), workload)
    }

    #[test]
    fn fingerprint_ignores_result_invariant_arms() {
        let (config, workload) = setup();
        let base = run_fingerprint(&config, &workload);
        let mut sharded = config;
        sharded.exec = ExecMode::Sharded { shards: 4 };
        sharded.queue = QueueKind::Heap;
        assert_eq!(run_fingerprint(&sharded, &workload), base);
    }

    #[test]
    fn fingerprint_pins_seed_and_pop_mode() {
        let (config, workload) = setup();
        let base = run_fingerprint(&config, &workload);
        let mut reseeded = config;
        reseeded.seed += 1;
        assert_ne!(run_fingerprint(&reseeded, &workload), base);
        let mut split = config;
        split.pop_mode = PopMode::Lazy;
        assert_ne!(run_fingerprint(&split, &workload), base);
    }

    #[test]
    fn resume_rejects_wrong_run() {
        let (config, workload) = setup();
        let mut sched = BaselineScheduler::fifo();
        let mut world = World::new(config, &workload, sched.name());
        for _ in 0..50 {
            if !world.step(&mut sched, &mut []) {
                break;
            }
        }
        let bytes = snapshot_world(&world, &sched).expect("snapshot");
        let mut other = config;
        other.seed ^= 0xdead_beef;
        let mut fresh = BaselineScheduler::fifo();
        let err = resume_world(&bytes, other, &workload, &mut fresh).unwrap_err();
        assert!(matches!(err, SnapError::Corrupt(_)), "got {err:?}");
    }

    #[test]
    fn resume_rejects_tampered_bytes() {
        let (config, workload) = setup();
        let mut sched = BaselineScheduler::fifo();
        let mut world = World::new(config, &workload, sched.name());
        for _ in 0..50 {
            if !world.step(&mut sched, &mut []) {
                break;
            }
        }
        let mut bytes = snapshot_world(&world, &sched).expect("snapshot");
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        let mut fresh = BaselineScheduler::fifo();
        let err = resume_world(&bytes, config, &workload, &mut fresh).unwrap_err();
        assert!(
            matches!(err, SnapError::ChecksumMismatch { .. }),
            "got {err:?}"
        );
    }

    #[test]
    fn resume_rejects_truncation() {
        let (config, workload) = setup();
        let sched = BaselineScheduler::fifo();
        let world = World::new(config, &workload, sched.name());
        let bytes = snapshot_world(&world, &sched).expect("snapshot");
        for cut in [0, 3, 16, bytes.len() - 1] {
            let mut fresh = BaselineScheduler::fifo();
            assert!(
                resume_world(&bytes[..cut], config, &workload, &mut fresh).is_err(),
                "truncation to {cut} bytes must not resume"
            );
        }
    }
}
