//! Deterministic event-driven simulator for CL resource management.
//!
//! Reproduces the paper's evaluation harness (§5.1): devices with
//! heterogeneous capacities come online in diurnal availability sessions
//! and periodically check in; jobs submit per-round resource requests;
//! the [`Scheduler`] under test assigns each check-in; responses stream
//! back; a round succeeds when ≥ 80 % of the requested participants report
//! before its deadline (5–15 min depending on demand), otherwise it aborts
//! and retries. Job completion time (JCT) decomposes into scheduling delay
//! and response collection time exactly as in the paper's Fig. 1.
//!
//! Everything is driven off one seeded RNG and an event heap with total
//! ordering, so runs are bit-for-bit reproducible.
//!
//! # Examples
//!
//! ```
//! use rand::{rngs::StdRng, SeedableRng};
//! use venn_baselines::BaselineScheduler;
//! use venn_sim::{SimConfig, Simulation};
//! use venn_traces::Workload;
//!
//! let mut rng = StdRng::seed_from_u64(1);
//! let workload = Workload::default_scenario(5, &mut rng);
//! let config = SimConfig::small();
//! let mut sched = BaselineScheduler::fifo();
//! let result = Simulation::new(config).run(&workload, &mut sched);
//! assert_eq!(result.records.len(), 5);
//! println!("finished {} jobs", result.breakdown().finished());
//! ```

pub mod checkpoint;
pub mod cohort;
pub mod config;
pub mod device_pool;
pub mod engine;
pub mod event;
pub mod job_table;
pub mod observer;
pub mod result;
pub mod shard;
pub mod snapshot;
pub mod world;

pub use checkpoint::{CheckpointStore, CkptError, ResumeOutcome};
pub use cohort::CohortSet;
pub use config::{ExecMode, PopMode, SimConfig};
pub use device_pool::{DevicePool, DeviceState};
pub use engine::Simulation;
pub use event::{Event, EventKind, EventQueue, QueueKind};
pub use job_table::{JobPhase, JobRuntime, JobTable};
pub use observer::{AssignmentLog, CompletionLog, EventTrace, RoundRecorder, SimObserver};
pub use result::{RoundLog, SimResult};
pub use shard::ShardPlane;
pub use snapshot::{fork_world, resume_world, run_fingerprint, snapshot_world};
pub use world::World;

pub use venn_core::Scheduler;
