//! Pluggable simulation observers.
//!
//! Metrics collection is no longer hard-wired into the event loop: the
//! [`World`](crate::world::World) kernel reports lifecycle moments to any
//! number of [`SimObserver`]s, so new metrics (per-event traces, round
//! logs, custom progress counters) attach without touching the engine.
//! Every hook has an empty default body — observers implement only what
//! they care about, and a run with no observers pays nothing but an empty
//! slice iteration.

use venn_core::SimTime;

use crate::event::EventKind;
use crate::result::{RoundLog, SimResult};

/// Hooks into the simulation lifecycle.
///
/// All hooks default to no-ops. Hook order within one moment follows the
/// observer slice order, and observers run strictly after the state
/// transition they describe, so they can never perturb the simulation —
/// determinism is unaffected by observer composition.
pub trait SimObserver {
    /// Fires before every event is dispatched.
    fn on_event(&mut self, _now: SimTime, _kind: &EventKind) {}

    /// Fires when the scheduler assigns `device` to `job_idx`.
    fn on_assignment(&mut self, _now: SimTime, _job_idx: usize, _device: usize) {}

    /// Fires when a job's round leaves allocation and starts computing.
    fn on_round_start(&mut self, _now: SimTime, _job_idx: usize, _round: u32) {}

    /// Fires when a round reaches quorum; `log` carries the participants
    /// and timing.
    fn on_round_complete(&mut self, _now: SimTime, _log: &RoundLog) {}

    /// Fires when a round misses its deadline and aborts.
    fn on_round_abort(&mut self, _now: SimTime, _job_idx: usize, _round: u32) {}

    /// Fires when a job completes its final round.
    fn on_job_finish(&mut self, _now: SimTime, _job_idx: usize) {}

    /// Fires once, after the event loop drains, with the finished result.
    fn on_run_end(&mut self, _result: &SimResult) {}
}

/// Counts dispatched events by kind — the observer behind the
/// events-per-second throughput reporting.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct EventTrace {
    /// Total events dispatched.
    pub total: u64,
    /// `JobArrival` events.
    pub job_arrivals: u64,
    /// `SessionStart` events.
    pub session_starts: u64,
    /// `EnvDisturbance` events (always 0 on the env-off arm).
    pub env_disturbances: u64,
    /// `CheckIn` events.
    pub check_ins: u64,
    /// `HoldExpire` events.
    pub hold_expires: u64,
    /// `Response` events.
    pub responses: u64,
    /// `AssignFailure` events.
    pub assign_failures: u64,
    /// `RoundDeadline` events.
    pub round_deadlines: u64,
    /// `RoundStart` events.
    pub round_starts: u64,
    /// `CohortWake` events (always 0 on the eager arm).
    pub cohort_wakes: u64,
}

impl SimObserver for EventTrace {
    fn on_event(&mut self, _now: SimTime, kind: &EventKind) {
        self.total += 1;
        match kind {
            EventKind::JobArrival { .. } => self.job_arrivals += 1,
            EventKind::SessionStart { .. } => self.session_starts += 1,
            EventKind::EnvDisturbance { .. } => self.env_disturbances += 1,
            EventKind::CheckIn { .. } => self.check_ins += 1,
            EventKind::HoldExpire { .. } => self.hold_expires += 1,
            EventKind::Response { .. } => self.responses += 1,
            EventKind::AssignFailure { .. } => self.assign_failures += 1,
            EventKind::RoundDeadline { .. } => self.round_deadlines += 1,
            EventKind::RoundStart { .. } => self.round_starts += 1,
            EventKind::CohortWake { .. } => self.cohort_wakes += 1,
        }
    }
}

/// Collects every completed round's [`RoundLog`], independent of the
/// `record_rounds` config flag — the hook the FL experiments consume.
#[derive(Debug, Default)]
pub struct RoundRecorder {
    /// Completed rounds in completion order.
    pub rounds: Vec<RoundLog>,
}

impl SimObserver for RoundRecorder {
    fn on_round_complete(&mut self, _now: SimTime, log: &RoundLog) {
        self.rounds.push(log.clone());
    }
}

/// Records every assignment the scheduler makes, in decision order.
///
/// The assignment stream is the scheduler's complete observable output:
/// two schedulers that produce equal streams on the same environment are
/// behaviorally identical. The incremental-vs-full-rebuild parity harness
/// (`tests/venn_incremental_parity.rs`) compares these streams byte for
/// byte.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct AssignmentLog {
    /// `(now, job_idx, device)` per assignment, in decision order.
    pub assignments: Vec<(SimTime, usize, usize)>,
}

impl SimObserver for AssignmentLog {
    fn on_assignment(&mut self, now: SimTime, job_idx: usize, device: usize) {
        self.assignments.push((now, job_idx, device));
    }
}

/// Records job completion order and abort counts — a cheap progress view
/// for long sweeps.
#[derive(Debug, Default)]
pub struct CompletionLog {
    /// `(finish_ms, job_idx)` in completion order.
    pub finished: Vec<(SimTime, usize)>,
    /// Total aborted rounds observed.
    pub aborts: u64,
}

impl SimObserver for CompletionLog {
    fn on_round_abort(&mut self, _now: SimTime, _job_idx: usize, _round: u32) {
        self.aborts += 1;
    }

    fn on_job_finish(&mut self, now: SimTime, job_idx: usize) {
        self.finished.push((now, job_idx));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_trace_counts_by_kind() {
        let mut t = EventTrace::default();
        t.on_event(0, &EventKind::CheckIn { device: 1 });
        t.on_event(1, &EventKind::CheckIn { device: 2 });
        t.on_event(2, &EventKind::RoundStart { job_idx: 0 });
        assert_eq!(t.total, 3);
        assert_eq!(t.check_ins, 2);
        assert_eq!(t.round_starts, 1);
        assert_eq!(t.responses, 0);
    }

    #[test]
    fn round_recorder_clones_logs() {
        let mut r = RoundRecorder::default();
        let log = RoundLog {
            job_idx: 3,
            round: 1,
            start_ms: 10,
            end_ms: 20,
            participants: vec![4, 5],
        };
        r.on_round_complete(20, &log);
        assert_eq!(r.rounds, vec![log]);
    }

    #[test]
    fn assignment_log_preserves_decision_order() {
        let mut log = AssignmentLog::default();
        log.on_assignment(10, 2, 7);
        log.on_assignment(10, 2, 8);
        log.on_assignment(15, 0, 7);
        assert_eq!(log.assignments, vec![(10, 2, 7), (10, 2, 8), (15, 0, 7)]);
    }

    #[test]
    fn completion_log_orders_finishes() {
        let mut c = CompletionLog::default();
        c.on_round_abort(5, 0, 0);
        c.on_job_finish(10, 2);
        c.on_job_finish(15, 0);
        assert_eq!(c.aborts, 1);
        assert_eq!(c.finished, vec![(10, 2), (15, 0)]);
    }

    #[test]
    fn default_hooks_are_noops() {
        struct Nothing;
        impl SimObserver for Nothing {}
        let mut n = Nothing;
        n.on_event(0, &EventKind::CheckIn { device: 0 });
        n.on_run_end(&SimResult::default());
    }
}
